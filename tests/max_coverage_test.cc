// Tests for the lazy-greedy max-coverage solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "random/rng.h"
#include "sim/max_coverage.h"

namespace soldist {
namespace {

RrCollection MakeCollection(VertexId n,
                            std::vector<std::vector<VertexId>> sets) {
  RrCollection collection(n);
  for (const auto& set : sets) collection.Add(set);
  collection.BuildIndex();
  return collection;
}

TEST(MaxCoverageTest, SingleBestVertex) {
  auto collection = MakeCollection(4, {{0, 1}, {0, 2}, {0, 3}, {1}});
  auto result = GreedyMaxCoverage(collection, 1);
  EXPECT_EQ(result.seeds, (std::vector<VertexId>{0}));
  EXPECT_EQ(result.covered, 3u);
  EXPECT_DOUBLE_EQ(result.Fraction(collection.size()), 0.75);
}

TEST(MaxCoverageTest, GreedyTakesComplementarySecond) {
  // Vertex 0 covers {A,B}; vertex 1 covers {B,C}; vertex 2 covers {D}.
  // After 0, the best marginal is 2 (covers D) vs 1 (only C)... both 1;
  // tie goes to smaller id = 1.
  auto collection = MakeCollection(3, {{0}, {0, 1}, {1}, {2}});
  auto result = GreedyMaxCoverage(collection, 2);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);   // covers sets 0,1 (2 sets)
  EXPECT_EQ(result.seeds[1], 1u);   // marginal 1 (set 2), ties with 2
  EXPECT_EQ(result.covered, 3u);
}

TEST(MaxCoverageTest, FullCoverageStopsGaining) {
  auto collection = MakeCollection(3, {{0}, {0}});
  auto result = GreedyMaxCoverage(collection, 3);
  EXPECT_EQ(result.covered, 2u);
  EXPECT_EQ(result.seeds.size(), 3u);  // still returns k seeds
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(MaxCoverageTest, DeterministicTieBreakSmallerId) {
  auto collection = MakeCollection(5, {{2}, {4}});
  auto result = GreedyMaxCoverage(collection, 1);
  EXPECT_EQ(result.seeds[0], 2u);  // 2 and 4 tie at gain 1
}

TEST(MaxCoverageTest, EmptyCollection) {
  RrCollection collection(3);
  collection.BuildIndex();
  auto result = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(result.covered, 0u);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.Fraction(0), 0.0);
}

TEST(MaxCoverageTest, MatchesBruteForceOnSmallInstances) {
  // Greedy is (1−1/e)-optimal; on this instance it is exactly optimal.
  auto collection =
      MakeCollection(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1}, {3}});
  auto result = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(result.covered, 6u);  // {1,3} covers all six sets
  std::vector<VertexId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{1, 3}));
}

void ExpectImplsAgree(const RrCollection& collection, int k,
                      const std::string& label) {
  MaxCoverageResult packed =
      GreedyMaxCoverage(collection, k, MaxCoverageImpl::kWordPacked);
  MaxCoverageResult reference =
      GreedyMaxCoverage(collection, k, MaxCoverageImpl::kReferenceForTest);
  EXPECT_EQ(packed.seeds, reference.seeds) << label << " k=" << k;
  EXPECT_EQ(packed.covered, reference.covered) << label << " k=" << k;
}

TEST(MaxCoverageTest, WordPackedMatchesReferenceOnEdgeCases) {
  // All-empty sets: every gain is zero from the start, so all k rounds
  // are the smallest-id zero-gain fill.
  auto all_empty = MakeCollection(5, {{}, {}, {}});
  for (int k : {1, 3, 5}) ExpectImplsAgree(all_empty, k, "all-empty");

  // Duplicate RR sets: covering one copy must cover (and count) all of
  // them, and the duplicates' members tie exactly.
  auto duplicates =
      MakeCollection(6, {{1, 2}, {1, 2}, {1, 2}, {4}, {4}, {}, {2, 4}});
  for (int k : {1, 2, 4, 6}) ExpectImplsAgree(duplicates, k, "duplicates");

  // Exactly 64 and 65 sets: the bitmap's word boundary.
  std::vector<std::vector<VertexId>> word_sets;
  for (int i = 0; i < 65; ++i) {
    word_sets.push_back({static_cast<VertexId>(i % 7)});
  }
  auto word_edge = MakeCollection(7, word_sets);
  for (int k : {1, 4, 7}) ExpectImplsAgree(word_edge, k, "word-boundary");
}

TEST(MaxCoverageTest, WordPackedMatchesReferenceOnRandomCollections) {
  // Randomized differential sweep, biased toward the nasty shapes: small
  // vertex ranges force ties, empty sets appear with probability ~1/4,
  // and every third set duplicates the previous one.
  Rng rng(20260731);
  for (int trial = 0; trial < 60; ++trial) {
    const VertexId n =
        static_cast<VertexId>(2 + rng.UniformInt(20));  // 2..21
    const int num_sets = static_cast<int>(rng.UniformInt(80));
    RrCollection collection(n);
    std::vector<VertexId> prev;
    for (int s = 0; s < num_sets; ++s) {
      std::vector<VertexId> set;
      if (s % 3 == 2 && !prev.empty()) {
        set = prev;  // exact duplicate of the previous set
      } else if (rng.UniformInt(4) != 0) {
        const int len = 1 + static_cast<int>(rng.UniformInt(6));
        std::vector<std::uint8_t> used(n, 0);
        for (int j = 0; j < len; ++j) {
          auto v = static_cast<VertexId>(rng.UniformInt(n));
          if (!used[v]) {
            used[v] = 1;
            set.push_back(v);
          }
        }
      }  // else: empty set
      collection.Add(set);
      prev = set;
    }
    collection.BuildIndex();
    for (int k : {1, 2, static_cast<int>(n)}) {
      ExpectImplsAgree(collection, k,
                       "trial " + std::to_string(trial) + " n=" +
                           std::to_string(n) + " sets=" +
                           std::to_string(num_sets));
    }
  }
}

TEST(MaxCoverageTest, IncrementalIndexMatchesFullRebuild) {
  // The Merge-then-select cycle (IMM's shape): appending sets and
  // re-building must index exactly what one final build indexes, and a
  // build with nothing new must be a no-op that keeps queries valid.
  Rng rng(7);
  RrCollection incremental(12);
  RrCollection batch(12);
  std::vector<std::vector<VertexId>> all_sets;
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < 30; ++s) {
      std::vector<VertexId> set;
      const int len = static_cast<int>(rng.UniformInt(5));
      for (int j = 0; j < len; ++j) {
        set.push_back(static_cast<VertexId>(rng.UniformInt(12)));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      incremental.Add(set);
      all_sets.push_back(set);
    }
    incremental.BuildIndex();  // one incremental build per round
    incremental.BuildIndex();  // double-build: must be a no-op
  }
  for (const auto& set : all_sets) batch.Add(set);
  batch.BuildIndex();
  ASSERT_EQ(incremental.size(), batch.size());
  for (VertexId v = 0; v < 12; ++v) {
    auto a = incremental.InvertedList(v);
    auto b = batch.InvertedList(v);
    ASSERT_EQ(std::vector<std::uint32_t>(a.begin(), a.end()),
              std::vector<std::uint32_t>(b.begin(), b.end()))
        << "vertex " << v;
  }
  for (int k : {1, 3, 12}) ExpectImplsAgree(incremental, k, "incremental");
}

// ---------------------------------------------------------------------
// Deadline-aware CELF (ISSUE 10): a CancelToken stops selection BETWEEN
// rounds; the completed r-round prefix is byte-identical to a direct
// k = r solve because greedy selection is prefix-consistent.
// ---------------------------------------------------------------------

RrCollection CancelFixture() {
  Rng rng(99);
  std::vector<std::vector<VertexId>> sets;
  for (int i = 0; i < 40; ++i) {
    std::vector<VertexId> set;
    for (VertexId v = 0; v < 16; ++v) {
      if (rng.UniformInt(10) < 3) set.push_back(v);
    }
    if (set.empty()) set.push_back(static_cast<VertexId>(rng.UniformInt(16)));
    sets.push_back(set);
  }
  return MakeCollection(16, std::move(sets));
}

TEST(MaxCoverageCancelTest, CancelBetweenRoundsIsAByteIdenticalPrefix) {
  RrCollection collection = CancelFixture();
  for (int fire_after : {1, 2, 4}) {
    for (MaxCoverageImpl impl :
         {MaxCoverageImpl::kWordPacked, MaxCoverageImpl::kReferenceForTest}) {
      int checks = 0;
      CancelToken cancel([&] { return ++checks >= fire_after; });
      MaxCoverageResult cancelled =
          GreedyMaxCoverage(collection, 8, impl, &cancel);
      EXPECT_FALSE(cancelled.completed);
      ASSERT_EQ(cancelled.seeds.size(),
                static_cast<std::size_t>(fire_after));
      MaxCoverageResult direct =
          GreedyMaxCoverage(collection, fire_after, impl);
      EXPECT_TRUE(direct.completed);
      EXPECT_EQ(cancelled.seeds, direct.seeds)
          << "fire_after=" << fire_after;
      EXPECT_EQ(cancelled.covered, direct.covered)
          << "fire_after=" << fire_after;
    }
  }
}

TEST(MaxCoverageCancelTest, PreFiredTokenStillSelectsTheFirstSeed) {
  RrCollection collection = CancelFixture();
  CancelToken cancel;
  cancel.Cancel();
  MaxCoverageResult result = GreedyMaxCoverage(
      collection, 5, MaxCoverageImpl::kWordPacked, &cancel);
  EXPECT_FALSE(result.completed);
  ASSERT_EQ(result.seeds.size(), 1u) << "round 0 always lands";
  MaxCoverageResult direct = GreedyMaxCoverage(collection, 1);
  EXPECT_EQ(result.seeds, direct.seeds);
  EXPECT_EQ(result.covered, direct.covered);
}

TEST(MaxCoverageCancelTest, UnfiredTokenChangesNothing) {
  RrCollection collection = CancelFixture();
  CancelToken cancel;
  MaxCoverageResult with = GreedyMaxCoverage(
      collection, 6, MaxCoverageImpl::kWordPacked, &cancel);
  MaxCoverageResult without = GreedyMaxCoverage(collection, 6);
  EXPECT_TRUE(with.completed);
  EXPECT_EQ(with.seeds, without.seeds);
  EXPECT_EQ(with.covered, without.covered);
}

}  // namespace
}  // namespace soldist
