// Tests for the lazy-greedy max-coverage solver.

#include <gtest/gtest.h>

#include "sim/max_coverage.h"

namespace soldist {
namespace {

RrCollection MakeCollection(VertexId n,
                            std::vector<std::vector<VertexId>> sets) {
  RrCollection collection(n);
  for (const auto& set : sets) collection.Add(set);
  collection.BuildIndex();
  return collection;
}

TEST(MaxCoverageTest, SingleBestVertex) {
  auto collection = MakeCollection(4, {{0, 1}, {0, 2}, {0, 3}, {1}});
  auto result = GreedyMaxCoverage(collection, 1);
  EXPECT_EQ(result.seeds, (std::vector<VertexId>{0}));
  EXPECT_EQ(result.covered, 3u);
  EXPECT_DOUBLE_EQ(result.Fraction(collection.size()), 0.75);
}

TEST(MaxCoverageTest, GreedyTakesComplementarySecond) {
  // Vertex 0 covers {A,B}; vertex 1 covers {B,C}; vertex 2 covers {D}.
  // After 0, the best marginal is 2 (covers D) vs 1 (only C)... both 1;
  // tie goes to smaller id = 1.
  auto collection = MakeCollection(3, {{0}, {0, 1}, {1}, {2}});
  auto result = GreedyMaxCoverage(collection, 2);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);   // covers sets 0,1 (2 sets)
  EXPECT_EQ(result.seeds[1], 1u);   // marginal 1 (set 2), ties with 2
  EXPECT_EQ(result.covered, 3u);
}

TEST(MaxCoverageTest, FullCoverageStopsGaining) {
  auto collection = MakeCollection(3, {{0}, {0}});
  auto result = GreedyMaxCoverage(collection, 3);
  EXPECT_EQ(result.covered, 2u);
  EXPECT_EQ(result.seeds.size(), 3u);  // still returns k seeds
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(MaxCoverageTest, DeterministicTieBreakSmallerId) {
  auto collection = MakeCollection(5, {{2}, {4}});
  auto result = GreedyMaxCoverage(collection, 1);
  EXPECT_EQ(result.seeds[0], 2u);  // 2 and 4 tie at gain 1
}

TEST(MaxCoverageTest, EmptyCollection) {
  RrCollection collection(3);
  collection.BuildIndex();
  auto result = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(result.covered, 0u);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.Fraction(0), 0.0);
}

TEST(MaxCoverageTest, MatchesBruteForceOnSmallInstances) {
  // Greedy is (1−1/e)-optimal; on this instance it is exactly optimal.
  auto collection =
      MakeCollection(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1}, {3}});
  auto result = GreedyMaxCoverage(collection, 2);
  EXPECT_EQ(result.covered, 6u);  // {1,3} covers all six sets
  std::vector<VertexId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{1, 3}));
}

}  // namespace
}  // namespace soldist
