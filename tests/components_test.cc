// Unit tests for weakly/strongly connected components.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/components.h"

namespace soldist {
namespace {

Graph FromArcs(VertexId n, std::vector<Arc> arcs) {
  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs = std::move(arcs);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(WccTest, TwoIslands) {
  Graph g = FromArcs(5, {{0, 1}, {1, 2}, {3, 4}});
  auto wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components(), 2u);
  EXPECT_EQ(wcc.LargestSize(), 3u);
  EXPECT_EQ(wcc.component[0], wcc.component[2]);
  EXPECT_NE(wcc.component[0], wcc.component[3]);
}

TEST(WccTest, DirectionIgnored) {
  // 0 -> 1 <- 2: weakly one component despite no directed path 0 -> 2.
  Graph g = FromArcs(3, {{0, 1}, {2, 1}});
  auto wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components(), 1u);
}

TEST(WccTest, IsolatedVerticesAreSingletons) {
  Graph g = FromArcs(4, {{0, 1}});
  auto wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components(), 3u);
  EXPECT_EQ(wcc.LargestSize(), 2u);
}

TEST(SccTest, DirectedCycleIsOneScc) {
  Graph g = FromArcs(3, {{0, 1}, {1, 2}, {2, 0}});
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components(), 1u);
  EXPECT_EQ(scc.LargestSize(), 3u);
}

TEST(SccTest, DagIsAllSingletons) {
  Graph g = FromArcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components(), 4u);
  EXPECT_EQ(scc.LargestSize(), 1u);
}

TEST(SccTest, TwoCyclesLinked) {
  // Cycle {0,1} -> cycle {2,3}: two SCCs of size 2.
  Graph g = FromArcs(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components(), 2u);
  EXPECT_EQ(scc.size[scc.component[0]], 2u);
  EXPECT_EQ(scc.size[scc.component[2]], 2u);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(SccTest, LongPathNoStackOverflow) {
  // 100k-vertex path: a recursive Tarjan would overflow the stack.
  constexpr VertexId kN = 100000;
  EdgeList edges;
  edges.num_vertices = kN;
  for (VertexId v = 0; v + 1 < kN; ++v) edges.Add(v, v + 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components(), kN);
}

TEST(SccTest, EmptyGraph) {
  Graph g = FromArcs(0, {});
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components(), 0u);
  EXPECT_EQ(scc.LargestSize(), 0u);
}

}  // namespace
}  // namespace soldist
