// Unit tests for EdgeList, GraphBuilder, and the CSR Graph.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/edge_list.h"
#include "graph/graph.h"

namespace soldist {
namespace {

EdgeList Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  return edges;
}

TEST(EdgeListTest, ValidateCatchesOutOfRange) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  EXPECT_TRUE(edges.Validate());
  edges.Add(0, 2);
  EXPECT_FALSE(edges.Validate());
}

TEST(EdgeListTest, RemoveDuplicates) {
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.RemoveDuplicates();
  EXPECT_EQ(edges.arcs.size(), 2u);
}

TEST(EdgeListTest, RemoveSelfLoops) {
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 0);
  edges.Add(0, 1);
  edges.Add(2, 2);
  edges.RemoveSelfLoops();
  ASSERT_EQ(edges.arcs.size(), 1u);
  EXPECT_EQ(edges.arcs[0], (Arc{0, 1}));
}

TEST(EdgeListTest, MakeBidirectedDoubles) {
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.MakeBidirected();
  edges.Sort();
  ASSERT_EQ(edges.arcs.size(), 4u);
  EXPECT_EQ(edges.arcs[0], (Arc{0, 1}));
  EXPECT_EQ(edges.arcs[1], (Arc{1, 0}));
  EXPECT_EQ(edges.arcs[2], (Arc{1, 2}));
  EXPECT_EQ(edges.arcs[3], (Arc{2, 1}));
}

TEST(GraphBuilderTest, BuildsDiamondCsr) {
  Graph g = GraphBuilder::FromEdgeList(Diamond());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(out0.begin(), out0.end()),
            (std::vector<VertexId>{1, 2}));
  auto in3 = g.InNeighbors(3);
  EXPECT_EQ(std::vector<VertexId>(in3.begin(), in3.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(GraphBuilderTest, EmptyGraph) {
  EdgeList edges;
  edges.num_vertices = 5;
  Graph g = GraphBuilder::FromEdgeList(edges);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 0u);
    EXPECT_EQ(g.InDegree(v), 0u);
  }
}

TEST(GraphBuilderTest, ParallelArcsPreserved) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  edges.Add(0, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(GraphTest, InToOutEdgeCrossIndex) {
  Graph g = GraphBuilder::FromEdgeList(Diamond());
  // For every in-CSR position, the referenced out-edge must be the same arc.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId pos = g.in_offsets()[v]; pos < g.in_offsets()[v + 1]; ++pos) {
      VertexId src = g.in_sources()[pos];
      EdgeId out_edge = g.in_to_out_edge()[pos];
      EXPECT_EQ(g.out_targets()[out_edge], v);
      EXPECT_GE(out_edge, g.out_offsets()[src]);
      EXPECT_LT(out_edge, g.out_offsets()[src + 1]);
    }
  }
}

TEST(GraphTest, TransposeReversesAllArcs) {
  Graph g = GraphBuilder::FromEdgeList(Diamond());
  Graph t = g.Transposed();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_EQ(t.OutDegree(3), 2u);
  EXPECT_EQ(t.InDegree(0), 2u);
  auto out3 = t.OutNeighbors(3);
  EXPECT_EQ(std::vector<VertexId>(out3.begin(), out3.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(GraphTest, ToEdgeListRoundTrips) {
  EdgeList original = Diamond();
  Graph g = GraphBuilder::FromEdgeList(original);
  EdgeList rebuilt = g.ToEdgeList();
  original.Sort();
  rebuilt.Sort();
  EXPECT_EQ(original.arcs, rebuilt.arcs);
  EXPECT_EQ(original.num_vertices, rebuilt.num_vertices);
}

TEST(GraphTest, DegreesSumToEdgeCount) {
  Graph g = GraphBuilder::FromEdgeList(Diamond());
  EdgeId out_sum = 0, in_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_sum += g.OutDegree(v);
    in_sum += g.InDegree(v);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

}  // namespace
}  // namespace soldist
