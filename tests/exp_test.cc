// Tests for the experiment harness: registry, trial runner, sweeps.

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/instance_registry.h"
#include "exp/sweep.h"
#include "exp/table_writer.h"
#include "exp/trial_runner.h"

namespace soldist {
namespace {

TEST(InstanceRegistryTest, CachesGraphs) {
  InstanceRegistry registry(42);
  auto a = registry.GetGraph("Karate");
  auto b = registry.GetGraph("Karate");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // same pointer: cached
}

TEST(InstanceRegistryTest, CachesInstances) {
  InstanceRegistry registry(42);
  auto a = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  auto b = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  auto c = registry.GetInstance("Karate", ProbabilityModel::kIwc);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(InstanceRegistryTest, UnknownNetworkFails) {
  InstanceRegistry registry(42);
  EXPECT_FALSE(registry.GetGraph("NoSuchNetwork").ok());
}

TEST(InstanceRegistryTest, LtWeightsCachedAndValidated) {
  InstanceRegistry registry(42);
  auto a = registry.GetLtWeights("Karate", ProbabilityModel::kIwc);
  auto b = registry.GetLtWeights("Karate", ProbabilityModel::kIwc);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());  // same pointer: cached
  // uc0.1 on Karate sums some vertex's in-weights past 1: LT-invalid is a
  // user error reported as a status, not a crash.
  auto bad = registry.GetLtWeights("Karate", ProbabilityModel::kUc01);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceRegistryTest, ModelInstanceResolvesLtWeights) {
  InstanceRegistry registry(42);
  auto ic = registry.GetModelInstance("Karate", ProbabilityModel::kIwc,
                                      DiffusionModel::kIc);
  ASSERT_TRUE(ic.ok());
  EXPECT_EQ(ic.value().model, DiffusionModel::kIc);
  EXPECT_EQ(ic.value().lt_weights, nullptr);
  auto lt = registry.GetModelInstance("Karate", ProbabilityModel::kIwc,
                                      DiffusionModel::kLt);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt.value().model, DiffusionModel::kLt);
  ASSERT_NE(lt.value().lt_weights, nullptr);
  EXPECT_EQ(lt.value().ig, &lt.value().lt_weights->influence_graph());
}

TEST(DiffusionModelTest, ParseAndName) {
  EXPECT_EQ(DiffusionModelName(DiffusionModel::kIc), "ic");
  EXPECT_EQ(DiffusionModelName(DiffusionModel::kLt), "lt");
  auto lt = ParseDiffusionModel("lt");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt.value(), DiffusionModel::kLt);
  EXPECT_FALSE(ParseDiffusionModel("sir").ok());
}

TEST(InstanceRegistryTest, RegisterGraphOverrides) {
  InstanceRegistry registry(42);
  EdgeList tiny;
  tiny.num_vertices = 2;
  tiny.Add(0, 1);
  registry.RegisterGraph("Karate", GraphBuilder::FromEdgeList(tiny));
  auto g = registry.GetGraph("Karate");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value()->num_vertices(), 2u);
}

TEST(TrialRunnerTest, DeterministicInMasterSeed) {
  InstanceRegistry registry(42);
  auto ig = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  ASSERT_TRUE(ig.ok());
  TrialConfig config;
  config.approach = Approach::kRis;
  config.sample_number = 64;
  config.k = 2;
  config.trials = 10;
  config.master_seed = 77;
  TrialResult a = RunTrials(*ig.value(), config, nullptr);
  TrialResult b = RunTrials(*ig.value(), config, nullptr);
  EXPECT_EQ(a.seed_sets, b.seed_sets);
  EXPECT_EQ(a.total_counters.vertices, b.total_counters.vertices);

  config.master_seed = 78;
  TrialResult c = RunTrials(*ig.value(), config, nullptr);
  EXPECT_NE(a.seed_sets, c.seed_sets);  // overwhelmingly likely
}

TEST(TrialRunnerTest, ParallelMatchesSerial) {
  InstanceRegistry registry(42);
  auto ig = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  ASSERT_TRUE(ig.ok());
  TrialConfig config;
  config.approach = Approach::kSnapshot;
  config.sample_number = 16;
  config.k = 2;
  config.trials = 12;
  config.master_seed = 5;
  ThreadPool pool(4);
  TrialResult serial = RunTrials(*ig.value(), config, nullptr);
  TrialResult parallel = RunTrials(*ig.value(), config, &pool);
  EXPECT_EQ(serial.seed_sets, parallel.seed_sets);
  EXPECT_EQ(serial.total_counters.vertices,
            parallel.total_counters.vertices);
  EXPECT_EQ(serial.total_counters.edges, parallel.total_counters.edges);
}

TEST(TrialRunnerTest, SeedSetsHaveSizeK) {
  InstanceRegistry registry(42);
  auto ig = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  ASSERT_TRUE(ig.ok());
  TrialConfig config;
  config.approach = Approach::kOneshot;
  config.sample_number = 4;
  config.k = 3;
  config.trials = 5;
  config.master_seed = 9;
  TrialResult result = RunTrials(*ig.value(), config, nullptr);
  ASSERT_EQ(result.seed_sets.size(), 5u);
  for (const auto& set : result.seed_sets) {
    EXPECT_EQ(set.size(), 3u);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  }
  EXPECT_EQ(result.distribution.num_trials(), 5u);
}

TEST(TrialRunnerTest, EvaluateInfluenceFillsDistribution) {
  InstanceRegistry registry(42);
  auto ig = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  ASSERT_TRUE(ig.ok());
  RrOracle oracle(ig.value(), 20000, 1);
  TrialConfig config;
  config.approach = Approach::kRis;
  config.sample_number = 256;
  config.k = 1;
  config.trials = 8;
  config.master_seed = 10;
  TrialResult result = RunTrials(*ig.value(), config, nullptr);
  EvaluateInfluence(oracle, &result);
  ASSERT_EQ(result.influence.size(), 8u);
  for (double v : result.influence.values()) {
    EXPECT_GE(v, 1.0);   // a seed always activates itself
    EXPECT_LE(v, 34.0);  // bounded by n
  }
}

TEST(SweepTest, RunsAllCellsAndSummaries) {
  InstanceRegistry registry(42);
  auto ig = registry.GetInstance("Karate", ProbabilityModel::kUc01);
  ASSERT_TRUE(ig.ok());
  RrOracle oracle(ig.value(), 20000, 2);
  SweepConfig config;
  config.approach = Approach::kRis;
  config.k = 1;
  config.trials = 10;
  config.master_seed = 3;
  config.min_exponent = 0;
  config.max_exponent = 6;
  auto cells = RunSweep(*ig.value(), oracle, config, nullptr);
  ASSERT_EQ(cells.size(), 7u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].sample_number, 1ULL << i);
    EXPECT_EQ(cells[i].result.influence.size(), 10u);
    EXPECT_GE(cells[i].entropy, 0.0);
  }
  // Mean influence at the largest sample number should dominate the
  // smallest (convergence upward; Section 5.2.1).
  EXPECT_GE(cells.back().summary.mean_influence,
            cells.front().summary.mean_influence - 0.2);
  auto curve = CurveOf(cells);
  EXPECT_EQ(curve.size(), 7u);
}

TEST(SweepTest, FindLeastSufficientCell) {
  std::vector<SweepCell> cells(3);
  for (int i = 0; i < 3; ++i) {
    cells[i].sample_number = 1ULL << i;
  }
  // Cell 0: all below threshold; cell 1: 50%; cell 2: all above.
  cells[0].result.influence.AddAll({1.0, 1.0});
  cells[1].result.influence.AddAll({1.0, 5.0});
  cells[2].result.influence.AddAll({5.0, 5.0});
  EXPECT_EQ(FindLeastSufficientCell(cells, 4.0, 0.99), 2);
  EXPECT_EQ(FindLeastSufficientCell(cells, 4.0, 0.5), 1);
  EXPECT_EQ(FindLeastSufficientCell(cells, 10.0, 0.5), -1);
}

TEST(TableWriterTest, PowerOfTwoFormatting) {
  EXPECT_EQ(FormatPowerOfTwo(1), "2^0");
  EXPECT_EQ(FormatPowerOfTwo(4096), "2^12");
  EXPECT_EQ(FormatPowerOfTwo(12), "12");
  EXPECT_EQ(FormatLog2(1024), "10");
}

TEST(ExperimentTest, GridCapsScaledVsFull) {
  GridCaps scaled = ScaledGridCaps("Karate", false);
  GridCaps full = ScaledGridCaps("Karate", true);
  EXPECT_LT(scaled.oneshot_max_exp, full.oneshot_max_exp);
  EXPECT_EQ(full.oneshot_max_exp, 16);
  EXPECT_EQ(full.ris_max_exp, 24);
  EXPECT_EQ(scaled.MaxExp(Approach::kRis), scaled.ris_max_exp);
}

TEST(SweepTest, LtSweepRunsEndToEnd) {
  ExperimentOptions options;
  options.trials = 6;
  options.oracle_rr = 2000;
  options.seed = 2;
  options.model = DiffusionModel::kLt;
  ExperimentContext context(options);
  ModelInstance instance = context.Model("Karate", ProbabilityModel::kIwc);
  const RrOracle& oracle = context.Oracle("Karate", ProbabilityModel::kIwc);
  SweepConfig config;
  config.approach = Approach::kRis;
  config.k = 1;
  config.trials = 6;
  config.master_seed = 3;
  config.min_exponent = 0;
  config.max_exponent = 5;
  auto cells = RunSweep(instance, oracle, config, nullptr);
  ASSERT_EQ(cells.size(), 6u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.result.influence.size(), 6u);
    for (double v : cell.result.influence.values()) {
      EXPECT_GE(v, 1.0);   // a seed always activates itself
      EXPECT_LE(v, 34.0);  // bounded by n
    }
  }
}

TEST(ExperimentTest, ContextBuildsInstancesAndOracles) {
  ExperimentOptions options;
  options.trials = 5;
  options.oracle_rr = 1000;
  options.seed = 1;
  ExperimentContext context(options);
  const InfluenceGraph& ig =
      context.Instance("Karate", ProbabilityModel::kUc01);
  EXPECT_EQ(ig.num_vertices(), 34u);
  const RrOracle& oracle = context.Oracle("Karate", ProbabilityModel::kUc01);
  EXPECT_EQ(oracle.num_rr_sets(), 1000u);
  // Cached on second access.
  EXPECT_EQ(&context.Oracle("Karate", ProbabilityModel::kUc01), &oracle);
  EXPECT_EQ(context.TrialsFor("Karate"), 5u);
  EXPECT_EQ(context.TrialsFor("com-Youtube"), options.star_trials);
}

TEST(ExperimentTest, LtContextBuildsLtKeyedOracle) {
  ExperimentOptions options;
  options.trials = 5;
  options.oracle_rr = 1000;
  options.seed = 1;
  options.model = DiffusionModel::kLt;
  ExperimentContext context(options);
  ModelInstance instance = context.Model("Karate", ProbabilityModel::kIwc);
  EXPECT_EQ(instance.model, DiffusionModel::kLt);
  ASSERT_NE(instance.lt_weights, nullptr);
  const RrOracle& oracle = context.Oracle("Karate", ProbabilityModel::kIwc);
  EXPECT_EQ(oracle.num_rr_sets(), 1000u);
  // Cached on second access.
  EXPECT_EQ(&context.Oracle("Karate", ProbabilityModel::kIwc), &oracle);
}

}  // namespace
}  // namespace soldist
