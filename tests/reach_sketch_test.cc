// Tests for bottom-k reachability sketches (Section 3.4.3's technique for
// the descendant-counting bottleneck).

#include <gtest/gtest.h>

#include "gen/barabasi_albert.h"
#include "graph/builder.h"
#include "graph/reach_sketch.h"
#include "graph/traversal.h"

namespace soldist {
namespace {

Graph Chain(VertexId n) {
  EdgeList edges;
  edges.num_vertices = n;
  for (VertexId v = 0; v + 1 < n; ++v) edges.Add(v, v + 1);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(ReachSketchTest, ExactWhenKExceedsReachability) {
  // k = 64 > n = 10: sketches hold every reachable rank -> exact counts.
  Graph g = Chain(10);
  Rng rng(1);
  ReachabilitySketches sketches(&g, 64, &rng);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(sketches.EstimateReachable(v), 10.0 - v);
  }
}

TEST(ReachSketchTest, CycleCountsWholeScc) {
  EdgeList edges;
  edges.num_vertices = 5;
  for (VertexId v = 0; v < 5; ++v) edges.Add(v, (v + 1) % 5);
  Graph g = GraphBuilder::FromEdgeList(edges);
  Rng rng(2);
  ReachabilitySketches sketches(&g, 16, &rng);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(sketches.EstimateReachable(v), 5.0);
  }
}

TEST(ReachSketchTest, DiamondWithSharedSink) {
  // 0 -> {1,2} -> 3: reach(0)=4 even though 3 is reachable twice.
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  Rng rng(3);
  ReachabilitySketches sketches(&g, 16, &rng);
  EXPECT_DOUBLE_EQ(sketches.EstimateReachable(0), 4.0);
  EXPECT_DOUBLE_EQ(sketches.EstimateReachable(1), 2.0);
  EXPECT_DOUBLE_EQ(sketches.EstimateReachable(3), 1.0);
}

TEST(ReachSketchTest, ApproximatesLargeReachabilities) {
  // BA graph, all edges kept directed from new to old: every vertex
  // reaches the seed region; ground truth via BFS.
  Rng gen_rng(4);
  EdgeList edges = BarabasiAlbert(2000, 3, &gen_rng);
  Graph g = GraphBuilder::FromEdgeList(edges);
  BfsReachability bfs(&g);

  Rng sketch_rng(5);
  ReachabilitySketches sketches(&g, 128, &sketch_rng);
  // Spot-check a sample of vertices: bottom-128 relative error is
  // ~1/sqrt(126) ≈ 9%; allow 4 sigma.
  for (VertexId v = 0; v < 2000; v += 97) {
    const VertexId source[1] = {v};
    double exact = static_cast<double>(bfs.CountReachable(source));
    double estimate = sketches.EstimateReachable(v);
    EXPECT_NEAR(estimate, exact, std::max(2.0, 0.36 * exact))
        << "vertex " << v;
  }
}

TEST(ReachSketchTest, DeterministicGivenRng) {
  Graph g = Chain(50);
  Rng rng1(6), rng2(6);
  ReachabilitySketches a(&g, 8, &rng1);
  ReachabilitySketches b(&g, 8, &rng2);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_DOUBLE_EQ(a.EstimateReachable(v), b.EstimateReachable(v));
  }
}

TEST(ReachSketchTest, IsolatedVertices) {
  EdgeList edges;
  edges.num_vertices = 3;
  Graph g = GraphBuilder::FromEdgeList(edges);
  Rng rng(7);
  ReachabilitySketches sketches(&g, 4, &rng);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(sketches.EstimateReachable(v), 1.0);
  }
}

}  // namespace
}  // namespace soldist
