// End-to-end integration tests reproducing the paper's headline findings
// in miniature on Karate (uc0.1):
//  1. for large sample numbers, all three approaches converge to the SAME
//     unique seed set (Section 5.1.1);
//  2. entropy decays toward 0 as the sample number grows;
//  3. mean influence increases with the sample number (Section 5.2.1).

#include <gtest/gtest.h>

#include "exp/instance_registry.h"
#include "exp/sweep.h"
#include "exp/trial_runner.h"
#include "stats/set_metrics.h"

namespace soldist {
namespace {

class KarateIntegrationTest : public testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<InstanceRegistry>(42);
    auto ig = registry_->GetInstance("Karate", ProbabilityModel::kUc01);
    ASSERT_TRUE(ig.ok());
    ig_ = ig.value();
    oracle_ = std::make_unique<RrOracle>(ig_, 50000, 99);
  }

  std::unique_ptr<InstanceRegistry> registry_;
  const InfluenceGraph* ig_ = nullptr;
  std::unique_ptr<RrOracle> oracle_;
};

TEST_F(KarateIntegrationTest, ThreeApproachesShareTheLimitSolution) {
  // Paper finding 1: "For a sufficiently large sample number, we obtain a
  // unique solution regardless of algorithms."
  std::map<Approach, std::vector<VertexId>> modal;
  struct Setting {
    Approach approach;
    std::uint64_t sample_number;
  };
  // Sample numbers past the convergence knee of the paper's Figure 1a
  // (entropy hits 0 around 2^13 for Oneshot/Snapshot, ~2^4 later for RIS).
  for (Setting s : {Setting{Approach::kOneshot, 1 << 14},
                    Setting{Approach::kSnapshot, 1 << 14},
                    Setting{Approach::kRis, 1 << 18}}) {
    TrialConfig config;
    config.approach = s.approach;
    config.sample_number = s.sample_number;
    config.k = 1;
    config.trials = 10;
    config.master_seed = 1234;
    TrialResult result = RunTrials(*ig_, config, nullptr);
    EXPECT_TRUE(result.distribution.IsDegenerate())
        << ApproachName(s.approach) << " entropy "
        << result.distribution.Entropy();
    modal[s.approach] = result.distribution.ModalSet();
  }
  EXPECT_EQ(modal[Approach::kOneshot], modal[Approach::kSnapshot]);
  EXPECT_EQ(modal[Approach::kSnapshot], modal[Approach::kRis]);
}

TEST_F(KarateIntegrationTest, EntropyDecaysWithSampleNumber) {
  SweepConfig config;
  config.approach = Approach::kRis;
  config.k = 1;
  config.trials = 60;
  config.master_seed = 17;
  config.min_exponent = 0;
  config.max_exponent = 17;
  auto cells = RunSweep(*ig_, *oracle_, config, nullptr);
  // Entropy at the start is high (many distinct singletons), at the end ~0.
  EXPECT_GT(cells.front().entropy, 2.0);
  EXPECT_LT(cells.back().entropy, 0.3);
  // Overall trend: final < initial substantially; allow local noise.
  EXPECT_LT(cells.back().entropy, cells.front().entropy - 1.5);
}

TEST_F(KarateIntegrationTest, MeanInfluenceIncreases) {
  SweepConfig config;
  config.approach = Approach::kSnapshot;
  config.k = 2;
  config.trials = 40;
  config.master_seed = 23;
  config.min_exponent = 0;
  config.max_exponent = 10;
  auto cells = RunSweep(*ig_, *oracle_, config, nullptr);
  double first = cells.front().summary.mean_influence;
  double last = cells.back().summary.mean_influence;
  EXPECT_GT(last, first);
  // The converged mean should be near the oracle-greedy reference.
  auto reference = oracle_->OracleGreedySeeds(2);
  double ref_influence = oracle_->EstimateInfluence(reference);
  EXPECT_GT(last, 0.95 * ref_influence);
}

TEST_F(KarateIntegrationTest, ConvergedSolutionIsNearOracleGreedy) {
  TrialConfig config;
  config.approach = Approach::kRis;
  config.sample_number = 1 << 15;
  config.k = 1;
  config.trials = 8;
  config.master_seed = 31;
  TrialResult result = RunTrials(*ig_, config, nullptr);
  EvaluateInfluence(*oracle_, &result);
  auto reference = oracle_->OracleGreedySeeds(1);
  double ref_influence = oracle_->EstimateInfluence(reference);
  // All trials produce a solution within 5% of the greedy reference.
  EXPECT_GE(result.influence.Min(), 0.95 * ref_influence);
}

TEST_F(KarateIntegrationTest, ApproachDistributionsConvergeTogether) {
  // Quantitative version of the paper's "same limit behavior": the total
  // variation distance between the seed-set distributions of Snapshot and
  // RIS shrinks as both approach the degenerate limit.
  auto run = [&](Approach approach, std::uint64_t s) {
    TrialConfig config;
    config.approach = approach;
    config.sample_number = s;
    config.k = 1;
    config.trials = 60;
    config.master_seed = 77;
    return RunTrials(*ig_, config, nullptr);
  };
  // RIS needs ~2^4 times the samples for the same accuracy (Figure 1).
  double tv_small = TotalVariationDistance(
      run(Approach::kSnapshot, 1 << 2).distribution,
      run(Approach::kRis, 1 << 6).distribution);
  double tv_large = TotalVariationDistance(
      run(Approach::kSnapshot, 1 << 12).distribution,
      run(Approach::kRis, 1 << 16).distribution);
  EXPECT_LT(tv_large, tv_small);
  EXPECT_LT(tv_large, 0.3);

  // Inclusion frequencies concentrate on the winner.
  TrialResult converged = run(Approach::kRis, 1 << 16);
  auto freq = InclusionFrequencies(converged.distribution,
                                   ig_->num_vertices());
  double max_freq = *std::max_element(freq.begin(), freq.end());
  EXPECT_GE(max_freq, 0.9);
}

TEST_F(KarateIntegrationTest, TraversalCostRatiosFollowTable1) {
  // Vertex-cost ratio Oneshot : Snapshot ≈ 1 : 1 and RIS ≈ 1/n of either
  // (paper Table 1 / Section 5.3.2), measured at k=1 and sample number 1.
  auto run = [&](Approach approach) {
    TrialConfig config;
    config.approach = approach;
    config.sample_number = 1;
    config.k = 1;
    config.trials = 400;
    config.master_seed = 55;
    TrialResult result = RunTrials(*ig_, config, nullptr);
    return result.MeanVertexCost(config.trials);
  };
  double oneshot = run(Approach::kOneshot);
  double snapshot = run(Approach::kSnapshot);
  double ris = run(Approach::kRis);
  EXPECT_NEAR(snapshot / oneshot, 1.0, 0.15);
  EXPECT_NEAR(ris / oneshot, 1.0 / 34.0, 0.02);
}

}  // namespace
}  // namespace soldist
