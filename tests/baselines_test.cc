// Tests for the heuristic baselines.

#include <gtest/gtest.h>

#include <set>

#include "core/baselines.h"
#include "gen/datasets.h"
#include "graph/builder.h"

namespace soldist {
namespace {

Graph StarPlusEdge() {
  // 0 -> {1,2,3}, 4 -> 5: out-degrees 3,0,0,0,1,0.
  EdgeList edges;
  edges.num_vertices = 6;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(0, 3);
  edges.Add(4, 5);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(MaxDegreeTest, OrdersByOutDegree) {
  Graph g = StarPlusEdge();
  auto seeds = MaxDegreeSeeds(g, 2);
  EXPECT_EQ(seeds, (std::vector<VertexId>{0, 4}));
}

TEST(MaxDegreeTest, TiesByLowerId) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(1, 0);
  edges.Add(3, 0);
  Graph g = GraphBuilder::FromEdgeList(edges);
  auto seeds = MaxDegreeSeeds(g, 2);
  EXPECT_EQ(seeds, (std::vector<VertexId>{1, 3}));
}

TEST(RandomSeedsTest, DistinctAndInRange) {
  Rng rng(1);
  auto seeds = RandomSeeds(100, 20, &rng);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 20u);
  for (VertexId v : seeds) EXPECT_LT(v, 100u);
}

TEST(RandomSeedsTest, FullSelection) {
  Rng rng(2);
  auto seeds = RandomSeeds(5, 5, &rng);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(DegreeDiscountTest, FirstPickIsMaxDegree) {
  Graph g = StarPlusEdge();
  auto seeds = DegreeDiscountSeeds(g, 1, 0.1);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(DegreeDiscountTest, DiscountsNeighborsOfSeeds) {
  // Path 0 -> 1 -> 2 plus isolated hub 3 -> {4,5}:
  // degrees: 0:1, 1:1, 2:0, 3:2. First pick 3. Second pick: 0 or 1 tie at
  // degree 1 (4,5 got discounted from 0 out-degree anyway) -> picks 0.
  EdgeList edges;
  edges.num_vertices = 6;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(3, 4);
  edges.Add(3, 5);
  Graph g = GraphBuilder::FromEdgeList(edges);
  auto seeds = DegreeDiscountSeeds(g, 2, 0.1);
  EXPECT_EQ(seeds[0], 3u);
  EXPECT_EQ(seeds[1], 0u);
}

TEST(DegreeDiscountTest, ProducesKDistinctSeeds) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  auto seeds = DegreeDiscountSeeds(g, 8, 0.1);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 8u);
}

}  // namespace
}  // namespace soldist
