// Statistical convergence properties of the three estimators: the
// standard error of an unbiased estimator must shrink like 1/sqrt(sample
// number) — the quantitative backbone of the paper's "improves at the
// same rate up to scaling" findings.

#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/exact_oracle.h"
#include "random/splitmix64.h"

namespace soldist {
namespace {

InfluenceGraph Diamond(double p) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, p));
}

/// Standard deviation of Estimate(0) across `runs` fresh estimators at
/// the given sample number.
double EstimateSd(const InfluenceGraph& ig, Approach approach,
                  std::uint64_t sample_number, int runs,
                  std::uint64_t seed) {
  std::vector<double> estimates;
  estimates.reserve(runs);
  for (int r = 0; r < runs; ++r) {
    auto estimator = MakeEstimator(ModelInstance::Ic(&ig), approach,
                                   sample_number, DeriveSeed(seed, r));
    estimator->Build();
    estimates.push_back(estimator->Estimate(0));
  }
  double mean = 0.0;
  for (double e : estimates) mean += e;
  mean /= runs;
  double ss = 0.0;
  for (double e : estimates) ss += (e - mean) * (e - mean);
  return std::sqrt(ss / (runs - 1));
}

class ConvergenceTest : public testing::TestWithParam<Approach> {};

TEST_P(ConvergenceTest, StandardErrorShrinksLikeRootSampleNumber) {
  InfluenceGraph ig = Diamond(0.5);
  const Approach approach = GetParam();
  // Quadrupling the sample number should halve the SD (ratio 2±noise).
  double sd_small = EstimateSd(ig, approach, 64, 120, 1);
  double sd_large = EstimateSd(ig, approach, 256, 120, 2);
  ASSERT_GT(sd_large, 0.0);
  double ratio = sd_small / sd_large;
  EXPECT_GT(ratio, 1.4) << ApproachName(approach);
  EXPECT_LT(ratio, 2.9) << ApproachName(approach);
}

TEST_P(ConvergenceTest, EstimatesCenterOnExactInfluence) {
  InfluenceGraph ig = Diamond(0.5);
  double exact = ExactInfluence(ig, std::vector<VertexId>{0});
  const Approach approach = GetParam();
  double mean = 0.0;
  constexpr int kRuns = 60;
  for (int r = 0; r < kRuns; ++r) {
    auto estimator = MakeEstimator(ModelInstance::Ic(&ig), approach, 1024,
                                   DeriveSeed(99, r));
    estimator->Build();
    mean += estimator->Estimate(0);
  }
  mean /= kRuns;
  // SE of the mean ≈ sd(est at 1024)/sqrt(60); generous 5-sigma band.
  EXPECT_NEAR(mean, exact, 0.05) << ApproachName(approach);
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, ConvergenceTest,
                         testing::Values(Approach::kOneshot,
                                         Approach::kSnapshot,
                                         Approach::kRis),
                         [](const testing::TestParamInfo<Approach>& info) {
                           return ApproachName(info.param);
                         });

TEST(ConvergenceKarateTest, GreedyQualityImprovesMonotonicallyInTrend) {
  // Mean oracle influence of greedy solutions is non-decreasing in the
  // sample number up to noise: check endpoints with a wide margin.
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  auto mean_estimate = [&ig](std::uint64_t s) {
    double total = 0.0;
    constexpr int kRuns = 40;
    for (int r = 0; r < kRuns; ++r) {
      auto estimator = MakeEstimator(ModelInstance::Ic(&ig),
                                     Approach::kSnapshot, s,
                                     DeriveSeed(7, r));
      estimator->Build();
      // First-iteration best estimate as a quality proxy.
      double best = 0.0;
      for (VertexId v = 0; v < ig.num_vertices(); ++v) {
        best = std::max(best, estimator->Estimate(v));
      }
      total += best;
    }
    return total / kRuns;
  };
  // At s=1 the max over 34 noisy estimates overshoots the true optimum
  // (max of noise); by s=256 it concentrates near Inf(v*) ≈ 3.8. Check
  // the overshoot shrinks.
  double overshoot_small = mean_estimate(1);
  double overshoot_large = mean_estimate(256);
  EXPECT_GT(overshoot_small, overshoot_large);
}

}  // namespace
}  // namespace soldist
