// The serving layer's correctness contract: QueryView point queries are
// EXACTLY the estimates a fresh RIS build at the same (seed, τ, stream
// family) produces — Spread/MarginalGain against RisEstimator's
// Estimate/Update protocol, TopK against GreedyMaxCoverage on a freshly
// sampled collection — plus the concurrency and cache contracts: a
// 4-thread mixed-query hammer is byte-identical to the single-threaded
// reference, and a byte-budgeted cache rebuilds evicted arenas with
// identical answers (arena content is a pure function of its key).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "core/ris.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "random/splitmix64.h"
#include "serve/query_service.h"
#include "sim/max_coverage.h"
#include "sim/rr_arena.h"

namespace soldist {
namespace {

constexpr std::uint64_t kSeed = 17;
constexpr std::uint64_t kTau = 600;

api::WorkloadSpec KarateUc01() {
  return api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kUc01);
}

serve::QuerySpec SpecAt(std::uint64_t tau) {
  serve::QuerySpec spec;
  spec.sample_number = tau;
  spec.seed = kSeed;
  return spec;
}

/// The RR collection a fresh sequential-family RIS build at `tau` draws
/// (RisEstimator::Build's non-engine streams — what the default
/// QuerySpec's arena must prefix-match).
RrCollection DirectCollection(const InfluenceGraph& ig, std::uint64_t tau) {
  RrCollection collection(ig.num_vertices());
  RrSampler sampler(&ig);
  Rng target_rng(DeriveSeed(kSeed, 1));
  Rng coin_rng(DeriveSeed(kSeed, 2));
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (std::uint64_t i = 0; i < tau; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    collection.Add(rr_set);
  }
  collection.BuildIndex();
  return collection;
}

TEST(QueryServiceTest, SpreadMatchesFreshRisEstimator) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  RisEstimator estimator(instance.value().ig, kTau, kSeed);
  estimator.Build();
  for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
    const VertexId seeds[] = {v};
    EXPECT_DOUBLE_EQ(view.value().Spread(seeds), estimator.Estimate(v))
        << "vertex " << v;
  }
}

TEST(QueryServiceTest, MultiSeedSpreadMatchesBruteForceCount) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  const InfluenceGraph& ig = *instance.value().ig;
  RrCollection collection = DirectCollection(ig, kTau);

  SplitMix64 rng(7);
  serve::QueryScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<VertexId> seeds(1 + trial % 6);
    for (VertexId& v : seeds) {
      v = static_cast<VertexId>(rng.Next() % ig.num_vertices());
    }
    EXPECT_EQ(view.value().CoveredCount(seeds, &scratch),
              collection.CountCovered(seeds));
    EXPECT_DOUBLE_EQ(view.value().Spread(seeds, &scratch),
                     static_cast<double>(ig.num_vertices()) *
                         static_cast<double>(collection.CountCovered(seeds)) /
                         static_cast<double>(kTau));
  }
}

TEST(QueryServiceTest, MarginalGainMatchesEstimatorUpdateProtocol) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());

  RisEstimator estimator(instance.value().ig, kTau, kSeed);
  estimator.Build();
  std::vector<VertexId> committed;
  for (VertexId next : {VertexId{0}, VertexId{33}, VertexId{5}}) {
    // Estimate(v) after Update(s in committed) IS the marginal gain of v
    // on top of `committed` — QueryView must agree for every candidate
    // (chosen seeds included: their gain is 0 both ways).
    for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(view.value().MarginalGain(committed, v),
                       estimator.Estimate(v))
          << "|S|=" << committed.size() << " v=" << v;
    }
    estimator.Update(next);
    committed.push_back(next);
  }
}

TEST(QueryServiceTest, TopKMatchesFreshGreedyMaxCoverageSolve) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  RrCollection collection = DirectCollection(*instance.value().ig, kTau);

  for (int k : {1, 4, 8}) {
    serve::TopKResult topk = view.value().TopK(k);
    MaxCoverageResult fresh = GreedyMaxCoverage(collection, k);
    EXPECT_EQ(topk.seeds, fresh.seeds) << "k=" << k;
    EXPECT_EQ(topk.covered, fresh.covered) << "k=" << k;

    // The estimates column is the marginal at selection time: replay the
    // seed order through a fresh estimator's Estimate/Update protocol.
    RisEstimator estimator(instance.value().ig, kTau, kSeed);
    estimator.Build();
    ASSERT_EQ(topk.estimates.size(), topk.seeds.size());
    for (std::size_t i = 0; i < topk.seeds.size(); ++i) {
      EXPECT_DOUBLE_EQ(topk.estimates[i], estimator.Estimate(topk.seeds[i]))
          << "k=" << k << " step " << i;
      estimator.Update(topk.seeds[i]);
    }
  }
}

TEST(QueryServiceTest, ConcurrentHammerIsIdenticalToSingleThreaded) {
  api::Session session;
  serve::QueryService service(&session);
  auto view_or = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view_or.ok()) << view_or.status().ToString();
  const serve::QueryView view = view_or.value();
  const VertexId n = view.num_vertices();

  // Deterministic mixed workload: spreads of 1..5 seeds and marginal
  // gains against 2-seed bases.
  const std::uint64_t kQueries = 4000;
  struct Query {
    bool gain = false;
    std::vector<VertexId> seeds;
    VertexId vertex = 0;
  };
  std::vector<Query> queries(kQueries);
  SplitMix64 rng(99);
  for (Query& q : queries) {
    q.gain = rng.Next() % 3 == 0;
    q.seeds.resize(1 + rng.Next() % (q.gain ? 2 : 5));
    for (VertexId& v : q.seeds) v = static_cast<VertexId>(rng.Next() % n);
    q.vertex = static_cast<VertexId>(rng.Next() % n);
  }
  auto answer = [&](const Query& q, serve::QueryScratch* scratch) {
    return q.gain ? view.MarginalGain(q.seeds, q.vertex, scratch)
                  : view.Spread(q.seeds, scratch);
  };

  std::vector<double> reference(kQueries);
  serve::QueryScratch scratch;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    reference[i] = answer(queries[i], &scratch);
  }

  const int kThreads = 4;
  std::vector<double> concurrent(kQueries);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      serve::QueryScratch local;
      // Strided assignment: all threads interleave over the whole range.
      for (std::uint64_t i = static_cast<std::uint64_t>(t); i < kQueries;
           i += kThreads) {
        concurrent[i] = answer(queries[i], &local);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(concurrent, reference);
}

TEST(QueryServiceTest, CacheHitsPrefixesAndCapacityUpgrades) {
  api::Session session;
  serve::QueryService service(&session);

  auto small = service.View(KarateUc01(), SpecAt(200));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(service.cache_stats().builds, 1u);

  // Same τ again: pure hit. Smaller τ: still a hit (prefix serving).
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(200)).ok());
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(64)).ok());
  EXPECT_EQ(service.cache_stats().builds, 1u);
  EXPECT_EQ(service.cache_stats().hits, 2u);

  const VertexId probe[] = {VertexId{0}};
  const double before = small.value().Spread(probe);

  // Larger τ: capacity upgrade (one rebuild), after which the small τ is
  // again served as a prefix of the NEW arena with unchanged answers.
  auto big = service.View(KarateUc01(), SpecAt(500));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  auto small_again = service.View(KarateUc01(), SpecAt(200));
  ASSERT_TRUE(small_again.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  EXPECT_DOUBLE_EQ(small_again.value().Spread(probe), before);
  // The pre-upgrade view stays alive and valid through its shared arena.
  EXPECT_DOUBLE_EQ(small.value().Spread(probe), before);
}

TEST(QueryServiceTest, CappedCacheEvictsAndRebuildsIdentically) {
  // A 1-byte budget can hold nothing: every new key evicts the previous
  // arena (always-admit keeps exactly the most recent one resident).
  api::SessionOptions options;
  options.arena_budget_bytes = 1;
  api::Session session(options);
  serve::QueryService service(&session);

  api::WorkloadSpec workload_a = KarateUc01();
  api::WorkloadSpec workload_b =
      api::WorkloadSpec::Dataset("Karate").Probability(ProbabilityModel::kIwc);

  auto a1 = service.View(workload_a, SpecAt(256));
  ASSERT_TRUE(a1.ok());
  const VertexId probe[] = {VertexId{2}};
  const double a_spread = a1.value().Spread(probe);
  EXPECT_EQ(service.cache_stats().resident_arenas, 1u);

  auto b = service.View(workload_b, SpecAt(256));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.cache_stats().evictions, 1u);
  EXPECT_EQ(service.cache_stats().resident_arenas, 1u);

  // The evicted arena must be rebuilt byte-identically on re-request...
  auto a2 = service.View(workload_a, SpecAt(256));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(service.cache_stats().builds, 3u);
  EXPECT_DOUBLE_EQ(a2.value().Spread(probe), a_spread);
  for (VertexId v = 0; v < a1.value().num_vertices(); ++v) {
    ASSERT_EQ(a2.value().arena().InvertedAll(v).size(),
              a1.value().arena().InvertedAll(v).size());
  }
  // ...and the evicted view itself stays queryable (shared ownership).
  EXPECT_DOUBLE_EQ(a1.value().Spread(probe), a_spread);
}

TEST(QueryServiceTest, InvalidInputIsStatusNotAbort) {
  api::Session session;
  serve::QueryService service(&session);
  EXPECT_FALSE(
      service.View(api::WorkloadSpec::Dataset("NoSuchNetwork")).ok());
  serve::QuerySpec zero;
  zero.sample_number = 0;
  EXPECT_FALSE(service.View(KarateUc01(), zero).ok());
}

}  // namespace
}  // namespace soldist
