// The serving layer's correctness contract: QueryView point queries are
// EXACTLY the estimates a fresh RIS build at the same (seed, τ, stream
// family) produces — Spread/MarginalGain against RisEstimator's
// Estimate/Update protocol, TopK against GreedyMaxCoverage on a freshly
// sampled collection — plus the concurrency and cache contracts: a
// 4-thread mixed-query hammer is byte-identical to the single-threaded
// reference, and a byte-budgeted cache rebuilds evicted arenas with
// identical answers (arena content is a pure function of its key).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "core/ris.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "random/splitmix64.h"
#include "serve/query_service.h"
#include "sim/max_coverage.h"
#include "sim/rr_arena.h"
#include "store/fault_injection.h"

namespace soldist {
namespace {

constexpr std::uint64_t kSeed = 17;
constexpr std::uint64_t kTau = 600;

api::WorkloadSpec KarateUc01() {
  return api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kUc01);
}

serve::QuerySpec SpecAt(std::uint64_t tau) {
  serve::QuerySpec spec;
  spec.sample_number = tau;
  spec.seed = kSeed;
  return spec;
}

/// The RR collection a fresh sequential-family RIS build at `tau` draws
/// (RisEstimator::Build's non-engine streams — what the default
/// QuerySpec's arena must prefix-match).
RrCollection DirectCollection(const InfluenceGraph& ig, std::uint64_t tau) {
  RrCollection collection(ig.num_vertices());
  RrSampler sampler(&ig);
  Rng target_rng(DeriveSeed(kSeed, 1));
  Rng coin_rng(DeriveSeed(kSeed, 2));
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (std::uint64_t i = 0; i < tau; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    collection.Add(rr_set);
  }
  collection.BuildIndex();
  return collection;
}

TEST(QueryServiceTest, SpreadMatchesFreshRisEstimator) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  RisEstimator estimator(instance.value().ig, kTau, kSeed);
  estimator.Build();
  for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
    const VertexId seeds[] = {v};
    EXPECT_DOUBLE_EQ(view.value().Spread(seeds), estimator.Estimate(v))
        << "vertex " << v;
  }
}

TEST(QueryServiceTest, MultiSeedSpreadMatchesBruteForceCount) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  const InfluenceGraph& ig = *instance.value().ig;
  RrCollection collection = DirectCollection(ig, kTau);

  SplitMix64 rng(7);
  serve::QueryScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<VertexId> seeds(1 + trial % 6);
    for (VertexId& v : seeds) {
      v = static_cast<VertexId>(rng.Next() % ig.num_vertices());
    }
    EXPECT_EQ(view.value().CoveredCount(seeds, &scratch),
              collection.CountCovered(seeds));
    EXPECT_DOUBLE_EQ(view.value().Spread(seeds, &scratch),
                     static_cast<double>(ig.num_vertices()) *
                         static_cast<double>(collection.CountCovered(seeds)) /
                         static_cast<double>(kTau));
  }
}

TEST(QueryServiceTest, MarginalGainMatchesEstimatorUpdateProtocol) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());

  RisEstimator estimator(instance.value().ig, kTau, kSeed);
  estimator.Build();
  std::vector<VertexId> committed;
  for (VertexId next : {VertexId{0}, VertexId{33}, VertexId{5}}) {
    // Estimate(v) after Update(s in committed) IS the marginal gain of v
    // on top of `committed` — QueryView must agree for every candidate
    // (chosen seeds included: their gain is 0 both ways).
    for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(view.value().MarginalGain(committed, v),
                       estimator.Estimate(v))
          << "|S|=" << committed.size() << " v=" << v;
    }
    estimator.Update(next);
    committed.push_back(next);
  }
}

TEST(QueryServiceTest, TopKMatchesFreshGreedyMaxCoverageSolve) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  RrCollection collection = DirectCollection(*instance.value().ig, kTau);

  for (int k : {1, 4, 8}) {
    serve::TopKResult topk = view.value().TopK(k);
    MaxCoverageResult fresh = GreedyMaxCoverage(collection, k);
    EXPECT_EQ(topk.seeds, fresh.seeds) << "k=" << k;
    EXPECT_EQ(topk.covered, fresh.covered) << "k=" << k;

    // The estimates column is the marginal at selection time: replay the
    // seed order through a fresh estimator's Estimate/Update protocol.
    RisEstimator estimator(instance.value().ig, kTau, kSeed);
    estimator.Build();
    ASSERT_EQ(topk.estimates.size(), topk.seeds.size());
    for (std::size_t i = 0; i < topk.seeds.size(); ++i) {
      EXPECT_DOUBLE_EQ(topk.estimates[i], estimator.Estimate(topk.seeds[i]))
          << "k=" << k << " step " << i;
      estimator.Update(topk.seeds[i]);
    }
  }
}

TEST(QueryServiceTest, DeadlineCancelledTopKIsAByteIdenticalPrefix) {
  api::Session session;
  serve::QueryService service(&session);
  auto view = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // A token that fires after r cancelled() draws stops CELF at round r;
  // the served prefix must equal the direct k = r answer in every
  // column (seeds, estimates, covered) — degraded means SHORTER, never
  // DIFFERENT.
  for (int fire_after : {1, 3}) {
    int checks = 0;
    CancelToken cancel([&] { return ++checks >= fire_after; });
    serve::TopKResult degraded = view.value().TopK(8, &cancel);
    EXPECT_FALSE(degraded.completed);
    ASSERT_EQ(degraded.seeds.size(), static_cast<std::size_t>(fire_after));
    serve::TopKResult direct = view.value().TopK(fire_after);
    EXPECT_TRUE(direct.completed);
    EXPECT_EQ(degraded.seeds, direct.seeds);
    EXPECT_EQ(degraded.estimates, direct.estimates);
    EXPECT_EQ(degraded.covered, direct.covered);
  }

  // An unfired token is invisible.
  CancelToken idle;
  serve::TopKResult with = view.value().TopK(5, &idle);
  serve::TopKResult without = view.value().TopK(5);
  EXPECT_TRUE(with.completed);
  EXPECT_EQ(with.seeds, without.seeds);
}

TEST(QueryServiceTest, ConcurrentHammerIsIdenticalToSingleThreaded) {
  api::Session session;
  serve::QueryService service(&session);
  auto view_or = service.View(KarateUc01(), SpecAt(kTau));
  ASSERT_TRUE(view_or.ok()) << view_or.status().ToString();
  const serve::QueryView view = view_or.value();
  const VertexId n = view.num_vertices();

  // Deterministic mixed workload: spreads of 1..5 seeds and marginal
  // gains against 2-seed bases.
  const std::uint64_t kQueries = 4000;
  struct Query {
    bool gain = false;
    std::vector<VertexId> seeds;
    VertexId vertex = 0;
  };
  std::vector<Query> queries(kQueries);
  SplitMix64 rng(99);
  for (Query& q : queries) {
    q.gain = rng.Next() % 3 == 0;
    q.seeds.resize(1 + rng.Next() % (q.gain ? 2 : 5));
    for (VertexId& v : q.seeds) v = static_cast<VertexId>(rng.Next() % n);
    q.vertex = static_cast<VertexId>(rng.Next() % n);
  }
  auto answer = [&](const Query& q, serve::QueryScratch* scratch) {
    return q.gain ? view.MarginalGain(q.seeds, q.vertex, scratch)
                  : view.Spread(q.seeds, scratch);
  };

  std::vector<double> reference(kQueries);
  serve::QueryScratch scratch;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    reference[i] = answer(queries[i], &scratch);
  }

  const int kThreads = 4;
  std::vector<double> concurrent(kQueries);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      serve::QueryScratch local;
      // Strided assignment: all threads interleave over the whole range.
      for (std::uint64_t i = static_cast<std::uint64_t>(t); i < kQueries;
           i += kThreads) {
        concurrent[i] = answer(queries[i], &local);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(concurrent, reference);
}

TEST(QueryServiceTest, CacheHitsPrefixesAndCapacityUpgrades) {
  api::Session session;
  serve::QueryService service(&session);

  auto small = service.View(KarateUc01(), SpecAt(200));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(service.cache_stats().builds, 1u);

  // Same τ again: pure hit. Smaller τ: still a hit (prefix serving).
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(200)).ok());
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(64)).ok());
  EXPECT_EQ(service.cache_stats().builds, 1u);
  EXPECT_EQ(service.cache_stats().hits, 2u);

  const VertexId probe[] = {VertexId{0}};
  const double before = small.value().Spread(probe);

  // Larger τ: capacity upgrade (one rebuild), after which the small τ is
  // again served as a prefix of the NEW arena with unchanged answers.
  auto big = service.View(KarateUc01(), SpecAt(500));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  auto small_again = service.View(KarateUc01(), SpecAt(200));
  ASSERT_TRUE(small_again.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  EXPECT_DOUBLE_EQ(small_again.value().Spread(probe), before);
  // The pre-upgrade view stays alive and valid through its shared arena.
  EXPECT_DOUBLE_EQ(small.value().Spread(probe), before);
}

TEST(QueryServiceTest, CappedCacheEvictsAndRebuildsIdentically) {
  // A 1-byte budget can hold nothing: every new key evicts the previous
  // arena (always-admit keeps exactly the most recent one resident).
  api::SessionOptions options;
  options.arena_budget_bytes = 1;
  api::Session session(options);
  serve::QueryService service(&session);

  api::WorkloadSpec workload_a = KarateUc01();
  api::WorkloadSpec workload_b =
      api::WorkloadSpec::Dataset("Karate").Probability(ProbabilityModel::kIwc);

  auto a1 = service.View(workload_a, SpecAt(256));
  ASSERT_TRUE(a1.ok());
  const VertexId probe[] = {VertexId{2}};
  const double a_spread = a1.value().Spread(probe);
  EXPECT_EQ(service.cache_stats().resident_arenas, 1u);

  auto b = service.View(workload_b, SpecAt(256));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.cache_stats().evictions, 1u);
  EXPECT_EQ(service.cache_stats().resident_arenas, 1u);

  // The evicted arena must be rebuilt byte-identically on re-request...
  auto a2 = service.View(workload_a, SpecAt(256));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(service.cache_stats().builds, 3u);
  EXPECT_DOUBLE_EQ(a2.value().Spread(probe), a_spread);
  for (VertexId v = 0; v < a1.value().num_vertices(); ++v) {
    ASSERT_EQ(a2.value().arena().InvertedAll(v).size(),
              a1.value().arena().InvertedAll(v).size());
  }
  // ...and the evicted view itself stays queryable (shared ownership).
  EXPECT_DOUBLE_EQ(a1.value().Spread(probe), a_spread);
}

// ---------------------------------------------------------------------
// Resilient serving (ISSUE 9). Service-level outcomes depend on real
// timing (how far a build got before its deadline), so these tests are
// INVARIANT-style: every legal outcome is accepted, and each outcome's
// contract is checked exactly — a degraded answer must be byte-identical
// to a direct build at its served τ (prefix-closed streams make it an
// exact smaller answer, not an approximation), and nothing may abort.
// ---------------------------------------------------------------------

/// Installs a fault spec for one test body, uninstalling on scope exit
/// so a storm never leaks into later cases (or overrides a CI
/// SOLDIST_FAULT_SPEC preset for them).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const std::string& spec) {
    Status installed = store::InstallFaultInjector(spec);
    EXPECT_TRUE(installed.ok()) << installed.ToString();
  }
  ~ScopedFaultInjection() { store::UninstallFaultInjector(); }
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/query_resilience_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(QueryServiceResilienceTest, IoErrorStormAnswersMatchFaultFreeExactly) {
  // Fault-free reference (no persistence, no injector).
  std::vector<double> reference;
  {
    api::Session session;
    serve::QueryService service(&session);
    auto view = service.View(KarateUc01(), SpecAt(kTau));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
      const VertexId seeds[] = {v};
      reference.push_back(view.value().Spread(seeds));
    }
  }
  // A 10% IO-error storm over a persisting service: loads fail and fall
  // back to sampling, saves fail and serve unpersisted, retries fire —
  // and every answer is STILL byte-identical to fault-free, because no
  // deadline is set so no build is ever truncated.
  ScopedFaultInjection faults("error-rate=0.1,seed=7");
  for (int round = 0; round < 3; ++round) {
    api::SessionOptions options;
    options.arena_dir = FreshDir("storm");
    api::Session session(options);
    serve::QueryService service(&session);
    auto view = service.View(KarateUc01(), SpecAt(kTau));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_FALSE(view.value().degraded());
    EXPECT_EQ(view.value().served_tau(), kTau);
    for (VertexId v = 0; v < view.value().num_vertices(); ++v) {
      const VertexId seeds[] = {v};
      EXPECT_DOUBLE_EQ(view.value().Spread(seeds), reference[v])
          << "round " << round << " vertex " << v;
    }
  }
}

TEST(QueryServiceResilienceTest, DeadlineMissServesExactPrefixAnswer) {
  api::Session session;
  serve::QueryService service(&session);
  auto instance = session.ResolveWorkload(KarateUc01());
  ASSERT_TRUE(instance.ok());
  const InfluenceGraph& ig = *instance.value().ig;

  // Pre-populate a small prefix so SOME resident arena always exists.
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(100)).ok());

  // A τ far beyond what 1 ms of sampling completes: the build is
  // cancelled cooperatively and the view degrades to the completed
  // prefix. (On an absurdly fast machine the build may finish — then
  // the full-answer contract applies instead.)
  constexpr std::uint64_t kHugeTau = 200000;
  serve::QuerySpec spec = SpecAt(kHugeTau);
  spec.deadline_ms = 1;
  auto view = service.View(KarateUc01(), spec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const std::uint64_t served = view.value().served_tau();
  EXPECT_EQ(view.value().requested_tau(), kHugeTau);
  ASSERT_GE(served, 1u);
  ASSERT_LE(served, kHugeTau);
  EXPECT_EQ(view.value().degraded(), served < kHugeTau);
  if (view.value().degraded()) {
    serve::ResilienceStats stats = service.resilience_stats();
    EXPECT_GE(stats.degraded_answers, 1u);
    EXPECT_GE(stats.deadline_misses, 1u);
  }

  // The degraded answer is EXACT at its served τ: identical to a fresh
  // direct build of `served` sets from the same prefix-closed streams.
  RrCollection direct = DirectCollection(ig, served);
  serve::QueryScratch scratch;
  SplitMix64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<VertexId> seeds(1 + trial % 4);
    for (VertexId& v : seeds) {
      v = static_cast<VertexId>(rng.Next() % ig.num_vertices());
    }
    EXPECT_EQ(view.value().CoveredCount(seeds, &scratch),
              direct.CountCovered(seeds));
  }
}

TEST(QueryServiceResilienceTest, OverloadShedsOrDegradesNeverBlocksQueries) {
  api::SessionOptions options;
  options.max_inflight_builds = 1;  // one build slot, no queue
  api::Session session(options);
  serve::QueryService service(&session);

  // Resident prefix for degraded answers while the slot is busy.
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(100)).ok());

  std::atomic<bool> done{false};
  std::thread background([&] {
    // The background request can itself lose the slot race against a
    // foreground caller and get shed — retry until admitted.
    for (;;) {
      auto big = service.View(KarateUc01(), SpecAt(120000));
      if (big.ok()) break;
      EXPECT_EQ(big.status().code(), StatusCode::kUnavailable)
          << big.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
  });
  // Foreground requests racing the background build land in exactly one
  // of three legal states: shed (kUnavailable, nothing resident),
  // degraded from a resident prefix, or full (the build finished / this
  // caller won the slot). Anything else — a crash, a silently short
  // non-degraded answer — fails here.
  while (!done.load()) {
    auto view = service.View(KarateUc01(), SpecAt(80000));
    if (view.ok()) {
      EXPECT_LE(view.value().served_tau(), 80000u);
      EXPECT_EQ(view.value().degraded(),
                view.value().served_tau() < 80000u);
    } else {
      EXPECT_EQ(view.status().code(), StatusCode::kUnavailable)
          << view.status().ToString();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  background.join();

  // After the dust settles the full arena is resident: the same request
  // is now a plain hit, full and undegraded.
  auto settled = service.View(KarateUc01(), SpecAt(80000));
  ASSERT_TRUE(settled.ok()) << settled.status().ToString();
  EXPECT_FALSE(settled.value().degraded());
}

TEST(QueryServiceResilienceTest, ResilienceCountersStartZeroAndAreMonotone) {
  api::Session session;
  serve::QueryService service(&session);
  serve::ResilienceStats before = service.resilience_stats();
  EXPECT_EQ(before.degraded_answers, 0u);
  EXPECT_EQ(before.shed_requests, 0u);
  EXPECT_EQ(before.retries, 0u);
  EXPECT_EQ(before.deadline_misses, 0u);
  ASSERT_TRUE(service.View(KarateUc01(), SpecAt(64)).ok());
  serve::ResilienceStats after = service.resilience_stats();
  EXPECT_GE(after.degraded_answers, before.degraded_answers);
  EXPECT_GE(after.retries, before.retries);
}

TEST(QueryServiceTest, InvalidInputIsStatusNotAbort) {
  api::Session session;
  serve::QueryService service(&session);
  EXPECT_FALSE(
      service.View(api::WorkloadSpec::Dataset("NoSuchNetwork")).ok());
  serve::QuerySpec zero;
  zero.sample_number = 0;
  EXPECT_FALSE(service.View(KarateUc01(), zero).ok());
}

}  // namespace
}  // namespace soldist
