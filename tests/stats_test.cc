// Tests for entropy, seed-set distributions, influence distributions, and
// box statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/box_stats.h"
#include "stats/entropy.h"
#include "stats/influence_distribution.h"
#include "stats/seed_set_distribution.h"

namespace soldist {
namespace {

TEST(EntropyTest, DegenerateIsZero) {
  std::vector<std::uint64_t> counts{100};
  EXPECT_DOUBLE_EQ(ShannonEntropy(counts), 0.0);
}

TEST(EntropyTest, UniformIsLogK) {
  std::vector<std::uint64_t> counts{25, 25, 25, 25};
  EXPECT_NEAR(ShannonEntropy(counts), 2.0, 1e-12);
}

TEST(EntropyTest, ZerosIgnored) {
  std::vector<std::uint64_t> counts{50, 0, 50, 0};
  EXPECT_NEAR(ShannonEntropy(counts), 1.0, 1e-12);
}

TEST(EntropyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(ShannonEntropy(std::vector<std::uint64_t>{}), 0.0);
}

TEST(EntropyTest, SkewedBelowUniform) {
  std::vector<std::uint64_t> uniform{50, 50};
  std::vector<std::uint64_t> skewed{90, 10};
  EXPECT_LT(ShannonEntropy(skewed), ShannonEntropy(uniform));
}

TEST(EntropyTest, MaxEmpiricalEntropyMatchesPaper) {
  // Paper Section 5.1: T = 1,000 caps entropy at log2(1000) ≈ 9.97.
  EXPECT_NEAR(MaxEmpiricalEntropy(1000), 9.9658, 1e-3);
}

TEST(SeedSetDistributionTest, CountsAndOrderInsensitivity) {
  SeedSetDistribution dist;
  dist.Add({3, 1});
  dist.Add({1, 3});  // same set, different order
  dist.Add({2, 4});
  EXPECT_EQ(dist.num_trials(), 3u);
  EXPECT_EQ(dist.num_distinct_sets(), 2u);
  EXPECT_NEAR(dist.Probability({1, 3}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist.Probability({4, 2}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.Probability({9}), 0.0);
}

TEST(SeedSetDistributionTest, EntropyAndDegeneracy) {
  SeedSetDistribution dist;
  for (int i = 0; i < 10; ++i) dist.Add({7});
  EXPECT_TRUE(dist.IsDegenerate());
  EXPECT_DOUBLE_EQ(dist.Entropy(), 0.0);
  dist.Add({8});
  EXPECT_FALSE(dist.IsDegenerate());
  EXPECT_GT(dist.Entropy(), 0.0);
}

TEST(SeedSetDistributionTest, ModalSet) {
  SeedSetDistribution dist;
  dist.Add({1});
  dist.Add({2});
  dist.Add({2});
  EXPECT_EQ(dist.ModalSet(), (std::vector<VertexId>{2}));
  EXPECT_EQ(dist.ModalCount(), 2u);
}

TEST(InfluenceDistributionTest, MeanStdDev) {
  InfluenceDistribution dist;
  dist.AddAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.0);
  // Sample SD with n-1: sqrt(32/7).
  EXPECT_NEAR(dist.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(dist.Min(), 2.0);
  EXPECT_DOUBLE_EQ(dist.Max(), 9.0);
}

TEST(InfluenceDistributionTest, PercentileInterpolation) {
  InfluenceDistribution dist;
  dist.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(dist.Median(), 2.5);
  EXPECT_DOUBLE_EQ(dist.Percentile(25.0), 1.75);
}

TEST(InfluenceDistributionTest, SingleSample) {
  InfluenceDistribution dist;
  dist.Add(3.5);
  EXPECT_DOUBLE_EQ(dist.Median(), 3.5);
  EXPECT_DOUBLE_EQ(dist.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(dist.Percentile(99.0), 3.5);
}

TEST(InfluenceDistributionTest, FractionAtLeast) {
  InfluenceDistribution dist;
  dist.AddAll({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(3.0), 0.6);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(6.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(3.5), 0.4);
}

TEST(InfluenceDistributionTest, AddAfterQueryInvalidatesCache) {
  InfluenceDistribution dist;
  dist.AddAll({1.0, 2.0});
  EXPECT_DOUBLE_EQ(dist.Median(), 1.5);
  dist.Add(10.0);
  EXPECT_DOUBLE_EQ(dist.Median(), 2.0);
}

TEST(BoxStatsTest, QuartilesAndNotch) {
  InfluenceDistribution dist;
  for (int i = 1; i <= 101; ++i) dist.Add(static_cast<double>(i));
  NotchedBoxStats box = ComputeBoxStats(dist);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q1, 26.0);
  EXPECT_DOUBLE_EQ(box.q3, 76.0);
  EXPECT_DOUBLE_EQ(box.p1, 2.0);
  EXPECT_DOUBLE_EQ(box.p99, 100.0);
  double half_notch = 1.57 * 50.0 / std::sqrt(101.0);
  EXPECT_NEAR(box.notch_low, 51.0 - half_notch, 1e-9);
  EXPECT_NEAR(box.notch_high, 51.0 + half_notch, 1e-9);
  EXPECT_EQ(box.num_samples, 101u);
}

TEST(BoxStatsTest, NotchShrinksWithSamples) {
  InfluenceDistribution small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 5);
  for (int i = 0; i < 1000; ++i) large.Add(i % 5);
  NotchedBoxStats a = ComputeBoxStats(small);
  NotchedBoxStats b = ComputeBoxStats(large);
  EXPECT_GT(a.notch_high - a.notch_low, b.notch_high - b.notch_low);
}

}  // namespace
}  // namespace soldist
