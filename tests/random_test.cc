// Unit tests for the PRNG substrate: determinism, ranges, rough
// uniformity, and stream independence.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "random/rng.h"
#include "random/splitmix64.h"
#include "random/xoshiro256pp.h"

namespace soldist {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownReferenceValue) {
  // Reference: first output of SplitMix64 for seed 0 per Vigna's code.
  SplitMix64 g(0);
  EXPECT_EQ(g.Next(), 0xe220a8397b1dcdafULL);
}

TEST(DeriveSeedTest, DistinctIndexesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(DeriveSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(DeriveSeed(7, 3), DeriveSeed(7, 3));
  EXPECT_NE(DeriveSeed(7, 3), DeriveSeed(8, 3));
  EXPECT_NE(DeriveSeed(7, 3), DeriveSeed(7, 4));
}

TEST(Xoshiro256ppTest, DeterministicForSameSeed) {
  Xoshiro256pp a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256ppTest, JumpChangesStream) {
  Xoshiro256pp a(9), b(9);
  b.Jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UnitRealInHalfOpenInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UnitReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UnitRealMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.UnitReal();
  // SD of the mean is ~1/sqrt(12*kSamples) ≈ 0.0009; 5 sigma tolerance.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(4);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> buckets(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++buckets[rng.UniformInt(kBound)];
  // Chi-squared with 9 dof: 99.9% quantile ≈ 27.9.
  double expected = static_cast<double>(kSamples) / kBound;
  double chi2 = 0.0;
  for (int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  constexpr int kSamples = 200000;
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (rng.Bernoulli(p)) ++hits;
    }
    double rate = static_cast<double>(hits) / kSamples;
    // 5-sigma band: sigma = sqrt(p(1-p)/kSamples) <= 0.0011.
    EXPECT_NEAR(rate, p, 0.006) << "p=" << p;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));  // UnitReal() < 0 never holds
  }
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    if (rng.Bernoulli(1.0)) ++hits;
  }
  EXPECT_EQ(hits, 100);  // UnitReal() < 1 always holds
}

TEST(RngTest, EngineUsableWithStdShuffle) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  std::shuffle(v.begin(), v.end(), rng.engine());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace soldist
