// Tests for RR-set sampling: the Borgs et al. identity
// Pr[R ∩ S != ∅] = Inf(S)/n, EPT accounting, and the collection/index.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "model/influence_graph.h"
#include "oracle/exact_oracle.h"
#include "sim/rr_sampler.h"

namespace soldist {
namespace {

InfluenceGraph SingleEdge(double p) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {p});
}

InfluenceGraph Diamond(double p) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, p));
}

TEST(RrSamplerTest, TargetAlwaysInSet) {
  InfluenceGraph ig = Diamond(0.5);
  RrSampler sampler(&ig);
  Rng target_rng(1), coin_rng(2);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (int i = 0; i < 200; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    ASSERT_FALSE(rr_set.empty());
    // The target is the first entry by construction.
    EXPECT_LT(rr_set.front(), 4u);
  }
}

TEST(RrSamplerTest, HitProbabilityEqualsInfluenceOverN) {
  // Borgs et al. Observation 3.2 on the diamond with p = 0.5, S = {0}.
  InfluenceGraph ig = Diamond(0.5);
  double expected = ExactInfluence(ig, std::vector<VertexId>{0}) / 4.0;
  RrSampler sampler(&ig);
  Rng target_rng(3), coin_rng(4);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    for (VertexId v : rr_set) {
      if (v == 0) {
        ++hits;
        break;
      }
    }
  }
  double rate = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(rate, expected, 0.006);
}

TEST(RrSamplerTest, MeanSizeIsEpt) {
  // EPT = Σ_v Inf(v) / n. Single edge p=0.4: Inf(0)=1.4, Inf(1)=1,
  // EPT = 1.2.
  InfluenceGraph ig = SingleEdge(0.4);
  RrSampler sampler(&ig);
  Rng target_rng(5), coin_rng(6);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
  }
  double mean_size =
      static_cast<double>(counters.sample_vertices) / kSamples;
  EXPECT_NEAR(mean_size, 1.2, 0.01);
}

TEST(RrSamplerTest, EptBoundedByOnePlusMTilde) {
  // Paper appendix: EPT <= 1 + m̃ — check the empirical mean obeys it.
  InfluenceGraph ig = Diamond(0.6);
  RrSampler sampler(&ig);
  Rng target_rng(7), coin_rng(8);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
  }
  double mean_size =
      static_cast<double>(counters.sample_vertices) / kSamples;
  EXPECT_LE(mean_size, 1.0 + ig.SumProbabilities() + 0.05);
}

TEST(RrSamplerTest, WeightAccountingIsSumOfInDegrees) {
  // p = 1 on the diamond: an RR set for target 3 is {3,1,2,0}; its weight
  // Σ d−(v) = 2 + 1 + 1 + 0 = 4 edges examined.
  InfluenceGraph ig = Diamond(1.0);
  RrSampler sampler(&ig);
  Rng coin_rng(9);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  sampler.SampleForTarget(3, &coin_rng, &rr_set, &counters);
  EXPECT_EQ(rr_set.size(), 4u);
  EXPECT_EQ(counters.vertices, 4u);
  EXPECT_EQ(counters.edges, 4u);
  EXPECT_EQ(counters.sample_vertices, 4u);
}

TEST(RrSamplerTest, FixedTargetSourceVertex) {
  // Target 0 in the diamond has no in-edges: RR set is always {0}.
  InfluenceGraph ig = Diamond(1.0);
  RrSampler sampler(&ig);
  Rng coin_rng(10);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  sampler.SampleForTarget(0, &coin_rng, &rr_set, &counters);
  EXPECT_EQ(rr_set, (std::vector<VertexId>{0}));
}

TEST(RrCollectionTest, IndexAndCoverage) {
  RrCollection collection(4);
  collection.Add({0, 1});
  collection.Add({2});
  collection.Add({1, 2, 3});
  collection.BuildIndex();
  EXPECT_EQ(collection.size(), 3u);
  EXPECT_EQ(collection.total_entries(), 6u);
  EXPECT_NEAR(collection.MeanSize(), 2.0, 1e-12);

  auto list1 = collection.InvertedList(1);
  EXPECT_EQ(std::vector<std::uint64_t>(list1.begin(), list1.end()),
            (std::vector<std::uint64_t>{0, 2}));

  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{0}), 1u);
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{1}), 2u);
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{1, 2}), 3u);
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{}), 0u);
}

TEST(RrCollectionTest, CoverageCountsSetOnce) {
  RrCollection collection(3);
  collection.Add({0, 1, 2});
  collection.BuildIndex();
  // All three seeds hit the same single set: covered = 1, not 3.
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{0, 1, 2}), 1u);
}

TEST(RrCollectionTest, RepeatedQueriesConsistent) {
  RrCollection collection(2);
  collection.Add({0});
  collection.Add({1});
  collection.BuildIndex();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{0}), 1u);
  }
}

}  // namespace
}  // namespace soldist
