// Tests for the deterministic chunked sampling engine: the output of any
// engine-routed build must be a pure function of (master seed, count,
// chunk_size) — byte-identical for 1 or N worker threads — and the bulk
// RrCollection::Merge path must agree with the per-set Add path.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/factory.h"
#include "core/greedy.h"
#include "core/imm.h"
#include "core/oneshot.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "core/tim.h"
#include "exp/trial_runner.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "random/splitmix64.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

/// Engine running chunks on exactly one worker thread (still the chunked
/// deterministic streams, unlike the default SamplingOptions{}).
SamplingOptions OneThreadEngine(ThreadPool* one_thread_pool,
                                std::uint64_t chunk_size = 64) {
  SamplingOptions options;
  options.num_threads = 1;
  options.chunk_size = chunk_size;
  options.pool = one_thread_pool;
  return options;
}

SamplingOptions FourThreadEngine(std::uint64_t chunk_size = 64) {
  SamplingOptions options;
  options.num_threads = 4;
  options.chunk_size = chunk_size;
  return options;
}

TEST(SamplingOptionsTest, DefaultIsLegacySequential) {
  SamplingOptions options;
  EXPECT_FALSE(options.UseEngine());
  EXPECT_TRUE(FourThreadEngine().UseEngine());
  ThreadPool pool(1);
  EXPECT_TRUE(OneThreadEngine(&pool).UseEngine());
}

TEST(SamplingEngineTest, ChunkSeedsDependOnlyOnMasterAndIndex) {
  SamplingOptions options;
  options.chunk_size = 10;
  SamplingEngine engine(options);
  std::vector<SamplingEngine::Chunk> chunks;
  engine.Run(77, 35, [&](const SamplingEngine::Chunk& c, std::size_t slot) {
    EXPECT_EQ(slot, 0u);  // inline path uses slot 0
    chunks.push_back(c);
  });
  ASSERT_EQ(chunks.size(), 4u);
  for (std::uint64_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].index, c);
    EXPECT_EQ(chunks[c].begin, c * 10);
    EXPECT_EQ(chunks[c].end, std::min<std::uint64_t>((c + 1) * 10, 35));
    EXPECT_EQ(chunks[c].seed, DeriveSeed(77, c));
  }
}

TEST(SamplingEngineTest, RunCoversEveryIndexOnceAtAnyWorkerCount) {
  for (int workers : {1, 4}) {
    SamplingOptions options;
    options.num_threads = workers;
    options.chunk_size = 7;
    SamplingEngine engine(options);
    std::vector<std::atomic<int>> hits(100);
    engine.Run(1, 100,
               [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
      EXPECT_LT(slot, engine.num_workers());
      for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << workers;
  }
}

TEST(SamplingEngineTest, RrShardsIdenticalAcrossWorkerCounts) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  SamplingEngine sequentialish(OneThreadEngine(&one, 32));
  SamplingEngine parallel(FourThreadEngine(32));
  auto a = SampleRrShards(ig, 5, 500, &sequentialish);
  auto b = SampleRrShards(ig, 5, 500, &parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].flat, b[s].flat);
    EXPECT_EQ(a[s].offsets, b[s].offsets);
    EXPECT_EQ(a[s].counters.vertices, b[s].counters.vertices);
    EXPECT_EQ(a[s].counters.edges, b[s].counters.edges);
    EXPECT_EQ(a[s].counters.sample_vertices, b[s].counters.sample_vertices);
  }
}

TEST(RrCollectionTest, MergeMatchesPerSetAdd) {
  InfluenceGraph ig = KarateUc01();
  SamplingEngine engine(FourThreadEngine(16));
  auto shards = SampleRrShards(ig, 9, 200, &engine);

  RrCollection merged(ig.num_vertices());
  merged.Merge(shards);
  merged.BuildIndex();

  RrCollection added(ig.num_vertices());
  for (const RrShard& shard : shards) {
    for (std::uint64_t s = 0; s < shard.num_sets(); ++s) {
      added.Add(std::vector<VertexId>(
          shard.flat.begin() + static_cast<std::ptrdiff_t>(shard.offsets[s]),
          shard.flat.begin() +
              static_cast<std::ptrdiff_t>(shard.offsets[s + 1])));
    }
  }
  added.BuildIndex();

  ASSERT_EQ(merged.size(), added.size());
  ASSERT_EQ(merged.total_entries(), added.total_entries());
  for (std::uint64_t s = 0; s < merged.size(); ++s) {
    ASSERT_EQ(std::vector<VertexId>(merged.Set(s).begin(),
                                    merged.Set(s).end()),
              std::vector<VertexId>(added.Set(s).begin(),
                                    added.Set(s).end()));
  }
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    std::vector<std::uint64_t> lm(merged.InvertedList(v).begin(),
                                  merged.InvertedList(v).end());
    std::vector<std::uint64_t> la(added.InvertedList(v).begin(),
                                  added.InvertedList(v).end());
    EXPECT_EQ(lm, la) << "vertex " << v;
  }
}

TEST(MergeCountersTest, SumsAllShards) {
  std::vector<TraversalCounters> parts(3);
  parts[0].vertices = 1;
  parts[1].edges = 2;
  parts[2].sample_vertices = 3;
  parts[2].sample_edges = 4;
  TraversalCounters total = MergeCounters(parts);
  EXPECT_EQ(total.vertices, 1u);
  EXPECT_EQ(total.edges, 2u);
  EXPECT_EQ(total.sample_vertices, 3u);
  EXPECT_EQ(total.sample_edges, 4u);
}

/// Runs one greedy selection with the given estimator options and returns
/// (sorted seed set, counters).
template <typename MakeFn>
std::pair<std::vector<VertexId>, TraversalCounters> GreedyWith(
    const InfluenceGraph& ig, MakeFn make, int k) {
  auto estimator = make();
  Rng tie_rng(123);
  GreedyRunResult run = RunGreedy(estimator.get(), ig.num_vertices(), k,
                                  &tie_rng);
  return {run.SortedSeedSet(), estimator->counters()};
}

void ExpectCountersEq(const TraversalCounters& a, const TraversalCounters& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.sample_vertices, b.sample_vertices);
  EXPECT_EQ(a.sample_edges, b.sample_edges);
}

TEST(SamplingEngineTest, RisBuildIdenticalFor1And4Threads) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  auto [seeds1, counters1] = GreedyWith(ig, [&] {
    return std::make_unique<RisEstimator>(&ig, 2000, 11,
                                          OneThreadEngine(&one));
  }, 3);
  auto [seeds4, counters4] = GreedyWith(ig, [&] {
    return std::make_unique<RisEstimator>(&ig, 2000, 11, FourThreadEngine());
  }, 3);
  EXPECT_EQ(seeds1, seeds4);
  ExpectCountersEq(counters1, counters4);
}

TEST(SamplingEngineTest, SnapshotBuildIdenticalFor1And4Threads) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  auto [seeds1, counters1] = GreedyWith(ig, [&] {
    return std::make_unique<SnapshotEstimator>(
        &ig, 64, 13, SnapshotEstimator::Mode::kResidual,
        OneThreadEngine(&one, 16));
  }, 3);
  auto [seeds4, counters4] = GreedyWith(ig, [&] {
    return std::make_unique<SnapshotEstimator>(
        &ig, 64, 13, SnapshotEstimator::Mode::kResidual,
        FourThreadEngine(16));
  }, 3);
  EXPECT_EQ(seeds1, seeds4);
  ExpectCountersEq(counters1, counters4);
}

TEST(SamplingEngineTest, OneshotEstimatesIdenticalFor1And4Threads) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  OneshotEstimator a(&ig, 512, 17, OneThreadEngine(&one, 64));
  OneshotEstimator b(&ig, 512, 17, FourThreadEngine(64));
  a.Build();
  b.Build();
  for (VertexId v = 0; v < 8; ++v) {
    ASSERT_DOUBLE_EQ(a.Estimate(v), b.Estimate(v)) << "vertex " << v;
  }
  a.Update(0);
  b.Update(0);
  ASSERT_DOUBLE_EQ(a.Estimate(5), b.Estimate(5));
  ExpectCountersEq(a.counters(), b.counters());
}

TEST(SamplingEngineTest, FactoryRoutesOptionsToAllThreeApproaches) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    auto [seeds1, counters1] = GreedyWith(ig, [&] {
      return MakeEstimator(ModelInstance::Ic(&ig), approach, 256, 19,
                           SnapshotEstimator::Mode::kResidual,
                           OneThreadEngine(&one));
    }, 2);
    auto [seeds4, counters4] = GreedyWith(ig, [&] {
      return MakeEstimator(ModelInstance::Ic(&ig), approach, 256, 19,
                           SnapshotEstimator::Mode::kResidual,
                           FourThreadEngine());
    }, 2);
    EXPECT_EQ(seeds1, seeds4) << ApproachName(approach);
    ExpectCountersEq(counters1, counters4);
  }
}

TEST(SamplingEngineTest, ImmAndTimIdenticalFor1And4Threads) {
  InfluenceGraph ig = KarateUc01();
  ThreadPool one(1);
  ImmParams imm_params;
  imm_params.k = 3;
  imm_params.epsilon = 0.3;
  ImmResult imm1 = RunImm(ig, imm_params, 23, OneThreadEngine(&one));
  ImmResult imm4 = RunImm(ig, imm_params, 23, FourThreadEngine());
  EXPECT_EQ(imm1.seeds, imm4.seeds);
  EXPECT_EQ(imm1.theta, imm4.theta);
  EXPECT_DOUBLE_EQ(imm1.estimated_influence, imm4.estimated_influence);

  TimParams tim_params;
  tim_params.k = 2;
  tim_params.epsilon = 0.5;
  TimResult tim1 = RunTimPlus(ig, tim_params, 29, OneThreadEngine(&one));
  TimResult tim4 = RunTimPlus(ig, tim_params, 29, FourThreadEngine());
  EXPECT_EQ(tim1.greedy.seeds, tim4.greedy.seeds);
  EXPECT_EQ(tim1.theta, tim4.theta);
  EXPECT_DOUBLE_EQ(tim1.kpt, tim4.kpt);
}

TEST(SamplingEngineTest, RunTrialsSampleParallelIdenticalToOneThread) {
  InfluenceGraph ig = KarateUc01();
  TrialConfig config;
  config.approach = Approach::kRis;
  config.sample_number = 512;
  config.k = 2;
  config.trials = 6;
  config.master_seed = 31;

  ThreadPool one(1);
  TrialConfig config1 = config;
  config1.sampling = OneThreadEngine(&one);
  TrialResult r1 = RunTrials(ig, config1, nullptr);

  ThreadPool four(4);
  TrialConfig config4 = config;
  config4.sampling.num_threads = 0;  // engine on the shared pool
  config4.sampling.chunk_size = 64;
  TrialResult r4 = RunTrials(ig, config4, &four);

  EXPECT_EQ(r1.seed_sets, r4.seed_sets);
  ExpectCountersEq(r1.total_counters, r4.total_counters);
}

TEST(SamplingEngineTest, TrialParallelAndSequentialAgree) {
  // Trial-level parallelism (legacy sampling) must also be schedule-free:
  // per-trial seeds are derived from (master, t) regardless of workers.
  InfluenceGraph ig = KarateUc01();
  TrialConfig config;
  config.approach = Approach::kSnapshot;
  config.sample_number = 16;
  config.k = 2;
  config.trials = 8;
  config.master_seed = 37;
  TrialResult sequential = RunTrials(ig, config, nullptr);
  ThreadPool four(4);
  TrialResult parallel = RunTrials(ig, config, &four);
  EXPECT_EQ(sequential.seed_sets, parallel.seed_sets);
  ExpectCountersEq(sequential.total_counters, parallel.total_counters);
}

TEST(RisEstimatorTest, ChosenSeedScoresZeroAfterUpdate) {
  // Regression: Estimate(v) of an already-chosen seed must return 0 —
  // Update eagerly decrements the coverage counts of every member of the
  // sets it deactivates, so a chosen seed never keeps a stale score.
  InfluenceGraph ig = KarateUc01();
  RisEstimator estimator(&ig, 1000, 41);
  Rng tie_rng(1);
  // RunGreedy calls Build() itself.
  GreedyRunResult run = RunGreedy(&estimator, ig.num_vertices(), 3, &tie_rng);
  for (VertexId seed : run.seeds) {
    EXPECT_DOUBLE_EQ(estimator.Estimate(seed), 0.0) << "seed " << seed;
  }
}

TEST(RisEstimatorTest, ChosenSeedScoresZeroOnEnginePath) {
  InfluenceGraph ig = KarateUc01();
  RisEstimator estimator(&ig, 1000, 43, FourThreadEngine());
  estimator.Build();
  double before = estimator.Estimate(0);
  EXPECT_GT(before, 0.0);
  estimator.Update(0);
  EXPECT_DOUBLE_EQ(estimator.Estimate(0), 0.0);
}

}  // namespace
}  // namespace soldist
