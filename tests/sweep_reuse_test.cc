// The sweep-reuse acceptance contract: a RIS sample-number ladder run
// with reuse ON (one per-trial RR arena serving prefix views) is
// byte-identical — seed sets, counters, distributions — to reuse OFF
// (same prefix-closed streams, fresh sampling per cell), for IC and LT
// and for worker counts 1/2/4. kLegacy stays available and untouched.

#include <gtest/gtest.h>

#include <vector>

#include "exp/instance_registry.h"
#include "exp/sweep.h"
#include "exp/trial_runner.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size = 64) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

void ExpectResultsEq(const std::vector<TrialResult>& a,
                     const std::vector<TrialResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    EXPECT_EQ(a[l].seed_sets, b[l].seed_sets) << "cell " << l;
    EXPECT_EQ(a[l].total_counters.vertices, b[l].total_counters.vertices);
    EXPECT_EQ(a[l].total_counters.edges, b[l].total_counters.edges);
    EXPECT_EQ(a[l].total_counters.sample_vertices,
              b[l].total_counters.sample_vertices);
    EXPECT_EQ(a[l].total_counters.sample_edges,
              b[l].total_counters.sample_edges);
    EXPECT_EQ(a[l].distribution.counts(), b[l].distribution.counts());
  }
}

TrialLadderConfig LadderConfig(bool reuse, const SamplingOptions& sampling) {
  TrialLadderConfig config;
  config.approach = Approach::kRis;
  config.sample_numbers = {1, 2, 4, 8, 16, 23, 64, 128};  // incl. non-2^e
  config.k = 2;
  config.trials = 8;
  config.master_seed = 40;
  config.sampling = sampling;
  config.reuse = reuse;
  return config;
}

TEST(SweepReuseTest, LadderReuseOnEqualsOffIc) {
  InfluenceGraph ig = KarateUc01();
  ModelInstance instance = ModelInstance::Ic(&ig);
  for (int threads : {1, 2, 4}) {
    auto on = RunTrialLadder(instance, LadderConfig(true, Threads(threads)),
                             nullptr);
    auto off = RunTrialLadder(instance,
                              LadderConfig(false, Threads(threads)), nullptr);
    ExpectResultsEq(on, off);
  }
}

TEST(SweepReuseTest, LadderReuseOnEqualsOffLt) {
  InstanceRegistry registry(42);
  auto lt = registry.GetModelInstance("Karate", ProbabilityModel::kIwc,
                                      DiffusionModel::kLt);
  ASSERT_TRUE(lt.ok());
  for (int threads : {1, 2, 4}) {
    auto on = RunTrialLadder(lt.value(),
                             LadderConfig(true, Threads(threads)), nullptr);
    auto off = RunTrialLadder(lt.value(),
                              LadderConfig(false, Threads(threads)), nullptr);
    ExpectResultsEq(on, off);
  }
}

TEST(SweepReuseTest, LadderIsWorkerCountInvariant) {
  InfluenceGraph ig = KarateUc01();
  ModelInstance instance = ModelInstance::Ic(&ig);
  auto reference =
      RunTrialLadder(instance, LadderConfig(true, Threads(2)), nullptr);
  auto wider =
      RunTrialLadder(instance, LadderConfig(true, Threads(4)), nullptr);
  ExpectResultsEq(reference, wider);
}

TEST(SweepReuseTest, RunSweepReuseOnEqualsOff) {
  InfluenceGraph ig = KarateUc01();
  RrOracle oracle(&ig, 3000, 9);
  SweepConfig config;
  config.approach = Approach::kRis;
  config.k = 2;
  config.trials = 6;
  config.master_seed = 11;
  config.min_exponent = 0;
  config.max_exponent = 7;

  config.reuse = SweepReuse::kOn;
  auto on = RunSweep(ig, oracle, config, nullptr);
  config.reuse = SweepReuse::kOff;
  auto off = RunSweep(ig, oracle, config, nullptr);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t l = 0; l < on.size(); ++l) {
    EXPECT_EQ(on[l].sample_number, off[l].sample_number);
    EXPECT_EQ(on[l].result.seed_sets, off[l].result.seed_sets);
    EXPECT_EQ(on[l].entropy, off[l].entropy);
    EXPECT_EQ(on[l].summary.mean_influence, off[l].summary.mean_influence);
    EXPECT_EQ(on[l].summary.mean_sample_size,
              off[l].summary.mean_sample_size);
  }

  // kLegacy is a different stream family: same shape, still valid cells.
  config.reuse = SweepReuse::kLegacy;
  auto legacy = RunSweep(ig, oracle, config, nullptr);
  ASSERT_EQ(legacy.size(), on.size());
  for (std::size_t l = 0; l < legacy.size(); ++l) {
    EXPECT_EQ(legacy[l].sample_number, on[l].sample_number);
    EXPECT_EQ(legacy[l].result.seed_sets.size(),
              on[l].result.seed_sets.size());
  }
}

TEST(SweepReuseTest, OneshotIgnoresReuse) {
  // Oneshot has no reusable sample collection: the reuse field must
  // leave it on the legacy path (byte-identical to kLegacy).
  InfluenceGraph ig = KarateUc01();
  RrOracle oracle(&ig, 2000, 9);
  SweepConfig config;
  config.approach = Approach::kOneshot;
  config.k = 1;
  config.trials = 4;
  config.master_seed = 3;
  config.max_exponent = 4;
  config.reuse = SweepReuse::kOn;
  auto with_reuse = RunSweep(ig, oracle, config, nullptr);
  config.reuse = SweepReuse::kLegacy;
  auto legacy = RunSweep(ig, oracle, config, nullptr);
  ASSERT_EQ(with_reuse.size(), legacy.size());
  for (std::size_t l = 0; l < legacy.size(); ++l) {
    EXPECT_EQ(with_reuse[l].result.seed_sets, legacy[l].result.seed_sets);
  }
}

TEST(SweepReuseTest, SnapshotSweepReuseOnEqualsOff) {
  // Snapshot sweeps take the trial-major ladder: condensed mode serves
  // every cell from a per-trial SnapshotArena under kOn, the non-arena
  // modes downgrade kOn to kOff mechanics — either way kOn must be
  // byte-identical to kOff (fresh per-cell sampling, same streams).
  InfluenceGraph ig = KarateUc01();
  RrOracle oracle(&ig, 2000, 9);
  for (SnapshotEstimator::Mode mode : {SnapshotEstimator::Mode::kResidual,
                                       SnapshotEstimator::Mode::kCondensed}) {
    SweepConfig config;
    config.approach = Approach::kSnapshot;
    config.k = 2;
    config.trials = 4;
    config.master_seed = 3;
    config.max_exponent = 4;
    config.snapshot_mode = mode;
    config.reuse = SweepReuse::kOn;
    auto on = RunSweep(ig, oracle, config, nullptr);
    config.reuse = SweepReuse::kOff;
    auto off = RunSweep(ig, oracle, config, nullptr);
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t l = 0; l < on.size(); ++l) {
      EXPECT_EQ(on[l].result.seed_sets, off[l].result.seed_sets)
          << SnapshotModeName(mode) << " cell " << l;
      EXPECT_EQ(on[l].result.total_counters.vertices,
                off[l].result.total_counters.vertices);
      EXPECT_EQ(on[l].result.total_counters.sample_edges,
                off[l].result.total_counters.sample_edges);
      EXPECT_EQ(on[l].entropy, off[l].entropy);
      EXPECT_EQ(on[l].summary.mean_influence, off[l].summary.mean_influence);
    }
  }
}

TEST(SweepReuseTest, ParseSweepReuseFlagValues) {
  EXPECT_EQ(ParseSweepReuse("on").value(), SweepReuse::kOn);
  EXPECT_EQ(ParseSweepReuse("off").value(), SweepReuse::kOff);
  EXPECT_EQ(ParseSweepReuse("legacy").value(), SweepReuse::kLegacy);
  EXPECT_FALSE(ParseSweepReuse("sometimes").ok());
  EXPECT_EQ(SweepReuseName(SweepReuse::kOn), "on");
  EXPECT_EQ(SweepReuseName(SweepReuse::kOff), "off");
  EXPECT_EQ(SweepReuseName(SweepReuse::kLegacy), "legacy");
}

}  // namespace
}  // namespace soldist
