// Tests for the three estimators behind Build/Estimate/Update.

#include <gtest/gtest.h>

#include "core/oneshot.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "exp/trial_runner.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/exact_oracle.h"

namespace soldist {
namespace {

InfluenceGraph Diamond(double p) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, p));
}

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

TEST(OneshotEstimatorTest, UnbiasedAgainstExactInfluence) {
  InfluenceGraph ig = Diamond(0.5);
  double exact = ExactInfluence(ig, std::vector<VertexId>{0});
  OneshotEstimator estimator(&ig, 200000, /*seed=*/1);
  estimator.Build();
  EXPECT_NEAR(estimator.Estimate(0), exact, 0.02);
}

TEST(OneshotEstimatorTest, EstimateAfterUpdateUsesSeedSet) {
  InfluenceGraph ig = Diamond(1.0);
  OneshotEstimator estimator(&ig, 10, /*seed=*/2);
  estimator.Build();
  // p=1: Inf({0}) = 4 deterministic.
  EXPECT_DOUBLE_EQ(estimator.Estimate(0), 4.0);
  estimator.Update(0);
  // Inf({0, 3}) still 4 (3 already reachable).
  EXPECT_DOUBLE_EQ(estimator.Estimate(3), 4.0);
}

TEST(OneshotEstimatorTest, PropertiesAndCounters) {
  InfluenceGraph ig = Diamond(0.5);
  OneshotEstimator estimator(&ig, 100, /*seed=*/3);
  estimator.Build();
  EXPECT_FALSE(estimator.EstimatesAreMarginal());
  EXPECT_EQ(estimator.sample_number(), 100u);
  EXPECT_EQ(estimator.name(), "Oneshot");
  EXPECT_EQ(estimator.counters().vertices, 0u);  // nothing yet
  estimator.Estimate(0);
  EXPECT_GE(estimator.counters().vertices, 100u);  // >= 1 per simulation
  EXPECT_EQ(estimator.counters().sample_vertices, 0u);
  EXPECT_EQ(estimator.counters().sample_edges, 0u);
}

TEST(SnapshotEstimatorTest, NaiveAndResidualAgreeExactly) {
  // Same seed -> identical snapshots -> the two strategies must return
  // bit-identical estimates through a whole greedy-like sequence
  // (Section 3.4.3: the reduction does not disturb estimates).
  InfluenceGraph ig = KarateUc01();
  SnapshotEstimator naive(&ig, 16, /*seed=*/7, SnapshotEstimator::Mode::kNaive);
  SnapshotEstimator residual(&ig, 16, /*seed=*/7,
                             SnapshotEstimator::Mode::kResidual);
  naive.Build();
  residual.Build();
  for (int round = 0; round < 3; ++round) {
    for (VertexId v = 0; v < ig.num_vertices(); ++v) {
      ASSERT_DOUBLE_EQ(naive.Estimate(v), residual.Estimate(v))
          << "round " << round << " vertex " << v;
    }
    VertexId next = static_cast<VertexId>(round * 7 + 1);
    naive.Update(next);
    residual.Update(next);
  }
}

TEST(SnapshotEstimatorTest, UnbiasedAgainstExactInfluence) {
  InfluenceGraph ig = Diamond(0.5);
  double exact = ExactInfluence(ig, std::vector<VertexId>{0});
  SnapshotEstimator estimator(&ig, 200000, /*seed=*/8);
  estimator.Build();
  EXPECT_NEAR(estimator.Estimate(0), exact, 0.02);
}

TEST(SnapshotEstimatorTest, MarginalsShrinkAfterUpdate) {
  // Submodularity of the snapshot estimator (Section 3.4.1): marginals
  // w.r.t. a larger seed set never grow.
  InfluenceGraph ig = KarateUc01();
  SnapshotEstimator estimator(&ig, 64, /*seed=*/9);
  estimator.Build();
  std::vector<double> before(ig.num_vertices());
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    before[v] = estimator.Estimate(v);
  }
  estimator.Update(0);
  for (VertexId v = 1; v < ig.num_vertices(); ++v) {
    EXPECT_LE(estimator.Estimate(v), before[v] + 1e-12) << "vertex " << v;
  }
}

TEST(SnapshotEstimatorTest, MarginalOfSelectedSeedIsZero) {
  InfluenceGraph ig = Diamond(1.0);
  SnapshotEstimator estimator(&ig, 4, /*seed=*/10);
  estimator.Build();
  estimator.Update(0);
  // Everything is reachable from 0 at p=1: all marginals vanish.
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(estimator.Estimate(v), 0.0);
  }
}

TEST(SnapshotEstimatorTest, SampleSizeIsLiveEdges) {
  InfluenceGraph ig = Diamond(1.0);
  SnapshotEstimator estimator(&ig, 5, /*seed=*/11);
  estimator.Build();
  // p=1: every snapshot stores all 4 edges.
  EXPECT_EQ(estimator.counters().sample_edges, 20u);
  EXPECT_EQ(estimator.counters().sample_vertices, 0u);
}

TEST(RisEstimatorTest, UnbiasedAgainstExactInfluence) {
  InfluenceGraph ig = Diamond(0.5);
  double exact = ExactInfluence(ig, std::vector<VertexId>{0});
  RisEstimator estimator(&ig, 200000, /*seed=*/12);
  estimator.Build();
  EXPECT_NEAR(estimator.Estimate(0), exact, 0.02);
}

TEST(RisEstimatorTest, UpdateRemovesCoveredSets) {
  InfluenceGraph ig = Diamond(1.0);
  RisEstimator estimator(&ig, 1000, /*seed=*/13);
  estimator.Build();
  // p=1: vertex 0 reaches everything, so 0 is in every RR set;
  // Estimate(0) = n = 4 and after Update(0) all marginals are zero.
  EXPECT_DOUBLE_EQ(estimator.Estimate(0), 4.0);
  estimator.Update(0);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(estimator.Estimate(v), 0.0);
  }
}

TEST(RisEstimatorTest, MarginalsShrinkAfterUpdate) {
  InfluenceGraph ig = KarateUc01();
  RisEstimator estimator(&ig, 4096, /*seed=*/14);
  estimator.Build();
  std::vector<double> before(ig.num_vertices());
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    before[v] = estimator.Estimate(v);
  }
  estimator.Update(5);
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    if (v == 5) continue;
    EXPECT_LE(estimator.Estimate(v), before[v] + 1e-12);
  }
}

TEST(RisEstimatorTest, EmpiricalEptAndSampleSize) {
  InfluenceGraph ig = Diamond(0.5);
  RisEstimator estimator(&ig, 10000, /*seed=*/15);
  estimator.Build();
  EXPECT_EQ(estimator.counters().sample_vertices,
            static_cast<std::uint64_t>(estimator.EmpiricalEpt() * 10000 + 0.5));
  EXPECT_EQ(estimator.counters().sample_edges, 0u);
  EXPECT_GT(estimator.EmpiricalEpt(), 1.0);  // target plus sometimes more
}

TEST(MakeEstimatorTest, FactoryProducesEachApproach) {
  InfluenceGraph ig = Diamond(0.5);
  auto oneshot =
      MakeEstimator(ModelInstance::Ic(&ig), Approach::kOneshot, 4, 1);
  auto snapshot =
      MakeEstimator(ModelInstance::Ic(&ig), Approach::kSnapshot, 4, 1);
  auto ris = MakeEstimator(ModelInstance::Ic(&ig), Approach::kRis, 4, 1);
  EXPECT_EQ(oneshot->name(), "Oneshot");
  EXPECT_EQ(snapshot->name(), "Snapshot");
  EXPECT_EQ(ris->name(), "RIS");
  EXPECT_EQ(ApproachName(Approach::kOneshot), "Oneshot");
  EXPECT_EQ(ApproachName(Approach::kSnapshot), "Snapshot");
  EXPECT_EQ(ApproachName(Approach::kRis), "RIS");
}

}  // namespace
}  // namespace soldist
