// Unit tests for the dataset catalog: exact sizes for embedded/recipe
// datasets, tolerance bands for the synthetic proxies (DESIGN.md §4).

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "graph/stats.h"

namespace soldist {
namespace {

TEST(DatasetsTest, KarateMatchesPaperExactly) {
  EdgeList edges = Datasets::Karate();
  EXPECT_EQ(edges.num_vertices, 34u);
  EXPECT_EQ(edges.arcs.size(), 156u);  // paper Table 3
  Graph g = GraphBuilder::FromEdgeList(edges);
  // Paper Table 3: Δ+ = Δ− = 17 (vertex 34, the instructor).
  VertexId max_out = 0, max_in = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_out = std::max(max_out, g.OutDegree(v));
    max_in = std::max(max_in, g.InDegree(v));
  }
  EXPECT_EQ(max_out, 17u);
  EXPECT_EQ(max_in, 17u);
}

TEST(DatasetsTest, KarateClusteringNearPaper) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  // Paper Table 3 reports 0.26 (global transitivity 0.2557).
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 0.26, 0.01);
}

TEST(DatasetsTest, PhysiciansProxySizes) {
  EdgeList edges = Datasets::Physicians(42);
  EXPECT_EQ(edges.num_vertices, 241u);
  EXPECT_EQ(edges.arcs.size(), 1098u);  // paper Table 3
  Graph g = GraphBuilder::FromEdgeList(edges);
  VertexId max_out = 0, max_in = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_out = std::max(max_out, g.OutDegree(v));
    max_in = std::max(max_in, g.InDegree(v));
  }
  EXPECT_LE(max_out, 9u);   // survey cap (paper: Δ+ = 9)
  EXPECT_GE(max_in, 12u);   // skewed popularity (paper: Δ− = 26)
}

TEST(DatasetsTest, CaGrQcProxySizes) {
  EdgeList edges = Datasets::CaGrQc(42);
  EXPECT_EQ(edges.num_vertices, 5242u);  // paper: 5,242
  // Arcs within 15% of the paper's 28,968.
  EXPECT_GT(edges.arcs.size(), 24600u);
  EXPECT_LT(edges.arcs.size(), 33300u);
}

TEST(DatasetsTest, CaGrQcProxyHighClustering) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::CaGrQc(42));
  // Paper Table 3: 0.63. The clique-overlap proxy must be far above the
  // ~0.001 a random graph of this density would give.
  EXPECT_GT(GlobalClusteringCoefficient(g), 0.35);
}

TEST(DatasetsTest, WikiVoteProxySizes) {
  EdgeList edges = Datasets::WikiVote(42);
  EXPECT_EQ(edges.num_vertices, 7115u);
  EXPECT_GT(edges.arcs.size(), 88000u);   // within ~15% of 103,689
  EXPECT_LT(edges.arcs.size(), 119000u);
}

TEST(DatasetsTest, ComYoutubeProxyScaledAndBidirected) {
  EdgeList edges = Datasets::ComYoutube(42, 5000);
  EXPECT_EQ(edges.num_vertices, 5000u);
  Graph g = GraphBuilder::FromEdgeList(edges);
  // Bidirected social network: in-degree equals out-degree everywhere.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), g.InDegree(v));
  }
}

TEST(DatasetsTest, SocPokecProxyDensity) {
  EdgeList edges = Datasets::SocPokec(42, 5000);
  EXPECT_EQ(edges.num_vertices, 5000u);
  double arcs_per_vertex =
      static_cast<double>(edges.arcs.size()) / 5000.0;
  // Paper: 30.6M / 1.63M ≈ 18.8 arcs per vertex.
  EXPECT_GT(arcs_per_vertex, 14.0);
  EXPECT_LE(arcs_per_vertex, 18.8);
}

TEST(DatasetsTest, ByNameCoversCatalog) {
  for (const std::string& name : Datasets::Names()) {
    VertexId star_n = Datasets::IsStarNetwork(name) ? 2000 : 0;
    auto result = Datasets::ByName(name, 42, star_n);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_GT(result.value().num_vertices, 0u) << name;
  }
  EXPECT_FALSE(Datasets::ByName("nope", 42).ok());
}

TEST(DatasetsTest, DeterministicInSeed) {
  EdgeList a = Datasets::Physicians(7);
  EdgeList b = Datasets::Physicians(7);
  EdgeList c = Datasets::Physicians(8);
  EXPECT_EQ(a.arcs, b.arcs);
  EXPECT_NE(a.arcs, c.arcs);
}

TEST(DatasetsTest, StarNetworkFlags) {
  EXPECT_TRUE(Datasets::IsStarNetwork("com-Youtube"));
  EXPECT_TRUE(Datasets::IsStarNetwork("soc-Pokec"));
  EXPECT_FALSE(Datasets::IsStarNetwork("Karate"));
  EXPECT_FALSE(Datasets::IsStarNetwork("BA_s"));
}

}  // namespace
}  // namespace soldist
