// Tests for snapshot (live-edge graph) sampling and reachability.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "model/influence_graph.h"
#include "sim/snapshot_sampler.h"

namespace soldist {
namespace {

InfluenceGraph Diamond(double p) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, p));
}

TEST(SnapshotSamplerTest, FullProbabilityKeepsAllEdges) {
  InfluenceGraph ig = Diamond(1.0);
  SnapshotSampler sampler(&ig);
  Rng rng(1);
  TraversalCounters counters;
  Snapshot snap = sampler.Sample(&rng, &counters);
  EXPECT_EQ(snap.num_live_edges(), 4u);
  EXPECT_EQ(counters.sample_edges, 4u);
}

TEST(SnapshotSamplerTest, LiveEdgeCountMatchesMTilde) {
  // E[live edges] = m̃ = Σ p(e) = 4 * 0.3 = 1.2.
  InfluenceGraph ig = Diamond(0.3);
  SnapshotSampler sampler(&ig);
  Rng rng(2);
  TraversalCounters counters;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sampler.Sample(&rng, &counters);
  double mean_live =
      static_cast<double>(counters.sample_edges) / kSamples;
  EXPECT_NEAR(mean_live, ig.SumProbabilities(), 0.02);
}

TEST(SnapshotSamplerTest, SnapshotOffsetsWellFormed) {
  InfluenceGraph ig = Diamond(0.5);
  SnapshotSampler sampler(&ig);
  Rng rng(3);
  TraversalCounters counters;
  for (int i = 0; i < 100; ++i) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    ASSERT_EQ(snap.out_offsets.size(), 5u);
    EXPECT_EQ(snap.out_offsets[0], 0u);
    for (std::size_t v = 0; v + 1 < snap.out_offsets.size(); ++v) {
      EXPECT_LE(snap.out_offsets[v], snap.out_offsets[v + 1]);
    }
    EXPECT_EQ(snap.out_offsets[4], snap.num_live_edges());
  }
}

TEST(SnapshotSamplerTest, ReachabilityOnFullSnapshot) {
  InfluenceGraph ig = Diamond(1.0);
  SnapshotSampler sampler(&ig);
  Rng rng(4);
  TraversalCounters counters;
  Snapshot snap = sampler.Sample(&rng, &counters);
  const VertexId s0[1] = {0};
  const VertexId s3[1] = {3};
  EXPECT_EQ(sampler.CountReachable(snap, s0, &counters), 4u);
  EXPECT_EQ(sampler.CountReachable(snap, s3, &counters), 1u);
}

TEST(SnapshotSamplerTest, MeanReachabilityIsInfluence) {
  // Snapshot reachability averaged over snapshots is an unbiased estimate
  // of the influence: diamond p=0.5 from {0}:
  // Inf = 1 + 2*0.5 + Pr[3 activated]. Pr[3] = 1 - (1 - 0.25)^2 = 0.4375.
  InfluenceGraph ig = Diamond(0.5);
  SnapshotSampler sampler(&ig);
  Rng rng(5);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  constexpr int kSamples = 100000;
  std::uint64_t total = 0;
  for (int i = 0; i < kSamples; ++i) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    total += sampler.CountReachable(snap, seeds, &counters);
  }
  double mean = static_cast<double>(total) / kSamples;
  EXPECT_NEAR(mean, 1.0 + 1.0 + 0.4375, 0.015);
}

TEST(SnapshotSamplerTest, TraversalCountsOnlyLiveEdges) {
  // With p=1 all 4 edges are live: BFS from 0 scans 4 vertices and
  // examines each vertex's live out-edges = 4 edges total.
  InfluenceGraph ig = Diamond(1.0);
  SnapshotSampler sampler(&ig);
  Rng rng(6);
  TraversalCounters build_counters;
  Snapshot snap = sampler.Sample(&rng, &build_counters);
  TraversalCounters bfs_counters;
  const VertexId seeds[1] = {0};
  sampler.CountReachable(snap, seeds, &bfs_counters);
  EXPECT_EQ(bfs_counters.vertices, 4u);
  EXPECT_EQ(bfs_counters.edges, 4u);
  EXPECT_EQ(bfs_counters.sample_edges, 0u);  // estimate stores nothing
}

TEST(SnapshotSamplerTest, DuplicateSeedsHandled) {
  InfluenceGraph ig = Diamond(1.0);
  SnapshotSampler sampler(&ig);
  Rng rng(7);
  TraversalCounters counters;
  Snapshot snap = sampler.Sample(&rng, &counters);
  const VertexId seeds[3] = {0, 0, 3};
  EXPECT_EQ(sampler.CountReachable(snap, seeds, &counters), 4u);
}

}  // namespace
}  // namespace soldist
