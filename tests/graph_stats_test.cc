// Unit tests for network statistics (clustering coefficient, distances).

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/stats.h"

namespace soldist {
namespace {

Graph FromArcs(VertexId n, std::vector<Arc> arcs) {
  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs = std::move(arcs);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(ClusteringTest, TriangleIsOne) {
  Graph g = FromArcs(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, PathIsZero) {
  Graph g = FromArcs(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  // Undirected: triangles=1, triples: deg(0)=3 -> 3, deg(1)=deg(2)=2 -> 1
  // each, deg(3)=1 -> 0. Total triples 5, coefficient 3/5.
  Graph g = FromArcs(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 3.0 / 5.0);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  std::vector<Arc> arcs;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      if (u != v) arcs.push_back({u, v});
    }
  }
  Graph g = FromArcs(5, std::move(arcs));
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, DirectionAndMultiplicityIgnored) {
  // Same undirected triangle expressed with both arc directions and a
  // duplicate: coefficient must still be 1.
  Graph g = FromArcs(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2},
                         {0, 1}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(AverageDistanceTest, PairOnEdge) {
  Graph g = FromArcs(2, {{0, 1}});
  Rng rng(1);
  auto avg = AverageDistance(g, 100, &rng);
  ASSERT_TRUE(avg.has_value());
  EXPECT_DOUBLE_EQ(*avg, 1.0);  // both directions distance 1 (undirected)
}

TEST(AverageDistanceTest, NoEdgesNoValue) {
  Graph g = FromArcs(3, {});
  Rng rng(1);
  EXPECT_FALSE(AverageDistance(g, 100, &rng).has_value());
}

TEST(AverageDistanceTest, SkippedWhenZeroPairs) {
  Graph g = FromArcs(2, {{0, 1}});
  EXPECT_FALSE(AverageDistance(g, 0, nullptr).has_value());
}

TEST(NetworkStatsTest, DegreesAndSizes) {
  Graph g = FromArcs(4, {{0, 1}, {0, 2}, {0, 3}, {1, 0}, {2, 0}});
  Rng rng(1);
  NetworkStats stats = ComputeNetworkStats(g, 0, &rng);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 5u);
  EXPECT_EQ(stats.max_out_degree, 3u);
  EXPECT_EQ(stats.max_in_degree, 2u);
  EXPECT_FALSE(stats.average_distance.has_value());
}

}  // namespace
}  // namespace soldist
