// Tests for the api/ facade: spec validation surfaces Status (never a
// CHECK-abort), Solve is byte-identical to the legacy MakeEstimator +
// RunGreedy path, and SolveBatch is byte-identical to sequential Solve
// for every sampling width.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/session.h"
#include "core/factory.h"
#include "core/greedy.h"
#include "exp/experiment.h"
#include "exp/trial_runner.h"
#include "graph/io.h"
#include "random/splitmix64.h"

namespace soldist {
namespace {

TEST(ParseApproachTest, NamesAndErrors) {
  auto ris = api::ParseApproach("ris");
  ASSERT_TRUE(ris.ok());
  EXPECT_EQ(ris.value(), Approach::kRis);
  EXPECT_EQ(api::ParseApproach("Oneshot").value(), Approach::kOneshot);
  EXPECT_EQ(api::ParseApproach("SNAPSHOT").value(), Approach::kSnapshot);
  auto bad = api::ParseApproach("greedy");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadSpecTest, ValidationErrors) {
  api::WorkloadSpec empty_name = api::WorkloadSpec::Dataset("");
  EXPECT_EQ(empty_name.Validate().code(), StatusCode::kInvalidArgument);

  api::WorkloadSpec no_path;
  no_path.source = api::WorkloadSpec::Source::kFile;
  EXPECT_EQ(no_path.Validate().code(), StatusCode::kInvalidArgument);

  EdgeList out_of_range;
  out_of_range.num_vertices = 2;
  out_of_range.Add(0, 5);  // endpoint beyond num_vertices
  api::WorkloadSpec bad_edges =
      api::WorkloadSpec::Edges("bad", std::move(out_of_range));
  EXPECT_EQ(bad_edges.Validate().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(api::WorkloadSpec::Dataset("Karate").Validate().ok());
}

TEST(WorkloadSpecTest, LabelKeysModel) {
  api::WorkloadSpec ic = api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kIwc);
  EXPECT_EQ(ic.Label(), "Karate/iwc");
  api::WorkloadSpec lt = ic;
  lt.Diffusion(DiffusionModel::kLt);
  EXPECT_EQ(lt.Label(), "Karate/iwc/lt");
}

TEST(SolveSpecTest, ValidationErrors) {
  EXPECT_EQ(api::SolveSpec{}.WithSampleNumber(0).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(api::SolveSpec{}.WithK(0).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(api::SolveSpec{}.WithSampleThreads(-1).Validate().code(),
            StatusCode::kInvalidArgument);
  api::SolveSpec bad_chunk;
  bad_chunk.sampling.chunk_size = 0;
  EXPECT_EQ(bad_chunk.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(api::SolveSpec{}.Validate().ok());
}

TEST(SessionTest, UnknownNetworkIsStatusNotCrash) {
  api::Session session;
  auto result = session.Solve(api::WorkloadSpec::Dataset("NoSuchNetwork"),
                              api::SolveSpec{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, LtInvalidProbabilityIsStatusNotCrash) {
  // uc0.1 on Karate sums some vertex's in-weights past 1: the LT validity
  // violation that used to CHECK-abort from the CLI.
  api::Session session;
  auto workload = api::WorkloadSpec::Dataset("Karate")
                      .Probability(ProbabilityModel::kUc01)
                      .Diffusion(DiffusionModel::kLt);
  auto result = session.Solve(workload, api::SolveSpec{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("LT"), std::string::npos);
}

TEST(SessionTest, SnapshotModeIsAPureSpeedKnob) {
  // The facade contract for --snapshot-mode: every backend returns
  // byte-identical seeds, estimates, AND oracle influence for the same
  // spec (the backend is a cost profile, not a parameter of the result).
  api::Session session;
  auto workload = api::WorkloadSpec::Dataset("Karate");
  auto base = api::SolveSpec{}
                  .WithApproach(Approach::kSnapshot)
                  .WithSampleNumber(64)
                  .WithK(3)
                  .WithSeed(9);
  auto residual = session.Solve(
      workload, base.WithSnapshotMode(SnapshotEstimator::Mode::kResidual));
  ASSERT_TRUE(residual.ok()) << residual.status().ToString();
  for (SnapshotEstimator::Mode mode :
       {SnapshotEstimator::Mode::kNaive,
        SnapshotEstimator::Mode::kCondensed}) {
    auto other = session.Solve(workload, base.WithSnapshotMode(mode));
    ASSERT_TRUE(other.ok()) << other.status().ToString();
    EXPECT_EQ(other.value().seeds, residual.value().seeds)
        << SnapshotModeName(mode);
    EXPECT_EQ(other.value().estimates, residual.value().estimates)
        << SnapshotModeName(mode);
    EXPECT_EQ(other.value().influence, residual.value().influence)
        << SnapshotModeName(mode);
  }
}

TEST(SessionTest, KLargerThanNetworkIsStatus) {
  api::Session session;
  auto result = session.Solve(api::WorkloadSpec::Dataset("Karate"),
                              api::SolveSpec{}.WithK(35));  // karate n=34
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, TinyStarNOverrideIsStatus) {
  // --star-n below the ⋆ generators' minimum used to CHECK-abort inside
  // Datasets::ComYoutube.
  api::SessionOptions options;
  options.star_n = 3;
  options.oracle_rr = 100;
  api::Session session(options);
  auto result = session.Solve(api::WorkloadSpec::Dataset("com-Youtube"),
                              api::SolveSpec{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, InvalidSessionOptionsSurfaceOnFirstUse) {
  api::SessionOptions options;
  options.oracle_rr = 0;  // a zero-RR-set oracle would divide by zero
  api::Session session(options);
  auto result =
      session.Solve(api::WorkloadSpec::Dataset("Karate"), api::SolveSpec{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, EdgesNameCollidingWithDatasetIsStatus) {
  // Registering over a resolved catalog name would free the cached
  // influence graph under the live oracle.
  api::Session session;
  auto dataset = api::WorkloadSpec::Dataset("Karate");
  ASSERT_TRUE(session.ResolveWorkload(dataset).ok());
  EdgeList tiny;
  tiny.num_vertices = 2;
  tiny.Add(0, 1);
  auto collision = session.ResolveWorkload(
      api::WorkloadSpec::Edges("Karate", std::move(tiny)));
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(collision.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, DatasetNameCollidingWithEdgesIsStatus) {
  // The reverse order: a dataset workload must not silently resolve to a
  // previously registered file/edges graph of the same name.
  api::Session session;
  EdgeList tiny;
  tiny.num_vertices = 2;
  tiny.Add(0, 1);
  ASSERT_TRUE(session
                  .ResolveWorkload(
                      api::WorkloadSpec::Edges("Karate", std::move(tiny)))
                  .ok());
  auto dataset = session.ResolveWorkload(api::WorkloadSpec::Dataset("Karate"));
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, OracleCacheHitStillValidatesWorkload) {
  // A label-colliding workload must hit the collision rejection, not
  // silently receive the cached oracle of the other workload.
  api::Session session;
  auto dataset = api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kUc01);
  ASSERT_TRUE(session.ResolveOracle(dataset).ok());
  EdgeList tiny;
  tiny.num_vertices = 2;
  tiny.Add(0, 1);
  auto collision = session.ResolveOracle(
      api::WorkloadSpec::Edges("Karate", std::move(tiny))
          .Probability(ProbabilityModel::kUc01));
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(collision.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, NegativeSamplingWidthFallsBackToSequential) {
  api::Session session;
  SamplingOptions sampling = session.SamplingFor(-1);
  EXPECT_EQ(sampling.num_threads, 1);
  EXPECT_EQ(sampling.pool, nullptr);
  EXPECT_FALSE(sampling.UseEngine());
}

TEST(SessionTest, MissingFileIsStatus) {
  api::Session session;
  auto result = session.Solve(
      api::WorkloadSpec::File("/nonexistent/edges.txt"), api::SolveSpec{});
  ASSERT_FALSE(result.ok());
}

TEST(SessionTest, ResolvesAndCachesWorkloads) {
  api::Session session;
  auto workload = api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kUc01);
  auto a = session.ResolveWorkload(workload);
  auto b = session.ResolveWorkload(workload);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().ig, b.value().ig);  // same cached instance
  auto oracle_a = session.ResolveOracle(workload);
  auto oracle_b = session.ResolveOracle(workload);
  ASSERT_TRUE(oracle_a.ok() && oracle_b.ok());
  EXPECT_EQ(oracle_a.value(), oracle_b.value());
}

TEST(SessionTest, FileWorkloadSolves) {
  std::string path = ::testing::TempDir() + "/api_test_edges.txt";
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 0);
  ASSERT_TRUE(GraphIo::SaveEdgeList(edges, path).ok());
  api::Session session;
  auto result =
      session.Solve(api::WorkloadSpec::File(path).Probability(
                        ProbabilityModel::kUc01),
                    api::SolveSpec{}.WithSampleNumber(64).WithK(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().seed_set.size(), 1u);
  std::remove(path.c_str());
}

/// Solve must be byte-identical to the legacy surface: the estimator
/// seeded with DeriveSeed(seed, 0), the tie shuffle with
/// DeriveSeed(seed, 1) — i.e. trial 0 of RunTrials(master_seed = seed).
TEST(SessionTest, SolveMatchesLegacyMakeEstimatorIc) {
  api::Session session;
  auto workload = api::WorkloadSpec::Dataset("Karate").Probability(
      ProbabilityModel::kUc01);
  const std::uint64_t seed = 77;
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    auto spec = api::SolveSpec{}
                    .WithApproach(approach)
                    .WithSampleNumber(64)
                    .WithK(2)
                    .WithSeed(seed);
    auto result = session.Solve(workload, spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto instance = session.ResolveWorkload(workload);
    ASSERT_TRUE(instance.ok());
    auto estimator = MakeEstimator(instance.value(), approach, 64,
                                   DeriveSeed(seed, 0));
    Rng tie_rng(DeriveSeed(seed, 1));
    GreedyRunResult legacy = RunGreedy(
        estimator.get(), instance.value().ig->num_vertices(), 2, &tie_rng);
    EXPECT_EQ(result.value().seeds, legacy.seeds);
    EXPECT_EQ(result.value().estimates, legacy.estimates);
    EXPECT_EQ(result.value().seed_set, legacy.SortedSeedSet());

    TrialConfig config;
    config.approach = approach;
    config.sample_number = 64;
    config.k = 2;
    config.trials = 1;
    config.master_seed = seed;
    TrialResult trials = RunTrials(instance.value(), config, nullptr);
    EXPECT_EQ(result.value().seed_set, trials.seed_sets[0]);
  }
}

TEST(SessionTest, SolveMatchesLegacyMakeEstimatorLt) {
  api::Session session;
  auto workload = api::WorkloadSpec::Dataset("Karate")
                      .Probability(ProbabilityModel::kIwc)
                      .Diffusion(DiffusionModel::kLt);
  const std::uint64_t seed = 91;
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    auto spec = api::SolveSpec{}
                    .WithApproach(approach)
                    .WithSampleNumber(32)
                    .WithK(2)
                    .WithSeed(seed);
    auto result = session.Solve(workload, spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto instance = session.ResolveWorkload(workload);
    ASSERT_TRUE(instance.ok());
    ASSERT_EQ(instance.value().model, DiffusionModel::kLt);
    auto estimator = MakeEstimator(instance.value(), approach, 32,
                                   DeriveSeed(seed, 0));
    Rng tie_rng(DeriveSeed(seed, 1));
    GreedyRunResult legacy = RunGreedy(
        estimator.get(), instance.value().ig->num_vertices(), 2, &tie_rng);
    EXPECT_EQ(result.value().seeds, legacy.seeds);
    EXPECT_EQ(result.value().seed_set, legacy.SortedSeedSet());
  }
}

/// The batch acceptance contract: SolveBatch results (seed sets AND
/// influence estimates) are byte-identical to issuing the same specs
/// sequentially through Solve, for sample_threads 1, 2, and 4.
TEST(SessionTest, SolveBatchMatchesSequentialAcrossSampleThreads) {
  api::SessionOptions options;
  options.threads = 4;  // make the batch fan-out path real
  options.oracle_rr = 20000;
  for (std::int64_t sample_threads : {1, 2, 4}) {
    api::Session session(options);
    auto workload = api::WorkloadSpec::Dataset("Karate").Probability(
        ProbabilityModel::kUc01);
    std::vector<api::SolveSpec> specs;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        specs.push_back(api::SolveSpec{}
                            .WithApproach(approach)
                            .WithSampleNumber(32)
                            .WithK(2)
                            .WithSeed(seed)
                            .WithSampleThreads(
                                static_cast<int>(sample_threads)));
      }
    }
    auto batch = session.SolveBatch(workload, specs);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch.value().size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto sequential = session.Solve(workload, specs[i]);
      ASSERT_TRUE(sequential.ok());
      EXPECT_EQ(batch.value()[i].seed_set, sequential.value().seed_set)
          << "spec " << i << " sample_threads " << sample_threads;
      EXPECT_EQ(batch.value()[i].influence, sequential.value().influence)
          << "spec " << i << " sample_threads " << sample_threads;
      EXPECT_EQ(batch.value()[i].counters.vertices,
                sequential.value().counters.vertices);
      EXPECT_EQ(batch.value()[i].counters.edges,
                sequential.value().counters.edges);
    }
  }
}

/// The batch ladder-reuse contract: RIS specs differing only in
/// sample_number share one RR arena (SessionOptions::batch_reuse), and
/// every result — seeds, estimates, influence, counters — still equals a
/// sequential Solve (which never uses arenas) AND a reuse-off batch, for
/// IC and LT and for sample_threads 1, 2, 4.
TEST(SessionTest, SolveBatchLadderReuseIsByteIdentical) {
  for (DiffusionModel model : {DiffusionModel::kIc, DiffusionModel::kLt}) {
    for (std::int64_t sample_threads : {1, 2, 4}) {
      api::SessionOptions reuse_options;
      reuse_options.threads = 4;
      reuse_options.oracle_rr = 10000;
      api::SessionOptions no_reuse_options = reuse_options;
      no_reuse_options.batch_reuse = false;
      api::Session session(reuse_options);
      api::Session baseline(no_reuse_options);
      auto workload = api::WorkloadSpec::Dataset("Karate")
                          .Probability(ProbabilityModel::kIwc)
                          .Diffusion(model);
      // A sweep ladder: one seed, ascending sample numbers (plus a
      // duplicate τ, which must also share), constant everything else.
      std::vector<api::SolveSpec> specs;
      for (std::uint64_t tau : {8ULL, 32ULL, 32ULL, 128ULL, 512ULL}) {
        specs.push_back(api::SolveSpec{}
                            .WithApproach(Approach::kRis)
                            .WithSampleNumber(tau)
                            .WithK(3)
                            .WithSeed(17)
                            .WithSampleThreads(
                                static_cast<int>(sample_threads)));
      }
      auto batch = session.SolveBatch(workload, specs);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      auto unshared = baseline.SolveBatch(workload, specs);
      ASSERT_TRUE(unshared.ok()) << unshared.status().ToString();
      ASSERT_EQ(batch.value().size(), specs.size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        auto sequential = session.Solve(workload, specs[i]);
        ASSERT_TRUE(sequential.ok());
        const api::SolveResult& shared = batch.value()[i];
        EXPECT_EQ(shared.seeds, sequential.value().seeds)
            << "spec " << i << " threads " << sample_threads;
        EXPECT_EQ(shared.estimates, sequential.value().estimates);
        EXPECT_EQ(shared.influence, sequential.value().influence);
        EXPECT_EQ(shared.counters.vertices,
                  sequential.value().counters.vertices);
        EXPECT_EQ(shared.counters.edges, sequential.value().counters.edges);
        EXPECT_EQ(shared.counters.sample_vertices,
                  sequential.value().counters.sample_vertices);
        EXPECT_EQ(shared.seeds, unshared.value()[i].seeds);
        EXPECT_EQ(shared.influence, unshared.value()[i].influence);
      }
    }
  }
}

/// LT always draws through the chunked deterministic streams, so batch
/// results must also be identical ACROSS sample-thread widths.
TEST(SessionTest, LtBatchIdenticalAcrossWidths) {
  api::SessionOptions options;
  options.threads = 4;
  options.oracle_rr = 5000;
  api::Session session(options);
  auto workload = api::WorkloadSpec::Dataset("Karate")
                      .Probability(ProbabilityModel::kIwc)
                      .Diffusion(DiffusionModel::kLt);
  std::vector<std::vector<VertexId>> reference;
  std::vector<double> reference_influence;
  for (std::int64_t width : {1, 2, 4}) {
    std::vector<api::SolveSpec> specs;
    for (std::uint64_t seed : {5ULL, 6ULL}) {
      specs.push_back(api::SolveSpec{}
                          .WithApproach(Approach::kRis)
                          .WithSampleNumber(64)
                          .WithK(2)
                          .WithSeed(seed)
                          .WithSampleThreads(static_cast<int>(width)));
    }
    auto batch = session.SolveBatch(workload, specs);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (reference.empty()) {
      for (const auto& result : batch.value()) {
        reference.push_back(result.seed_set);
        reference_influence.push_back(result.influence);
      }
      continue;
    }
    for (std::size_t i = 0; i < batch.value().size(); ++i) {
      EXPECT_EQ(batch.value()[i].seed_set, reference[i]) << "width " << width;
      EXPECT_EQ(batch.value()[i].influence, reference_influence[i]);
    }
  }
}

TEST(SessionTest, BatchFailsFastOnInvalidSpec) {
  api::Session session;
  std::vector<api::SolveSpec> specs = {api::SolveSpec{},
                                       api::SolveSpec{}.WithK(0)};
  auto batch =
      session.SolveBatch(api::WorkloadSpec::Dataset("Karate"), specs);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  // The message names the offending spec.
  EXPECT_NE(batch.status().message().find("spec 1"), std::string::npos);
}

TEST(SessionTest, SkippingInfluenceSkipsOracle) {
  api::Session session;
  api::SolveSpec spec;
  spec.evaluate_influence = false;
  auto result =
      session.Solve(api::WorkloadSpec::Dataset("Karate"), spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().influence, 0.0);
  EXPECT_EQ(result.value().oracle_ci99, 0.0);
  EXPECT_FALSE(result.value().seed_set.empty());
}

TEST(ExperimentContextTest, StatusPathsSurfaceUserErrors) {
  ExperimentOptions options;
  options.trials = 2;
  options.oracle_rr = 500;
  options.model = DiffusionModel::kLt;
  ExperimentContext context(options);
  // The pre-facade surface CHECK-aborted on both of these.
  auto unknown = context.TryModel("NoSuchNetwork", ProbabilityModel::kIwc);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto invalid = context.TryModel("Karate", ProbabilityModel::kUc01);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  auto oracle = context.TryOracle("Karate", ProbabilityModel::kUc01);
  ASSERT_FALSE(oracle.ok());
  auto ok = context.TryModel("Karate", ProbabilityModel::kIwc);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().model, DiffusionModel::kLt);
}

}  // namespace
}  // namespace soldist
