// Tests for the influence oracles: RR oracle vs exact vs Monte Carlo.

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/exact_oracle.h"
#include "oracle/mc_oracle.h"
#include "oracle/rr_oracle.h"

namespace soldist {
namespace {

InfluenceGraph Diamond(double p) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, p));
}

TEST(ExactOracleTest, ClosedFormsOnDiamond) {
  InfluenceGraph ig = Diamond(0.5);
  // Inf({0}) = 1 + 0.5 + 0.5 + Pr[3 reached]
  //          = 2 + (1 - (1 - 0.25)^2) = 2 + 0.4375 = 2.4375.
  EXPECT_NEAR(ExactInfluence(ig, std::vector<VertexId>{0}), 2.4375, 1e-12);
  // Inf({3}) = 1 (sink).
  EXPECT_NEAR(ExactInfluence(ig, std::vector<VertexId>{3}), 1.0, 1e-12);
  // Inf({1}) = 1 + 0.5 = 1.5.
  EXPECT_NEAR(ExactInfluence(ig, std::vector<VertexId>{1}), 1.5, 1e-12);
}

TEST(ExactOracleTest, MonotoneInSeeds) {
  InfluenceGraph ig = Diamond(0.3);
  double one = ExactInfluence(ig, std::vector<VertexId>{0});
  double two = ExactInfluence(ig, std::vector<VertexId>{0, 3});
  EXPECT_GT(two, one);
}

TEST(ExactOracleTest, HitProbabilityIdentity) {
  InfluenceGraph ig = Diamond(0.5);
  double inf = ExactInfluence(ig, std::vector<VertexId>{0});
  double hit = ExactRrHitProbability(ig, std::vector<VertexId>{0});
  EXPECT_NEAR(hit, inf / 4.0, 1e-12);
}

TEST(RrOracleTest, MatchesExactOnDiamond) {
  InfluenceGraph ig = Diamond(0.5);
  RrOracle oracle(&ig, 200000, /*seed=*/1);
  for (VertexId v = 0; v < 4; ++v) {
    double exact = ExactInfluence(ig, std::vector<VertexId>{v});
    EXPECT_NEAR(oracle.EstimateInfluence(std::vector<VertexId>{v}), exact,
                0.03)
        << "vertex " << v;
  }
}

TEST(RrOracleTest, MatchesMcOracleOnKarate) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  RrOracle rr(&ig, 100000, /*seed=*/2);
  McOracle mc(&ig);
  Rng rng(3);
  std::vector<VertexId> seeds{0, 33};
  double rr_estimate = rr.EstimateInfluence(seeds);
  double mc_estimate = mc.EstimateInfluence(seeds, 100000, &rng);
  EXPECT_NEAR(rr_estimate, mc_estimate, 0.15);
}

TEST(RrOracleTest, ConfidenceIntervalFormula) {
  InfluenceGraph ig = Diamond(0.5);
  RrOracle oracle(&ig, 10000, /*seed=*/4);
  // 1.29 * n / sqrt(N) = 1.29 * 4 / 100.
  EXPECT_NEAR(oracle.ConfidenceInterval99(), 1.29 * 4.0 / 100.0, 1e-12);
}

TEST(RrOracleTest, EmptySeedSetHasZeroInfluence) {
  InfluenceGraph ig = Diamond(0.5);
  RrOracle oracle(&ig, 1000, /*seed=*/5);
  EXPECT_DOUBLE_EQ(oracle.EstimateInfluence(std::vector<VertexId>{}), 0.0);
}

TEST(RrOracleTest, FullSeedSetCoversEverything) {
  InfluenceGraph ig = Diamond(0.5);
  RrOracle oracle(&ig, 1000, /*seed=*/6);
  std::vector<VertexId> all{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(oracle.EstimateInfluence(all), 4.0);
}

TEST(RrOracleTest, DeterministicInSeed) {
  InfluenceGraph ig = Diamond(0.5);
  RrOracle a(&ig, 5000, /*seed=*/7);
  RrOracle b(&ig, 5000, /*seed=*/7);
  std::vector<VertexId> seeds{0};
  EXPECT_DOUBLE_EQ(a.EstimateInfluence(seeds), b.EstimateInfluence(seeds));
}

TEST(RrOracleTest, OracleGreedyPicksStarCenter) {
  EdgeList edges;
  edges.num_vertices = 6;
  for (VertexId i = 1; i < 6; ++i) edges.Add(0, i);
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig(std::move(g), std::vector<double>(5, 1.0));
  RrOracle oracle(&ig, 2000, /*seed=*/8);
  auto seeds = oracle.OracleGreedySeeds(2);
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds.size(), 2u);
}

TEST(RrOracleTest, OracleGreedyCoversDisjointComponents) {
  // Two disjoint p=1 stars: greedy k=2 must take both centers.
  EdgeList edges;
  edges.num_vertices = 8;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(0, 3);
  edges.Add(4, 5);
  edges.Add(4, 6);
  edges.Add(4, 7);
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig(std::move(g), std::vector<double>(6, 1.0));
  RrOracle oracle(&ig, 4000, /*seed=*/9);
  auto seeds = oracle.OracleGreedySeeds(2);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<VertexId>{0, 4}));
}

TEST(McOracleTest, MatchesExactOnDiamond) {
  InfluenceGraph ig = Diamond(0.5);
  McOracle mc(&ig);
  Rng rng(10);
  double exact = ExactInfluence(ig, std::vector<VertexId>{0});
  EXPECT_NEAR(mc.EstimateInfluence(std::vector<VertexId>{0}, 200000, &rng),
              exact, 0.02);
}

}  // namespace
}  // namespace soldist
