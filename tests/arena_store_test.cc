// The store/ subsystem's ctest contract (ISSUE 8): persisted arenas
// round-trip byte-identically (both stream families, prefix cuts, worker
// counts 1/2/4), every corruption / identity-mismatch mode is a Status
// the caller falls back from (never an abort), and the compressed / mmap
// backends answer Solve / TopK / Spread byte-identically to flat. Plus
// the serve-layer regressions: ArenaCache charges backend-reported
// ResidentBytes with exact refunds, and QueryService reloads a persisted
// arena across sessions instead of resampling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "serve/arena_cache.h"
#include "serve/query_service.h"
#include "sim/max_coverage.h"
#include "sim/rr_arena.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_arena.h"
#include "store/arena_io.h"
#include "store/arena_storage.h"
#include "store/fault_injection.h"
#include "util/status.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

void ExpectCountersEq(const TraversalCounters& a,
                      const TraversalCounters& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.sample_vertices, b.sample_vertices);
  EXPECT_EQ(a.sample_edges, b.sample_edges);
}

/// A fresh (removed-if-present) directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/arena_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

store::ArenaManifest RrManifest(std::uint64_t seed, std::string stream,
                                std::uint64_t capacity) {
  store::ArenaManifest manifest;
  manifest.kind = "rr";
  manifest.workload = "Karate/uc0.1";
  manifest.seed = seed;
  manifest.stream = std::move(stream);
  manifest.capacity = capacity;
  return manifest;
}

/// Full byte-identity: shape, every set, every inverted list, and the
/// prefix counters at the cuts the ladder actually serves.
void ExpectRrArenasIdentical(const RrArena& a, const RrArena& b) {
  ASSERT_EQ(a.capacity(), b.capacity());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.total_entries(), b.total_entries());
  for (std::uint64_t i = 0; i < a.capacity(); ++i) {
    std::span<const VertexId> sa = a.Set(i);
    std::span<const VertexId> sb = b.Set(i);
    ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
        << "set " << i;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    std::span<const std::uint32_t> la = a.InvertedAll(v);
    std::span<const std::uint32_t> lb = b.InvertedAll(v);
    ASSERT_TRUE(std::equal(la.begin(), la.end(), lb.begin(), lb.end()))
        << "inverted list of " << v;
  }
  for (std::uint64_t cut : {std::uint64_t{1}, a.capacity() / 2,
                            a.capacity()}) {
    ExpectCountersEq(a.PrefixCounters(cut), b.PrefixCounters(cut));
  }
}

// ---------------------------------------------------------------------
// Save/load round trips: both stream families, workers 1/2/4.
// ---------------------------------------------------------------------

TEST(ArenaIoTest, RrRoundTripSeqFamily) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(1, 64));
  std::string dir = FreshDir("rr_seq");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir).ok());
  auto loaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRrArenasIdentical(arena, *loaded.value());
}

TEST(ArenaIoTest, RrRoundTripEngineFamilyWorkers2And4) {
  InfluenceGraph ig = KarateUc01();
  std::vector<std::shared_ptr<RrArena>> reloaded;
  for (int workers : {2, 4}) {
    RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(workers, 32));
    std::string dir =
        FreshDir("rr_engine_w" + std::to_string(workers));
    ASSERT_TRUE(
        store::SaveRrArena(arena, RrManifest(7, "engine/32", 96), dir).ok());
    auto loaded = store::LoadRrArena(dir, RrManifest(7, "engine/32", 96));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectRrArenasIdentical(arena, *loaded.value());
    reloaded.push_back(loaded.value());
  }
  // The engine family's thread-count invariance survives persistence.
  ExpectRrArenasIdentical(*reloaded[0], *reloaded[1]);
}

TEST(ArenaIoTest, LoadServesSmallerCapacityAsExactPrefix) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 9, 128, Threads(1, 64));
  std::string dir = FreshDir("rr_prefix");
  ASSERT_TRUE(
      store::SaveRrArena(arena, RrManifest(9, "seq", 128), dir).ok());
  // Requesting LESS than the saved capacity is a hit; the loaded arena
  // keeps the full capacity and the prefix is byte-identical to a direct
  // sample at the smaller τ.
  auto loaded = store::LoadRrArena(dir, RrManifest(9, "seq", 64));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->capacity(), 128u);
  RrArena direct = RrArena::SampleIc(ig, 9, 64, Threads(1, 64));
  for (std::uint64_t cut : {std::uint64_t{1}, std::uint64_t{32},
                            std::uint64_t{64}}) {
    MaxCoverageResult a = GreedyMaxCoverage(loaded.value()->Prefix(cut), 3);
    MaxCoverageResult b = GreedyMaxCoverage(direct.Prefix(cut), 3);
    EXPECT_EQ(a.seeds, b.seeds);
    EXPECT_EQ(a.covered, b.covered);
  }
}

TEST(ArenaIoTest, SnapshotRoundTripBothFamilies) {
  InfluenceGraph ig = KarateUc01();
  for (int workers : {1, 2, 4}) {
    SamplingOptions sampling = Threads(workers, 16);
    SnapshotArena arena = SnapshotArena::Sample(ig, 11, 48, sampling);
    store::ArenaManifest manifest;
    manifest.kind = "snapshot";
    manifest.workload = "Karate/uc0.1";
    manifest.seed = 11;
    manifest.stream = workers == 1 ? "seq" : "engine/16";
    manifest.capacity = 48;
    std::string dir =
        FreshDir("snapshot_w" + std::to_string(workers));
    ASSERT_TRUE(store::SaveSnapshotArena(arena, manifest, dir).ok());
    auto loaded = store::LoadSnapshotArena(dir, manifest);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const SnapshotArena& back = *loaded.value();
    ASSERT_EQ(back.capacity(), arena.capacity());
    ASSERT_EQ(back.num_vertices(), arena.num_vertices());
    EXPECT_EQ(back.max_components(), arena.max_components());
    for (std::uint64_t i = 0; i < arena.capacity(); ++i) {
      const CondensedSnapshot& w = arena.World(i);
      const CondensedSnapshot& r = back.World(i);
      EXPECT_EQ(w.comp_of, r.comp_of) << "world " << i;
      EXPECT_EQ(w.comp_size, r.comp_size) << "world " << i;
      EXPECT_EQ(w.dag.offsets, r.dag.offsets) << "world " << i;
      EXPECT_EQ(w.dag.targets, r.dag.targets) << "world " << i;
      EXPECT_EQ(w.rev.offsets, r.rev.offsets) << "world " << i;
      EXPECT_EQ(w.rev.targets, r.rev.targets) << "world " << i;
      EXPECT_EQ(arena.Warmth(i).bound, back.Warmth(i).bound) << i;
      EXPECT_EQ(arena.Warmth(i).is_exact, back.Warmth(i).is_exact) << i;
    }
    for (std::uint64_t cut : {std::uint64_t{1}, std::uint64_t{24},
                              std::uint64_t{48}}) {
      ExpectCountersEq(arena.PrefixCounters(cut), back.PrefixCounters(cut));
    }
  }
}

// ---------------------------------------------------------------------
// Every miss mode is a Status the caller falls back from — never an
// abort, and each mode gets the code the fallback logic dispatches on.
// ---------------------------------------------------------------------

TEST(ArenaIoTest, MissingDirectoryIsNotFound) {
  std::string dir = FreshDir("does_not_exist");
  auto loaded = store::LoadRrArena(dir, RrManifest(1, "seq", 8));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ArenaIoTest, IdentityMismatchIsFailedPrecondition) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 32, Threads(1, 64));
  std::string dir = FreshDir("rr_identity");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 32), dir).ok());

  auto wrong_seed = store::LoadRrArena(dir, RrManifest(8, "seq", 32));
  ASSERT_FALSE(wrong_seed.ok());
  EXPECT_EQ(wrong_seed.status().code(), StatusCode::kFailedPrecondition);

  auto wrong_stream =
      store::LoadRrArena(dir, RrManifest(7, "engine/256", 32));
  ASSERT_FALSE(wrong_stream.ok());
  EXPECT_EQ(wrong_stream.status().code(), StatusCode::kFailedPrecondition);

  store::ArenaManifest wrong_workload = RrManifest(7, "seq", 32);
  wrong_workload.workload = "Karate/iwc";
  auto mismatch = store::LoadRrArena(dir, wrong_workload);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);

  // A saved arena SMALLER than the request cannot serve it as a prefix.
  auto too_small = store::LoadRrArena(dir, RrManifest(7, "seq", 64));
  ASSERT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), StatusCode::kFailedPrecondition);

  // Kind cross-load: a snapshot loader pointed at an RR directory.
  auto wrong_kind = store::LoadSnapshotArena(dir, RrManifest(7, "seq", 32));
  ASSERT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArenaIoTest, CorruptedPayloadIsStatusNotAbort) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 32, Threads(1, 64));
  std::string dir = FreshDir("rr_corrupt");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 32), dir).ok());
  const std::string payload = dir + "/payload.bin";
  const auto original_size = std::filesystem::file_size(payload);

  // Flip one byte past the header: the checksum must catch it.
  {
    std::fstream f(payload,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(original_size / 2));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(original_size / 2));
    f.put(static_cast<char>(byte ^ 0x5a));
  }
  auto flipped = store::LoadRrArena(dir, RrManifest(7, "seq", 32));
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kIoError);

  // Re-save, then truncate: the size guard must catch it.
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 32), dir).ok());
  std::filesystem::resize_file(payload, original_size - 8);
  auto truncated = store::LoadRrArena(dir, RrManifest(7, "seq", 32));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kIoError);
}

TEST(ArenaIoTest, WrongFormatVersionIsFailedPrecondition) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 32, Threads(1, 64));
  std::string dir = FreshDir("rr_version");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 32), dir).ok());
  // Rewrite the manifest claiming a future format version: the loader
  // must refuse BEFORE touching the payload (callers resample).
  const std::string manifest_path = dir + "/manifest.txt";
  std::string text;
  {
    std::ifstream in(manifest_path);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("format_version=", 0) == 0) line = "format_version=99";
      text += line;
      text += '\n';
    }
  }
  {
    std::ofstream out(manifest_path, std::ios::trunc);
    out << text;
  }
  auto loaded = store::LoadRrArena(dir, RrManifest(7, "seq", 32));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// Backend identity: compressed and mmap answer Solve / TopK / Spread
// byte-identically to flat at every prefix cut.
// ---------------------------------------------------------------------

TEST(ArenaStorageTest, BackendsAnswerIdentically) {
  InfluenceGraph ig = KarateUc01();
  auto flat = std::make_shared<RrArena>(
      RrArena::SampleIc(ig, 3, 128, Threads(1, 64)));

  auto compressed = std::make_shared<RrArena>(*flat);
  store::StorageOptions compress_options;
  compress_options.backend = store::ArenaBackend::kCompressed;
  ASSERT_TRUE(compressed->ConvertStorage(compress_options).ok());
  EXPECT_FALSE(compressed->is_flat());

  auto mapped = std::make_shared<RrArena>(*flat);
  store::StorageOptions mmap_options;
  mmap_options.backend = store::ArenaBackend::kMmap;
  mmap_options.spill_dir = FreshDir("backend_spill");
  ASSERT_TRUE(mapped->ConvertStorage(mmap_options).ok());
  EXPECT_FALSE(mapped->is_flat());

  const VertexId n = flat->num_vertices();
  for (const auto& other : {compressed, mapped}) {
    // Membership identity: encoded sets come back sorted ascending, flat
    // in traversal order — same multiset either way.
    store::StorageScratch scratch;
    for (std::uint64_t i = 0; i < flat->capacity(); ++i) {
      std::span<const VertexId> raw = flat->Set(i);
      std::vector<VertexId> sorted(raw.begin(), raw.end());
      std::sort(sorted.begin(), sorted.end());
      std::span<const VertexId> enc = other->Set(i, &scratch);
      ASSERT_TRUE(
          std::equal(sorted.begin(), sorted.end(), enc.begin(), enc.end()))
          << "set " << i;
    }
    // Inverted lists decode to EXACTLY the flat index.
    for (VertexId v = 0; v < n; ++v) {
      std::span<const std::uint32_t> a = flat->InvertedAll(v);
      std::span<const std::uint32_t> b = other->InvertedAll(v, &scratch);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "inverted list of " << v;
    }
    // Solve (CELF greedy) at three cuts.
    for (std::uint64_t cut : {std::uint64_t{1}, std::uint64_t{64},
                              std::uint64_t{128}}) {
      MaxCoverageResult want = GreedyMaxCoverage(flat->Prefix(cut), 3);
      MaxCoverageResult got = GreedyMaxCoverage(other->Prefix(cut), 3);
      EXPECT_EQ(want.seeds, got.seeds) << "cut " << cut;
      EXPECT_EQ(want.covered, got.covered) << "cut " << cut;
    }
    // Point queries and TopK through the serving layer.
    for (std::uint64_t cut : {std::uint64_t{64}, std::uint64_t{128}}) {
      serve::QueryView want(flat, cut);
      serve::QueryView got(other, cut);
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(want.Spread({&v, 1}), got.Spread({&v, 1}))
            << "spread of " << v << " at cut " << cut;
      }
      std::vector<VertexId> seeds{0, 5};
      EXPECT_EQ(want.Spread(seeds), got.Spread(seeds));
      EXPECT_EQ(want.MarginalGain(seeds, 33), got.MarginalGain(seeds, 33));
      serve::TopKResult tw = want.TopK(3);
      serve::TopKResult tg = got.TopK(3);
      EXPECT_EQ(tw.seeds, tg.seeds);
      EXPECT_EQ(tw.estimates, tg.estimates);
      EXPECT_EQ(tw.covered, tg.covered);
    }
  }
}

TEST(ArenaStorageTest, LadderBackendOverrideMatchesFlat) {
  api::WorkloadSpec workload = api::WorkloadSpec::Dataset("Karate")
                                   .Probability(ProbabilityModel::kUc01);
  auto make_specs = [] {
    std::vector<api::SolveSpec> specs;
    for (std::uint64_t tau : {std::uint64_t{256}, std::uint64_t{512}}) {
      api::SolveSpec spec;
      spec.approach = Approach::kRis;
      spec.sample_number = tau;
      spec.k = 3;
      spec.seed = 5;
      spec.evaluate_influence = false;
      specs.push_back(spec);
    }
    return specs;
  };

  api::SessionOptions flat_options;
  api::Session flat_session(flat_options);
  auto want = flat_session.SolveBatch(workload, make_specs());
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  for (store::ArenaBackend backend :
       {store::ArenaBackend::kCompressed, store::ArenaBackend::kMmap}) {
    api::SessionOptions options;
    options.arena_storage.spill_dir = FreshDir("ladder_spill");
    api::Session session(options);
    std::vector<api::SolveSpec> specs = make_specs();
    for (api::SolveSpec& spec : specs) spec.WithArenaBackend(backend);
    auto got = session.SolveBatch(workload, specs);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(want.value().size(), got.value().size());
    for (std::size_t i = 0; i < want.value().size(); ++i) {
      EXPECT_EQ(want.value()[i].seeds, got.value()[i].seeds);
      EXPECT_EQ(want.value()[i].estimates, got.value()[i].estimates);
      ExpectCountersEq(want.value()[i].counters, got.value()[i].counters);
    }
  }
}

// ---------------------------------------------------------------------
// serve::ArenaCache charges backend-reported resident bytes.
// ---------------------------------------------------------------------

TEST(ArenaCacheTest, ChargesBackendResidentBytesWithExactRefund) {
  InfluenceGraph ig = KarateUc01();
  store::StorageOptions mmap_options;
  mmap_options.backend = store::ArenaBackend::kMmap;
  mmap_options.spill_dir = FreshDir("cache_spill");
  // Tiny chunk budget so most of the mapped payload stays non-resident:
  // the charge must be the RESIDENT number, not the logical one.
  mmap_options.resident_chunk_bytes = 256;
  mmap_options.resident_budget_bytes = 256;
  mmap_options.hot_list_bytes = 1 << 10;

  auto make_mmap_arena = [&](std::uint64_t seed) {
    auto arena = std::make_shared<RrArena>(
        RrArena::SampleIc(ig, seed, 2048, Threads(1, 64)));
    SOLDIST_CHECK(arena->ConvertStorage(mmap_options).ok());
    return arena;
  };

  auto arena1 = make_mmap_arena(1);
  const std::uint64_t charge1 = arena1->ResidentBytes();
  ASSERT_LT(charge1, arena1->MemoryBytes());

  serve::ArenaCache cache(charge1);  // exactly one arena1 fits
  cache.GetOrBuild("a", 2048, [&](std::uint64_t) { return arena1; });
  {
    serve::ArenaCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.resident_arenas, 1u);
    EXPECT_EQ(stats.resident_bytes, charge1);
    EXPECT_EQ(stats.total_bytes, arena1->MemoryBytes());
    EXPECT_GT(stats.total_bytes, stats.resident_bytes);
  }

  // Drift arena1's residency upward (hot-list warmup + chunk churn): the
  // later eviction must refund the CHARGED bytes, not today's reading.
  serve::QueryView view(arena1, 2048);
  for (VertexId v = 0; v < arena1->num_vertices(); ++v) {
    view.Spread({&v, 1});
  }

  auto arena2 = make_mmap_arena(2);
  const std::uint64_t charge2 = arena2->ResidentBytes();
  cache.GetOrBuild("b", 2048, [&](std::uint64_t) { return arena2; });
  serve::ArenaCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_arenas, 1u);
  EXPECT_EQ(stats.resident_bytes, charge2);
  EXPECT_EQ(stats.builds, 2u);
}

// ---------------------------------------------------------------------
// Flags and options surface.
// ---------------------------------------------------------------------

TEST(ArenaStorageTest, ParseArenaBackendRoundTrips) {
  for (store::ArenaBackend backend :
       {store::ArenaBackend::kFlat, store::ArenaBackend::kCompressed,
        store::ArenaBackend::kMmap}) {
    auto parsed = store::ParseArenaBackend(store::ArenaBackendName(backend));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), backend);
  }
  auto bogus = store::ParseArenaBackend("zstd");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArenaStorageTest, MmapWithoutSpillDirFailsValidate) {
  store::StorageOptions options;
  options.backend = store::ArenaBackend::kMmap;
  EXPECT_FALSE(options.Validate().ok());
  options.spill_dir = "/tmp/somewhere";
  EXPECT_TRUE(options.Validate().ok());
  store::StorageOptions flat;
  EXPECT_TRUE(flat.Validate().ok());  // flat never needs a spill dir
}

// ---------------------------------------------------------------------
// Session-lifetime persistence through serve::QueryService.
// ---------------------------------------------------------------------

TEST(QueryServicePersistenceTest, ReloadsSavedArenaAcrossServices) {
  std::string dir = FreshDir("service");
  api::WorkloadSpec workload = api::WorkloadSpec::Dataset("Karate")
                                   .Probability(ProbabilityModel::kUc01);
  serve::QuerySpec query;
  query.sample_number = 512;
  query.seed = 17;

  serve::TopKResult first;
  {
    api::SessionOptions options;
    options.arena_dir = dir;
    api::Session session(options);
    serve::QueryService service(&session);
    auto view = service.View(workload, query);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    first = view.value().TopK(3);
  }
  const std::string arena_dir = dir + "/rr_Karate_uc0.1_seed_17_seq";
  auto manifest = store::ReadArenaManifest(arena_dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value().capacity, 512u);
  EXPECT_EQ(manifest.value().kind, "rr");
  EXPECT_EQ(manifest.value().seed, 17u);
  EXPECT_EQ(manifest.value().stream, "seq");

  // A second process asking for a SMALLER τ must be served from the
  // saved arena, byte-identically to a fresh build at that τ.
  serve::QuerySpec smaller = query;
  smaller.sample_number = 256;
  serve::TopKResult persisted, fresh;
  {
    api::SessionOptions options;
    options.arena_dir = dir;
    api::Session session(options);
    serve::QueryService service(&session);
    auto view = service.View(workload, smaller);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    persisted = view.value().TopK(3);
    // Served from disk: the arena keeps the saved capacity.
    EXPECT_EQ(view.value().arena().capacity(), 512u);
  }
  {
    api::Session session{api::SessionOptions{}};  // no persistence
    serve::QueryService service(&session);
    auto view = service.View(workload, smaller);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    fresh = view.value().TopK(3);
  }
  EXPECT_EQ(persisted.seeds, fresh.seeds);
  EXPECT_EQ(persisted.estimates, fresh.estimates);
  EXPECT_EQ(persisted.spread, fresh.spread);

  // Still capacity 512 on disk: a load MISS would have resampled at 256
  // and re-saved, so the unchanged manifest proves the hit.
  auto after = store::ReadArenaManifest(arena_dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().capacity, 512u);
}

TEST(QueryServicePersistenceTest, NonFlatServiceBackendMatchesFlat) {
  api::WorkloadSpec workload = api::WorkloadSpec::Dataset("Karate")
                                   .Probability(ProbabilityModel::kUc01);
  serve::QuerySpec query;
  query.sample_number = 256;
  query.seed = 23;

  api::Session flat_session{api::SessionOptions{}};
  serve::QueryService flat_service(&flat_session);
  auto want = flat_service.View(workload, query);
  ASSERT_TRUE(want.ok());

  for (store::ArenaBackend backend :
       {store::ArenaBackend::kCompressed, store::ArenaBackend::kMmap}) {
    api::SessionOptions options;
    options.arena_storage.backend = backend;
    options.arena_storage.spill_dir = FreshDir("service_spill");
    api::Session session(options);
    serve::QueryService service(&session);
    auto got = service.View(workload, query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().arena().backend(), backend);
    serve::TopKResult tw = want.value().TopK(4);
    serve::TopKResult tg = got.value().TopK(4);
    EXPECT_EQ(tw.seeds, tg.seeds);
    EXPECT_EQ(tw.estimates, tg.estimates);
    for (VertexId v = 0; v < got.value().num_vertices(); ++v) {
      EXPECT_EQ(want.value().Spread({&v, 1}), got.value().Spread({&v, 1}));
    }
  }
}

// ---------------------------------------------------------------------
// Fault injection at the arena_io boundaries (ISSUE 9): every injected
// damage mode is a Status the caller falls back from — never an abort,
// never a silently wrong arena — and a clean retry after the fault
// round-trips byte-identically.
// ---------------------------------------------------------------------

/// Installs a fault spec for one test body and uninstalls on scope exit,
/// so a storm can never leak into later cases in this binary (or
/// override a CI SOLDIST_FAULT_SPEC preset for them).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const std::string& spec) {
    Status installed = store::InstallFaultInjector(spec);
    EXPECT_TRUE(installed.ok()) << installed.ToString();
  }
  ~ScopedFaultInjection() { store::UninstallFaultInjector(); }
};

TEST(ArenaIoResilienceTest, TornWriteReportsOkButLoadCatchesTheDamage) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(1, 64));
  std::string dir = FreshDir("resilience_torn");
  {
    ScopedFaultInjection faults("torn-write");
    // The torn write LIES: only a prefix hit disk, yet Save reports
    // success with the full size/checksum — exactly a power-cut between
    // write and the sector actually landing. The read-side guards are
    // the contract under test.
    Status saved = store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
    auto loaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
    EXPECT_FALSE(loaded.ok()) << "torn payload loaded as valid";
  }
  // Clean retry over the damaged directory: save again, load, identical.
  dir = FreshDir("resilience_torn");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir).ok());
  auto reloaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectRrArenasIdentical(*reloaded.value(), arena);
}

TEST(ArenaIoResilienceTest, ShortReadOfACleanPayloadIsStatusNotAbort) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(1, 64));
  std::string dir = FreshDir("resilience_short");
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir).ok());
  {
    ScopedFaultInjection faults("short-read");
    auto loaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
    EXPECT_FALSE(loaded.ok()) << "truncated read loaded as valid";
  }
  auto reloaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectRrArenasIdentical(*reloaded.value(), arena);
}

TEST(ArenaIoResilienceTest, IoErrorStormSaveLoadIsOkOrStatusNeverAbort) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(1, 64));
  ScopedFaultInjection faults("error-rate=0.3,seed=9");
  int round_trips = 0;
  for (int i = 0; i < 20; ++i) {
    std::string dir = FreshDir("resilience_storm_" + std::to_string(i));
    Status saved = store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir);
    auto loaded = store::LoadRrArena(dir, RrManifest(7, "seq", 96));
    // Every outcome is a Status; and a load that DOES succeed must be
    // the genuine arena — a fault may fail an op, never corrupt one.
    if (saved.ok() && loaded.ok()) {
      ExpectRrArenasIdentical(*loaded.value(), arena);
      ++round_trips;
    }
  }
  // rate 0.3 leaves plenty of clean (save, load) pairs in 20 rounds; if
  // every round failed the storm is hitting more than its spec says.
  EXPECT_GT(round_trips, 0);
}

TEST(ArenaIoResilienceTest, ErrorEveryNthOpFailsDeterministically) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 7, 96, Threads(1, 64));
  // Two identical runs under the same every-Nth spec (fresh injector
  // each time resets the op counter) must fail the SAME rounds.
  auto run = [&]() -> std::vector<bool> {
    std::vector<bool> ok;
    ScopedFaultInjection faults("error-every=5");
    for (int i = 0; i < 6; ++i) {
      std::string dir = FreshDir("resilience_every_" + std::to_string(i));
      Status saved = store::SaveRrArena(arena, RrManifest(7, "seq", 96), dir);
      ok.push_back(saved.ok() &&
                   store::LoadRrArena(dir, RrManifest(7, "seq", 96)).ok());
    }
    return ok;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0)
      << "every-5th-op spec injected nothing across 6 save/load rounds";
}

}  // namespace
}  // namespace soldist
