// The background scrubber's contract (ISSUE 10): under an injected fake
// clock, MaybeScrub fires exactly on the interval; a resident arena that
// stops hashing to its admitted checksum is invalidated (evicted, then
// rebuilt byte-identically on the next request) and never served; a
// persisted entry that fails VerifyArena is quarantined; a mid-save
// entry (payload committed, manifest not yet) is left for the commit
// protocol to finish; and the incremental cursors cover every entry
// across consecutive cycles. All ScrubStats counters are monotone.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "serve/arena_cache.h"
#include "serve/scrubber.h"
#include "sim/rr_arena.h"
#include "sim/sampling_engine.h"
#include "sim/world_arena.h"
#include "store/arena_io.h"
#include "util/status.h"

namespace soldist {
namespace serve {
namespace {

namespace fs = std::filesystem;

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

SamplingOptions SeqSampling() {
  SamplingOptions options;
  options.num_threads = 1;
  options.chunk_size = 64;
  return options;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/scrubber_" + name;
  fs::remove_all(dir);
  return dir;
}

store::ArenaManifest RrManifest(std::uint64_t capacity) {
  store::ArenaManifest manifest;
  manifest.kind = "rr";
  manifest.workload = "Karate/uc0.1";
  manifest.seed = 7;
  manifest.stream = "seq";
  manifest.capacity = capacity;
  return manifest;
}

/// A minimal WorldArena whose ContentChecksum reads an external cell —
/// the only way to make an (otherwise immutable) resident arena "rot"
/// on demand in a test.
class RotArena : public WorldArena {
 public:
  explicit RotArena(const std::uint64_t* cell) : cell_(cell) {
    num_vertices_ = 1;
    counters_.Append(TraversalCounters{});
  }
  ArenaKind kind() const override { return ArenaKind::kRr; }
  std::uint64_t MemoryBytes() const override { return 64; }
  std::uint64_t ContentChecksum() const override { return *cell_; }

 private:
  const std::uint64_t* cell_;
};

TEST(ScrubberTest, FakeClockDrivesMaybeScrubOnTheInterval) {
  ArenaCache cache(/*budget_bytes=*/0);
  std::uint64_t now_us = 0;
  Scrubber scrubber(&cache, "", /*interval_ms=*/10, [&] { return now_us; });

  // One interval must elapse after construction before the first cycle.
  now_us = 5'000;
  EXPECT_FALSE(scrubber.MaybeScrub());
  now_us = 10'000;
  EXPECT_TRUE(scrubber.MaybeScrub());
  EXPECT_FALSE(scrubber.MaybeScrub()) << "cycle already claimed this tick";
  now_us = 19'999;
  EXPECT_FALSE(scrubber.MaybeScrub());
  now_us = 20'000;
  EXPECT_TRUE(scrubber.MaybeScrub());
  EXPECT_EQ(scrubber.stats().cycles, 2u);
}

TEST(ScrubberTest, IntervalZeroDisablesTimeDrivenScrubbing) {
  ArenaCache cache(/*budget_bytes=*/0);
  std::uint64_t now_us = 0;
  Scrubber scrubber(&cache, "", /*interval_ms=*/0, [&] { return now_us; });
  now_us = 1'000'000'000;
  EXPECT_FALSE(scrubber.MaybeScrub());
  scrubber.RunCycle();  // explicit cycles still work
  EXPECT_EQ(scrubber.stats().cycles, 1u);
}

TEST(ScrubberTest, ResidentRotIsInvalidatedThenRebuiltOnNextRequest) {
  ArenaCache cache(/*budget_bytes=*/0);
  std::uint64_t cell = 0x1111;
  int builds = 0;
  const ArenaCache::Builder builder = [&](std::uint64_t) {
    ++builds;
    return std::make_shared<RotArena>(&cell);
  };
  ASSERT_NE(cache.GetOrBuild("rr/rot", 1, builder), nullptr);

  Scrubber scrubber(&cache, "", /*interval_ms=*/0);
  scrubber.ScrubAll();
  EXPECT_EQ(scrubber.stats().resident_checked, 1u);
  EXPECT_EQ(scrubber.stats().resident_corruptions, 0u);

  // The arena rots in RAM: its checksum no longer matches admission.
  cell = 0x2222;
  scrubber.ScrubAll();
  const ScrubStats stats = scrubber.stats();
  EXPECT_EQ(stats.resident_checked, 2u);
  EXPECT_EQ(stats.resident_corruptions, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().resident_arenas, 0u) << "rot must not stay cached";

  // The next request rebuilds from the key instead of serving the rot.
  ASSERT_NE(cache.GetOrBuild("rr/rot", 1, builder), nullptr);
  EXPECT_EQ(builds, 2);
  // The rebuild was admitted at the CURRENT checksum, so it is healthy.
  scrubber.ScrubAll();
  EXPECT_EQ(scrubber.stats().resident_corruptions, 1u);
}

TEST(ScrubberTest, HealthyRealArenaPassesTheResidentPass) {
  InfluenceGraph ig = KarateUc01();
  ArenaCache cache(/*budget_bytes=*/0);
  const ArenaCache::Builder builder = [&](std::uint64_t capacity) {
    return std::make_shared<RrArena>(
        RrArena::SampleIc(ig, 7, capacity, SeqSampling()));
  };
  ASSERT_NE(cache.GetOrBuild("rr/karate", 32, builder), nullptr);

  Scrubber scrubber(&cache, "", /*interval_ms=*/0);
  scrubber.ScrubAll();
  EXPECT_EQ(scrubber.stats().resident_checked, 1u);
  EXPECT_EQ(scrubber.stats().resident_corruptions, 0u);
  EXPECT_EQ(cache.stats().resident_arenas, 1u);
}

TEST(ScrubberTest, DiskCorruptionIsQuarantinedExactlyOnce) {
  InfluenceGraph ig = KarateUc01();
  const RrArena arena = RrArena::SampleIc(ig, 7, 32, SeqSampling());
  const std::string root = FreshDir("disk_corruption");
  ASSERT_TRUE(fs::create_directories(root));
  ASSERT_TRUE(store::SaveRrArena(arena, RrManifest(32), root + "/entry").ok());
  fs::resize_file(root + "/entry/payload.bin", 8);

  ArenaCache cache(/*budget_bytes=*/0);
  Scrubber scrubber(&cache, root, /*interval_ms=*/0);
  scrubber.ScrubAll();
  const ScrubStats stats = scrubber.stats();
  EXPECT_EQ(stats.disk_checked, 1u);
  EXPECT_EQ(stats.disk_corruptions, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_FALSE(fs::exists(root + "/entry"));
  EXPECT_TRUE(fs::exists(root + "/quarantine/entry"));

  // A second rotation finds an empty (quarantine-only) tree: nothing
  // further is checked, counted, or double-quarantined.
  scrubber.ScrubAll();
  EXPECT_EQ(scrubber.stats().disk_checked, 1u);
  EXPECT_EQ(scrubber.stats().quarantined, 1u);
}

TEST(ScrubberTest, MidSaveEntryIsLeftForTheCommitProtocol) {
  const std::string root = FreshDir("mid_save");
  // Payload committed, manifest not yet: exactly the window between a
  // save's two renames. VerifyArena reports kNotFound, and the scrubber
  // must neither count it as corruption nor quarantine it.
  ASSERT_TRUE(fs::create_directories(root + "/entry"));
  std::ofstream(root + "/entry/payload.bin") << "committed-first-half";

  ArenaCache cache(/*budget_bytes=*/0);
  Scrubber scrubber(&cache, root, /*interval_ms=*/0);
  scrubber.ScrubAll();
  EXPECT_EQ(scrubber.stats().disk_corruptions, 0u);
  EXPECT_EQ(scrubber.stats().quarantined, 0u);
  EXPECT_TRUE(fs::exists(root + "/entry/payload.bin"));
}

TEST(ScrubberTest, IncrementalCursorCoversEveryDiskEntryAcrossCycles) {
  InfluenceGraph ig = KarateUc01();
  const RrArena arena = RrArena::SampleIc(ig, 7, 32, SeqSampling());
  const std::string root = FreshDir("round_robin");
  ASSERT_TRUE(fs::create_directories(root));
  for (const char* name : {"a_entry", "b_entry", "c_entry"}) {
    ASSERT_TRUE(
        store::SaveRrArena(arena, RrManifest(32), root + "/" + name).ok());
  }
  fs::resize_file(root + "/b_entry/payload.bin", 8);

  ArenaCache cache(/*budget_bytes=*/0);
  Scrubber scrubber(&cache, root, /*interval_ms=*/0);
  // Three incremental cycles = one full rotation of the disk cursor:
  // the corrupted middle entry is found without ever scanning the whole
  // tree in one cycle.
  scrubber.RunCycle();
  scrubber.RunCycle();
  scrubber.RunCycle();
  const ScrubStats stats = scrubber.stats();
  EXPECT_EQ(stats.cycles, 3u);
  EXPECT_EQ(stats.disk_checked, 3u);
  EXPECT_EQ(stats.disk_corruptions, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_FALSE(fs::exists(root + "/b_entry"));
  EXPECT_TRUE(fs::exists(root + "/a_entry"));
  EXPECT_TRUE(fs::exists(root + "/c_entry"));
}

}  // namespace
}  // namespace serve
}  // namespace soldist
