// Unit tests for edge-list parsing, loading, and saving.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/io.h"

namespace soldist {
namespace {

TEST(GraphIoTest, ParsesSnapFormat) {
  auto result = GraphIo::ParseEdgeList(
      "# comment line\n"
      "% konect comment\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EdgeList& edges = result.value();
  // Dense remap in first-appearance order: 10->0, 20->1, 30->2.
  EXPECT_EQ(edges.num_vertices, 3u);
  ASSERT_EQ(edges.arcs.size(), 3u);
  EXPECT_EQ(edges.arcs[0], (Arc{0, 1}));
  EXPECT_EQ(edges.arcs[1], (Arc{1, 2}));
  EXPECT_EQ(edges.arcs[2], (Arc{0, 2}));
}

TEST(GraphIoTest, TabsAndExtraColumnsTolerated) {
  auto result = GraphIo::ParseEdgeList("1\t2\textra\n3  4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().arcs.size(), 2u);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  EXPECT_FALSE(GraphIo::ParseEdgeList("1\n").ok());
  EXPECT_FALSE(GraphIo::ParseEdgeList("a b\n").ok());
}

TEST(GraphIoTest, EmptyTextIsEmptyGraph) {
  auto result = GraphIo::ParseEdgeList("");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices, 0u);
  EXPECT_TRUE(result.value().arcs.empty());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  auto result = GraphIo::LoadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(3, 0);

  std::string path = testing::TempDir() + "/soldist_io_test.txt";
  ASSERT_TRUE(GraphIo::SaveEdgeList(edges, path).ok());
  auto loaded = GraphIo::LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  // Remap preserves first-appearance order which matches the save order.
  EXPECT_EQ(loaded.value().num_vertices, 4u);
  EXPECT_EQ(loaded.value().arcs.size(), 3u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, SaveToBadPathFails) {
  EdgeList edges;
  edges.num_vertices = 1;
  EXPECT_FALSE(GraphIo::SaveEdgeList(edges, "/nonexistent/dir/x.txt").ok());
}

}  // namespace
}  // namespace soldist
