// Determinism regression for the parallel LT path, mirroring
// sampling_engine_test for IC: LT builds draw through the chunked
// deterministic streams for EVERY sampling configuration, so parallel
// builds (num_threads ∈ {1, 2, 4}) must produce byte-identical shards and
// identical seed sets to the sequential default — a stronger contract
// than IC, whose sequential default is a distinct legacy stream family.

#include <gtest/gtest.h>

#include <vector>

#include "core/factory.h"
#include "core/greedy.h"
#include "core/lt_estimators.h"
#include "exp/trial_runner.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/diffusion.h"
#include "model/probability.h"
#include "sim/lt_forward_sim.h"
#include "sim/lt_samplers.h"
#include "sim/sampling_engine.h"

namespace soldist {
namespace {

InfluenceGraph KarateIwc() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
}

/// Sequential default, but with the test's chunk size (the chunk size —
/// never the worker count — selects which stream produces which sample).
SamplingOptions Sequential(std::uint64_t chunk_size = 64) {
  SamplingOptions options;
  options.chunk_size = chunk_size;
  return options;
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size = 64) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

void ExpectCountersEq(const TraversalCounters& a,
                      const TraversalCounters& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.sample_vertices, b.sample_vertices);
  EXPECT_EQ(a.sample_edges, b.sample_edges);
}

TEST(LtSamplingEngineTest, RrShardsIdenticalAcrossWorkerCounts) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  SamplingEngine sequential(Sequential(32));
  auto reference = SampleLtRrShards(weights, 7, 500, &sequential);
  for (int threads : {2, 4}) {
    SamplingEngine parallel(Threads(threads, 32));
    auto shards = SampleLtRrShards(weights, 7, 500, &parallel);
    ASSERT_EQ(shards.size(), reference.size()) << threads;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      EXPECT_EQ(shards[s].flat, reference[s].flat) << threads;
      EXPECT_EQ(shards[s].offsets, reference[s].offsets) << threads;
      ExpectCountersEq(shards[s].counters, reference[s].counters);
    }
  }
}

TEST(LtSamplingEngineTest, SnapshotShardsIdenticalAcrossWorkerCounts) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  SamplingEngine sequential(Sequential(16));
  auto reference = SampleLtSnapshotShards(weights, 9, 200, &sequential);
  for (int threads : {2, 4}) {
    SamplingEngine parallel(Threads(threads, 16));
    auto shards = SampleLtSnapshotShards(weights, 9, 200, &parallel);
    ASSERT_EQ(shards.size(), reference.size()) << threads;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      ASSERT_EQ(shards[s].snapshots.size(), reference[s].snapshots.size());
      for (std::size_t i = 0; i < shards[s].snapshots.size(); ++i) {
        EXPECT_EQ(shards[s].snapshots[i].out_offsets,
                  reference[s].snapshots[i].out_offsets);
        EXPECT_EQ(shards[s].snapshots[i].out_targets,
                  reference[s].snapshots[i].out_targets);
      }
      ExpectCountersEq(shards[s].counters, reference[s].counters);
    }
  }
}

TEST(LtSamplingEngineTest, ShardedForwardSimIdenticalAndUnbiased) {
  // Diamond with all weights 0.5: exact LT influence of {0} is 2.5.
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  InfluenceGraph ig(GraphBuilder::FromEdgeList(edges),
                    std::vector<double>(4, 0.5));
  const std::vector<VertexId> seeds = {0};

  SamplingEngine sequential(Sequential(64));
  TraversalCounters counters1;
  double reference = EstimateLtInfluenceSharded(ig, seeds, 20000, 13,
                                                &sequential, &counters1);
  EXPECT_NEAR(reference, 2.5, 0.05);
  for (int threads : {2, 4}) {
    SamplingEngine parallel(Threads(threads, 64));
    TraversalCounters counters;
    double mean = EstimateLtInfluenceSharded(ig, seeds, 20000, 13,
                                             &parallel, &counters);
    EXPECT_DOUBLE_EQ(mean, reference) << threads;
    ExpectCountersEq(counters, counters1);
  }
}

/// Runs one greedy selection and returns (sorted seed set, counters).
std::pair<std::vector<VertexId>, TraversalCounters> LtGreedyWith(
    const LtWeights& weights, Approach approach, std::uint64_t samples,
    const SamplingOptions& sampling, int k) {
  auto estimator =
      MakeLtEstimator(&weights, approach, samples, /*seed=*/21, sampling);
  Rng tie_rng(123);
  GreedyRunResult run = RunGreedy(
      estimator.get(), weights.influence_graph().num_vertices(), k, &tie_rng);
  return {run.SortedSeedSet(), estimator->counters()};
}

TEST(LtSamplingEngineTest, EstimatorsIdenticalAcrossThreadCounts) {
  // The satellite contract: num_threads ∈ {1, 2, 4} all match the
  // sequential default — seed sets AND counters.
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    std::uint64_t samples = approach == Approach::kRis ? 2000 : 256;
    auto [seeds_ref, counters_ref] =
        LtGreedyWith(weights, approach, samples, Sequential(), 3);
    for (int threads : {2, 4}) {
      auto [seeds, counters] =
          LtGreedyWith(weights, approach, samples, Threads(threads), 3);
      EXPECT_EQ(seeds, seeds_ref)
          << ApproachName(approach) << " @ " << threads << " threads";
      ExpectCountersEq(counters, counters_ref);
    }
  }
}

TEST(LtSamplingEngineTest, UnifiedFactoryRoutesBothModels) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  auto lt = MakeEstimator(ModelInstance::Lt(&weights), Approach::kRis, 64, 1);
  EXPECT_EQ(lt->name(), "LT-RIS");
  auto ic = MakeEstimator(ModelInstance::Ic(&ig), Approach::kRis, 64, 1);
  EXPECT_EQ(ic->name(), "RIS");
  // The unified overload must agree with the direct LT factory.
  auto direct = MakeLtEstimator(&weights, Approach::kRis, 64, 1);
  lt->Build();
  direct->Build();
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(lt->Estimate(v), direct->Estimate(v)) << v;
  }
}

TEST(LtSamplingEngineTest, RunTrialsLtIdenticalAcrossSamplingModes) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  ModelInstance instance = ModelInstance::Lt(&weights);
  TrialConfig config;
  config.approach = Approach::kRis;
  config.sample_number = 512;
  config.k = 2;
  config.trials = 6;
  config.master_seed = 31;
  config.sampling.chunk_size = 64;

  // Sequential default (inline chunked streams)...
  TrialResult sequential = RunTrials(instance, config, nullptr);

  // ...vs sample-level parallelism on a shared pool...
  ThreadPool four(4);
  TrialConfig parallel_config = config;
  parallel_config.sampling.num_threads = 0;  // engine on the shared pool
  TrialResult sample_parallel = RunTrials(instance, parallel_config, &four);
  EXPECT_EQ(sequential.seed_sets, sample_parallel.seed_sets);
  ExpectCountersEq(sequential.total_counters,
                   sample_parallel.total_counters);

  // ...vs trial-level parallelism (legacy sampling mode fans trials out).
  TrialResult trial_parallel = RunTrials(instance, config, &four);
  EXPECT_EQ(sequential.seed_sets, trial_parallel.seed_sets);
  ExpectCountersEq(sequential.total_counters,
                   trial_parallel.total_counters);
}

TEST(LtSamplingEngineTest, OneshotEstimateSequenceIdentical) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtOneshotEstimator a(&weights, 256, 17, Sequential());
  LtOneshotEstimator b(&weights, 256, 17, Threads(4));
  a.Build();
  b.Build();
  for (VertexId v = 0; v < 8; ++v) {
    ASSERT_DOUBLE_EQ(a.Estimate(v), b.Estimate(v)) << "vertex " << v;
  }
  a.Update(0);
  b.Update(0);
  ASSERT_DOUBLE_EQ(a.Estimate(5), b.Estimate(5));
  ExpectCountersEq(a.counters(), b.counters());
}

}  // namespace
}  // namespace soldist
