// Tests for the IMM algorithm.

#include <gtest/gtest.h>

#include "core/imm.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

TEST(ImmTest, FindsNearOptimalSeedsOnKarate) {
  InfluenceGraph ig = KarateUc01();
  ImmParams params{.k = 2, .epsilon = 0.3, .ell = 1.0};
  ImmResult result = RunImm(ig, params, 7);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_GE(result.theta, 1u);
  EXPECT_GE(result.guessing_rounds, 1);

  RrOracle oracle(&ig, 100000, 8);
  double got = oracle.EstimateInfluence(result.seeds);
  double reference = oracle.EstimateInfluence(oracle.OracleGreedySeeds(2));
  // IMM's guarantee is (1−1/e−ε) ≈ 0.33 here; empirically it lands much
  // closer — require 90%.
  EXPECT_GE(got, 0.9 * reference);
}

TEST(ImmTest, LowerBoundBelowOptAboveOne) {
  InfluenceGraph ig = KarateUc01();
  ImmParams params{.k = 1, .epsilon = 0.2, .ell = 1.0};
  ImmResult result = RunImm(ig, params, 9);
  RrOracle oracle(&ig, 100000, 10);
  double opt = oracle.EstimateInfluence(oracle.OracleGreedySeeds(1));
  EXPECT_GE(result.opt_lower_bound, 1.0);
  // The sampling phase certifies LB <= OPT up to estimation noise.
  EXPECT_LE(result.opt_lower_bound, 1.3 * opt);
}

TEST(ImmTest, TighterEpsilonUsesMoreRrSets) {
  InfluenceGraph ig = KarateUc01();
  ImmResult loose = RunImm(ig, {.k = 1, .epsilon = 0.5, .ell = 1.0}, 11);
  ImmResult tight = RunImm(ig, {.k = 1, .epsilon = 0.2, .ell = 1.0}, 11);
  EXPECT_GT(tight.theta, loose.theta);
}

TEST(ImmTest, DeterministicInSeed) {
  InfluenceGraph ig = KarateUc01();
  ImmParams params{.k = 2, .epsilon = 0.4, .ell = 1.0};
  ImmResult a = RunImm(ig, params, 13);
  ImmResult b = RunImm(ig, params, 13);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.opt_lower_bound, b.opt_lower_bound);
}

TEST(ImmTest, CountsTraversalWork) {
  InfluenceGraph ig = KarateUc01();
  ImmResult result = RunImm(ig, {.k = 1, .epsilon = 0.4, .ell = 1.0}, 15);
  EXPECT_GT(result.counters.vertices, 0u);
  EXPECT_GT(result.counters.sample_vertices, 0u);
  EXPECT_GT(result.estimated_influence, 1.0);
}

}  // namespace
}  // namespace soldist
