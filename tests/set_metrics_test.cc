// Tests for seed-set similarity and distribution-distance metrics.

#include <gtest/gtest.h>

#include "stats/set_metrics.h"

namespace soldist {
namespace {

TEST(JaccardTest, BasicCases) {
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(std::vector<VertexId>{1, 2, 3},
                        std::vector<VertexId>{2, 3, 4}),
      0.5);  // |{2,3}| / |{1,2,3,4}|
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<VertexId>{1},
                                     std::vector<VertexId>{1}),
                   1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<VertexId>{1},
                                     std::vector<VertexId>{2}),
                   0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<VertexId>{},
                                     std::vector<VertexId>{}),
                   1.0);
}

TEST(JaccardTest, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(
      JaccardSimilarity(std::vector<VertexId>{3, 1, 2},
                        std::vector<VertexId>{2, 4, 3}),
      0.5);
}

TEST(TotalVariationTest, IdenticalIsZero) {
  SeedSetDistribution p, q;
  p.Add({1});
  p.Add({2});
  q.Add({1});
  q.Add({2});
  EXPECT_NEAR(TotalVariationDistance(p, q), 0.0, 1e-12);
}

TEST(TotalVariationTest, DisjointIsOne) {
  SeedSetDistribution p, q;
  p.Add({1});
  q.Add({2});
  EXPECT_NEAR(TotalVariationDistance(p, q), 1.0, 1e-12);
}

TEST(TotalVariationTest, PartialOverlap) {
  SeedSetDistribution p, q;
  p.Add({1});
  p.Add({1});  // p: {1} w.p. 1
  q.Add({1});
  q.Add({2});  // q: {1} 0.5, {2} 0.5
  // TV = (|1 − 0.5| + |0 − 0.5|)/2 = 0.5.
  EXPECT_NEAR(TotalVariationDistance(p, q), 0.5, 1e-12);
}

TEST(TotalVariationTest, Symmetric) {
  SeedSetDistribution p, q;
  p.Add({1});
  p.Add({3});
  q.Add({1});
  q.Add({2});
  q.Add({2});
  EXPECT_DOUBLE_EQ(TotalVariationDistance(p, q),
                   TotalVariationDistance(q, p));
}

TEST(InclusionFrequenciesTest, SumsToK) {
  SeedSetDistribution dist;
  dist.Add({0, 1});
  dist.Add({0, 2});
  dist.Add({1, 2});
  dist.Add({0, 1});
  auto freq = InclusionFrequencies(dist, 4);
  EXPECT_DOUBLE_EQ(freq[0], 0.75);
  EXPECT_DOUBLE_EQ(freq[1], 0.75);
  EXPECT_DOUBLE_EQ(freq[2], 0.5);
  EXPECT_DOUBLE_EQ(freq[3], 0.0);
  double total = freq[0] + freq[1] + freq[2] + freq[3];
  EXPECT_NEAR(total, 2.0, 1e-12);  // k = 2
}

TEST(ExpectedPairwiseJaccardTest, DegenerateIsOne) {
  SeedSetDistribution dist;
  for (int i = 0; i < 5; ++i) dist.Add({7, 9});
  EXPECT_DOUBLE_EQ(ExpectedPairwiseJaccard(dist), 1.0);
}

TEST(ExpectedPairwiseJaccardTest, DisjointUniform) {
  SeedSetDistribution dist;
  dist.Add({1});
  dist.Add({2});
  // Pairs: (1,1) 0.25·1, (2,2) 0.25·1, cross 0.5·0 = 0.5.
  EXPECT_DOUBLE_EQ(ExpectedPairwiseJaccard(dist), 0.5);
}

TEST(ExpectedPairwiseJaccardTest, RisesAsDistributionConcentrates) {
  SeedSetDistribution spread, tight;
  spread.Add({1});
  spread.Add({2});
  spread.Add({3});
  tight.Add({1});
  tight.Add({1});
  tight.Add({2});
  EXPECT_GT(ExpectedPairwiseJaccard(tight), ExpectedPairwiseJaccard(spread));
}

}  // namespace
}  // namespace soldist
