// Tests for the linear-threshold model extension: LtWeights, the LT
// simulators/samplers, and the three LT estimators, validated against
// exact LT influence on tiny graphs.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/lt_estimators.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/lt.h"
#include "model/probability.h"
#include "oracle/exact_oracle.h"
#include "sim/lt_forward_sim.h"
#include "sim/lt_samplers.h"

namespace soldist {
namespace {

/// Diamond with all weights 0.5; vertex 3's in-weights sum to 1.
InfluenceGraph DiamondLt() {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(4, 0.5));
}

InfluenceGraph Chain3Lt(double w) {
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 1);
  edges.Add(1, 2);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {w, w});
}

InfluenceGraph KarateIwc() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
}

// LT(Diamond, S={0}): 1 and 2 activate w.p. 0.5 each; 3 keeps the edge
// from 1 or from 2 (w.p. 0.5 each) and activates iff that one is active.
// Pr[3] = 0.5*0.5 + 0.5*0.5 = 0.5. Inf = 1 + 0.5 + 0.5 + 0.5 = 2.5.
constexpr double kDiamondLtInfluence = 2.5;

TEST(LtValidityTest, IwcIsValidUcIsNot) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph iwc = MakeInfluenceGraph(Graph(g), ProbabilityModel::kIwc);
  EXPECT_TRUE(IsValidLtGraph(iwc));
  // uc0.1 on Karate: vertex 33 has in-degree 17, sum = 1.7 > 1.
  InfluenceGraph uc = MakeInfluenceGraph(Graph(g), ProbabilityModel::kUc01);
  EXPECT_FALSE(IsValidLtGraph(uc));
}

TEST(LtWeightsTest, SampleDistribution) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  EXPECT_DOUBLE_EQ(weights.Total(3), 1.0);
  EXPECT_DOUBLE_EQ(weights.Total(1), 0.5);
  EXPECT_DOUBLE_EQ(weights.Total(0), 0.0);

  Rng rng(1);
  int from_1 = 0, from_2 = 0, none = 0;
  constexpr int kSamples = 100000;
  const Graph& g = ig.graph();
  for (int i = 0; i < kSamples; ++i) {
    EdgeId pos = weights.SampleLiveInEdge(3, &rng);
    if (pos == LtWeights::kNoInEdge) {
      ++none;
    } else if (g.in_sources()[pos] == 1) {
      ++from_1;
    } else {
      ++from_2;
    }
  }
  EXPECT_EQ(none, 0);  // vertex 3's weights sum to exactly 1
  EXPECT_NEAR(from_1 / static_cast<double>(kSamples), 0.5, 0.01);
  EXPECT_NEAR(from_2 / static_cast<double>(kSamples), 0.5, 0.01);
}

TEST(LtWeightsTest, NoInEdgeForSources) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(weights.SampleLiveInEdge(0, &rng), LtWeights::kNoInEdge);
  }
}

TEST(ExactLtTest, DiamondClosedForm) {
  InfluenceGraph ig = DiamondLt();
  EXPECT_NEAR(ExactLtInfluence(ig, std::vector<VertexId>{0}),
              kDiamondLtInfluence, 1e-12);
  EXPECT_NEAR(ExactLtInfluence(ig, std::vector<VertexId>{3}), 1.0, 1e-12);
}

TEST(ExactLtTest, ChainMatchesIcOnInDegreeOneGraphs) {
  // With in-degree <= 1 everywhere, LT and IC coincide.
  InfluenceGraph ig = Chain3Lt(0.5);
  double lt = ExactLtInfluence(ig, std::vector<VertexId>{0});
  double ic = ExactInfluence(ig, std::vector<VertexId>{0});
  EXPECT_NEAR(lt, ic, 1e-12);
  EXPECT_NEAR(lt, 1.0 + 0.5 + 0.25, 1e-12);
}

TEST(LtForwardSimTest, UnbiasedOnDiamond) {
  InfluenceGraph ig = DiamondLt();
  LtForwardSimulator sim(&ig);
  Rng rng(3);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  double estimate = sim.EstimateInfluence(seeds, 200000, &rng, &counters);
  EXPECT_NEAR(estimate, kDiamondLtInfluence, 0.02);
}

TEST(LtForwardSimTest, SeedsAlwaysCounted) {
  InfluenceGraph ig = DiamondLt();
  LtForwardSimulator sim(&ig);
  Rng rng(4);
  TraversalCounters counters;
  const VertexId seeds[2] = {0, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(sim.Simulate(seeds, &rng, &counters), 2u);
  }
}

TEST(LtSnapshotSamplerTest, AtMostOneInEdgePerVertex) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtSnapshotSampler sampler(&weights);
  Rng rng(5);
  TraversalCounters counters;
  for (int i = 0; i < 20; ++i) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    // In-degree <= 1 in the live graph: count incoming per vertex.
    std::vector<int> in_count(ig.num_vertices(), 0);
    for (VertexId t : snap.out_targets) ++in_count[t];
    for (int c : in_count) EXPECT_LE(c, 1);
    EXPECT_LE(snap.num_live_edges(), ig.num_vertices());
  }
}

TEST(LtSnapshotSamplerTest, BuildWorkCounted) {
  // Build-phase accounting must match the RR walk's: one vertex
  // examination per SampleLiveInEdge, one edge examination per kept live
  // edge — otherwise LT snapshot build cost is invisible to Table-8-style
  // traversal-cost accounting.
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtSnapshotSampler sampler(&weights);
  Rng rng(16);
  TraversalCounters counters;
  Snapshot snap = sampler.Sample(&rng, &counters);
  EXPECT_EQ(counters.vertices, ig.num_vertices());
  EXPECT_EQ(counters.edges, snap.num_live_edges());
  EXPECT_EQ(counters.sample_edges, snap.num_live_edges());

  // A second draw accumulates, never resets.
  Snapshot snap2 = sampler.Sample(&rng, &counters);
  EXPECT_EQ(counters.vertices, 2ull * ig.num_vertices());
  EXPECT_EQ(counters.edges, snap.num_live_edges() + snap2.num_live_edges());
}

TEST(LtSnapshotSamplerTest, MeanReachMatchesExact) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  LtSnapshotSampler sampler(&weights);
  Rng rng(6);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  std::uint64_t total = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    total += sampler.CountReachable(snap, seeds, &counters);
  }
  EXPECT_NEAR(static_cast<double>(total) / kSamples, kDiamondLtInfluence,
              0.02);
}

TEST(LtRrSamplerTest, HitProbabilityMatchesExact) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  LtRrSampler sampler(&weights);
  Rng target_rng(7), coin_rng(8);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    if (std::find(rr_set.begin(), rr_set.end(), 0u) != rr_set.end()) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples,
              kDiamondLtInfluence / 4.0, 0.006);
}

TEST(LtRrSamplerTest, WalkIsAChain) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtRrSampler sampler(&weights);
  Rng target_rng(9), coin_rng(10);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (int i = 0; i < 200; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    // No duplicates: the walk stops at revisits.
    std::vector<VertexId> sorted = rr_set;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
  }
}

TEST(LtEstimatorsTest, AllThreeUnbiasedOnDiamond) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    auto estimator = MakeLtEstimator(&weights, approach, 100000, 11);
    estimator->Build();
    EXPECT_NEAR(estimator->Estimate(0), kDiamondLtInfluence, 0.03)
        << ApproachName(approach);
  }
}

TEST(LtEstimatorsTest, GreedyRunsAndConvergesAcrossApproaches) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  std::map<Approach, std::vector<VertexId>> seeds;
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    std::uint64_t sample_number =
        approach == Approach::kRis ? (1 << 15) : (1 << 11);
    auto estimator = MakeLtEstimator(&weights, approach, sample_number, 12);
    Rng tie_rng(13);
    auto result = RunGreedy(estimator.get(), ig.num_vertices(), 1, &tie_rng);
    seeds[approach] = result.SortedSeedSet();
  }
  // Same limit behavior under LT as under IC: all approaches find the
  // same top vertex at large sample numbers.
  EXPECT_EQ(seeds[Approach::kOneshot], seeds[Approach::kSnapshot]);
  EXPECT_EQ(seeds[Approach::kSnapshot], seeds[Approach::kRis]);
}

TEST(LtEstimatorsTest, SnapshotMarginalsShrink) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtSnapshotEstimator estimator(&weights, 64, 14);
  estimator.Build();
  std::vector<double> before(ig.num_vertices());
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    before[v] = estimator.Estimate(v);
  }
  estimator.Update(0);
  for (VertexId v = 1; v < ig.num_vertices(); ++v) {
    EXPECT_LE(estimator.Estimate(v), before[v] + 1e-12);
  }
}

TEST(LtEstimatorsTest, RisUpdateZeroesCoveredSeed) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  LtRisEstimator estimator(&weights, 2048, 15);
  estimator.Build();
  estimator.Update(33);
  EXPECT_DOUBLE_EQ(estimator.Estimate(33), 0.0);
}

TEST(LtEstimatorsTest, NamesAndFlags) {
  InfluenceGraph ig = DiamondLt();
  LtWeights weights(&ig);
  auto oneshot = MakeLtEstimator(&weights, Approach::kOneshot, 4, 1);
  auto snapshot = MakeLtEstimator(&weights, Approach::kSnapshot, 4, 1);
  auto ris = MakeLtEstimator(&weights, Approach::kRis, 4, 1);
  EXPECT_EQ(oneshot->name(), "LT-Oneshot");
  EXPECT_FALSE(oneshot->EstimatesAreMarginal());
  EXPECT_EQ(snapshot->name(), "LT-Snapshot");
  EXPECT_TRUE(snapshot->EstimatesAreMarginal());
  EXPECT_EQ(ris->name(), "LT-RIS");
  EXPECT_TRUE(ris->EstimatesAreMarginal());
}

}  // namespace
}  // namespace soldist
