// The condensed Snapshot backend's contract: SCC condensation preserves
// reachability EXACTLY, and the backends share sampler streams, so
// Mode::kCondensed must be a pure speed change — byte-identical seed
// sets and estimates to kNaive/kResidual under every driver and every
// sampling width.

#include <gtest/gtest.h>

#include "core/celf.h"
#include "core/greedy.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "sim/condensed_snapshot.h"
#include "sim/snapshot_sampler.h"

namespace soldist {
namespace {

InfluenceGraph Make(const EdgeList& edges, ProbabilityModel prob) {
  return MakeInfluenceGraph(GraphBuilder::FromEdgeList(edges), prob);
}

/// A 1+2n-vertex star with bidirected spokes: every leaf reaches every
/// other leaf through the hub, so live-edge graphs grow one giant SCC —
/// the regime where component granularity pays the most.
EdgeList BidirectedStar(VertexId leaves) {
  EdgeList edges;
  edges.num_vertices = leaves + 1;
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    edges.Add(0, leaf);
    edges.Add(leaf, 0);
  }
  return edges;
}

/// Exact reach parity, snapshot by snapshot and vertex by vertex: the
/// condensed DAG count must equal a raw BFS on the live-edge CSR.
void CheckReachParity(const InfluenceGraph& ig, std::uint64_t tau,
                      std::uint64_t seed) {
  SnapshotSampler sampler(&ig);
  Rng rng(seed);
  TraversalCounters counters;
  for (std::uint64_t i = 0; i < tau; ++i) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    CondensedSnapshot condensed = CondenseSnapshot(snap, ig.num_vertices());
    std::uint32_t total_members = 0;
    for (std::uint32_t size : condensed.comp_size) total_members += size;
    ASSERT_EQ(total_members, ig.num_vertices());
    for (VertexId v = 0; v < ig.num_vertices(); ++v) {
      const VertexId source[1] = {v};
      ASSERT_EQ(condensed.CountReachable(v),
                sampler.CountReachable(snap, source, &counters))
          << "snapshot " << i << " vertex " << v;
    }
  }
}

TEST(CondensedSnapshotTest, ReachParityKarate) {
  CheckReachParity(Make(Datasets::Karate(), ProbabilityModel::kUc01), 16, 7);
  CheckReachParity(Make(Datasets::Karate(), ProbabilityModel::kIwc), 16, 8);
}

TEST(CondensedSnapshotTest, ReachParityBarabasiAlbert) {
  CheckReachParity(Make(Datasets::BaSparse(3), ProbabilityModel::kIwc), 6, 9);
  CheckReachParity(Make(Datasets::BaDense(4), ProbabilityModel::kUc001), 4,
                   10);
}

TEST(CondensedSnapshotTest, ReachParityStar) {
  // p=0.3 spokes: snapshots mix giant SCCs (hub↔leaf cycles) with
  // stranded leaves.
  Graph g = GraphBuilder::FromEdgeList(BidirectedStar(64));
  InfluenceGraph ig(std::move(g),
                    std::vector<double>(64 * 2, 0.3));
  CheckReachParity(ig, 16, 11);
}

struct ModeRun {
  GreedyRunResult greedy;
  GreedyRunResult celf;
  std::uint64_t celf_calls = 0;
};

ModeRun RunBothDrivers(const InfluenceGraph& ig, SnapshotEstimator::Mode mode,
                       std::uint64_t tau, std::uint64_t seed, int k,
                       const SamplingOptions& sampling) {
  ModeRun out;
  {
    SnapshotEstimator estimator(&ig, tau, seed, mode, sampling);
    Rng tie_rng(seed + 1);
    out.greedy = RunGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
  }
  {
    SnapshotEstimator estimator(&ig, tau, seed, mode, sampling);
    Rng tie_rng(seed + 1);
    CelfRunResult celf =
        RunCelfGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
    out.celf = celf.greedy;
    out.celf_calls = celf.estimate_calls;
  }
  return out;
}

/// Byte-identical seeds AND estimates across all three backends, for the
/// plain greedy driver and the CELF driver, at sampling widths 1 (legacy
/// sequential stream), 2, and 4 (engine-chunked streams).
void CheckBackendParity(const InfluenceGraph& ig, std::uint64_t tau,
                        std::uint64_t seed, int k) {
  for (int sample_threads : {1, 2, 4}) {
    SamplingOptions sampling;
    sampling.num_threads = sample_threads;
    ModeRun residual = RunBothDrivers(
        ig, SnapshotEstimator::Mode::kResidual, tau, seed, k, sampling);
    for (SnapshotEstimator::Mode mode :
         {SnapshotEstimator::Mode::kNaive,
          SnapshotEstimator::Mode::kCondensed}) {
      ModeRun other = RunBothDrivers(ig, mode, tau, seed, k, sampling);
      EXPECT_EQ(other.greedy.seeds, residual.greedy.seeds)
          << SnapshotModeName(mode) << " st=" << sample_threads;
      EXPECT_EQ(other.greedy.estimates, residual.greedy.estimates)
          << SnapshotModeName(mode) << " st=" << sample_threads;
      EXPECT_EQ(other.celf.seeds, residual.celf.seeds)
          << SnapshotModeName(mode) << " st=" << sample_threads;
      EXPECT_EQ(other.celf.estimates, residual.celf.estimates)
          << SnapshotModeName(mode) << " st=" << sample_threads;
    }
  }
}

TEST(CondensedBackendTest, ByteIdenticalKarate) {
  CheckBackendParity(Make(Datasets::Karate(), ProbabilityModel::kUc01), 64,
                     21, 4);
  CheckBackendParity(Make(Datasets::Karate(), ProbabilityModel::kIwc), 64,
                     22, 4);
}

TEST(CondensedBackendTest, ByteIdenticalBarabasiAlbert) {
  CheckBackendParity(Make(Datasets::BaSparse(5), ProbabilityModel::kIwc), 16,
                     23, 4);
}

TEST(CondensedBackendTest, ByteIdenticalStarGiantScc) {
  Graph g = GraphBuilder::FromEdgeList(BidirectedStar(48));
  InfluenceGraph ig(std::move(g), std::vector<double>(48 * 2, 0.3));
  CheckBackendParity(ig, 32, 24, 4);
}

TEST(CondensedBackendTest, InitialBoundsAreSound) {
  InfluenceGraph ig = Make(Datasets::Karate(), ProbabilityModel::kUc01);
  SnapshotEstimator estimator(&ig, 64, 31,
                              SnapshotEstimator::Mode::kCondensed);
  EXPECT_TRUE(estimator.ProvidesInitialBounds());
  estimator.Build();
  for (VertexId v = 0; v < ig.num_vertices(); ++v) {
    EXPECT_GE(estimator.InitialBound(v), estimator.Estimate(v))
        << "vertex " << v;
  }
}

TEST(CondensedBackendTest, CelfSkipsTheExactInitialSweep) {
  // The lazy bound initialization must touch at most as many candidates
  // in total as the exact-init run spends on its first sweep alone.
  InfluenceGraph ig = Make(Datasets::Karate(), ProbabilityModel::kUc01);
  ModeRun residual = RunBothDrivers(
      ig, SnapshotEstimator::Mode::kResidual, 64, 41, 4, {});
  ModeRun condensed = RunBothDrivers(
      ig, SnapshotEstimator::Mode::kCondensed, 64, 41, 4, {});
  EXPECT_LT(condensed.celf_calls, residual.celf_calls);
}

TEST(CondensedBackendTest, CondensedUsesLessMemoryWhenComponentsAreLarge) {
  // The memory claim is regime-dependent: condensed pays 4 B/vertex for
  // the component map but drops the live-edge CSR (8 B/vertex offsets +
  // 4 B/live edge) and the n-byte removal bitmap, so it wins once live
  // components are large (percolated snapshots) and loses on
  // near-singleton decompositions. Dense live star: most spokes close a
  // cycle through the hub, one giant SCC per snapshot.
  Graph g = GraphBuilder::FromEdgeList(BidirectedStar(512));
  InfluenceGraph ig(std::move(g), std::vector<double>(512 * 2, 0.9));
  SnapshotEstimator residual(&ig, 32, 51,
                             SnapshotEstimator::Mode::kResidual);
  SnapshotEstimator condensed(&ig, 32, 51,
                              SnapshotEstimator::Mode::kCondensed);
  residual.Build();
  condensed.Build();
  EXPECT_LT(condensed.MemoryBytes(), residual.MemoryBytes());
}

TEST(SnapshotModeTest, ParseAndName) {
  EXPECT_EQ(SnapshotModeName(SnapshotEstimator::Mode::kCondensed),
            "condensed");
  EXPECT_EQ(ParseSnapshotMode("Condensed").value(),
            SnapshotEstimator::Mode::kCondensed);
  EXPECT_EQ(ParseSnapshotMode("naive").value(),
            SnapshotEstimator::Mode::kNaive);
  EXPECT_EQ(ParseSnapshotMode("RESIDUAL").value(),
            SnapshotEstimator::Mode::kResidual);
  EXPECT_FALSE(ParseSnapshotMode("pruned").ok());
}

}  // namespace
}  // namespace soldist
