// Tests for degree-distribution analysis.

#include <gtest/gtest.h>

#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/degree_stats.h"

namespace soldist {
namespace {

Graph StarOut(VertexId leaves) {
  EdgeList edges;
  edges.num_vertices = leaves + 1;
  for (VertexId i = 1; i <= leaves; ++i) edges.Add(0, i);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(DegreeStatsTest, SequenceAndHistogram) {
  Graph g = StarOut(4);
  auto out = DegreeSequence(g, DegreeKind::kOut);
  EXPECT_EQ(out, (std::vector<VertexId>{4, 0, 0, 0, 0}));
  auto in = DegreeSequence(g, DegreeKind::kIn);
  EXPECT_EQ(in, (std::vector<VertexId>{0, 1, 1, 1, 1}));

  auto hist = DegreeHistogram(g, DegreeKind::kOut);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(DegreeStatsTest, MleNeedsEnoughTail) {
  Graph g = StarOut(4);
  EXPECT_FALSE(PowerLawExponentMle(g, DegreeKind::kOut, 1).has_value());
}

TEST(DegreeStatsTest, BaGraphLooksScaleFree) {
  Rng rng(1);
  EdgeList edges = BarabasiAlbert(20000, 3, &rng);
  edges.MakeBidirected();
  Graph g = GraphBuilder::FromEdgeList(edges);
  auto gamma = PowerLawExponentMle(g, DegreeKind::kOut, 5);
  ASSERT_TRUE(gamma.has_value());
  // BA's theoretical exponent is 3 (paper Section 4.2.1: γ ∈ [2,3]).
  EXPECT_GT(*gamma, 2.0);
  EXPECT_LT(*gamma, 3.8);
}

TEST(DegreeStatsTest, ErGraphHasLowerGiniThanBa) {
  Rng rng(2);
  EdgeList er = ErdosRenyiGnm(5000, 15000, &rng);
  EdgeList ba = BarabasiAlbert(5000, 3, &rng);
  ba.MakeBidirected();
  double gini_er =
      DegreeGiniCoefficient(GraphBuilder::FromEdgeList(er), DegreeKind::kOut);
  double gini_ba =
      DegreeGiniCoefficient(GraphBuilder::FromEdgeList(ba), DegreeKind::kOut);
  // Poissonian degrees are far more equal than preferential attachment.
  EXPECT_LT(gini_er, gini_ba);
}

TEST(DegreeStatsTest, GiniExtremes) {
  // All-equal degrees -> Gini 0.
  EdgeList cycle;
  cycle.num_vertices = 10;
  for (VertexId v = 0; v < 10; ++v) cycle.Add(v, (v + 1) % 10);
  EXPECT_NEAR(DegreeGiniCoefficient(GraphBuilder::FromEdgeList(cycle),
                                    DegreeKind::kOut),
              0.0, 1e-12);
  // One hub owns every edge -> Gini near 1.
  Graph star = StarOut(50);
  EXPECT_GT(DegreeGiniCoefficient(star, DegreeKind::kOut), 0.9);
}

TEST(DegreeStatsTest, EmptyGraph) {
  EdgeList edges;
  edges.num_vertices = 0;
  Graph g = GraphBuilder::FromEdgeList(edges);
  EXPECT_DOUBLE_EQ(DegreeGiniCoefficient(g, DegreeKind::kOut), 0.0);
}

}  // namespace
}  // namespace soldist
