// Unit tests for VisitedMarker and BfsReachability.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/traversal.h"

namespace soldist {
namespace {

Graph Chain(VertexId n) {
  EdgeList edges;
  edges.num_vertices = n;
  for (VertexId v = 0; v + 1 < n; ++v) edges.Add(v, v + 1);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(VisitedMarkerTest, MarkAndEpochReset) {
  VisitedMarker marker(4);
  EXPECT_TRUE(marker.Mark(2));
  EXPECT_TRUE(marker.IsMarked(2));
  EXPECT_FALSE(marker.Mark(2));  // second mark reports already-marked
  marker.NextEpoch();
  EXPECT_FALSE(marker.IsMarked(2));
  EXPECT_TRUE(marker.Mark(2));
}

TEST(VisitedMarkerTest, SurvivesManyEpochs) {
  VisitedMarker marker(2);
  for (int i = 0; i < 100000; ++i) {
    marker.NextEpoch();
    EXPECT_FALSE(marker.IsMarked(0));
    marker.Mark(0);
  }
}

TEST(BfsReachabilityTest, ChainCountsSuffix) {
  Graph g = Chain(10);
  BfsReachability bfs(&g);
  for (VertexId s = 0; s < 10; ++s) {
    const VertexId source[1] = {s};
    EXPECT_EQ(bfs.CountReachable(source), 10u - s);
  }
}

TEST(BfsReachabilityTest, MultiSourceUnion) {
  Graph g = Chain(10);
  BfsReachability bfs(&g);
  const VertexId sources[2] = {7, 3};
  EXPECT_EQ(bfs.CountReachable(sources), 7u);  // {3..9}
}

TEST(BfsReachabilityTest, ReachableSetContents) {
  Graph g = Chain(5);
  BfsReachability bfs(&g);
  const VertexId source[1] = {2};
  auto set = bfs.ReachableSet(source);
  std::sort(set.begin(), set.end());
  EXPECT_EQ(set, (std::vector<VertexId>{2, 3, 4}));
}

TEST(BfsReachabilityTest, DistancesOnChain) {
  Graph g = Chain(6);
  BfsReachability bfs(&g);
  auto dist = bfs.Distances(1);
  EXPECT_EQ(dist[0], BfsReachability::kUnreachableDistance);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[5], 4u);
}

TEST(BfsReachabilityTest, RepeatedQueriesIndependent) {
  Graph g = Chain(8);
  BfsReachability bfs(&g);
  const VertexId a[1] = {0};
  const VertexId b[1] = {7};
  EXPECT_EQ(bfs.CountReachable(a), 8u);
  EXPECT_EQ(bfs.CountReachable(b), 1u);
  EXPECT_EQ(bfs.CountReachable(a), 8u);
}

TEST(BfsReachabilityTest, DuplicateSourcesCountedOnce) {
  Graph g = Chain(4);
  BfsReachability bfs(&g);
  const VertexId sources[3] = {1, 1, 1};
  EXPECT_EQ(bfs.CountReachable(sources), 3u);
}

}  // namespace
}  // namespace soldist
