// Tests for the worst-case sample-number bound calculators.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"

namespace soldist {
namespace {

TEST(LogBinomialTest, SmallCasesExact) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(34, 1), std::log(34.0), 1e-9);
}

TEST(BoundsTest, AllPositive) {
  BoundParams p{.n = 1000, .m = 10000, .k = 4, .epsilon = 0.05,
                .delta = 0.01, .opt_k = 20.0};
  EXPECT_GT(OneshotSampleBound(p), 0.0);
  EXPECT_GT(SnapshotSampleBound(p), 0.0);
  EXPECT_GT(RisSampleBound(p), 0.0);
  EXPECT_GT(BorgsWeightThreshold(p), 0.0);
}

TEST(BoundsTest, MonotoneInAccuracy) {
  BoundParams loose{.n = 1000, .m = 5000, .k = 2, .epsilon = 0.2,
                    .delta = 0.1, .opt_k = 10.0};
  BoundParams tight = loose;
  tight.epsilon = 0.05;
  EXPECT_GT(OneshotSampleBound(tight), OneshotSampleBound(loose));
  EXPECT_GT(SnapshotSampleBound(tight), SnapshotSampleBound(loose));
  EXPECT_GT(RisSampleBound(tight), RisSampleBound(loose));
  EXPECT_GT(BorgsWeightThreshold(tight), BorgsWeightThreshold(loose));
}

TEST(BoundsTest, MonotoneInSeedSize) {
  BoundParams small{.n = 1000, .m = 5000, .k = 1, .epsilon = 0.1,
                    .delta = 0.05, .opt_k = 10.0};
  BoundParams large = small;
  large.k = 16;
  EXPECT_GT(OneshotSampleBound(large), OneshotSampleBound(small));
  EXPECT_GT(SnapshotSampleBound(large), SnapshotSampleBound(small));
  EXPECT_GT(RisSampleBound(large), RisSampleBound(small));
}

TEST(BoundsTest, PaperScaleGapReproduced) {
  // Section 5.2.1: on Wiki-Vote (uc0.01, k=4) the Oneshot bound with
  // ε=0.05, δ=0.01 is ~1.0e8 while the empirical requirement is 256; the
  // RIS bound is ~1.6e7 vs 131,072 empirical. Check our calculators land
  // in those magnitudes (OPT_k on that instance is a few vertices).
  BoundParams p{.n = 7115, .m = 103689, .k = 4, .epsilon = 0.05,
                .delta = 0.01, .opt_k = 7.0};
  double oneshot = OneshotSampleBound(p);
  EXPECT_GT(oneshot, 1e7);
  EXPECT_LT(oneshot, 1e9);
  double ris = RisSampleBound(p);
  EXPECT_GT(ris, 1e6);
  EXPECT_LT(ris, 1e9);
  // The paper's observation: bounds exceed empirical requirements by
  // orders of magnitude.
  EXPECT_GT(oneshot / 256.0, 1e4);
}

TEST(BoundsTest, RisBoundBelowOneshotBoundForLargeK) {
  // Borgs et al.'s θ is ~k times smaller than Oneshot's β bound (Section
  // 3.5.3): Oneshot grows with k² while RIS grows with k·ln n, so RIS
  // wins once k is large.
  BoundParams p{.n = 10000, .m = 50000, .k = 64, .epsilon = 0.1,
                .delta = 0.01, .opt_k = 50.0};
  EXPECT_LT(RisSampleBound(p), OneshotSampleBound(p));
}

}  // namespace
}  // namespace soldist
