// The SnapshotArena acceptance contract: an arena-served condensed
// Snapshot estimator at any τ <= capacity is BYTE-IDENTICAL to a fresh
// condensed SnapshotEstimator at that τ — greedy seeds, per-step
// estimates, and full traversal counters — in BOTH stream families
// (legacy sequential and chunked engine), at several prefix cuts, and
// for any worker count. Plus the serving contracts: capacity upgrades
// through the cache never change a prefix answer, a byte-budgeted cache
// rebuilds evicted snapshot arenas identically, and invalid requests
// (LT workloads, bad specs) are Status — never an abort.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "core/factory.h"
#include "core/greedy.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "serve/query_service.h"
#include "sim/snapshot_arena.h"

namespace soldist {
namespace {

constexpr std::uint64_t kSeed = 29;
constexpr std::uint64_t kCapacity = 64;

InfluenceGraph KarateIwc() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size = 32) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

void ExpectCountersEq(const TraversalCounters& a, const TraversalCounters& b,
                      const std::string& label) {
  EXPECT_EQ(a.vertices, b.vertices) << label;
  EXPECT_EQ(a.edges, b.edges) << label;
  EXPECT_EQ(a.sample_vertices, b.sample_vertices) << label;
  EXPECT_EQ(a.sample_edges, b.sample_edges) << label;
}

TEST(SnapshotArenaTest, PrefixMatchesFreshEstimatorBothStreamFamilies) {
  InfluenceGraph ig = KarateIwc();
  ModelInstance instance = ModelInstance::Ic(&ig);
  // Family 1: legacy sequential Rng(seed). Family 2: chunked engine.
  for (int threads : {1, 2}) {
    const SamplingOptions sampling = Threads(threads);
    SnapshotArena arena =
        SnapshotArena::Sample(ig, kSeed, kCapacity, sampling);
    ASSERT_EQ(arena.capacity(), kCapacity);
    // Three cuts: a tiny prefix, a non-power-of-two interior cut, and
    // the full arena.
    for (std::uint64_t tau : {std::uint64_t{7}, std::uint64_t{23},
                              kCapacity}) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " tau=" + std::to_string(tau);
      ArenaSnapshotEstimator from_arena(&arena, tau);
      std::unique_ptr<InfluenceEstimator> fresh = MakeEstimator(
          instance, Approach::kSnapshot, tau, kSeed,
          SnapshotEstimator::Mode::kCondensed, sampling);
      // Full greedy runs with the same tie stream: identical warm state
      // and identical marginal gains force identical selections.
      Rng tie_a(11), tie_b(11);
      GreedyRunResult a =
          RunGreedy(&from_arena, ig.num_vertices(), 3, &tie_a);
      GreedyRunResult b = RunGreedy(fresh.get(), ig.num_vertices(), 3,
                                    &tie_b);
      EXPECT_EQ(a.seeds, b.seeds) << label;
      EXPECT_EQ(a.estimates, b.estimates) << label;
      ExpectCountersEq(from_arena.counters(), fresh->counters(), label);
    }
  }
}

TEST(SnapshotArenaTest, EngineBuildIsWorkerCountInvariant) {
  InfluenceGraph ig = KarateIwc();
  SnapshotArena a = SnapshotArena::Sample(ig, kSeed, kCapacity, Threads(2));
  SnapshotArena b = SnapshotArena::Sample(ig, kSeed, kCapacity, Threads(4));
  ASSERT_EQ(a.capacity(), b.capacity());
  EXPECT_EQ(a.max_components(), b.max_components());
  for (std::uint64_t i = 0; i < a.capacity(); ++i) {
    const CondensedSnapshot& wa = a.World(i);
    const CondensedSnapshot& wb = b.World(i);
    EXPECT_EQ(wa.comp_of, wb.comp_of) << "world " << i;
    EXPECT_EQ(wa.comp_size, wb.comp_size) << "world " << i;
    EXPECT_EQ(wa.dag.offsets, wb.dag.offsets) << "world " << i;
    EXPECT_EQ(wa.dag.targets, wb.dag.targets) << "world " << i;
    EXPECT_EQ(a.Warmth(i).bound, b.Warmth(i).bound) << "world " << i;
    EXPECT_EQ(a.Warmth(i).is_exact, b.Warmth(i).is_exact) << "world " << i;
  }
  for (std::uint64_t tau = 1; tau <= a.capacity(); ++tau) {
    ExpectCountersEq(a.PrefixCounters(tau), b.PrefixCounters(tau),
                     "prefix " + std::to_string(tau));
  }
}

TEST(SnapshotArenaTest, ServiceUpgradeKeepsPrefixAnswersAndKindsApart) {
  api::Session session;
  serve::QueryService service(&session);
  const api::WorkloadSpec workload =
      api::WorkloadSpec::Dataset("Karate").Probability(
          ProbabilityModel::kIwc);
  serve::QuerySpec spec;
  spec.seed = kSeed;

  spec.sample_number = 64;
  auto first = service.SnapshotView(workload, spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(service.cache_stats().builds, 1u);
  const double reach_before = first.value().ReachProbability(0, 33);
  const double comp_before = first.value().ExpectedReach(0);

  // Smaller τ: prefix hit, no build.
  spec.sample_number = 32;
  ASSERT_TRUE(service.SnapshotView(workload, spec).ok());
  EXPECT_EQ(service.cache_stats().builds, 1u);
  EXPECT_EQ(service.cache_stats().hits, 1u);

  // Larger τ: capacity upgrade — exactly one rebuild, and the τ=64
  // answers are unchanged (prefix-closed streams).
  spec.sample_number = 128;
  auto upgraded = service.SnapshotView(workload, spec);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  spec.sample_number = 64;
  auto again = service.SnapshotView(workload, spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.cache_stats().builds, 2u);
  EXPECT_DOUBLE_EQ(again.value().ReachProbability(0, 33), reach_before);
  EXPECT_DOUBLE_EQ(again.value().ExpectedReach(0), comp_before);
  // The pre-upgrade view stays alive through its shared arena.
  EXPECT_DOUBLE_EQ(first.value().ReachProbability(0, 33), reach_before);

  // The kind prefix keeps arena families apart: an RR view of the SAME
  // workload/seed is a separate build, and the snapshot arena still
  // serves as a hit afterwards.
  ASSERT_TRUE(service.View(workload, spec).ok());
  EXPECT_EQ(service.cache_stats().builds, 3u);
  ASSERT_TRUE(service.SnapshotView(workload, spec).ok());
  EXPECT_EQ(service.cache_stats().builds, 3u);
}

TEST(SnapshotArenaTest, CappedCacheEvictsAndRebuildsIdentically) {
  // A 1-byte budget holds nothing: each new key evicts the previous
  // arena; a rebuild must answer identically (arena content is a pure
  // function of its key).
  api::SessionOptions options;
  options.arena_budget_bytes = 1;
  api::Session session(options);
  serve::QueryService service(&session);
  const api::WorkloadSpec iwc =
      api::WorkloadSpec::Dataset("Karate").Probability(
          ProbabilityModel::kIwc);
  const api::WorkloadSpec uc =
      api::WorkloadSpec::Dataset("Karate").Probability(
          ProbabilityModel::kUc01);
  serve::QuerySpec spec;
  spec.seed = kSeed;
  spec.sample_number = 64;

  auto a1 = service.SnapshotView(iwc, spec);
  ASSERT_TRUE(a1.ok());
  const double a_reach = a1.value().ReachProbability(2, 30);
  const double a_comp = a1.value().ExpectedReach(2);

  auto b1 = service.SnapshotView(uc, spec);
  ASSERT_TRUE(b1.ok());
  EXPECT_GE(service.cache_stats().evictions, 1u);

  // The first workload was evicted: this is a rebuild, with answers
  // byte-identical to the evicted original.
  auto a2 = service.SnapshotView(iwc, spec);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(service.cache_stats().builds, 3u);
  EXPECT_DOUBLE_EQ(a2.value().ReachProbability(2, 30), a_reach);
  EXPECT_DOUBLE_EQ(a2.value().ExpectedReach(2), a_comp);
  // The evicted view's arena is still alive through its shared_ptr.
  EXPECT_DOUBLE_EQ(a1.value().ReachProbability(2, 30), a_reach);
}

TEST(SnapshotArenaTest, InvalidRequestsReturnStatusNotAbort) {
  api::Session session;
  serve::QueryService service(&session);
  serve::QuerySpec spec;
  spec.sample_number = 16;

  // LT workloads have no condensed arena form: Status, never a CHECK.
  auto lt = service.SnapshotView(
      api::WorkloadSpec::Dataset("Karate")
          .Probability(ProbabilityModel::kIwc)
          .Diffusion(DiffusionModel::kLt),
      spec);
  EXPECT_FALSE(lt.ok());

  auto unknown = service.SnapshotView(
      api::WorkloadSpec::Dataset("NoSuchNetwork")
          .Probability(ProbabilityModel::kIwc),
      spec);
  EXPECT_FALSE(unknown.ok());

  serve::QuerySpec bad;
  bad.sample_number = 0;
  auto zero = service.SnapshotView(
      api::WorkloadSpec::Dataset("Karate").Probability(
          ProbabilityModel::kIwc),
      bad);
  EXPECT_FALSE(zero.ok());
}

}  // namespace
}  // namespace soldist
