// The arena's load-bearing contract, ctest-enforced: a prefix view of a
// τ₂ arena is BYTE-IDENTICAL to sampling τ₁ < τ₂ directly — same sets in
// the same order, same inverted lists, same traversal counters — for the
// legacy sequential IC stream family, the chunked engine streams at
// worker counts 1/2/4, both chunk sizes, and both diffusion models. On
// top of that, ArenaRisEstimator must be indistinguishable from
// RisEstimator/LtRisEstimator through the greedy framework.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/greedy.h"
#include "core/lt_estimators.h"
#include "core/ris.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "random/splitmix64.h"
#include "sim/max_coverage.h"
#include "sim/rr_arena.h"
#include "sim/sampling_engine.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

InfluenceGraph KarateIwc() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

void ExpectCountersEq(const TraversalCounters& a,
                      const TraversalCounters& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.sample_vertices, b.sample_vertices);
  EXPECT_EQ(a.sample_edges, b.sample_edges);
}

/// Builds the RR collection a fresh RIS estimator at `tau` would build
/// (same streams as RisEstimator::Build / LtRisEstimator::Build), plus
/// its summed counters.
struct DirectBuild {
  RrCollection collection;
  TraversalCounters counters;
};

DirectBuild DirectIc(const InfluenceGraph& ig, std::uint64_t seed,
                     std::uint64_t tau, const SamplingOptions& sampling) {
  DirectBuild direct{RrCollection(ig.num_vertices()), {}};
  if (sampling.UseEngine()) {
    SamplingEngine engine(sampling);
    auto shards = SampleRrShards(ig, seed, tau, &engine);
    for (const RrShard& shard : shards) direct.counters += shard.counters;
    direct.collection.Merge(std::move(shards));
  } else {
    RrSampler sampler(&ig);
    Rng target_rng(DeriveSeed(seed, 1));
    Rng coin_rng(DeriveSeed(seed, 2));
    std::vector<VertexId> rr_set;
    for (std::uint64_t i = 0; i < tau; ++i) {
      sampler.Sample(&target_rng, &coin_rng, &rr_set, &direct.counters);
      direct.collection.Add(rr_set);
    }
  }
  direct.collection.BuildIndex();
  return direct;
}

DirectBuild DirectLt(const LtWeights& weights, std::uint64_t seed,
                     std::uint64_t tau, const SamplingOptions& sampling) {
  DirectBuild direct{
      RrCollection(weights.influence_graph().num_vertices()), {}};
  SamplingEngine engine(sampling);
  auto shards = SampleLtRrShards(weights, seed, tau, &engine);
  for (const RrShard& shard : shards) direct.counters += shard.counters;
  direct.collection.Merge(std::move(shards));
  direct.collection.BuildIndex();
  return direct;
}

void ExpectPrefixEqualsDirect(const RrArena& arena,
                              const DirectBuild& direct,
                              std::uint64_t tau) {
  RrPrefixView view = arena.Prefix(tau);
  ASSERT_EQ(view.size(), direct.collection.size());
  for (std::uint64_t i = 0; i < tau; ++i) {
    std::span<const VertexId> a = view.Set(i);
    std::span<const VertexId> b = direct.collection.Set(i);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()))
        << "set " << i << " differs at tau=" << tau;
  }
  for (VertexId v = 0; v < arena.num_vertices(); ++v) {
    std::span<const std::uint32_t> a = view.InvertedList(v);
    std::span<const std::uint32_t> b = direct.collection.InvertedList(v);
    ASSERT_EQ(std::vector<std::uint32_t>(a.begin(), a.end()),
              std::vector<std::uint32_t>(b.begin(), b.end()))
        << "inverted list of " << v << " differs at tau=" << tau;
    EXPECT_EQ(view.CoverCount(v), a.size());
  }
  ExpectCountersEq(view.Counters(), direct.counters);
}

TEST(RrArenaTest, IcPrefixViewsMatchDirectSampling) {
  InfluenceGraph ig = KarateUc01();
  const std::uint64_t capacity = 500;
  for (std::uint64_t chunk_size : {256u, 64u}) {
    // num_threads == 1 without a pool is the legacy sequential family;
    // 2 and 4 are the chunked engine streams (worker-count invariant).
    for (int threads : {1, 2, 4}) {
      SamplingOptions sampling = Threads(threads, chunk_size);
      RrArena arena = RrArena::SampleIc(ig, 77, capacity, sampling);
      for (std::uint64_t tau : {1u, 63u, 64u, 257u, 300u, 500u}) {
        ExpectPrefixEqualsDirect(arena, DirectIc(ig, 77, tau, sampling),
                                 tau);
      }
    }
  }
}

TEST(RrArenaTest, LtPrefixViewsMatchDirectSampling) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  const std::uint64_t capacity = 400;
  for (std::uint64_t chunk_size : {256u, 64u}) {
    for (int threads : {1, 2, 4}) {
      SamplingOptions sampling = Threads(threads, chunk_size);
      RrArena arena = RrArena::SampleLt(weights, 31, capacity, sampling);
      for (std::uint64_t tau : {1u, 100u, 256u, 399u, 400u}) {
        ExpectPrefixEqualsDirect(arena,
                                 DirectLt(weights, 31, tau, sampling), tau);
      }
    }
  }
}

TEST(RrArenaTest, ArenaContentIsWorkerCountInvariant) {
  InfluenceGraph ig = KarateUc01();
  RrArena reference = RrArena::SampleIc(ig, 5, 300, Threads(2, 64));
  for (int threads : {3, 4}) {
    RrArena arena = RrArena::SampleIc(ig, 5, 300, Threads(threads, 64));
    ASSERT_EQ(arena.capacity(), reference.capacity());
    ASSERT_EQ(arena.total_entries(), reference.total_entries());
    for (std::uint64_t i = 0; i < arena.capacity(); ++i) {
      std::span<const VertexId> a = arena.Set(i);
      std::span<const VertexId> b = reference.Set(i);
      ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
                std::vector<VertexId>(b.begin(), b.end()));
    }
    ExpectCountersEq(arena.PrefixCounters(300),
                     reference.PrefixCounters(300));
  }
}

TEST(RrArenaTest, ArenaRisEstimatorMatchesRisEstimatorThroughGreedy) {
  InfluenceGraph ig = KarateUc01();
  const std::uint64_t capacity = 512;
  for (int threads : {1, 2, 4}) {
    SamplingOptions sampling = Threads(threads, 64);
    RrArena arena = RrArena::SampleIc(ig, 99, capacity, sampling);
    for (std::uint64_t tau : {64u, 200u, 512u}) {
      RisEstimator fresh(&ig, tau, 99, sampling);
      ArenaRisEstimator reused(&arena, tau);
      Rng tie_a(1234), tie_b(1234);
      GreedyRunResult a = RunGreedy(&fresh, ig.num_vertices(), 4, &tie_a);
      GreedyRunResult b = RunGreedy(&reused, ig.num_vertices(), 4, &tie_b);
      EXPECT_EQ(a.seeds, b.seeds);
      EXPECT_EQ(a.estimates, b.estimates);
      ExpectCountersEq(fresh.counters(), reused.counters());
      EXPECT_DOUBLE_EQ(fresh.EmpiricalEpt(), reused.EmpiricalEpt());
    }
  }
}

TEST(RrArenaTest, ArenaRisEstimatorMatchesLtRisEstimatorThroughGreedy) {
  InfluenceGraph ig = KarateIwc();
  LtWeights weights(&ig);
  const std::uint64_t capacity = 300;
  for (int threads : {1, 2, 4}) {
    SamplingOptions sampling = Threads(threads, 64);
    RrArena arena = RrArena::SampleLt(weights, 13, capacity, sampling);
    for (std::uint64_t tau : {32u, 300u}) {
      LtRisEstimator fresh(&weights, tau, 13, sampling);
      ArenaRisEstimator reused(&arena, tau);
      Rng tie_a(88), tie_b(88);
      GreedyRunResult a = RunGreedy(&fresh, ig.num_vertices(), 3, &tie_a);
      GreedyRunResult b = RunGreedy(&reused, ig.num_vertices(), 3, &tie_b);
      EXPECT_EQ(a.seeds, b.seeds);
      EXPECT_EQ(a.estimates, b.estimates);
      ExpectCountersEq(fresh.counters(), reused.counters());
    }
  }
}

TEST(RrArenaTest, PrefixViewMaxCoverageMatchesCollection) {
  InfluenceGraph ig = KarateUc01();
  SamplingOptions sampling = Threads(2, 64);
  RrArena arena = RrArena::SampleIc(ig, 21, 400, sampling);
  for (std::uint64_t tau : {50u, 400u}) {
    DirectBuild direct = DirectIc(ig, 21, tau, sampling);
    for (int k : {1, 4, 8}) {
      MaxCoverageResult from_view = GreedyMaxCoverage(arena.Prefix(tau), k);
      MaxCoverageResult from_collection =
          GreedyMaxCoverage(direct.collection, k);
      EXPECT_EQ(from_view.seeds, from_collection.seeds);
      EXPECT_EQ(from_view.covered, from_collection.covered);
    }
  }
}

TEST(RrArenaTest, InvertedPrefixMatchesPrefixViewCut) {
  // The lazy point-query cut (one binary search on demand) must agree
  // with the materialized RrPrefixView cut for every vertex and τ,
  // including the full-capacity fast path (no search at all).
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 21, 500, Threads(2, 64));
  for (std::uint64_t tau : {1u, 63u, 257u, 500u}) {
    RrPrefixView view = arena.Prefix(tau);
    for (VertexId v = 0; v < arena.num_vertices(); ++v) {
      std::span<const std::uint32_t> lazy = arena.InvertedPrefix(v, tau);
      std::span<const std::uint32_t> cut = view.InvertedList(v);
      ASSERT_EQ(std::vector<std::uint32_t>(lazy.begin(), lazy.end()),
                std::vector<std::uint32_t>(cut.begin(), cut.end()))
          << "vertex " << v << " tau " << tau;
    }
  }
  for (VertexId v = 0; v < arena.num_vertices(); ++v) {
    EXPECT_EQ(arena.InvertedPrefix(v, 1000).size(),
              arena.InvertedAll(v).size());
  }
}

TEST(RrArenaTest, PrefixCapacityIsChecked) {
  InfluenceGraph ig = KarateUc01();
  RrArena arena = RrArena::SampleIc(ig, 1, 8, SamplingOptions{});
  EXPECT_EQ(arena.capacity(), 8u);
  EXPECT_GT(arena.MemoryBytes(), 0u);
  EXPECT_DEATH(arena.Prefix(9), "exceeds arena capacity");
}

}  // namespace
}  // namespace soldist
