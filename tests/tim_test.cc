// Tests for the TIM+-style sample-number determination.

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/tim.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"

namespace soldist {
namespace {

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

TEST(TimTest, KptIsPlausibleOptLowerBound) {
  InfluenceGraph ig = KarateUc01();
  TimParams params{.k = 1, .epsilon = 0.2, .ell = 1.0};
  std::uint64_t used = 0;
  TraversalCounters counters;
  double kpt = EstimateKpt(ig, params, 7, &used, &counters);
  // OPT_1 on Karate uc0.1 is ~3.8 (the instructor vertex); KPT must be a
  // nontrivial lower bound: above the trivial 1, below OPT.
  EXPECT_GE(kpt, 1.0);
  EXPECT_LT(kpt, 6.0);
  EXPECT_GT(used, 0u);
  EXPECT_GT(counters.vertices, 0u);
}

TEST(TimTest, LambdaMatchesFormula) {
  InfluenceGraph ig = KarateUc01();
  TimParams params{.k = 2, .epsilon = 0.1, .ell = 1.0};
  double n = 34.0;
  double expected = (8.0 + 0.2) * n *
                    (std::log(n) + LogBinomial(34, 2) + std::log(2.0)) /
                    0.01;
  EXPECT_NEAR(TimLambda(ig, params), expected, 1e-6);
}

TEST(TimTest, ThetaDecreasesWithLooserEpsilon) {
  InfluenceGraph ig = KarateUc01();
  TimParams tight{.k = 1, .epsilon = 0.1, .ell = 1.0};
  TimParams loose{.k = 1, .epsilon = 0.5, .ell = 1.0};
  TimResult a = RunTimPlus(ig, tight, 3);
  TimResult b = RunTimPlus(ig, loose, 3);
  EXPECT_GT(a.theta, b.theta);
}

TEST(TimTest, EndToEndFindsNearOptimalSeeds) {
  InfluenceGraph ig = KarateUc01();
  TimParams params{.k = 2, .epsilon = 0.3, .ell = 1.0};
  TimResult result = RunTimPlus(ig, params, 11);
  ASSERT_EQ(result.greedy.seeds.size(), 2u);
  EXPECT_GE(result.theta, 1u);

  // Compare against the oracle-greedy reference: TIM+'s guarantee is
  // (1−1/e−ε), but empirically it should land within a few percent.
  RrOracle oracle(&ig, 100000, 12);
  double got = oracle.EstimateInfluence(result.greedy.seeds);
  double reference =
      oracle.EstimateInfluence(oracle.OracleGreedySeeds(2));
  EXPECT_GE(got, 0.9 * reference);
}

TEST(TimTest, DeterministicInSeed) {
  InfluenceGraph ig = KarateUc01();
  TimParams params{.k = 1, .epsilon = 0.3, .ell = 1.0};
  TimResult a = RunTimPlus(ig, params, 5);
  TimResult b = RunTimPlus(ig, params, 5);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.greedy.seeds, b.greedy.seeds);
}

}  // namespace
}  // namespace soldist
