// Tests for adaptive sample-number selection.

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"

namespace soldist {
namespace {

InfluenceGraph StarIg(VertexId leaves, double p) {
  EdgeList edges;
  edges.num_vertices = leaves + 1;
  for (VertexId i = 1; i <= leaves; ++i) edges.Add(0, i);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(leaves, p));
}

TEST(AdaptiveTest, TrivialInstanceConvergesImmediately) {
  // p=1 star with Oneshot: estimates are deterministic (center 11, leaf
  // 1), so every repetition at every sample number picks the center.
  InfluenceGraph ig = StarIg(10, 1.0);
  AdaptiveParams params;
  params.approach = Approach::kOneshot;
  params.k = 1;
  params.repetitions = 3;
  params.stable_rounds = 2;
  AdaptiveResult result = SelectSampleNumber(ig, params, 1);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.sample_number, 1u);  // first of the stable streak
  EXPECT_EQ(result.seeds, (std::vector<VertexId>{0}));
}

TEST(AdaptiveTest, RisNeedsAFewMoreSamplesOnTies) {
  // RIS at θ=1 ties the center with the sampled leaf, so the doubling
  // search must move past the first exponents before stabilizing.
  InfluenceGraph ig = StarIg(10, 1.0);
  AdaptiveParams params;
  params.approach = Approach::kRis;
  params.k = 1;
  params.repetitions = 3;
  params.stable_rounds = 2;
  params.max_exponent = 12;
  AdaptiveResult result = SelectSampleNumber(ig, params, 1);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.seeds, (std::vector<VertexId>{0}));
  EXPECT_LE(result.sample_number, 1u << 8);
}

TEST(AdaptiveTest, KarateConvergesToTheUniqueSolution) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  AdaptiveParams params;
  params.approach = Approach::kSnapshot;
  params.k = 1;
  params.repetitions = 4;
  params.stable_rounds = 2;
  params.max_exponent = 18;
  AdaptiveResult result = SelectSampleNumber(ig, params, 2);
  ASSERT_TRUE(result.converged);
  // The selected set must match the converged solution of the shared
  // oracle's greedy (the paper's unique limit solution).
  RrOracle oracle(&ig, 100000, 3);
  EXPECT_EQ(result.seeds, oracle.OracleGreedySeeds(1));
  // Selection should not need absurd sample numbers on Karate (the
  // paper's Table 5 lists τ* = 2^7 for near-optimality).
  EXPECT_LE(result.sample_number, 1u << 16);
  EXPECT_GT(result.counters.vertices, 0u);
}

TEST(AdaptiveTest, GivesUpAtMaxExponent) {
  // Two exactly tied components: repetitions keep disagreeing, so the
  // search must exhaust the range and report non-convergence.
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig(std::move(g), {1.0, 1.0});
  AdaptiveParams params;
  params.approach = Approach::kSnapshot;
  params.k = 1;
  params.repetitions = 6;  // 2^-5 chance of unanimity per round
  params.stable_rounds = 3;
  params.max_exponent = 4;
  AdaptiveResult result = SelectSampleNumber(ig, params, 4);
  // (Unanimity by luck three rounds in a row is ~1e-4; treat as flake.)
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 5);  // exponents 0..4
}

TEST(AdaptiveTest, WorksForAllThreeApproaches) {
  // Two disjoint p=1 stars of different sizes: the unique greedy-2
  // solution is both centers, for every approach.
  EdgeList edges;
  edges.num_vertices = 10;
  for (VertexId leaf = 2; leaf < 7; ++leaf) edges.Add(0, leaf);   // 5 leaves
  for (VertexId leaf = 7; leaf < 10; ++leaf) edges.Add(1, leaf);  // 3 leaves
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig(std::move(g), std::vector<double>(8, 1.0));
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    AdaptiveParams params;
    params.approach = approach;
    params.k = 2;
    params.repetitions = 3;
    params.stable_rounds = 2;
    params.max_exponent = 12;
    AdaptiveResult result = SelectSampleNumber(ig, params, 5);
    EXPECT_TRUE(result.converged) << ApproachName(approach);
    EXPECT_EQ(result.seeds, (std::vector<VertexId>{0, 1}))
        << ApproachName(approach);
  }
}

}  // namespace
}  // namespace soldist
