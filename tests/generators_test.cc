// Unit tests for the graph generators.

#include <gtest/gtest.h>

#include <numeric>

#include "gen/barabasi_albert.h"
#include "gen/community.h"
#include "gen/config_model.h"
#include "gen/direction.h"
#include "gen/erdos_renyi.h"
#include "gen/watts_strogatz.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/stats.h"

namespace soldist {
namespace {

TEST(BarabasiAlbertTest, EdgeCountMatchesFormula) {
  Rng rng(1);
  // M * (n - M) edges: the paper's BA_s (999) and BA_d (10,879) counts.
  EXPECT_EQ(BarabasiAlbert(1000, 1, &rng).arcs.size(), 999u);
  EXPECT_EQ(BarabasiAlbert(1000, 11, &rng).arcs.size(), 10879u);
  EXPECT_EQ(BarabasiAlbert(50, 3, &rng).arcs.size(), 3u * 47u);
}

TEST(BarabasiAlbertTest, NoSelfLoopsNoDuplicatePerVertex) {
  Rng rng(2);
  EdgeList edges = BarabasiAlbert(500, 5, &rng);
  EXPECT_TRUE(edges.Validate());
  for (const Arc& a : edges.arcs) EXPECT_NE(a.src, a.dst);
  // Each new vertex's M attachments are distinct.
  std::size_t before = edges.arcs.size();
  edges.RemoveDuplicates();
  EXPECT_EQ(edges.arcs.size(), before);
}

TEST(BarabasiAlbertTest, ConnectedUndirected) {
  Rng rng(3);
  EdgeList edges = BarabasiAlbert(300, 2, &rng);
  edges.MakeBidirected();
  Graph g = GraphBuilder::FromEdgeList(edges);
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components(), 1u);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  Rng rng(4);
  EdgeList edges = BarabasiAlbert(2000, 2, &rng);
  edges.MakeBidirected();
  Graph g = GraphBuilder::FromEdgeList(edges);
  VertexId max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Preferential attachment: the largest hub far exceeds the mean (4).
  EXPECT_GE(max_deg, 30u);
}

TEST(PaperBaTest, MatchesTable3) {
  Rng rng1(5), rng2(6);
  EdgeList ba_s = PaperBaSparse(&rng1);
  EXPECT_EQ(ba_s.num_vertices, 1000u);
  EXPECT_EQ(ba_s.arcs.size(), 999u);
  EdgeList ba_d = PaperBaDense(&rng2);
  EXPECT_EQ(ba_d.num_vertices, 1000u);
  EXPECT_EQ(ba_d.arcs.size(), 10879u);
}

TEST(DirectionTest, PreservesCountAndEndpoints) {
  EdgeList undirected;
  undirected.num_vertices = 4;
  undirected.Add(0, 1);
  undirected.Add(2, 3);
  Rng rng(7);
  EdgeList directed = AssignRandomDirections(undirected, &rng);
  ASSERT_EQ(directed.arcs.size(), 2u);
  EXPECT_TRUE(directed.arcs[0] == (Arc{0, 1}) ||
              directed.arcs[0] == (Arc{1, 0}));
  EXPECT_TRUE(directed.arcs[1] == (Arc{2, 3}) ||
              directed.arcs[1] == (Arc{3, 2}));
}

TEST(DirectionTest, BothOrientationsOccur) {
  EdgeList undirected;
  undirected.num_vertices = 2;
  for (int i = 0; i < 200; ++i) undirected.Add(0, 1);
  Rng rng(8);
  EdgeList directed = AssignRandomDirections(undirected, &rng);
  int forward = 0;
  for (const Arc& a : directed.arcs) {
    if (a == Arc{0, 1}) ++forward;
  }
  EXPECT_GT(forward, 60);
  EXPECT_LT(forward, 140);
}

TEST(ErdosRenyiGnmTest, ExactArcCountNoDupes) {
  Rng rng(9);
  EdgeList edges = ErdosRenyiGnm(50, 200, &rng);
  EXPECT_EQ(edges.arcs.size(), 200u);
  for (const Arc& a : edges.arcs) EXPECT_NE(a.src, a.dst);
  std::size_t before = edges.arcs.size();
  edges.RemoveDuplicates();
  EXPECT_EQ(edges.arcs.size(), before);
}

TEST(ErdosRenyiGnpTest, ExpectedDensity) {
  Rng rng(10);
  EdgeList edges = ErdosRenyiGnp(200, 0.05, &rng);
  double expected = 0.05 * 200 * 199;
  // 5-sigma band around the binomial mean (sigma ≈ 43.5).
  EXPECT_NEAR(static_cast<double>(edges.arcs.size()), expected, 220.0);
  EXPECT_TRUE(edges.Validate());
}

TEST(ErdosRenyiGnpTest, ExtremeProbabilities) {
  Rng rng(11);
  EXPECT_TRUE(ErdosRenyiGnp(10, 0.0, &rng).arcs.empty());
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, &rng).arcs.size(), 90u);
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  Rng rng(12);
  EdgeList edges = WattsStrogatz(20, 4, 0.0, &rng);
  EXPECT_EQ(edges.arcs.size(), 20u * 2u);  // n*k/2
  Graph g = GraphBuilder::FromEdgeList([&] {
    EdgeList bi = edges;
    bi.MakeBidirected();
    return bi;
  }());
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.OutDegree(v), 4u);
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeCount) {
  Rng rng(13);
  EdgeList edges = WattsStrogatz(100, 6, 0.3, &rng);
  EXPECT_EQ(edges.arcs.size(), 300u);
  EXPECT_TRUE(edges.Validate());
  for (const Arc& a : edges.arcs) EXPECT_NE(a.src, a.dst);
}

TEST(PowerLawDegreesTest, RespectsBounds) {
  Rng rng(14);
  PowerLawSpec spec{.gamma = 2.3, .min_degree = 2, .max_degree = 50};
  auto degrees = SamplePowerLawDegrees(5000, spec, &rng);
  for (VertexId d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 50u);
  }
  // Heavy tail: some vertex should exceed 4x the minimum.
  EXPECT_GT(*std::max_element(degrees.begin(), degrees.end()), 8u);
}

TEST(ConfigModelTest, NearTargetArcCount) {
  Rng rng(15);
  PowerLawSpec out_spec{.gamma = 2.2, .min_degree = 1, .max_degree = 100};
  PowerLawSpec in_spec{.gamma = 2.2, .min_degree = 1, .max_degree = 100};
  EdgeList edges = DirectedConfigModel(2000, 10000, out_spec, in_spec, &rng);
  EXPECT_TRUE(edges.Validate());
  // Erased model: slight loss to self-loops/duplicates only.
  EXPECT_GT(edges.arcs.size(), 9000u);
  EXPECT_LE(edges.arcs.size(), 10000u);
  for (const Arc& a : edges.arcs) EXPECT_NE(a.src, a.dst);
  std::size_t before = edges.arcs.size();
  edges.RemoveDuplicates();
  EXPECT_EQ(edges.arcs.size(), before);
}

TEST(CommunityGraphTest, BuildsCoreWhiskerStructure) {
  CommunityGraphSpec spec;
  spec.num_vertices = 1000;
  spec.core_fraction = 0.6;
  spec.num_communities = 300;
  Rng rng(16);
  EdgeList edges = CommunityOverlapGraph(spec, &rng);
  EXPECT_TRUE(edges.Validate());
  // Whisker vertices (ids >= core) each have at least their tree edge.
  EdgeList bi = edges;
  bi.MakeBidirected();
  Graph g = GraphBuilder::FromEdgeList(bi);
  for (VertexId v = 600; v < 1000; ++v) EXPECT_GE(g.OutDegree(v), 1u);
}

TEST(CommunityGraphTest, HighClustering) {
  CommunityGraphSpec spec;
  spec.num_vertices = 800;
  spec.num_communities = 260;
  Rng rng(17);
  EdgeList edges = CommunityOverlapGraph(spec, &rng);
  edges.MakeBidirected();
  Graph g = GraphBuilder::FromEdgeList(edges);
  // Cliques guarantee a clustering coefficient far above random graphs.
  double cc = GlobalClusteringCoefficient(g);
  EXPECT_GT(cc, 0.2);
}

}  // namespace
}  // namespace soldist
