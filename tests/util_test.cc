// Unit tests for util: Status/StatusOr, string helpers, args, csv, table.

#include <gtest/gtest.h>

#include "util/args.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace soldist {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status FailThenPropagate() {
  SOLDIST_RETURN_IF_ERROR(Status::IoError("disk"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThenPropagate().code(), StatusCode::kIoError);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, ParseUint64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("  7 ", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(StringUtilTest, ParseInt64) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(3.14, 4), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.5");
}

TEST(StringUtilTest, FormatCostMatchesPaperStyle) {
  EXPECT_EQ(FormatCost(1247121.31), "1,247,121.3");
  EXPECT_EQ(FormatCost(66.64), "66.6");
  EXPECT_EQ(FormatCost(0.00033), "0.00033");
  EXPECT_EQ(FormatCost(9.96), "10.0");
}

TEST(ArgsTest, ParsesAllTypes) {
  ArgParser args("test", "desc");
  args.AddInt64("n", 10, "count");
  args.AddDouble("eps", 0.5, "accuracy");
  args.AddBool("full", false, "full grid");
  args.AddString("name", "x", "label");
  const char* argv[] = {"prog", "--n", "42", "--eps=0.25", "--full",
                        "--name", "karate"};
  ASSERT_TRUE(args.Parse(7, argv).ok());
  EXPECT_EQ(args.GetInt64("n"), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("eps"), 0.25);
  EXPECT_TRUE(args.GetBool("full"));
  EXPECT_EQ(args.GetString("name"), "karate");
  EXPECT_TRUE(args.Provided("n"));
}

TEST(ArgsTest, DefaultsWhenUnset) {
  ArgParser args("test", "desc");
  args.AddInt64("n", 10, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.Parse(1, argv).ok());
  EXPECT_EQ(args.GetInt64("n"), 10);
  EXPECT_FALSE(args.Provided("n"));
}

TEST(ArgsTest, RejectsUnknownFlag) {
  ArgParser args("test", "desc");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(args.Parse(3, argv).ok());
}

TEST(ArgsTest, RejectsBadInteger) {
  ArgParser args("test", "desc");
  args.AddInt64("n", 0, "count");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_FALSE(args.Parse(3, argv).ok());
}

TEST(ArgsTest, BoolExplicitValues) {
  ArgParser args("test", "desc");
  args.AddBool("flag", true, "x");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(args.Parse(2, argv).ok());
  EXPECT_FALSE(args.GetBool("flag"));
}

TEST(CsvTest, QuotesSpecialFields) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"quote\"inside", "line\nbreak"});
  std::string text = csv.ToString();
  EXPECT_EQ(text,
            "a,b\n"
            "plain,\"with,comma\"\n"
            "\"quote\"\"inside\",\"line\nbreak\"\n");
}

TEST(CsvTest, RowBuilderFormats) {
  CsvWriter csv({"s", "i", "d"});
  csv.Row().Str("x").Int(-5).Real(0.125, 3).Done();
  EXPECT_EQ(csv.ToString(), "s,i,d\nx,-5,0.125\n");
  EXPECT_EQ(csv.num_rows(), 1u);
}

TEST(TableTest, MarkdownAligned) {
  TextTable t({"name", "n"});
  t.AddRow({"Karate", "34"});
  t.AddRow({"BA_s", "1000"});
  std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| Karate | 34   |"), std::string::npos);
  EXPECT_NE(md.find("| BA_s   | 1000 |"), std::string::npos);
  EXPECT_NE(md.find("| ---"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  double first = timer.Seconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.Seconds(), first);
  EXPECT_FALSE(timer.HumanElapsed().empty());
}

}  // namespace
}  // namespace soldist
