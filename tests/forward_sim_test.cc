// Statistical and accounting tests for the forward IC simulator, checked
// against closed-form influence values on tiny graphs.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "model/influence_graph.h"
#include "sim/forward_sim.h"

namespace soldist {
namespace {

InfluenceGraph SingleEdge(double p) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {p});
}

InfluenceGraph Chain3(double p) {
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 1);
  edges.Add(1, 2);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {p, p});
}

InfluenceGraph Star(VertexId leaves, double p) {
  EdgeList edges;
  edges.num_vertices = leaves + 1;
  for (VertexId i = 1; i <= leaves; ++i) edges.Add(0, i);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(leaves, p));
}

TEST(ForwardSimTest, SeedsAlwaysActivated) {
  InfluenceGraph ig = SingleEdge(0.5);
  Rng rng(1);
  TraversalCounters counters;
  ForwardSimulator sim(&ig);
  const VertexId seeds[1] = {1};  // sink vertex: nothing to influence
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.Simulate(seeds, &rng, &counters), 1u);
  }
}

TEST(ForwardSimTest, SingleEdgeInfluenceIsOnePlusP) {
  // Inf({0}) = 1 + p exactly.
  for (double p : {0.1, 0.5, 0.9}) {
    InfluenceGraph ig = SingleEdge(p);
    ForwardSimulator sim(&ig);
    Rng rng(2);
    TraversalCounters counters;
    const VertexId seeds[1] = {0};
    double estimate = sim.EstimateInfluence(seeds, 200000, &rng, &counters);
    // sigma = sqrt(p(1-p)/200000) <= 0.0012; 5-sigma tolerance.
    EXPECT_NEAR(estimate, 1.0 + p, 0.006) << "p=" << p;
  }
}

TEST(ForwardSimTest, Chain3InfluenceIsGeometric) {
  // Inf({0}) = 1 + p + p^2.
  const double p = 0.5;
  InfluenceGraph ig = Chain3(p);
  ForwardSimulator sim(&ig);
  Rng rng(3);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  double estimate = sim.EstimateInfluence(seeds, 200000, &rng, &counters);
  EXPECT_NEAR(estimate, 1.0 + p + p * p, 0.008);
}

TEST(ForwardSimTest, StarInfluenceIsOnePlusKp) {
  const double p = 0.3;
  InfluenceGraph ig = Star(10, p);
  ForwardSimulator sim(&ig);
  Rng rng(4);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  double estimate = sim.EstimateInfluence(seeds, 100000, &rng, &counters);
  EXPECT_NEAR(estimate, 1.0 + 10 * p, 0.03);
}

TEST(ForwardSimTest, MultiSeedNoDoubleCount) {
  // Seeding both endpoints of the edge: exactly 2 activated always.
  InfluenceGraph ig = SingleEdge(0.7);
  ForwardSimulator sim(&ig);
  Rng rng(5);
  TraversalCounters counters;
  const VertexId seeds[2] = {0, 1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.Simulate(seeds, &rng, &counters), 2u);
  }
}

TEST(ForwardSimTest, TraversalAccountingPerAppendix) {
  // Deterministic p=1 chain: every simulation activates all 3 vertices,
  // scans 3 vertices, and examines d+(0)+d+(1)+d+(2) = 2 edges.
  InfluenceGraph ig = Chain3(1.0);
  ForwardSimulator sim(&ig);
  Rng rng(6);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  sim.Simulate(seeds, &rng, &counters);
  EXPECT_EQ(counters.vertices, 3u);
  EXPECT_EQ(counters.edges, 2u);
  EXPECT_EQ(counters.sample_vertices, 0u);  // Oneshot stores nothing
  EXPECT_EQ(counters.sample_edges, 0u);
}

TEST(ForwardSimTest, ExpectedVertexCostIsInfluence) {
  // E[vertex traversal per simulation] = Inf(S) (paper Appendix).
  const double p = 0.4;
  InfluenceGraph ig = SingleEdge(p);
  ForwardSimulator sim(&ig);
  Rng rng(7);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  constexpr std::uint64_t kRuns = 100000;
  sim.EstimateInfluence(seeds, kRuns, &rng, &counters);
  double mean_vertex_cost =
      static_cast<double>(counters.vertices) / static_cast<double>(kRuns);
  EXPECT_NEAR(mean_vertex_cost, 1.0 + p, 0.01);
}

TEST(ForwardSimTest, SimulateSetReturnsActivatedVertices) {
  InfluenceGraph ig = Chain3(1.0);
  ForwardSimulator sim(&ig);
  Rng rng(8);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  auto activated = sim.SimulateSet(seeds, &rng, &counters);
  std::sort(activated.begin(), activated.end());
  EXPECT_EQ(activated, (std::vector<VertexId>{0, 1, 2}));
}

TEST(ForwardSimTest, ZeroIndependenceAcrossRuns) {
  // Two simulators with the same seed produce identical streams;
  // different seeds diverge. Guards accidental shared state.
  InfluenceGraph ig = Star(20, 0.5);
  ForwardSimulator sim1(&ig), sim2(&ig);
  Rng rng1(9), rng2(9), rng3(10);
  TraversalCounters c;
  const VertexId seeds[1] = {0};
  bool diverged = false;
  for (int i = 0; i < 20; ++i) {
    auto a = sim1.Simulate(seeds, &rng1, &c);
    auto b = sim2.Simulate(seeds, &rng2, &c);
    EXPECT_EQ(a, b);
    if (sim2.Simulate(seeds, &rng3, &c) != a) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace soldist
