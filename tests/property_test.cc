// Parameterized property tests: invariants that must hold for EVERY
// (approach × probability setting) combination.

#include <gtest/gtest.h>

#include <tuple>

#include "exp/instance_registry.h"
#include "exp/trial_runner.h"
#include "oracle/rr_oracle.h"
#include "sim/rr_sampler.h"
#include "stats/entropy.h"

namespace soldist {
namespace {

using PropertyParam = std::tuple<Approach, ProbabilityModel>;

class ApproachModelTest : public testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<InstanceRegistry>(7);
    auto ig = registry_->GetInstance("Karate", std::get<1>(GetParam()));
    ASSERT_TRUE(ig.ok());
    ig_ = ig.value();
  }

  std::unique_ptr<InstanceRegistry> registry_;
  const InfluenceGraph* ig_ = nullptr;
};

TEST_P(ApproachModelTest, EstimatesBoundedByN) {
  auto estimator = MakeEstimator(ModelInstance::Ic(ig_),
                                 std::get<0>(GetParam()), 32, 11);
  estimator->Build();
  for (VertexId v = 0; v < ig_->num_vertices(); ++v) {
    double estimate = estimator->Estimate(v);
    EXPECT_GE(estimate, 0.0) << "vertex " << v;
    EXPECT_LE(estimate, static_cast<double>(ig_->num_vertices()))
        << "vertex " << v;
  }
}

TEST_P(ApproachModelTest, SingleVertexEstimateAtLeastOneBeforeUpdates) {
  // Inf(v) >= 1 (the seed itself); the estimators must respect this for
  // the FIRST greedy iteration. (RIS estimates can dip below 1 only by
  // sampling noise; with enough samples they cannot.)
  auto estimator = MakeEstimator(ModelInstance::Ic(ig_),
                                 std::get<0>(GetParam()), 4096, 13);
  estimator->Build();
  double total = 0.0;
  for (VertexId v = 0; v < ig_->num_vertices(); ++v) {
    total += estimator->Estimate(v);
  }
  EXPECT_GE(total / ig_->num_vertices(), 0.9);
}

TEST_P(ApproachModelTest, GreedyTrialsProduceValidSeedSets) {
  TrialConfig config;
  config.approach = std::get<0>(GetParam());
  config.sample_number = 16;
  config.k = 4;
  config.trials = 6;
  config.master_seed = 3;
  TrialResult result = RunTrials(*ig_, config, nullptr);
  for (const auto& set : result.seed_sets) {
    ASSERT_EQ(set.size(), 4u);
    for (VertexId v : set) EXPECT_LT(v, ig_->num_vertices());
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
  }
}

TEST_P(ApproachModelTest, CountersArePopulatedCorrectly) {
  auto [approach, model] = GetParam();
  TrialConfig config;
  config.approach = approach;
  config.sample_number = 8;
  config.k = 1;
  config.trials = 4;
  config.master_seed = 5;
  TrialResult result = RunTrials(*ig_, config, nullptr);
  const TraversalCounters& c = result.total_counters;
  EXPECT_GT(c.vertices, 0u);
  EXPECT_GT(c.edges, 0u);
  switch (approach) {
    case Approach::kOneshot:
      EXPECT_EQ(c.TotalSampleSize(), 0u);  // stores nothing
      break;
    case Approach::kSnapshot:
      EXPECT_GT(c.sample_edges, 0u);       // live edges stored
      EXPECT_EQ(c.sample_vertices, 0u);
      break;
    case Approach::kRis:
      EXPECT_GT(c.sample_vertices, 0u);    // RR entries stored
      EXPECT_EQ(c.sample_edges, 0u);
      break;
  }
}

TEST_P(ApproachModelTest, EntropyWithinTheoreticalBounds) {
  TrialConfig config;
  config.approach = std::get<0>(GetParam());
  config.sample_number = 2;
  config.k = 1;
  config.trials = 32;
  config.master_seed = 8;
  TrialResult result = RunTrials(*ig_, config, nullptr);
  double entropy = result.distribution.Entropy();
  EXPECT_GE(entropy, 0.0);
  EXPECT_LE(entropy, MaxEmpiricalEntropy(32) + 1e-9);
}

std::string ParamName(const testing::TestParamInfo<PropertyParam>& info) {
  std::string name = ApproachName(std::get<0>(info.param)) + "_" +
                     ProbabilityModelName(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApproachesAllModels, ApproachModelTest,
    testing::Combine(testing::Values(Approach::kOneshot, Approach::kSnapshot,
                                     Approach::kRis),
                     testing::Values(ProbabilityModel::kUc01,
                                     ProbabilityModel::kUc001,
                                     ProbabilityModel::kIwc,
                                     ProbabilityModel::kOwc)),
    ParamName);

// --- Dataset-wide property sweep: every catalog network builds a valid
// influence graph under iwc. ---

class DatasetPropertyTest : public testing::TestWithParam<std::string> {};

TEST_P(DatasetPropertyTest, BuildsValidInfluenceGraph) {
  const std::string& name = GetParam();
  // Keep ⋆ proxies tiny for test speed.
  VertexId star_n = Datasets::IsStarNetwork(name) ? 2000 : 0;
  InstanceRegistry registry(13, star_n);
  auto ig = registry.GetInstance(name, ProbabilityModel::kIwc);
  ASSERT_TRUE(ig.ok()) << ig.status().ToString();
  EXPECT_GT(ig.value()->num_vertices(), 0u);
  EXPECT_GT(ig.value()->num_edges(), 0u);
  EXPECT_GT(ig.value()->SumProbabilities(), 0.0);
  // All probabilities in (0, 1].
  for (double p : ig.value()->out_probabilities()) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(DatasetPropertyTest, RrSamplingWorksEverywhere) {
  const std::string& name = GetParam();
  VertexId star_n = Datasets::IsStarNetwork(name) ? 2000 : 0;
  InstanceRegistry registry(13, star_n);
  auto ig = registry.GetInstance(name, ProbabilityModel::kIwc);
  ASSERT_TRUE(ig.ok());
  RrSampler sampler(ig.value());
  Rng target_rng(1), coin_rng(2);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (int i = 0; i < 50; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    ASSERT_GE(rr_set.size(), 1u);
    for (VertexId v : rr_set) EXPECT_LT(v, ig.value()->num_vertices());
  }
}

std::string DatasetName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPropertyTest,
                         testing::ValuesIn(Datasets::Names()), DatasetName);

}  // namespace
}  // namespace soldist
