// Unit tests for the thread pool and ParallelFor.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace soldist {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&hits](std::uint64_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&ran](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  ParallelFor(&pool, 50, [&hits](std::uint64_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelForTest, MoreItemsThanChunks) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  ParallelFor(&pool, 10000, [&sum](std::uint64_t i) {
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesPools) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<int> in_this{-1};
  std::atomic<int> in_other{-1};
  pool.Submit([&] {
    in_this.store(pool.InWorkerThread() ? 1 : 0);
    in_other.store(other.InWorkerThread() ? 1 : 0);
  });
  pool.Wait();
  EXPECT_EQ(in_this.load(), 1);
  EXPECT_EQ(in_other.load(), 0);
}

TEST(ThreadPoolDeathTest, ReentrantWaitFromWorkerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Submit([&pool] { pool.Wait(); });
        pool.Wait();
      },
      "re-entrant Wait");
}

TEST(DefaultThreadPoolTest, IsSingletonAndAlive) {
  ThreadPool* a = DefaultThreadPool();
  ThreadPool* b = DefaultThreadPool();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
}

}  // namespace
}  // namespace soldist
