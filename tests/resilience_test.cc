// The resilience primitives' contracts (serve/resilience.h) and the
// fault-injection grammar (store/fault_injection.h), all with injected
// clocks/sleeps so nothing here waits on the wall clock:
//  * Deadline: unlimited never expires; armed deadlines expire exactly
//    at their instant on the injected clock.
//  * RetryWithBackoff: retries ONLY kIoError, replays a deterministic
//    jittered schedule, and never sleeps past the deadline.
//  * AdmissionController: bounded in-flight tickets, immediate shedding
//    beyond the queue watermark, RAII release.
//  * FaultSpec::Parse round-trips valid specs and rejects bad input
//    with a Status, never an abort.
//  * Cooperative cancel truncates a sampled arena to a contiguous
//    prefix that is byte-identical to a direct smaller build.
//  * ArenaCache admits cancelled (partial) builds at their actual τ,
//    upgrades them on the next full-τ request, prefers FULL arenas as
//    eviction victims, and refunds charged bytes exactly when a partial
//    entry that live views still pin is evicted.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "serve/arena_cache.h"
#include "serve/resilience.h"
#include "sim/rr_arena.h"
#include "sim/sampling_engine.h"
#include "store/fault_injection.h"
#include "util/status.h"

namespace soldist {
namespace {

using serve::AdmissionController;
using serve::Deadline;
using serve::RetryPolicy;
using serve::RetryWithBackoff;

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

/// A hand-cranked clock: microseconds advance only when the test says.
struct FakeClock {
  std::uint64_t now_us = 0;
  serve::ClockMicrosFn Fn() {
    return [this] { return now_us; };
  }
};

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(DeadlineTest, ExpiresExactlyAtItsInstantOnInjectedClock) {
  FakeClock clock;
  Deadline deadline = Deadline::AfterMillis(5, clock.Fn());
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 5000u);
  clock.now_us = 4999;
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 1u);
  clock.now_us = 5000;
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 0u);
}

TEST(RetryTest, BackoffScheduleIsDeterministicJitteredAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 3000;
  // Same policy, same attempt → same sleep; jitter stays in [0.5, 1.0)
  // of the exponential envelope, capped at max_backoff_us.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t a = policy.BackoffMicros(attempt);
    const std::uint64_t b = policy.BackoffMicros(attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    const double envelope =
        std::min(1000.0 * (1 << attempt), 3000.0);
    EXPECT_GE(a, static_cast<std::uint64_t>(envelope * 0.5));
    EXPECT_LT(a, static_cast<std::uint64_t>(envelope));
  }
}

TEST(RetryTest, RetriesOnlyIoErrorAndCountsRetries) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  std::atomic<std::uint64_t> retries{0};
  std::vector<std::uint64_t> sleeps;
  auto sleep = [&](std::uint64_t us) { sleeps.push_back(us); };

  // Transient: fails twice with kIoError, then succeeds.
  int calls = 0;
  Status ok = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      &retries, sleep);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.load(), 2u);
  EXPECT_EQ(sleeps.size(), 2u);

  // Permanent: a non-IO failure returns immediately, no retries.
  calls = 0;
  Status bad = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++calls;
        return Status::InvalidArgument("permanent");
      },
      &retries, sleep);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries.load(), 2u);  // unchanged

  // Exhaustion: kIoError every time burns exactly max_attempts.
  calls = 0;
  Status exhausted = RetryWithBackoff(
      policy, Deadline(), [&] {
        ++calls;
        return Status::IoError("always");
      });
  EXPECT_EQ(exhausted.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, policy.max_attempts);
}

TEST(RetryTest, NeverSleepsPastTheDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 4000;
  policy.multiplier = 1.0;
  FakeClock clock;
  Deadline deadline = Deadline::AfterMillis(10, clock.Fn());
  int calls = 0;
  std::uint64_t slept = 0;
  // The fake sleep advances the clock, so the third-or-so backoff runs
  // out the 10ms budget and the loop stops with the last error instead
  // of burning all 10 attempts.
  Status status = RetryWithBackoff(
      policy, deadline,
      [&] {
        ++calls;
        return Status::IoError("down");
      },
      nullptr, [&](std::uint64_t us) {
        slept += us;
        clock.now_us += us;
      });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_LT(calls, policy.max_attempts);
  EXPECT_LE(slept, 10000u);  // each sleep was clipped to remaining time
}

// ---------------------------------------------------------------------
// RetryBudget (ISSUE 10): one attempt pool shared across every
// retryable IO op of a request, so a request whose load burned its
// retries cannot burn them all AGAIN on its save.
// ---------------------------------------------------------------------

TEST(RetryBudgetTest, SharedPoolCapsAttemptsAcrossAnOpPair) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto no_sleep = [](std::uint64_t) {};
  serve::RetryBudget budget(policy.request_budget);  // default: 3 + 1

  // First op of the request: down hard, burns its full 3 attempts.
  int first_calls = 0;
  Status first = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++first_calls;
        return Status::IoError("load path down");
      },
      nullptr, no_sleep, &budget);
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_EQ(first_calls, 3);
  EXPECT_EQ(budget.remaining(), 1);

  // Second op of the SAME request: the pool guarantees exactly one
  // attempt — it runs (and here succeeds) but cannot retry.
  int second_calls = 0;
  Status second = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++second_calls;
        return Status::OK();
      },
      nullptr, no_sleep, &budget);
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(second_calls, 1);
  EXPECT_EQ(budget.remaining(), 0);

  // A third op finds the pool empty before its first attempt: an
  // explicit Unavailable, never a silent zero-attempt "success".
  int third_calls = 0;
  Status third = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++third_calls;
        return Status::OK();
      },
      nullptr, no_sleep, &budget);
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  EXPECT_EQ(third_calls, 0);
}

TEST(RetryBudgetTest, ExhaustionMidOpReturnsTheLastRealError) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  auto no_sleep = [](std::uint64_t) {};
  serve::RetryBudget budget(2);
  int calls = 0;
  // Fails forever; the budget (not max_attempts) stops the loop, and
  // the caller sees the op's own error, not a budget artifact.
  Status status = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++calls;
        return Status::IoError("still down");
      },
      nullptr, no_sleep, &budget);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 2);
}

TEST(RetryBudgetTest, NullBudgetLeavesRetryBehaviorUnchanged) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  auto no_sleep = [](std::uint64_t) {};
  int calls = 0;
  Status status = RetryWithBackoff(
      policy, Deadline(),
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      nullptr, no_sleep, /*budget=*/nullptr);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(AdmissionTest, BoundsInflightShedsBeyondQueueAndReleasesOnDrop) {
  AdmissionController admission(/*max_inflight=*/2, /*max_queue=*/0);
  auto t1 = admission.Admit(Deadline());
  auto t2 = admission.Admit(Deadline());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(admission.inflight(), 2);
  // No queue: the third caller is shed immediately with kUnavailable
  // (even with an unlimited deadline — shedding is load, not time).
  auto shed = admission.Admit(Deadline());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  {
    AdmissionController::Ticket dropped = std::move(t1).value();
  }
  EXPECT_EQ(admission.inflight(), 1);
  auto t3 = admission.Admit(Deadline());
  EXPECT_TRUE(t3.ok());
}

TEST(AdmissionTest, QueuedCallerGetsTheSlotWhenItFrees) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queue=*/1);
  auto held = admission.Admit(Deadline());
  ASSERT_TRUE(held.ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto ticket = admission.Admit(Deadline::AfterMillis(30000));
    admitted.store(ticket.ok());
  });
  // Give the waiter time to queue, then free the slot; the queued
  // caller must be admitted (not shed, not timed out).
  while (admission.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  { AdmissionController::Ticket dropped = std::move(held).value(); }
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionTest, ZeroInflightDisablesAdmissionEntirely) {
  AdmissionController admission(/*max_inflight=*/0, /*max_queue=*/0);
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    auto ticket = admission.Admit(Deadline());
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(ticket).value());
  }
}

TEST(FaultSpecTest, ParsesAndRoundTripsValidSpecs) {
  auto spec = store::FaultSpec::Parse(
      "error-rate=0.1,seed=7,torn-write,slow-read-us=250");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec.value().error_rate, 0.1);
  EXPECT_EQ(spec.value().seed, 7u);
  EXPECT_TRUE(spec.value().torn_write);
  EXPECT_FALSE(spec.value().short_read);
  EXPECT_EQ(spec.value().slow_read_us, 250u);
  EXPECT_TRUE(spec.value().Enabled());
  // Canonical form re-parses to the same spec.
  auto again = store::FaultSpec::Parse(spec.value().ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToString(), spec.value().ToString());
}

TEST(FaultSpecTest, RejectsBadInputWithStatusNotAbort) {
  for (const char* bad :
       {"", "error-rate=1.5", "error-rate=x", "error-every=0",
        "error-every=-3", "torn-write=yes", "short-read=1", "seed=",
        "frequency=0.1", "slow-read-us=abc", "error-rate"}) {
    auto spec = store::FaultSpec::Parse(bad);
    EXPECT_FALSE(spec.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FaultSpecTest, ErrorEveryIsDeterministicAndRateIsSeedStable) {
  store::FaultSpec spec;
  spec.error_every = 3;
  store::FaultInjector every(spec);
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!every.Check(store::FaultOp::kRead, "x").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // ops 3, 6, 9 exactly
  // Same seed → same decision sequence; the draw stream is pure.
  store::FaultSpec rate;
  rate.error_rate = 0.5;
  rate.seed = 11;
  store::FaultInjector a(rate), b(rate);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.Check(store::FaultOp::kWrite, "x").ok(),
              b.Check(store::FaultOp::kWrite, "x").ok())
        << "op " << i;
  }
}

TEST(ResilienceCancelTest, CancelledEngineBuildIsAPrefixOfTheFullBuild) {
  InfluenceGraph ig = KarateUc01();
  // A pre-fired token: every chunk after the global first set skips, so
  // the build truncates to set 0 — and that one set must be
  // byte-identical to the full build's set 0 (prefix-closed streams).
  CancelToken cancelled;
  cancelled.Cancel();
  SamplingOptions sampling = Threads(1, 16);
  sampling.cancel = &cancelled;
  RrArena partial = RrArena::SampleIc(ig, 7, 96, sampling);
  ASSERT_GE(partial.capacity(), 1u);
  ASSERT_LT(partial.capacity(), 96u);

  RrArena full = RrArena::SampleIc(ig, 7, 96, Threads(1, 16));
  ASSERT_EQ(full.capacity(), 96u);
  for (std::uint64_t i = 0; i < partial.capacity(); ++i) {
    std::span<const VertexId> p = partial.Set(i);
    std::span<const VertexId> f = full.Set(i);
    EXPECT_TRUE(std::equal(p.begin(), p.end(), f.begin(), f.end()))
        << "set " << i;
  }
}

TEST(ResilienceCancelTest, UncancelledTokenChangesNothing) {
  InfluenceGraph ig = KarateUc01();
  CancelToken idle;
  SamplingOptions sampling = Threads(2, 16);
  sampling.cancel = &idle;
  RrArena with_token = RrArena::SampleIc(ig, 7, 96, sampling);
  RrArena without = RrArena::SampleIc(ig, 7, 96, Threads(2, 16));
  ASSERT_EQ(with_token.capacity(), 96u);
  ASSERT_EQ(with_token.capacity(), without.capacity());
  for (std::uint64_t i = 0; i < 96; ++i) {
    std::span<const VertexId> a = with_token.Set(i);
    std::span<const VertexId> b = without.Set(i);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

// ---------------------------------------------------------------------
// ArenaCache under partial (deadline-cancelled) builds.
// ---------------------------------------------------------------------

serve::ArenaCache::ArenaPtr MakeArena(const InfluenceGraph& ig,
                                      std::uint64_t capacity) {
  return std::make_shared<RrArena>(
      RrArena::SampleIc(ig, 7, capacity, Threads(1, 64)));
}

TEST(ResilienceCacheTest, PartialBuildAdmitsAtActualTauAndUpgrades) {
  InfluenceGraph ig = KarateUc01();
  serve::ArenaCache cache(/*budget_bytes=*/0);
  // Builder "cancelled" at 8 of 64 sets.
  auto partial = cache.GetOrBuild(
      "k", 64, [&](std::uint64_t) { return MakeArena(ig, 8); });
  EXPECT_EQ(partial->capacity(), 8u);
  EXPECT_EQ(cache.stats().partial_arenas, 1u);
  // A full-τ probe misses (no silent short answers) but the prefix IS
  // resident for degraded serving.
  EXPECT_EQ(cache.TryGet("k", 64), nullptr);
  EXPECT_EQ(cache.TryGet("k", 8), partial);
  EXPECT_EQ(cache.LookupResident("k"), partial);
  // The next full request upgrades: fresh build at 64, partial retired.
  auto full = cache.GetOrBuild(
      "k", 64, [&](std::uint64_t capacity) { return MakeArena(ig, capacity); });
  EXPECT_EQ(full->capacity(), 64u);
  EXPECT_EQ(cache.stats().partial_arenas, 0u);
  EXPECT_EQ(cache.TryGet("k", 64), full);
}

TEST(ResilienceCacheTest, EvictionPrefersFullArenasOverPartialPrefixes) {
  InfluenceGraph ig = KarateUc01();
  const std::uint64_t unit = MakeArena(ig, 32)->ResidentBytes();
  // Budget holds ~2 arenas. Admit the partial FIRST so it sits at the
  // LRU tail (the default victim position), then two full arenas.
  serve::ArenaCache cache(2 * unit + unit / 2);
  auto partial = cache.GetOrBuild(
      "degraded", 64, [&](std::uint64_t) { return MakeArena(ig, 32); });
  ASSERT_EQ(cache.stats().partial_arenas, 1u);
  (void)cache.GetOrBuild(
      "full-a", 32, [&](std::uint64_t c) { return MakeArena(ig, c); });
  (void)cache.GetOrBuild(
      "full-b", 32, [&](std::uint64_t c) { return MakeArena(ig, c); });
  serve::ArenaCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  // The LRU-tail partial was skipped in favor of the older FULL victim:
  // the degraded prefix is still resident.
  EXPECT_EQ(cache.stats().partial_arenas, 1u);
  EXPECT_EQ(cache.LookupResident("degraded"), partial);
}

TEST(ResilienceCacheTest, ChargedBytesRefundExactWhenDegradedViewOutlives) {
  InfluenceGraph ig = KarateUc01();
  const std::uint64_t unit = MakeArena(ig, 32)->ResidentBytes();
  serve::ArenaCache cache(unit + unit / 2);  // holds one arena + slack
  // A degraded "view" (this shared_ptr) pins the partial arena.
  auto degraded_view = cache.GetOrBuild(
      "degraded", 64, [&](std::uint64_t) { return MakeArena(ig, 32); });
  const std::uint64_t charged = cache.stats().resident_bytes;
  EXPECT_EQ(charged, degraded_view->ResidentBytes());
  // Two more full arenas blow the budget; the partial is the only other
  // victim (full ones protect the freshly served key), so it eventually
  // goes — while degraded_view still holds the arena alive.
  (void)cache.GetOrBuild(
      "full-a", 32, [&](std::uint64_t c) { return MakeArena(ig, c); });
  (void)cache.GetOrBuild(
      "full-b", 32, [&](std::uint64_t c) { return MakeArena(ig, c); });
  serve::ArenaCache::Stats stats = cache.stats();
  // The ledger must hold exactly the charges of the entries still
  // mapped — each eviction refunded exactly what it charged, even
  // though the degraded view keeps its arena's memory genuinely alive.
  EXPECT_EQ(stats.resident_arenas, 1u);
  EXPECT_EQ(stats.resident_bytes, unit);
  EXPECT_EQ(stats.partial_arenas, 0u);
  // The pinned arena is unchanged and still answers.
  EXPECT_EQ(degraded_view->capacity(), 32u);
}

}  // namespace
}  // namespace soldist
