// Tests for the greedy framework (Algorithm 3.1) and CELF.

#include <gtest/gtest.h>

#include <map>

#include "core/celf.h"
#include "core/greedy.h"
#include "core/oneshot.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"

namespace soldist {
namespace {

InfluenceGraph StarGraph(VertexId leaves, double p) {
  EdgeList edges;
  edges.num_vertices = leaves + 1;
  for (VertexId i = 1; i <= leaves; ++i) edges.Add(0, i);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), std::vector<double>(leaves, p));
}

InfluenceGraph TwoEdgePairs() {
  // 0 -> 1 and 2 -> 3 with p = 1: vertices 0 and 2 tie exactly.
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(2, 3);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {1.0, 1.0});
}

/// Stub estimator with fixed scores, recording Estimate calls.
class FixedEstimator : public InfluenceEstimator {
 public:
  explicit FixedEstimator(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  void Build() override {}
  double Estimate(VertexId v) override {
    ++calls_;
    return scores_[v];
  }
  void Update(VertexId) override {}
  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return 1; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "Fixed"; }
  std::uint64_t calls() const { return calls_; }

 private:
  std::vector<double> scores_;
  std::uint64_t calls_ = 0;
  TraversalCounters counters_;
};

TEST(GreedyTest, PicksUniqueMaximum) {
  FixedEstimator estimator({1.0, 5.0, 3.0, 2.0});
  Rng tie_rng(1);
  auto result = RunGreedy(&estimator, 4, 1, &tie_rng);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);
  EXPECT_DOUBLE_EQ(result.estimates[0], 5.0);
}

TEST(GreedyTest, SweepsAllUnselectedVertices) {
  FixedEstimator estimator({1.0, 2.0, 3.0, 4.0, 5.0});
  Rng tie_rng(2);
  auto result = RunGreedy(&estimator, 5, 2, &tie_rng);
  // Round 1: 5 calls; round 2: 4 calls (selected vertex skipped).
  EXPECT_EQ(estimator.calls(), 9u);
  EXPECT_EQ(result.seeds[0], 4u);
  EXPECT_EQ(result.seeds[1], 3u);
}

TEST(GreedyTest, SeedsAreDistinct) {
  InfluenceGraph ig = StarGraph(6, 0.5);
  OneshotEstimator estimator(&ig, 4, /*seed=*/3);
  Rng tie_rng(4);
  auto result = RunGreedy(&estimator, ig.num_vertices(), 5, &tie_rng);
  std::vector<VertexId> sorted = result.SortedSeedSet();
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(sorted.size(), 5u);
}

TEST(GreedyTest, StarCenterAlwaysFirstAtFullProbability) {
  InfluenceGraph ig = StarGraph(8, 1.0);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RisEstimator estimator(&ig, 256, seed);
    Rng tie_rng(seed + 1000);
    auto result = RunGreedy(&estimator, ig.num_vertices(), 1, &tie_rng);
    EXPECT_EQ(result.seeds[0], 0u) << "seed " << seed;
  }
}

TEST(GreedyTest, TieBrokenUniformly) {
  // Vertices 0 and 2 have identical deterministic influence 2.0; 1 and 3
  // have 1.0. Over many runs both 0 and 2 must be chosen often.
  InfluenceGraph ig = TwoEdgePairs();
  std::map<VertexId, int> wins;
  constexpr int kRuns = 600;
  for (int run = 0; run < kRuns; ++run) {
    SnapshotEstimator estimator(&ig, 1, /*seed=*/run);
    Rng tie_rng(run * 7919 + 17);
    auto result = RunGreedy(&estimator, ig.num_vertices(), 1, &tie_rng);
    ++wins[result.seeds[0]];
  }
  EXPECT_EQ(wins.count(1), 0u);
  EXPECT_EQ(wins.count(3), 0u);
  // Binomial(600, 0.5): 5 sigma ≈ 61.
  EXPECT_GT(wins[0], 230);
  EXPECT_GT(wins[2], 230);
}

TEST(GreedyTest, LastMaximumWins) {
  // All scores equal: the selected vertex must be the LAST in shuffled
  // order. Reconstruct the shuffle with an identically seeded Rng.
  FixedEstimator estimator(std::vector<double>(10, 1.0));
  Rng tie_rng(42);
  auto result = RunGreedy(&estimator, 10, 1, &tie_rng);

  std::vector<VertexId> order(10);
  for (VertexId v = 0; v < 10; ++v) order[v] = v;
  Rng replay(42);
  std::shuffle(order.begin(), order.end(), replay.engine());
  EXPECT_EQ(result.seeds[0], order.back());
}

TEST(GreedyTest, SortedSeedSetSorts) {
  GreedyRunResult result;
  result.seeds = {5, 1, 3};
  EXPECT_EQ(result.SortedSeedSet(), (std::vector<VertexId>{1, 3, 5}));
}

TEST(CelfTest, MatchesPlainGreedyOnDeterministicInstance) {
  InfluenceGraph ig = StarGraph(8, 1.0);
  RisEstimator plain_est(&ig, 512, /*seed=*/5);
  Rng tie1(6);
  auto plain = RunGreedy(&plain_est, ig.num_vertices(), 3, &tie1);

  RisEstimator celf_est(&ig, 512, /*seed=*/5);
  Rng tie2(6);
  auto celf = RunCelfGreedy(&celf_est, ig.num_vertices(), 3, &tie2);
  // The star at p=1 has a unique best first seed; subsequent marginals all
  // tie at 0, so compare the seed sets' first element and size.
  EXPECT_EQ(celf.greedy.seeds[0], plain.seeds[0]);
  EXPECT_EQ(celf.greedy.seeds.size(), plain.seeds.size());
}

TEST(CelfTest, SavesEstimateCalls) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig = MakeInfluenceGraph(std::move(g),
                                         ProbabilityModel::kUc01);
  RisEstimator estimator(&ig, 2048, /*seed=*/7);
  Rng tie_rng(8);
  auto result = RunCelfGreedy(&estimator, ig.num_vertices(), 4, &tie_rng);
  // Plain greedy would use 34 + 33 + 32 + 31 = 130 calls.
  EXPECT_LT(result.estimate_calls, 130u);
  EXPECT_GE(result.estimate_calls, 34u);  // at least the initial sweep
  EXPECT_EQ(result.greedy.seeds.size(), 4u);
}

TEST(CelfDeathTest, RejectsNonMarginalEstimator) {
  InfluenceGraph ig = StarGraph(4, 0.5);
  OneshotEstimator estimator(&ig, 4, /*seed=*/9);
  Rng tie_rng(10);
  EXPECT_DEATH(RunCelfGreedy(&estimator, ig.num_vertices(), 1, &tie_rng),
               "marginal");
}

}  // namespace
}  // namespace soldist
