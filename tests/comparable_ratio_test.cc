// Tests for comparable number/size ratio computation (Section 5.2.3).

#include <gtest/gtest.h>

#include <cmath>

#include "stats/comparable_ratio.h"

namespace soldist {
namespace {

std::vector<SweepPoint> Curve(
    std::initializer_list<std::tuple<std::uint64_t, double, double>> points) {
  std::vector<SweepPoint> curve;
  for (const auto& [s, mean, size] : points) {
    curve.push_back({s, mean, size});
  }
  return curve;
}

TEST(ComparableRatioTest, BasicPairing) {
  // alg2 needs 4x the samples of alg1 at every level.
  auto curve1 = Curve({{1, 10.0, 5.0}, {2, 20.0, 10.0}, {4, 30.0, 20.0}});
  auto curve2 = Curve({{1, 2.0, 1.0},
                       {2, 6.0, 2.0},
                       {4, 10.0, 4.0},
                       {8, 20.0, 8.0},
                       {16, 30.0, 16.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].s1, 1u);
  EXPECT_EQ(pairs[0].s2, 4u);
  EXPECT_DOUBLE_EQ(pairs[0].number_ratio, 4.0);
  EXPECT_DOUBLE_EQ(pairs[1].number_ratio, 4.0);
  EXPECT_DOUBLE_EQ(pairs[2].number_ratio, 4.0);
  auto median = MedianNumberRatio(pairs);
  ASSERT_TRUE(median.has_value());
  EXPECT_DOUBLE_EQ(*median, 4.0);
}

TEST(ComparableRatioTest, UnreachableLevelsSkipped) {
  auto curve1 = Curve({{1, 10.0, 1.0}, {2, 1000.0, 2.0}});
  auto curve2 = Curve({{1, 10.0, 1.0}, {2, 20.0, 2.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 1u);  // the 1000.0 level is unreachable
  EXPECT_EQ(pairs[0].s1, 1u);
  EXPECT_EQ(pairs[0].s2, 1u);
}

TEST(ComparableRatioTest, SizeRatioComputed) {
  auto curve1 = Curve({{4, 10.0, 100.0}});
  auto curve2 = Curve({{8, 12.0, 10.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].number_ratio, 2.0);
  EXPECT_DOUBLE_EQ(pairs[0].size_ratio, 0.1);
}

TEST(ComparableRatioTest, ZeroSizeGivesNanRatio) {
  // Oneshot stores nothing: size ratio undefined (paper footnote 3).
  auto curve1 = Curve({{4, 10.0, 0.0}});
  auto curve2 = Curve({{4, 11.0, 5.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(std::isnan(pairs[0].size_ratio));
  EXPECT_FALSE(MedianSizeRatio(pairs).has_value());
}

TEST(ComparableRatioTest, MedianEvenCount) {
  std::vector<ComparablePair> pairs;
  pairs.push_back({1, 2, 2.0, 1.0});
  pairs.push_back({2, 8, 4.0, 2.0});
  auto median = MedianNumberRatio(pairs);
  ASSERT_TRUE(median.has_value());
  EXPECT_DOUBLE_EQ(*median, 3.0);
}

TEST(ComparableRatioTest, EmptyInputs) {
  auto pairs = ComputeComparablePairs({}, {});
  EXPECT_TRUE(pairs.empty());
  EXPECT_FALSE(MedianNumberRatio(pairs).has_value());
  EXPECT_FALSE(MedianSizeRatio(pairs).has_value());
}

TEST(ComparableRatioTest, ZeroSampleNumberPointsSkipped) {
  // A leading sample_number == 0 point passes the strictly-increasing
  // CHECKs but would make number_ratio infinite (as s1) or zero (as s2),
  // poisoning MedianNumberRatio; such invalid points must be skipped.
  auto curve1 = Curve({{0, 5.0, 1.0}, {2, 20.0, 10.0}});
  auto curve2 = Curve({{0, 50.0, 1.0}, {4, 30.0, 4.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].s1, 2u);
  EXPECT_EQ(pairs[0].s2, 4u);  // the s2 = 0 point is never a match
  EXPECT_DOUBLE_EQ(pairs[0].number_ratio, 2.0);
  auto median = MedianNumberRatio(pairs);
  ASSERT_TRUE(median.has_value());
  EXPECT_TRUE(std::isfinite(*median));
}

TEST(ComparableRatioTest, RatioBelowOnePossible) {
  // alg2 can be *more* sample-efficient: ratio < 1.
  auto curve1 = Curve({{8, 10.0, 8.0}});
  auto curve2 = Curve({{1, 15.0, 1.0}});
  auto pairs = ComputeComparablePairs(curve1, curve2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].number_ratio, 1.0 / 8.0);
}

}  // namespace
}  // namespace soldist
