// Crash consistency of the arena store (ISSUE 10): a fork-based crash
// matrix proves that killing the saving process at EVERY injected crash
// point (`crash-at=<boundary>:<n>`, store/fault_injection.h) leaves a
// directory from which the startup sweep (store/recovery.h) recovers to
// exactly one of two states — a byte-identical reload or a clean
// NotFound miss. Never a wrong answer, never an abort, never leftover
// debris. Plus the sweep's classification contract on hand-built trees
// (tmp debris, orphan payloads, corrupt entries, foreign dirs) and its
// idempotence.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "sim/rr_arena.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_arena.h"
#include "store/arena_io.h"
#include "store/fault_injection.h"
#include "store/recovery.h"
#include "util/status.h"

namespace soldist {
namespace {

namespace fs = std::filesystem;

InfluenceGraph KarateUc01() {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  return MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
}

SamplingOptions Threads(int num_threads, std::uint64_t chunk_size) {
  SamplingOptions options;
  options.num_threads = num_threads;
  options.chunk_size = chunk_size;
  return options;
}

/// A fresh (removed-if-present) directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/crash_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

store::ArenaManifest Manifest(std::string kind, std::uint64_t seed,
                              std::string stream, std::uint64_t capacity) {
  store::ArenaManifest manifest;
  manifest.kind = std::move(kind);
  manifest.workload = "Karate/uc0.1";
  manifest.seed = seed;
  manifest.stream = std::move(stream);
  manifest.capacity = capacity;
  return manifest;
}

bool TreeHasTmpFiles(const std::string& root) {
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->path().filename().string().ends_with(".tmp")) return true;
  }
  return false;
}

/// The crash points a SaveArena can hit. n runs past the real occurrence
/// count on purpose: an unreached crash point must mean a completed,
/// reloadable save.
struct CrashPoint {
  const char* boundary;
  int n;
};

std::vector<CrashPoint> CrashMatrix() {
  std::vector<CrashPoint> points;
  for (const char* boundary : {"open", "write", "sync", "rename"}) {
    for (int n = 1; n <= 4; ++n) points.push_back({boundary, n});
  }
  return points;
}

/// Child exit codes besides store::kCrashExitCode (42 = intended crash).
constexpr int kChildSavedOk = 0;
constexpr int kChildSaveFailed = 3;

/// Forks, crashes the child at `point` mid-save via `save`, and checks
/// the invariant in the parent: after the recovery sweep the entry
/// either reloads byte-identically (checksum + shape via `load`) or
/// misses with a clean kNotFound — and the sweep is idempotent.
template <typename SaveFn, typename LoadCheckFn>
void RunCrashCase(const std::string& label, const CrashPoint& point,
                  SaveFn save, LoadCheckFn load_check) {
  SCOPED_TRACE(label + " crash-at=" + point.boundary + ":" +
               std::to_string(point.n));
  const std::string root = FreshDir(label + "_" + point.boundary + "_" +
                                    std::to_string(point.n));
  const std::string entry = root + "/entry";
  ASSERT_TRUE(fs::create_directories(root));

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: arm the crash point and save. No gtest machinery, no
    // stdio, no return — _exit only, so a non-crashing path cannot
    // flush duplicated parent buffers or run atexit handlers.
    const std::string spec = std::string("crash-at=") + point.boundary +
                             ":" + std::to_string(point.n);
    if (!store::InstallFaultInjector(spec).ok()) ::_exit(kChildSaveFailed);
    const Status saved = save(entry);
    ::_exit(saved.ok() ? kChildSavedOk : kChildSaveFailed);
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally";
  const int code = WEXITSTATUS(wstatus);
  ASSERT_TRUE(code == kChildSavedOk || code == store::kCrashExitCode)
      << "child exit code " << code
      << " — with only a crash point armed, SaveArena must either "
         "complete or die at the injected _exit";

  // Startup sweep over the crash site, then the only-two-outcomes check.
  StatusOr<store::RecoveryReport> swept = store::RecoverArenaDir(root);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_FALSE(TreeHasTmpFiles(root)) << "sweep left tmp debris";
  const bool reloadable = load_check(entry);
  if (code == kChildSavedOk) {
    EXPECT_TRUE(reloadable)
        << "save reported success but the entry does not reload";
  }

  // Idempotence: a second sweep finds nothing left to do.
  StatusOr<store::RecoveryReport> again = store::RecoverArenaDir(root);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().cleaned_tmp_files, 0u);
  EXPECT_EQ(again.value().orphaned_payloads, 0u);
  EXPECT_EQ(again.value().quarantined_entries, 0u);
  EXPECT_EQ(again.value().sweep_errors, 0u);
}

TEST(CrashMatrixTest, RrArenaEveryCrashPointBothStreamFamilies) {
  InfluenceGraph ig = KarateUc01();
  struct Family {
    const char* name;
    std::string stream;
    SamplingOptions sampling;
  };
  // Both stream families; the engine pool is private to Sample and its
  // threads are joined before any fork below.
  const Family families[] = {{"rr_seq", "seq", Threads(1, 64)},
                             {"rr_engine", "engine/16", Threads(2, 16)}};
  for (const Family& family : families) {
    const RrArena arena = RrArena::SampleIc(ig, 7, 48, family.sampling);
    const std::uint64_t want_checksum = arena.ContentChecksum();
    const store::ArenaManifest manifest =
        Manifest("rr", 7, family.stream, 48);
    for (const CrashPoint& point : CrashMatrix()) {
      RunCrashCase(
          family.name, point,
          [&](const std::string& dir) {
            return store::SaveRrArena(arena, manifest, dir);
          },
          [&](const std::string& dir) {
            auto loaded = store::LoadRrArena(dir, manifest);
            if (!loaded.ok()) {
              EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
                  << loaded.status().ToString()
                  << " — a crashed save must be a clean miss, not a "
                     "corrupt read";
              return false;
            }
            EXPECT_EQ(loaded.value()->ContentChecksum(), want_checksum);
            EXPECT_EQ(loaded.value()->capacity(), arena.capacity());
            EXPECT_EQ(loaded.value()->total_entries(),
                      arena.total_entries());
            return true;
          });
    }
  }
}

TEST(CrashMatrixTest, SnapshotArenaEveryCrashPointBothStreamFamilies) {
  InfluenceGraph ig = KarateUc01();
  struct Family {
    const char* name;
    std::string stream;
    SamplingOptions sampling;
  };
  const Family families[] = {{"snap_seq", "seq", Threads(1, 16)},
                             {"snap_engine", "engine/16", Threads(2, 16)}};
  for (const Family& family : families) {
    const SnapshotArena arena = SnapshotArena::Sample(ig, 11, 24,
                                                      family.sampling);
    const std::uint64_t want_checksum = arena.ContentChecksum();
    const store::ArenaManifest manifest =
        Manifest("snapshot", 11, family.stream, 24);
    for (const CrashPoint& point : CrashMatrix()) {
      RunCrashCase(
          family.name, point,
          [&](const std::string& dir) {
            return store::SaveSnapshotArena(arena, manifest, dir);
          },
          [&](const std::string& dir) {
            auto loaded = store::LoadSnapshotArena(dir, manifest);
            if (!loaded.ok()) {
              EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
                  << loaded.status().ToString();
              return false;
            }
            EXPECT_EQ(loaded.value()->ContentChecksum(), want_checksum);
            EXPECT_EQ(loaded.value()->capacity(), arena.capacity());
            return true;
          });
    }
  }
}

// ---------------------------------------------------------------------
// The crash-at clause itself: grammar, per-boundary counting, exit path.
// ---------------------------------------------------------------------

TEST(CrashSpecTest, ParsesAndRoundTrips) {
  auto spec = store::FaultSpec::Parse("crash-at=rename:2");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().crash_at_op, store::FaultOp::kRename);
  EXPECT_EQ(spec.value().crash_at_n, 2u);
  EXPECT_TRUE(spec.value().Enabled());
  auto round = store::FaultSpec::Parse(spec.value().ToString());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().crash_at_op, store::FaultOp::kRename);
  EXPECT_EQ(round.value().crash_at_n, 2u);
}

TEST(CrashSpecTest, RejectsBadBoundaryAndBadCount) {
  EXPECT_FALSE(store::FaultSpec::Parse("crash-at=flush:1").ok());
  EXPECT_FALSE(store::FaultSpec::Parse("crash-at=write:0").ok());
  EXPECT_FALSE(store::FaultSpec::Parse("crash-at=write").ok());
}

TEST(CrashSpecTest, CountsOccurrencesPerBoundaryNotGlobally) {
  // sync:1 must survive any number of preceding writes; only the fork
  // child actually reaches the _exit.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!store::InstallFaultInjector("crash-at=sync:1").ok()) ::_exit(3);
    store::FaultInjector* injector = store::fault_injector();
    for (int i = 0; i < 5; ++i) {
      if (!injector->Check(store::FaultOp::kWrite, "payload").ok()) {
        ::_exit(4);
      }
    }
    (void)injector->Check(store::FaultOp::kSync, "payload");
    ::_exit(5);  // unreachable: the sync check must have killed us
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), store::kCrashExitCode);
}

// ---------------------------------------------------------------------
// Recovery sweep classification on hand-built trees.
// ---------------------------------------------------------------------

TEST(RecoverySweepTest, ClassifiesDebrisOrphansCorruptionAndForeign) {
  InfluenceGraph ig = KarateUc01();
  const RrArena arena = RrArena::SampleIc(ig, 7, 32, Threads(1, 64));
  const store::ArenaManifest manifest = Manifest("rr", 7, "seq", 32);
  const std::string root = FreshDir("classify");
  ASSERT_TRUE(fs::create_directories(root));

  // healthy: a real committed entry.
  ASSERT_TRUE(store::SaveRrArena(arena, manifest, root + "/healthy").ok());
  // corrupt: committed, then the payload is truncated behind its back.
  ASSERT_TRUE(store::SaveRrArena(arena, manifest, root + "/corrupt").ok());
  fs::resize_file(root + "/corrupt/payload.bin", 8);
  // orphan: a payload without a manifest (crash between the two commits).
  ASSERT_TRUE(fs::create_directories(root + "/orphan"));
  std::ofstream(root + "/orphan/payload.bin") << "stale";
  // tmp debris at the root and inside an entry.
  std::ofstream(root + "/payload.bin.tmp") << "partial";
  std::ofstream(root + "/healthy/manifest.json.tmp") << "partial";
  // foreign: a directory that is not an arena entry at all.
  ASSERT_TRUE(fs::create_directories(root + "/foreign"));
  std::ofstream(root + "/foreign/notes.txt") << "hands off";

  StatusOr<store::RecoveryReport> swept = store::RecoverArenaDir(root);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  const store::RecoveryReport& report = swept.value();
  EXPECT_EQ(report.cleaned_tmp_files, 2u);
  EXPECT_EQ(report.orphaned_payloads, 1u);
  EXPECT_EQ(report.quarantined_entries, 1u);
  EXPECT_EQ(report.sweep_errors, 0u);
  EXPECT_FALSE(report.Clean());

  // The healthy entry still loads; the corrupt one is a clean miss in
  // quarantine; the foreign dir was not touched.
  auto loaded = store::LoadRrArena(root + "/healthy", manifest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->ContentChecksum(), arena.ContentChecksum());
  EXPECT_EQ(store::LoadRrArena(root + "/corrupt", manifest).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(fs::exists(root + "/quarantine"));
  EXPECT_TRUE(fs::exists(root + "/foreign/notes.txt"));
  EXPECT_FALSE(TreeHasTmpFiles(root + "/healthy"));

  // Second sweep: nothing left to do (the report is clean).
  StatusOr<store::RecoveryReport> again = store::RecoverArenaDir(root);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().Clean());
}

TEST(RecoverySweepTest, MissingRootIsCleanNoop) {
  StatusOr<store::RecoveryReport> swept =
      store::RecoverArenaDir(FreshDir("never_created"));
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_TRUE(swept.value().Clean());
  EXPECT_EQ(swept.value().scanned_entries, 0u);
}

}  // namespace
}  // namespace soldist
