// Tests for the compressed RR-set collection (paper Section 7's space
// reduction direction).

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "random/rng.h"
#include "sim/rr_arena.h"
#include "sim/rr_sampler.h"

namespace soldist {
namespace {

TEST(VarintTest, RoundTripValues) {
  std::vector<std::uint8_t> buffer;
  std::vector<std::uint64_t> values{0,    1,        127,        128,
                                    255,  16383,    16384,      1u << 20,
                                    ~0u,  1ULL << 40, ~0ULL};
  for (std::uint64_t v : values) VarintEncode(v, &buffer);
  std::size_t pos = 0;
  for (std::uint64_t v : values) {
    EXPECT_EQ(VarintDecode(buffer.data(), &pos), v);
  }
  EXPECT_EQ(pos, buffer.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buffer;
  VarintEncode(127, &buffer);
  EXPECT_EQ(buffer.size(), 1u);
  VarintEncode(128, &buffer);
  EXPECT_EQ(buffer.size(), 3u);  // 127 -> 1 byte, 128 -> 2 bytes
}

TEST(CompressedRrTest, DecodeSetsMatchInput) {
  CompressedRrCollection collection(100);
  collection.Add({5, 3, 99});
  collection.Add({42});
  collection.Add({0, 1, 2, 3});
  ASSERT_EQ(collection.size(), 3u);
  EXPECT_EQ(collection.total_entries(), 8u);

  std::vector<VertexId> decoded;
  collection.DecodeSet(0, &decoded);
  EXPECT_EQ(decoded, (std::vector<VertexId>{3, 5, 99}));  // sorted
  collection.DecodeSet(1, &decoded);
  EXPECT_EQ(decoded, (std::vector<VertexId>{42}));
  collection.DecodeSet(2, &decoded);
  EXPECT_EQ(decoded, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(CompressedRrTest, InvertedListAndCoverage) {
  CompressedRrCollection collection(4);
  collection.Add({0, 1});
  collection.Add({2});
  collection.Add({1, 2, 3});
  collection.BuildIndex();

  std::vector<std::uint64_t> list;
  collection.DecodeInvertedList(1, &list);
  EXPECT_EQ(list, (std::vector<std::uint64_t>{0, 2}));
  collection.DecodeInvertedList(0, &list);
  EXPECT_EQ(list, (std::vector<std::uint64_t>{0}));

  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{1}), 2u);
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{1, 2}), 3u);
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{}), 0u);
}

TEST(CompressedRrTest, AgreesWithUncompressedOnRealSamples) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  RrSampler sampler(&ig);
  Rng target_rng(1), coin_rng(2);
  TraversalCounters counters;

  RrCollection plain(ig.num_vertices());
  CompressedRrCollection compressed(ig.num_vertices());
  std::vector<VertexId> rr_set;
  for (int i = 0; i < 5000; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    plain.Add(rr_set);
    compressed.Add(rr_set);
  }
  plain.BuildIndex();
  compressed.BuildIndex();

  // Identical coverage counts for a spread of seed sets.
  Rng query_rng(3);
  for (int q = 0; q < 200; ++q) {
    std::vector<VertexId> seeds;
    int size = 1 + static_cast<int>(query_rng.UniformInt(4));
    for (int j = 0; j < size; ++j) {
      seeds.push_back(
          static_cast<VertexId>(query_rng.UniformInt(ig.num_vertices())));
    }
    EXPECT_EQ(plain.CountCovered(seeds), compressed.CountCovered(seeds));
  }
}

TEST(CompressedRrTest, ActuallyCompresses) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  RrSampler sampler(&ig);
  Rng target_rng(4), coin_rng(5);
  TraversalCounters counters;
  CompressedRrCollection compressed(ig.num_vertices());
  std::vector<VertexId> rr_set;
  for (int i = 0; i < 20000; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    compressed.Add(rr_set);
  }
  compressed.BuildIndex();
  // Vertex ids < 34 and gap-encoded set ids: each entry should take
  // fewer bytes than the 8 (4 set + 4 index) of the plain layout. The
  // margin is 2/3 — set ids gap-encode to ~1-2 bytes against the plain
  // index's 4, but the 20k tiny sets here keep a per-set length byte.
  EXPECT_LT(compressed.MemoryBytes(), compressed.UncompressedBytes() * 2 / 3);
}

TEST(CompressedRrTest, EmptyCollection) {
  CompressedRrCollection collection(10);
  EXPECT_EQ(collection.size(), 0u);
  collection.BuildIndex();
  EXPECT_EQ(collection.CountCovered(std::vector<VertexId>{3}), 0u);
}

}  // namespace
}  // namespace soldist
