// Failure-injection tests: the CHECK contracts that guard the library
// against misuse must actually fire (death tests), and Status paths must
// engage instead of crashing for recoverable errors.

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/greedy.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/lt.h"
#include "model/probability.h"
#include "oracle/exact_oracle.h"
#include "sim/rr_sampler.h"

namespace soldist {
namespace {

InfluenceGraph TinyIg(double p = 0.5) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  return InfluenceGraph(std::move(g), {p});
}

using FailureDeathTest = testing::Test;

TEST(FailureDeathTest, InfluenceGraphRejectsOutOfRangeProbability) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  Graph g1 = GraphBuilder::FromEdgeList(edges);
  EXPECT_DEATH(InfluenceGraph(std::move(g1), {1.5}), "probability");
  Graph g2 = GraphBuilder::FromEdgeList(edges);
  EXPECT_DEATH(InfluenceGraph(std::move(g2), {0.0}), "probability");
}

TEST(FailureDeathTest, InfluenceGraphRejectsMisalignedProbabilities) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.Add(0, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  EXPECT_DEATH(InfluenceGraph(std::move(g), {0.5, 0.5}), "align");
}

TEST(FailureDeathTest, BuilderRejectsInvalidEdgeList) {
  EdgeList edges;
  edges.num_vertices = 1;
  edges.Add(0, 5);  // endpoint out of range
  EXPECT_DEATH(GraphBuilder::FromEdgeList(edges), "out-of-range");
}

TEST(FailureDeathTest, EstimatorsRejectDoubleBuild) {
  InfluenceGraph ig = TinyIg();
  SnapshotEstimator snapshot(&ig, 2, 1);
  snapshot.Build();
  EXPECT_DEATH(snapshot.Build(), "exactly once");
  RisEstimator ris(&ig, 2, 1);
  ris.Build();
  EXPECT_DEATH(ris.Build(), "exactly once");
}

TEST(FailureDeathTest, EstimateBeforeBuildFires) {
  InfluenceGraph ig = TinyIg();
  RisEstimator ris(&ig, 2, 1);
  EXPECT_DEATH(ris.Estimate(0), "built");
}

TEST(FailureDeathTest, GreedyRejectsOversizedK) {
  InfluenceGraph ig = TinyIg();
  auto estimator = MakeEstimator(ModelInstance::Ic(&ig), Approach::kRis, 4, 1);
  Rng tie_rng(1);
  EXPECT_DEATH(RunGreedy(estimator.get(), ig.num_vertices(), 3, &tie_rng),
               "");
}

TEST(FailureDeathTest, LtWeightsRejectInvalidGraph) {
  // In-weights sum to 1.5 at vertex 1: invalid for LT.
  EdgeList edges;
  edges.num_vertices = 3;
  edges.Add(0, 1);
  edges.Add(2, 1);
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig(std::move(g), {0.9, 0.6});
  EXPECT_DEATH(LtWeights{&ig}, "iwc");
}

TEST(FailureDeathTest, ExactOracleRejectsLargeGraphs) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Karate());  // 156 edges
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(g), ProbabilityModel::kUc01);
  EXPECT_DEATH(ExactInfluence(ig, std::vector<VertexId>{0}), "enumeration");
}

TEST(FailureDeathTest, RrCollectionQueriesRequireIndex) {
  RrCollection collection(4);
  collection.Add({1, 2});
  EXPECT_DEATH(collection.CountCovered(std::vector<VertexId>{1}),
               "BuildIndex");
  EXPECT_DEATH(collection.InvertedList(1), "BuildIndex");
}

TEST(FailureStatusTest, DatasetByNameReturnsNotFound) {
  auto result = Datasets::ByName("NoSuchNetwork", 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FailureStatusTest, ProbabilityParseReturnsNotFound) {
  auto result = ParseProbabilityModel("bogus");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace soldist
