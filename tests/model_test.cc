// Unit tests for the IC-model layer: influence graphs and the
// edge-probability settings of paper Section 4.3.

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/influence_graph.h"
#include "model/instance.h"
#include "model/probability.h"

namespace soldist {
namespace {

Graph Diamond() {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 3);
  edges.Add(2, 3);
  return GraphBuilder::FromEdgeList(edges);
}

TEST(ProbabilityTest, UniformSettings) {
  Graph g = Diamond();
  auto p01 = AssignProbabilities(g, ProbabilityModel::kUc01, nullptr);
  auto p001 = AssignProbabilities(g, ProbabilityModel::kUc001, nullptr);
  for (double p : p01) EXPECT_DOUBLE_EQ(p, 0.1);
  for (double p : p001) EXPECT_DOUBLE_EQ(p, 0.01);
}

TEST(ProbabilityTest, IwcInProbabilitiesSumToOne) {
  // The defining property: Σ_{u ∈ Γ−(v)} p(u,v) = 1 for every v with
  // in-degree > 0 (paper Section 4.3).
  Graph g = GraphBuilder::FromEdgeList(Datasets::Physicians(3));
  InfluenceGraph ig = MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
  const Graph& graph = ig.graph();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.InDegree(v) == 0) continue;
    double sum = 0.0;
    for (EdgeId pos = graph.in_offsets()[v]; pos < graph.in_offsets()[v + 1];
         ++pos) {
      sum += ig.InProbability(pos);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "vertex " << v;
  }
}

TEST(ProbabilityTest, OwcOutProbabilitiesSumToOne) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Physicians(3));
  InfluenceGraph ig = MakeInfluenceGraph(std::move(g), ProbabilityModel::kOwc);
  const Graph& graph = ig.graph();
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    if (graph.OutDegree(u) == 0) continue;
    double sum = 0.0;
    for (EdgeId e = graph.out_offsets()[u]; e < graph.out_offsets()[u + 1];
         ++e) {
      sum += ig.OutProbability(e);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "vertex " << u;
  }
}

TEST(ProbabilityTest, TrivalencyDrawsFromThreeLevels) {
  Graph g = GraphBuilder::FromEdgeList(Datasets::Physicians(3));
  Rng rng(5);
  auto probs = AssignProbabilities(g, ProbabilityModel::kTrivalency, &rng);
  int counts[3] = {0, 0, 0};
  for (double p : probs) {
    if (p == 0.1) {
      ++counts[0];
    } else if (p == 0.01) {
      ++counts[1];
    } else if (p == 0.001) {
      ++counts[2];
    } else {
      FAIL() << "unexpected probability " << p;
    }
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(ProbabilityTest, NamesRoundTrip) {
  for (ProbabilityModel model : PaperProbabilityModels()) {
    auto parsed = ParseProbabilityModel(ProbabilityModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), model);
  }
  EXPECT_TRUE(ParseProbabilityModel("tv").ok());
  EXPECT_FALSE(ParseProbabilityModel("wc").ok());
}

TEST(ProbabilityTest, PaperModelsAreTheFour) {
  auto models = PaperProbabilityModels();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(ProbabilityModelName(models[0]), "uc0.1");
  EXPECT_EQ(ProbabilityModelName(models[1]), "uc0.01");
  EXPECT_EQ(ProbabilityModelName(models[2]), "iwc");
  EXPECT_EQ(ProbabilityModelName(models[3]), "owc");
}

TEST(InfluenceGraphTest, InProbabilityMirrorsOutProbability) {
  Graph g = Diamond();
  // Distinct probabilities per edge expose any misalignment.
  std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  InfluenceGraph ig(std::move(g), probs);
  const Graph& graph = ig.graph();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (EdgeId pos = graph.in_offsets()[v]; pos < graph.in_offsets()[v + 1];
         ++pos) {
      EdgeId out_edge = graph.in_to_out_edge()[pos];
      EXPECT_DOUBLE_EQ(ig.InProbability(pos), ig.OutProbability(out_edge));
    }
  }
}

TEST(InfluenceGraphTest, SumProbabilitiesIsMTilde) {
  InfluenceGraph ig(Diamond(), {0.1, 0.2, 0.3, 0.4});
  EXPECT_NEAR(ig.SumProbabilities(), 1.0, 1e-12);
}

TEST(InfluenceGraphTest, MTildeForIwcIsN) {
  // Under iwc, m̃ = Σ_e 1/d−(dst) = Σ_v with in-degree>0 of 1 — on graphs
  // where every vertex has in-degree > 0 this is exactly n (paper §5.3.1).
  EdgeList edges = Datasets::Karate();
  Graph g = GraphBuilder::FromEdgeList(edges);
  InfluenceGraph ig = MakeInfluenceGraph(std::move(g), ProbabilityModel::kIwc);
  EXPECT_NEAR(ig.SumProbabilities(), 34.0, 1e-9);
}

TEST(InstanceSpecTest, LabelMatchesPaperStyle) {
  InstanceSpec spec{"Karate", ProbabilityModel::kUc01, 4};
  EXPECT_EQ(spec.Label(), "Karate (uc0.1, k=4)");
}

}  // namespace
}  // namespace soldist
