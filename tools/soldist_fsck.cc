// soldist_fsck: offline integrity checker / repairer for an --arena-dir
// tree (store/arena_io.h format, store/recovery.h semantics). Where the
// serving layer sweeps at startup and scrubs in the background, fsck is
// the operator's standalone handle on the same machinery:
//
//   soldist_fsck verify <dir>   read-only: classify every entry (healthy
//                               / corrupt / orphan payload / tmp debris)
//                               and print one line per finding. Exit 0
//                               when the tree is clean, 1 when anything
//                               needs attention — nothing is modified.
//   soldist_fsck repair <dir>   run the recovery sweep: delete *.tmp
//                               debris and orphan payloads, quarantine
//                               corrupt entries into <dir>/quarantine/.
//                               Prints the RecoveryReport; exit 0 when
//                               the sweep finished (clean or repaired),
//                               1 when filesystem errors stopped it from
//                               finishing. A repaired tree reloads clean.
//   soldist_fsck ls <dir>       read-only inventory: each entry's
//                               manifest identity (kind, workload, seed,
//                               stream, capacity) plus its verify state.
//
// --json switches every output line to a JSON object (one per entry,
// plus a final summary line), mirroring the REPL's machine-readable
// discipline. Usage errors exit 2.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "store/arena_io.h"
#include "store/recovery.h"
#include "util/json.h"
#include "util/status.h"

namespace soldist {
namespace {

namespace fs = std::filesystem;

constexpr int kExitClean = 0;
constexpr int kExitBad = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage: soldist_fsck <verify|repair|ls> <arena-dir> [--json]\n"
      "  verify  read-only integrity check; exit 1 if anything is bad\n"
      "  repair  recovery sweep: delete debris, quarantine corruption\n"
      "  ls      inventory of entries with manifest identity + state\n");
  return kExitUsage;
}

/// One classified child of the arena root.
struct Finding {
  std::string path;
  std::string state;   // "healthy" | "corrupt" | "orphan-payload" |
                       // "tmp-debris" | "foreign"
  std::string detail;  // the Status message for corrupt entries
  bool bad = false;    // needs attention (verify exits 1)
};

/// Read-only classification of every immediate child, in sorted order —
/// the same shapes RecoverArenaDir acts on, without acting.
std::vector<Finding> ClassifyTree(const std::string& root) {
  std::vector<Finding> findings;
  std::error_code ec;
  std::vector<fs::path> children;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    children.push_back(entry.path());
  }
  std::sort(children.begin(), children.end());
  for (const fs::path& child : children) {
    const std::string name = child.filename().string();
    std::error_code type_ec;
    if (!fs::is_directory(child, type_ec)) {
      if (name.size() > 4 && name.ends_with(".tmp")) {
        findings.push_back({child.string(), "tmp-debris",
                            "uncommitted write left by a crashed save",
                            true});
      }
      // Other stray files are not ours to judge.
      continue;
    }
    if (name == "quarantine") continue;
    // A directory entry: tmp debris inside it is reported separately so
    // `verify` surfaces every shape `repair` would touch.
    std::error_code inner_ec;
    for (const fs::directory_entry& inner :
         fs::directory_iterator(child, inner_ec)) {
      const std::string inner_name = inner.path().filename().string();
      if (inner_name.size() > 4 && inner_name.ends_with(".tmp")) {
        findings.push_back({inner.path().string(), "tmp-debris",
                            "uncommitted write left by a crashed save",
                            true});
      }
    }
    const Status verified = store::VerifyArena(child.string());
    if (verified.ok()) {
      findings.push_back({child.string(), "healthy", "", false});
      continue;
    }
    if (verified.code() == StatusCode::kNotFound) {
      // No manifest: payload present = crash between the two commits;
      // neither file = not an arena entry at all.
      std::error_code payload_ec;
      if (fs::exists(child / "payload.bin", payload_ec)) {
        findings.push_back({child.string(), "orphan-payload",
                            "payload committed but the manifest never was",
                            true});
      } else {
        findings.push_back(
            {child.string(), "foreign", "no manifest and no payload", false});
      }
      continue;
    }
    findings.push_back(
        {child.string(), "corrupt", verified.ToString(), true});
  }
  return findings;
}

void PrintFinding(const Finding& finding, bool json) {
  if (json) {
    JsonObject record;
    record.Str("type", "entry")
        .Str("path", finding.path)
        .Str("state", finding.state)
        .Bool("bad", finding.bad);
    if (!finding.detail.empty()) record.Str("detail", finding.detail);
    std::printf("%s\n", record.ToString().c_str());
    return;
  }
  if (finding.detail.empty()) {
    std::printf("%-14s %s\n", finding.state.c_str(), finding.path.c_str());
  } else {
    std::printf("%-14s %s: %s\n", finding.state.c_str(),
                finding.path.c_str(), finding.detail.c_str());
  }
}

int RunVerify(const std::string& root, bool json) {
  const std::vector<Finding> findings = ClassifyTree(root);
  std::uint64_t bad = 0;
  for (const Finding& finding : findings) {
    PrintFinding(finding, json);
    bad += finding.bad ? 1 : 0;
  }
  if (json) {
    JsonObject summary;
    summary.Str("type", "summary")
        .UInt("entries", findings.size())
        .UInt("bad", bad)
        .Bool("clean", bad == 0);
    std::printf("%s\n", summary.ToString().c_str());
  } else {
    std::printf("%zu entries, %llu bad\n", findings.size(),
                static_cast<unsigned long long>(bad));
  }
  return bad == 0 ? kExitClean : kExitBad;
}

int RunRepair(const std::string& root, bool json) {
  StatusOr<store::RecoveryReport> swept = store::RecoverArenaDir(root);
  if (!swept.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 swept.status().ToString().c_str());
    return kExitBad;
  }
  const store::RecoveryReport& report = swept.value();
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    for (const std::string& action : report.actions) {
      std::printf("%s\n", action.c_str());
    }
    std::printf(
        "%llu scanned, %llu healthy, %llu tmp cleaned, %llu orphans "
        "removed, %llu quarantined, %llu errors\n",
        static_cast<unsigned long long>(report.scanned_entries),
        static_cast<unsigned long long>(report.healthy_entries),
        static_cast<unsigned long long>(report.cleaned_tmp_files),
        static_cast<unsigned long long>(report.orphaned_payloads),
        static_cast<unsigned long long>(report.quarantined_entries),
        static_cast<unsigned long long>(report.sweep_errors));
  }
  // Debris removed and corruption quarantined IS a successful repair;
  // only filesystem errors that kept the sweep from finishing fail it.
  return report.sweep_errors == 0 ? kExitClean : kExitBad;
}

int RunLs(const std::string& root, bool json) {
  const std::vector<Finding> findings = ClassifyTree(root);
  for (const Finding& finding : findings) {
    StatusOr<store::ArenaManifest> manifest =
        store::ReadArenaManifest(finding.path);
    if (json) {
      JsonObject record;
      record.Str("type", "entry")
          .Str("path", finding.path)
          .Str("state", finding.state);
      if (manifest.ok()) {
        const store::ArenaManifest& m = manifest.value();
        record.Str("kind", m.kind)
            .Str("workload", m.workload)
            .UInt("seed", m.seed)
            .Str("stream", m.stream)
            .UInt("capacity", m.capacity)
            .UInt("num_vertices", m.num_vertices)
            .UInt("payload_bytes", m.payload_bytes);
      }
      std::printf("%s\n", record.ToString().c_str());
      continue;
    }
    if (manifest.ok()) {
      const store::ArenaManifest& m = manifest.value();
      std::printf("%-14s %s  kind=%s workload=%s seed=%llu stream=%s "
                  "capacity=%llu\n",
                  finding.state.c_str(), finding.path.c_str(),
                  m.kind.c_str(), m.workload.c_str(),
                  static_cast<unsigned long long>(m.seed), m.stream.c_str(),
                  static_cast<unsigned long long>(m.capacity));
    } else {
      PrintFinding(finding, json);
    }
  }
  return kExitClean;
}

int Run(int argc, const char* const* argv) {
  std::string command, root;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (command.empty()) {
      command = argv[i];
    } else if (root.empty()) {
      root = argv[i];
    } else {
      return Usage();
    }
  }
  if (command.empty() || root.empty()) return Usage();
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "soldist_fsck: '%s' is not a directory\n",
                 root.c_str());
    return kExitBad;
  }
  if (command == "verify") return RunVerify(root, json);
  if (command == "repair") return RunRepair(root, json);
  if (command == "ls") return RunLs(root, json);
  return Usage();
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
