// soldist_experiment: the generic experiment harness. Runs the paper's
// T-trial methodology for one (network, probability setting, diffusion
// model) instance across the three approaches and a sample-number grid,
// printing per-cell entropy, influence statistics, traversal costs, and
// the modal seed set.
//
// The harness runs on the api/ facade: flags build a WorkloadSpec, an
// api::Session (via ExperimentContext) resolves and caches the instance
// and its shared oracle, and every invalid flag combination — unknown
// network, --model lt with an LT-invalid probability setting, k > n —
// comes back as a Status printed to stderr with exit code 1, never a
// CHECK-abort.
//
// --json switches stdout to machine-readable JSON lines: one SolveResult
// record per trial (seed set + oracle influence) and one summary record
// per sweep cell, for jq / pandas consumption.
//
// --verify-threads "1,2,4" re-runs the whole experiment once per listed
// --sample-threads value and requires that every trial's seed set and
// every distribution statistic is byte-identical across the runs — the
// "parallelism must never silently change the experiment" invariant,
// executable end-to-end. Under --model lt this holds for ANY list
// including 1 (LT always draws through the chunked deterministic
// streams); under --model ic the sequential default (1) is a distinct
// legacy stream family, so only counts >= 2 are mutually comparable.
//
// --query switches the binary into the serving REPL: one arena for the
// (network, prob, model, seed) workload is built through
// serve::QueryService at τ = --tau (cache budget --arena-budget-mb),
// then stdin lines are answered as JSON lines on stdout:
//   spread v1,v2,...   RIS spread estimate of the seed set
//   gain v s1,s2,...   marginal gain of v on top of {s1,...} (base opt.)
//   topk k             greedy top-k seeds with per-seed estimates
//   stats              arena-cache + resilience + recovery/scrub stats
//   scrub              full synchronous scrub rotation, then totals
// Bad input is a {"type":"error"} line, never an abort. Under
// --deadline-ms / --max-inflight-builds / --fault-spec the REPL serves
// the resilience contract (serve/resilience.h): deadline-missed builds
// answer DEGRADED from the largest resident τ prefix (tagged
// degraded/served_tau), deadline-bounded `topk` returns the completed
// CELF prefix (tagged completed=false/served_k), and `stats` exposes the
// degraded_answers / shed_requests / retries / deadline_misses counters
// plus the startup RecoveryReport and scrubber totals
// (--scrub-interval-ms drives the background cadence; `scrub` runs a
// rotation on demand).
//
// Usage:
//   soldist_experiment --network Karate --prob iwc --model lt --k 2
//                      --sample-threads 4
//   soldist_experiment --model lt --verify-threads 1,2,4   # determinism
//   soldist_experiment --json | jq .influence              # JSON records
//   echo "spread 0,33" | soldist_experiment --query        # point query

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/query_service.h"
#include "store/arena_storage.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct HarnessParams {
  std::string network;
  ProbabilityModel prob = ProbabilityModel::kIwc;
  int k = 1;
  int min_exp = 0;
  int max_exp = -1;  // -1: use the network's scaled grid cap
  bool json = false;
};

/// Exponents feed 1ULL << e, so keep them far from the shift-width UB
/// edge (the paper's largest grid is 2^24).
constexpr int kMaxExponent = 40;

/// Serializes everything the determinism contract covers: every trial's
/// seed set plus the derived distribution statistics of every cell.
void SerializeCell(Approach approach, const SweepCell& cell,
                   std::string* out) {
  out->append(ApproachName(approach));
  out->append(" s=" + std::to_string(cell.sample_number) + "\n");
  for (const auto& seeds : cell.result.seed_sets) {
    for (VertexId v : seeds) out->append(std::to_string(v) + ",");
    out->push_back('\n');
  }
  char stats[256];
  std::snprintf(stats, sizeof(stats),
                "H=%.17g distinct=%llu inf_mean=%.17g inf_min=%.17g "
                "inf_max=%.17g cost_v=%llu cost_e=%llu sample=%llu\n",
                cell.entropy,
                static_cast<unsigned long long>(
                    cell.result.distribution.num_distinct_sets()),
                cell.result.influence.Mean(), cell.result.influence.Min(),
                cell.result.influence.Max(),
                static_cast<unsigned long long>(
                    cell.result.total_counters.vertices),
                static_cast<unsigned long long>(
                    cell.result.total_counters.edges),
                static_cast<unsigned long long>(
                    cell.result.total_counters.TotalSampleSize()));
  out->append(stats);
}

/// One JSON line per trial (the SolveResult-shaped record) plus one
/// summary line per cell.
void PrintCellJson(const ExperimentOptions& options,
                   const HarnessParams& params, Approach approach,
                   const SweepCell& cell) {
  const auto& influence = cell.result.influence.values();
  for (std::size_t t = 0; t < cell.result.seed_sets.size(); ++t) {
    JsonObject record;
    record.Str("type", "trial")
        .Str("model", DiffusionModelName(options.model))
        .Str("network", params.network)
        .Str("prob", ProbabilityModelName(params.prob))
        .Str("approach", ApproachName(approach))
        .UInt("sample_number", cell.sample_number)
        .Int("k", params.k)
        .UInt("trial", t)
        .UIntArray("seed_set", cell.result.seed_sets[t])
        .Real("influence", t < influence.size() ? influence[t] : 0.0);
    std::printf("%s\n", record.ToString().c_str());
  }
  JsonObject summary;
  summary.Str("type", "cell")
      .Str("model", DiffusionModelName(options.model))
      .Str("network", params.network)
      .Str("prob", ProbabilityModelName(params.prob))
      .Str("approach", ApproachName(approach))
      .UInt("sample_number", cell.sample_number)
      .Int("k", params.k)
      .Real("entropy", cell.entropy)
      .UInt("distinct_sets", cell.result.distribution.num_distinct_sets())
      .Real("mean_influence", cell.summary.mean_influence)
      .Real("mean_vertex_cost",
            cell.result.MeanVertexCost(cell.result.seed_sets.size()))
      .Real("mean_edge_cost",
            cell.result.MeanEdgeCost(cell.result.seed_sets.size()))
      .Real("mean_sample_size",
            cell.result.MeanSampleSize(cell.result.seed_sets.size()));
  std::printf("%s\n", summary.ToString().c_str());
}

/// Runs the full experiment on `context` with sample-level parallelism
/// `sample_threads` and returns the serialized results; prints tables (or
/// JSON records) and fills `csv` when `print` is set. The context (and
/// with it the dataset and the RR-set oracle) is shared across calls —
/// only the sampling width varies, which by the determinism contract must
/// not matter.
StatusOr<std::string> RunExperiment(ExperimentContext* context,
                                    std::int64_t sample_threads,
                                    const HarnessParams& params, bool print,
                                    CsvWriter* csv) {
  const ExperimentOptions& options = context->options();
  StatusOr<ModelInstance> instance =
      context->TryModel(params.network, params.prob);
  if (!instance.ok()) return instance.status();
  StatusOr<const RrOracle*> oracle =
      context->TryOracle(params.network, params.prob);
  if (!oracle.ok()) return oracle.status();
  const VertexId n = instance.value().ig->num_vertices();
  if (static_cast<VertexId>(params.k) > n) {
    return Status::InvalidArgument(
        "--k " + std::to_string(params.k) + " exceeds the " +
        std::to_string(n) + " vertices of " + params.network);
  }
  GridCaps caps = ScaledGridCaps(params.network, options.full);

  std::string serialized;
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    SweepConfig config;
    config.sampling = context->SamplingFor(sample_threads);
    config.approach = approach;
    config.snapshot_mode = options.snapshot_mode;
    config.reuse = options.sweep_reuse;
    config.k = params.k;
    config.trials = context->TrialsFor(params.network);
    config.master_seed = options.seed;
    config.min_exponent = params.min_exp;
    config.max_exponent =
        params.max_exp >= 0
            ? params.max_exp
            : TrimExpForK(caps.MaxExp(approach), params.k, approach);
    if (config.max_exponent < config.min_exponent) {
      config.max_exponent = config.min_exponent;
    }
    WallTimer timer;
    std::vector<SweepCell> cells =
        RunSweep(instance.value(), *oracle.value(), config, context->pool());
    if (print && params.json) {
      for (const SweepCell& cell : cells) {
        PrintCellJson(options, params, approach, cell);
      }
    }
    if (print) {
      SOLDIST_LOG(Info) << ApproachName(approach) << " sweep in "
                        << timer.HumanElapsed();
      TextTable table({"sample number", "entropy", "distinct", "mean inf",
                       "vertex cost", "edge cost", "sample size",
                       "modal set"});
      for (const SweepCell& cell : cells) {
        std::string modal;
        for (VertexId v : cell.result.distribution.ModalSet()) {
          if (!modal.empty()) modal += " ";
          modal += std::to_string(v);
        }
        table.AddRow({FormatPowerOfTwo(cell.sample_number),
                      FormatDouble(cell.entropy, 3),
                      std::to_string(
                          cell.result.distribution.num_distinct_sets()),
                      FormatDouble(cell.summary.mean_influence, 4),
                      FormatCost(cell.result.MeanVertexCost(config.trials)),
                      FormatCost(cell.result.MeanEdgeCost(config.trials)),
                      FormatCost(cell.result.MeanSampleSize(config.trials)),
                      "{" + modal + "}"});
        if (csv != nullptr) {
          csv->Row()
              .Str(DiffusionModelName(options.model))
              .Str(ApproachName(approach))
              .UInt(cell.sample_number)
              .Real(cell.entropy, 4)
              .UInt(cell.result.distribution.num_distinct_sets())
              .Real(cell.summary.mean_influence, 4)
              .Real(cell.result.MeanVertexCost(config.trials), 2)
              .Real(cell.result.MeanEdgeCost(config.trials), 2)
              .Real(cell.result.MeanSampleSize(config.trials), 2)
              .Done();
        }
      }
      if (!params.json) {
        PrintTable(params.network + " (" +
                       ProbabilityModelName(params.prob) + ", " +
                       DiffusionModelName(options.model) +
                       ", k=" + std::to_string(params.k) + ") — " +
                       ApproachName(approach),
                   table);
      }
    }
    for (const SweepCell& cell : cells) {
      SerializeCell(approach, cell, &serialized);
    }
  }
  return serialized;
}

/// Parses "v1,v2,..." into vertex ids, validating against n. Returns a
/// Status (user input, never a CHECK).
Status ParseVertexList(const std::string& text, VertexId n,
                       std::vector<VertexId>* out) {
  out->clear();
  for (const std::string& field : Split(text, ',')) {
    const std::string trimmed(Trim(field));
    if (trimmed.empty()) continue;
    std::int64_t v = 0;
    if (!ParseInt64(trimmed, &v)) {
      return Status::InvalidArgument("bad vertex id '" + trimmed + "'");
    }
    if (v < 0 || static_cast<VertexId>(v) >= n) {
      return Status::InvalidArgument(
          "vertex " + trimmed + " out of range [0, " + std::to_string(n) +
          ")");
    }
    out->push_back(static_cast<VertexId>(v));
  }
  return Status::OK();
}

void PrintErrorLine(const Status& status) {
  JsonObject err;
  err.Str("type", "error").Str("error", status.message());
  std::printf("%s\n", err.ToString().c_str());
  std::fflush(stdout);
}

/// The serving REPL behind --query: stdin lines in, JSON lines out.
/// Every answer comes from one immutable QueryView minted by
/// serve::QueryService — microsecond point queries, no re-solve.
int RunQueryRepl(ExperimentContext* context, const HarnessParams& params,
                 std::uint64_t tau) {
  const ExperimentOptions& options = context->options();
  serve::QueryService service(context->session());
  serve::QuerySpec spec;
  spec.sample_number = tau;
  spec.seed = options.seed;
  spec.sample_threads = options.sample_threads;
  spec.chunk_size = static_cast<std::uint64_t>(options.chunk_size);
  const api::WorkloadSpec workload =
      context->Workload(params.network, params.prob);
  StatusOr<serve::QueryView> view = service.View(workload, spec);
  if (!view.ok()) return ExitWithError(view.status());
  const VertexId n = view.value().num_vertices();

  // The sampled-world view behind `reach`/`compsize` is minted lazily on
  // first use: RR-only sessions never pay a snapshot arena build, and an
  // LT workload answers those commands with a JSON error line (the
  // service returns Status — never an abort).
  serve::SnapshotQueryView world_view;
  bool have_world_view = false;
  auto mint_world_view = [&]() -> Status {
    if (have_world_view) return Status::OK();
    StatusOr<serve::SnapshotQueryView> minted =
        service.SnapshotView(workload, spec);
    if (!minted.ok()) return minted.status();
    world_view = minted.value();
    have_world_view = true;
    return Status::OK();
  };

  JsonObject ready;
  ready.Str("type", "ready")
      .Str("network", params.network)
      .Str("prob", ProbabilityModelName(params.prob))
      .Str("model", DiffusionModelName(options.model))
      .UInt("tau", tau)
      .UInt("n", n)
      .UInt("arena_bytes", view.value().arena().MemoryBytes());
  // A deadline that expired mid-build leaves a DEGRADED view: exact
  // answers at the smaller served τ (serve/resilience.h). Tag the
  // session so scripted consumers can tell.
  if (view.value().degraded()) {
    ready.Bool("degraded", true).UInt("served_tau", view.value().served_tau());
  }
  std::printf("%s\n", ready.ToString().c_str());
  std::fflush(stdout);

  // Every answer minted from a degraded view carries the tag, so a
  // consumer never mistakes a τ' < τ estimate for the full-τ one.
  auto tag_degraded = [&](JsonObject* record) {
    if (view.value().degraded()) {
      record->Bool("degraded", true)
          .UInt("served_tau", view.value().served_tau());
    }
  };

  std::vector<VertexId> seeds;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string input(Trim(line));
    if (input.empty()) continue;
    if (input == "quit" || input == "exit") break;
    const std::size_t space = input.find(' ');
    const std::string cmd = input.substr(0, space);
    const std::string rest(
        space == std::string::npos ? "" : Trim(input.substr(space + 1)));
    if (cmd == "spread") {
      Status parsed = ParseVertexList(rest, n, &seeds);
      if (!parsed.ok()) {
        PrintErrorLine(parsed);
        continue;
      }
      JsonObject record;
      record.Str("type", "spread")
          .UIntArray("seeds", seeds)
          .Real("spread", view.value().Spread(seeds));
      tag_degraded(&record);
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "gain") {
      // "gain v s1,s2,...": v first, then the (optional) base seed set.
      const std::size_t gap = rest.find(' ');
      const std::string vertex_text(
          Trim(gap == std::string::npos ? rest : rest.substr(0, gap)));
      std::vector<VertexId> vertex;
      Status parsed = ParseVertexList(vertex_text, n, &vertex);
      if (parsed.ok() && vertex.size() != 1) {
        parsed = Status::InvalidArgument(
            "usage: gain <vertex> [s1,s2,...]");
      }
      if (parsed.ok()) {
        parsed = ParseVertexList(
            gap == std::string::npos
                ? std::string()
                : std::string(Trim(rest.substr(gap + 1))),
            n, &seeds);
      }
      if (!parsed.ok()) {
        PrintErrorLine(parsed);
        continue;
      }
      JsonObject record;
      record.Str("type", "gain")
          .UInt("vertex", vertex[0])
          .UIntArray("seeds", seeds)
          .Real("gain", view.value().MarginalGain(seeds, vertex[0]));
      tag_degraded(&record);
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "topk") {
      std::int64_t k = 0;
      if (!ParseInt64(rest, &k) || k < 1 ||
          static_cast<VertexId>(k) > n) {
        PrintErrorLine(Status::InvalidArgument(
            "usage: topk <k> with k in [1, " + std::to_string(n) + "]"));
        continue;
      }
      // Deadline-aware CELF: the same per-request deadline that governs
      // builds also bounds selection — a fired token returns the
      // completed seed prefix (= a direct smaller-k solve), tagged.
      const serve::Deadline topk_deadline =
          options.deadline_ms == 0
              ? serve::Deadline()
              : serve::Deadline::AfterMillis(options.deadline_ms);
      CancelToken topk_cancel([topk_deadline] {
        return topk_deadline.expired();
      });
      serve::TopKResult top = view.value().TopK(
          static_cast<int>(k),
          topk_deadline.unlimited() ? nullptr : &topk_cancel);
      JsonObject record;
      record.Str("type", "topk")
          .Int("k", k)
          .UIntArray("seeds", top.seeds)
          .RealArray("estimates", top.estimates)
          .UInt("covered", top.covered)
          .Real("spread", top.spread);
      if (!top.completed) {
        record.Bool("completed", false)
            .UInt("served_k", top.seeds.size());
      }
      tag_degraded(&record);
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "reach") {
      // "reach <src> <dst>": fraction of sampled worlds in which dst is
      // reachable from src (IC influence probability over τ worlds).
      const std::size_t gap = rest.find(' ');
      std::vector<VertexId> src, dst;
      Status parsed =
          gap == std::string::npos
              ? Status::InvalidArgument("usage: reach <src> <dst>")
              : ParseVertexList(std::string(Trim(rest.substr(0, gap))), n,
                                &src);
      if (parsed.ok()) {
        parsed = ParseVertexList(std::string(Trim(rest.substr(gap + 1))), n,
                                 &dst);
      }
      if (parsed.ok() && (src.size() != 1 || dst.size() != 1)) {
        parsed = Status::InvalidArgument("usage: reach <src> <dst>");
      }
      if (parsed.ok()) parsed = mint_world_view();
      if (!parsed.ok()) {
        PrintErrorLine(parsed);
        continue;
      }
      JsonObject record;
      record.Str("type", "reach")
          .UInt("src", src[0])
          .UInt("dst", dst[0])
          .Real("probability", world_view.ReachProbability(src[0], dst[0]));
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "compsize") {
      // "compsize <v>": expected reachable-set size of v over the
      // sampled worlds, (1/τ) Σ |R_i(v)|.
      std::vector<VertexId> vertex;
      Status parsed = ParseVertexList(rest, n, &vertex);
      if (parsed.ok() && vertex.size() != 1) {
        parsed = Status::InvalidArgument("usage: compsize <vertex>");
      }
      if (parsed.ok()) parsed = mint_world_view();
      if (!parsed.ok()) {
        PrintErrorLine(parsed);
        continue;
      }
      JsonObject record;
      record.Str("type", "compsize")
          .UInt("vertex", vertex[0])
          .Real("expected_reach", world_view.ExpectedReach(vertex[0]));
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "stats") {
      serve::ArenaCache::Stats stats = service.cache_stats();
      serve::ResilienceStats res = service.resilience_stats();
      // Storage-backend telemetry of the REPL's own RR arena: resident
      // vs logical bytes (the gap is what compression/spilling saves)
      // and the decode-side cache counters.
      const RrArena& arena = view.value().arena();
      const store::StorageStats storage = arena.storage_stats();
      const std::uint64_t hot_probes = storage.hot_hits + storage.hot_misses;
      JsonObject record;
      record.Str("type", "stats")
          .Str("backend", store::ArenaBackendName(arena.backend()))
          .UInt("hits", stats.hits)
          .UInt("builds", stats.builds)
          .UInt("evictions", stats.evictions)
          .UInt("resident_arenas", stats.resident_arenas)
          .UInt("resident_bytes", stats.resident_bytes)
          .UInt("total_bytes", stats.total_bytes)
          .UInt("budget_bytes", stats.budget_bytes)
          .UInt("arena_total_bytes", arena.MemoryBytes())
          .UInt("arena_resident_bytes", arena.ResidentBytes())
          .UInt("hot_hits", storage.hot_hits)
          .UInt("hot_misses", storage.hot_misses)
          .Real("hot_hit_rate",
                hot_probes == 0
                    ? 0.0
                    : static_cast<double>(storage.hot_hits) /
                          static_cast<double>(hot_probes))
          .UInt("chunk_loads", storage.chunk_loads)
          .UInt("partial_arenas", stats.partial_arenas)
          .UInt("invalidations", stats.invalidations)
          .UInt("degraded_answers", res.degraded_answers)
          .UInt("shed_requests", res.shed_requests)
          .UInt("retries", res.retries)
          .UInt("deadline_misses", res.deadline_misses);
      // Crash-consistency telemetry: what the startup sweep found in
      // --arena-dir and what the scrubber has verified since.
      const store::RecoveryReport& recovery = service.recovery_report();
      const serve::ScrubStats scrub = service.scrub_stats();
      record.Raw("recovery", recovery.ToJson())
          .UInt("scrub_cycles", scrub.cycles)
          .UInt("scrub_resident_checked", scrub.resident_checked)
          .UInt("scrub_resident_corruptions", scrub.resident_corruptions)
          .UInt("scrub_disk_checked", scrub.disk_checked)
          .UInt("scrub_disk_corruptions", scrub.disk_corruptions)
          .UInt("scrub_quarantined", scrub.quarantined);
      std::printf("%s\n", record.ToString().c_str());
    } else if (cmd == "scrub") {
      // One full synchronous rotation: every resident arena re-hashed,
      // every persisted entry re-verified. The JSON line reports the
      // monotone totals after the pass.
      service.RunScrubCycle();
      const serve::ScrubStats scrub = service.scrub_stats();
      JsonObject record;
      record.Str("type", "scrub")
          .UInt("cycles", scrub.cycles)
          .UInt("resident_checked", scrub.resident_checked)
          .UInt("resident_corruptions", scrub.resident_corruptions)
          .UInt("invalidations", scrub.invalidations)
          .UInt("disk_checked", scrub.disk_checked)
          .UInt("disk_corruptions", scrub.disk_corruptions)
          .UInt("quarantined", scrub.quarantined);
      std::printf("%s\n", record.ToString().c_str());
    } else {
      PrintErrorLine(Status::InvalidArgument(
          "unknown command '" + cmd +
          "' (expected spread | gain | topk | reach | compsize | stats | "
          "scrub | quit)"));
      continue;
    }
    std::fflush(stdout);
  }
  return 0;
}

int Run(int argc, const char* const* argv) {
  ArgParser args("soldist_experiment",
                 "Run the T-trial solution-distribution methodology for one "
                 "(network, probability, diffusion model) instance across "
                 "the three approaches.");
  AddExperimentFlags(&args);
  args.AddString("network", "Karate", "network name (see gen/datasets)");
  args.AddString("prob", "iwc",
                 "edge-probability setting: uc0.1|uc0.01|iwc|owc|tv "
                 "(--model lt needs an LT-valid setting, e.g. iwc)");
  args.AddInt64("k", 1, "seed-set size");
  args.AddInt64("min-exp", 0, "first sample number 2^min-exp");
  args.AddInt64("max-exp", -1,
                "last sample number 2^max-exp (-1 = the network's scaled "
                "grid cap)");
  args.AddBool("json", false,
               "machine-readable output: one JSON line per trial "
               "(SolveResult records) plus one per sweep cell");
  args.AddString("verify-threads", "",
                 "comma-separated --sample-threads values; re-runs the "
                 "experiment per value and requires byte-identical seed "
                 "sets and stats (with --model ic, 1 is the legacy stream "
                 "family — include it only for lt)");
  args.AddBool("query", false,
               "serving REPL: build one arena for the workload via "
               "serve::QueryService, answer stdin lines (spread v1,v2,... "
               "| gain v s1,... | topk k | stats | scrub) as JSON lines");
  args.AddInt64("tau", 65536,
                "--query: RR sets behind the view (the paper-scale "
                "default 2^16)");
  args.AddInt64("arena-budget-mb", 0,
                "--query: arena-cache byte budget in MiB (0 = unlimited)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  if (!args.Provided("trials")) options.trials = 50;

  HarnessParams params;
  params.network = args.GetString("network");
  StatusOr<ProbabilityModel> prob =
      ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  params.prob = prob.value();
  params.json = args.GetBool("json");
  if (args.GetInt64("k") < 1) {
    return ExitWithError(Status::InvalidArgument("--k must be >= 1"));
  }
  params.k = static_cast<int>(args.GetInt64("k"));
  if (args.GetInt64("min-exp") < 0 ||
      args.GetInt64("min-exp") > kMaxExponent) {
    return ExitWithError(Status::InvalidArgument(
        "--min-exp must be in [0, " + std::to_string(kMaxExponent) + "]"));
  }
  if (args.GetInt64("max-exp") < -1 ||
      args.GetInt64("max-exp") > kMaxExponent) {
    return ExitWithError(Status::InvalidArgument(
        "--max-exp must be in [-1, " + std::to_string(kMaxExponent) + "]"));
  }
  params.min_exp = static_cast<int>(args.GetInt64("min-exp"));
  params.max_exp = static_cast<int>(args.GetInt64("max-exp"));

  if (args.GetBool("query")) {
    const std::int64_t tau = args.GetInt64("tau");
    if (tau < 1) {
      return ExitWithError(Status::InvalidArgument("--tau must be >= 1"));
    }
    const std::int64_t budget_mb = args.GetInt64("arena-budget-mb");
    if (budget_mb < 0) {
      return ExitWithError(
          Status::InvalidArgument("--arena-budget-mb must be >= 0"));
    }
    ExperimentOptions query_options = options;
    query_options.arena_budget_bytes =
        static_cast<std::uint64_t>(budget_mb) << 20;
    ExperimentContext query_context(query_options);
    return RunQueryRepl(&query_context, params,
                        static_cast<std::uint64_t>(tau));
  }

  if (!params.json) {
    PrintBanner("soldist_experiment: " + params.network + " (" +
                    ProbabilityModelName(params.prob) + "), model=" +
                    DiffusionModelName(options.model) +
                    ", k=" + std::to_string(params.k),
                options);
  }

  CsvWriter csv({"model", "approach", "sample_number", "entropy",
                 "distinct_sets", "mean_influence", "mean_vertex_cost",
                 "mean_edge_cost", "mean_sample_size"});

  ExperimentContext context(options);

  const std::string verify_list = args.GetString("verify-threads");
  if (verify_list.empty()) {
    StatusOr<std::string> run = RunExperiment(
        &context, options.sample_threads, params, /*print=*/true, &csv);
    if (!run.ok()) return ExitWithError(run.status());
    MaybeWriteCsv(csv, options.out_csv);
    return 0;
  }

  // Determinism verification: one full run per sample-thread count on the
  // ONE context (the dataset and oracle are width-independent, so they
  // are built once); the first run prints, every later run must
  // serialize identically.
  std::vector<std::int64_t> counts;
  for (const std::string& field : Split(verify_list, ',')) {
    std::int64_t n = 0;
    if (!ParseInt64(Trim(field), &n) || n < 0) {
      return ExitWithError(Status::InvalidArgument(
          "bad --verify-threads entry: '" + field +
          "' (expected a comma-separated list of counts >= 0)"));
    }
    counts.push_back(n);
  }
  if (counts.empty()) {
    return ExitWithError(
        Status::InvalidArgument("--verify-threads list is empty"));
  }
  std::string reference;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    StatusOr<std::string> serialized = RunExperiment(
        &context, counts[i], params, /*print=*/i == 0,
        i == 0 ? &csv : nullptr);
    if (!serialized.ok()) return ExitWithError(serialized.status());
    if (i == 0) {
      reference = std::move(serialized).value();
    } else if (serialized.value() != reference) {
      std::fprintf(stderr,
                   "FAIL: --sample-threads %lld changed the experiment "
                   "(seed sets or stats differ from --sample-threads "
                   "%lld)\n",
                   static_cast<long long>(counts[i]),
                   static_cast<long long>(counts[0]));
      return 1;
    } else {
      std::fprintf(stderr,
                   "--sample-threads %lld: byte-identical to %lld\n",
                   static_cast<long long>(counts[i]),
                   static_cast<long long>(counts[0]));
    }
  }
  std::fprintf(stderr,
               "determinism verified: seed sets and distribution stats "
               "byte-identical across sample-thread counts {%s}\n",
               verify_list.c_str());
  MaybeWriteCsv(csv, options.out_csv);
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
