// Solution-distribution study (the paper's core methodology in ~80
// lines): run one algorithm T times per sample number, record every seed
// set, and watch the empirical distribution collapse from near-uniform to
// a single deterministic solution.
//
//   ./solution_distribution [--network Karate] [--prob uc0.1]
//                           [--approach RIS] [--k 1] [--trials 200]

#include <cstdio>

#include "exp/instance_registry.h"
#include "exp/sweep.h"
#include "exp/table_writer.h"
#include "stats/entropy.h"
#include "util/args.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("solution_distribution",
                 "Watch a randomized IM algorithm's seed-set distribution "
                 "converge (the paper's methodology).");
  args.AddString("network", "Karate", "dataset name (see gen/datasets.h)");
  args.AddString("prob", "uc0.1", "edge probabilities");
  args.AddString("approach", "RIS", "Oneshot|Snapshot|RIS");
  args.AddInt64("k", 1, "seed-set size");
  args.AddInt64("trials", 200, "trials per sample number");
  args.AddInt64("max-exp", 14, "largest sample number 2^e");
  args.AddInt64("seed", 42, "master seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  Approach approach;
  const std::string approach_name = args.GetString("approach");
  if (approach_name == "Oneshot") {
    approach = Approach::kOneshot;
  } else if (approach_name == "Snapshot") {
    approach = Approach::kSnapshot;
  } else if (approach_name == "RIS") {
    approach = Approach::kRis;
  } else {
    std::fprintf(stderr, "unknown approach: %s\n", approach_name.c_str());
    return 1;
  }
  auto prob = ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) {
    std::fprintf(stderr, "%s\n", prob.status().ToString().c_str());
    return 1;
  }

  InstanceRegistry registry(
      static_cast<std::uint64_t>(args.GetInt64("seed")));
  auto ig = registry.GetInstance(args.GetString("network"), prob.value());
  if (!ig.ok()) {
    std::fprintf(stderr, "%s\n", ig.status().ToString().c_str());
    return 1;
  }
  RrOracle oracle(ig.value(), 100000, 7);

  SweepConfig config;
  config.approach = approach;
  config.k = static_cast<int>(args.GetInt64("k"));
  config.trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
  config.master_seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
  config.max_exponent = static_cast<int>(args.GetInt64("max-exp"));

  std::printf("sweeping %s on %s (%s, k=%d), T=%llu trials per point...\n",
              approach_name.c_str(), args.GetString("network").c_str(),
              args.GetString("prob").c_str(), config.k,
              static_cast<unsigned long long>(config.trials));
  auto cells = RunSweep(*ig.value(), oracle, config, DefaultThreadPool());

  TextTable table({"sample number", "entropy (bits)", "distinct sets",
                   "modal set frequency", "mean influence"});
  for (const SweepCell& cell : cells) {
    const auto& dist = cell.result.distribution;
    table.AddRow({FormatPowerOfTwo(cell.sample_number),
                  FormatDouble(cell.entropy, 3),
                  std::to_string(dist.num_distinct_sets()),
                  FormatDouble(static_cast<double>(dist.ModalCount()) /
                                   static_cast<double>(dist.num_trials()),
                               3),
                  FormatDouble(cell.summary.mean_influence, 3)});
  }
  std::printf("\n%s\n", table.ToMarkdown().c_str());

  const auto& final_dist = cells.back().result.distribution;
  std::vector<std::string> ids;
  for (VertexId v : final_dist.ModalSet()) ids.push_back(std::to_string(v));
  std::printf("modal seed set at the largest sample number: {%s}\n",
              Join(ids, ", ").c_str());
  std::printf("max possible entropy at T trials: %.2f bits\n",
              MaxEmpiricalEntropy(config.trials));
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
