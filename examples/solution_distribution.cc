// Solution-distribution study (the paper's core methodology in ~80
// lines): run one algorithm T times per sample number, record every seed
// set, and watch the empirical distribution collapse from near-uniform to
// a single deterministic solution.
//
// Facade tour: each sample number is ONE Session::SolveBatch of T
// SolveSpecs (fresh seed per trial, paper Section 4.1) fanned out across
// the session pool; the empirical distribution is assembled from the
// returned SolveResults.
//
//   ./solution_distribution [--network Karate] [--prob uc0.1]
//                           [--approach RIS] [--k 1] [--trials 200]

#include <cstdio>

#include "api/session.h"
#include "exp/table_writer.h"
#include "random/splitmix64.h"
#include "stats/entropy.h"
#include "stats/seed_set_distribution.h"
#include "util/args.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("solution_distribution",
                 "Watch a randomized IM algorithm's seed-set distribution "
                 "converge (the paper's methodology).");
  args.AddString("network", "Karate", "dataset name (see gen/datasets.h)");
  args.AddString("prob", "uc0.1", "edge probabilities");
  args.AddString("approach", "RIS", "Oneshot|Snapshot|RIS");
  args.AddInt64("k", 1, "seed-set size");
  args.AddInt64("trials", 200, "trials per sample number");
  args.AddInt64("max-exp", 14, "largest sample number 2^e");
  args.AddInt64("seed", 42, "master seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  auto approach = api::ParseApproach(args.GetString("approach"));
  if (!approach.ok()) return ExitWithError(approach.status());
  auto prob = ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  if (args.GetInt64("trials") < 1 || args.GetInt64("k") < 1 ||
      args.GetInt64("max-exp") < 0 || args.GetInt64("max-exp") > 40) {
    return ExitWithError(Status::InvalidArgument(
        "need --trials >= 1, --k >= 1, --max-exp in [0, 40]"));
  }
  auto trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
  auto k = static_cast<int>(args.GetInt64("k"));
  auto max_exp = static_cast<int>(args.GetInt64("max-exp"));
  auto master_seed = static_cast<std::uint64_t>(args.GetInt64("seed"));

  api::WorkloadSpec workload =
      api::WorkloadSpec::Dataset(args.GetString("network"))
          .Probability(prob.value());
  api::SessionOptions session_options;
  session_options.seed = master_seed;
  api::Session session(session_options);

  std::printf("sweeping %s on %s (%s, k=%d), T=%llu trials per point...\n",
              args.GetString("approach").c_str(),
              args.GetString("network").c_str(),
              args.GetString("prob").c_str(), k,
              static_cast<unsigned long long>(trials));

  TextTable table({"sample number", "entropy (bits)", "distinct sets",
                   "modal set frequency", "mean influence"});
  std::vector<VertexId> final_modal_set;
  for (int exponent = 0; exponent <= max_exp; ++exponent) {
    const std::uint64_t sample_number = 1ULL << exponent;
    // T trials = T specs with fresh per-trial seeds, one batch.
    std::vector<api::SolveSpec> specs(
        trials, api::SolveSpec{}
                    .WithApproach(approach.value())
                    .WithSampleNumber(sample_number)
                    .WithK(k));
    std::uint64_t cell_seed =
        DeriveSeed(master_seed, static_cast<std::uint64_t>(exponent));
    for (std::uint64_t t = 0; t < trials; ++t) {
      specs[t].WithSeed(DeriveSeed(cell_seed, t));
    }
    StatusOr<std::vector<api::SolveResult>> batch =
        session.SolveBatch(workload, specs);
    if (!batch.ok()) return ExitWithError(batch.status());

    SeedSetDistribution distribution;
    double influence_sum = 0.0;
    for (const api::SolveResult& result : batch.value()) {
      distribution.Add(result.seed_set);
      influence_sum += result.influence;
    }
    table.AddRow({FormatPowerOfTwo(sample_number),
                  FormatDouble(distribution.Entropy(), 3),
                  std::to_string(distribution.num_distinct_sets()),
                  FormatDouble(static_cast<double>(distribution.ModalCount()) /
                                   static_cast<double>(trials),
                               3),
                  FormatDouble(influence_sum / static_cast<double>(trials),
                               3)});
    final_modal_set = distribution.ModalSet();
  }
  std::printf("\n%s\n", table.ToMarkdown().c_str());

  std::vector<std::string> ids;
  for (VertexId v : final_modal_set) ids.push_back(std::to_string(v));
  std::printf("modal seed set at the largest sample number: {%s}\n",
              Join(ids, ", ").c_str());
  std::printf("max possible entropy at T trials: %.2f bits\n",
              MaxEmpiricalEntropy(trials));
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
