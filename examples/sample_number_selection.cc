// Sample-number selection (the paper's concluding open problem): given a
// target quality ("within 95% of greedy-on-oracle with 99% probability"),
// empirically find the least sample number for each approach and contrast
// it with the worst-case theoretical bounds — which the paper shows are
// orders of magnitude too conservative.
//
//   ./sample_number_selection [--network BA_s] [--prob iwc] [--k 1]

#include <cstdio>

#include "core/adaptive.h"
#include "core/bounds.h"
#include "core/tim.h"
#include "exp/instance_registry.h"
#include "exp/sweep.h"
#include "exp/table_writer.h"
#include "util/args.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("sample_number_selection",
                 "Find the empirically sufficient sample number per "
                 "approach and compare with worst-case bounds.");
  args.AddString("network", "BA_s", "dataset name");
  args.AddString("prob", "iwc", "edge probabilities");
  args.AddInt64("k", 1, "seed-set size");
  args.AddInt64("trials", 100, "trials per sample number");
  args.AddInt64("max-exp", 13, "largest sample number 2^e (RIS gets +3)");
  args.AddDouble("quality", 0.95, "near-optimality factor");
  args.AddDouble("confidence", 0.99, "required success probability");
  args.AddInt64("seed", 42, "master seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  auto prob = ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) {
    std::fprintf(stderr, "%s\n", prob.status().ToString().c_str());
    return 1;
  }
  InstanceRegistry registry(
      static_cast<std::uint64_t>(args.GetInt64("seed")));
  auto ig = registry.GetInstance(args.GetString("network"), prob.value());
  if (!ig.ok()) {
    std::fprintf(stderr, "%s\n", ig.status().ToString().c_str());
    return 1;
  }
  RrOracle oracle(ig.value(), 200000, 3);

  const int k = static_cast<int>(args.GetInt64("k"));
  auto reference = oracle.OracleGreedySeeds(k);
  double reference_influence = oracle.EstimateInfluence(reference);
  double threshold = args.GetDouble("quality") * reference_influence;
  std::printf("reference greedy influence: %.3f; target: >= %.3f with "
              "probability %.0f%%\n",
              reference_influence, threshold,
              args.GetDouble("confidence") * 100);

  TextTable table({"approach", "empirical least sample number",
                   "worst-case bound", "gap factor"});
  BoundParams bound_params{
      .n = ig.value()->num_vertices(),
      .m = ig.value()->num_edges(),
      .k = static_cast<std::uint64_t>(k),
      .epsilon = 1.0 - args.GetDouble("quality"),
      .delta = 1.0 - args.GetDouble("confidence"),
      .opt_k = reference_influence,
  };
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    SweepConfig config;
    config.approach = approach;
    config.k = k;
    config.trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
    config.master_seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
    config.max_exponent = static_cast<int>(args.GetInt64("max-exp")) +
                          (approach == Approach::kRis ? 3 : 0);
    auto cells =
        RunSweep(*ig.value(), oracle, config, DefaultThreadPool());
    int idx = FindLeastSufficientCell(cells, threshold,
                                      args.GetDouble("confidence"));
    double bound = 0.0;
    switch (approach) {
      case Approach::kOneshot:
        bound = OneshotSampleBound(bound_params);
        break;
      case Approach::kSnapshot:
        bound = SnapshotSampleBound(bound_params);
        break;
      case Approach::kRis:
        bound = RisSampleBound(bound_params);
        break;
    }
    std::string empirical =
        idx < 0 ? "> 2^" + std::to_string(config.max_exponent)
                : FormatPowerOfTwo(cells[idx].sample_number) + " (= " +
                      WithThousands(cells[idx].sample_number) + ")";
    std::string gap =
        idx < 0 ? "-"
                : FormatDouble(
                      bound / static_cast<double>(cells[idx].sample_number),
                      1) + "x";
    table.AddRow({ApproachName(approach), empirical,
                  FormatDouble(bound, 0), gap});
    std::printf("  %s done\n", ApproachName(approach).c_str());
  }
  std::printf("\n%s\n", table.ToMarkdown().c_str());
  std::printf("The gap column is the paper's Section 5.2.1 message: "
              "worst-case bounds exceed empirical requirements by orders "
              "of magnitude.\n");

  // Two practical selectors on the same instance: TIM+'s principled θ
  // (RIS only) and this library's adaptive doubling rule (any approach —
  // the paper's Section 7 open problem).
  TimParams tim_params;
  tim_params.k = k;
  tim_params.epsilon = 1.0 - args.GetDouble("quality");
  TimResult tim = RunTimPlus(*ig.value(), tim_params,
                             static_cast<std::uint64_t>(args.GetInt64("seed")));
  std::printf("\nTIM+ selector (RIS): KPT*=%.3f -> θ=%s; seed influence "
              "%.3f\n",
              tim.kpt, WithThousands(tim.theta).c_str(),
              oracle.EstimateInfluence(tim.greedy.seeds));

  AdaptiveParams adaptive_params;
  adaptive_params.approach = Approach::kSnapshot;
  adaptive_params.k = k;
  adaptive_params.max_exponent =
      static_cast<int>(args.GetInt64("max-exp"));
  AdaptiveResult adaptive = SelectSampleNumber(
      *ig.value(), adaptive_params,
      static_cast<std::uint64_t>(args.GetInt64("seed")));
  std::printf("adaptive doubling selector (Snapshot): %s at τ=%s; seed "
              "influence %.3f\n",
              adaptive.converged ? "stabilized" : "NOT stabilized",
              WithThousands(adaptive.sample_number).c_str(),
              oracle.EstimateInfluence(adaptive.seeds));
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
