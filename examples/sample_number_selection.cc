// Sample-number selection (the paper's concluding open problem): given a
// target quality ("within 95% of greedy-on-oracle with 99% probability"),
// empirically find the least sample number for each approach and contrast
// it with the worst-case theoretical bounds — which the paper shows are
// orders of magnitude too conservative.
//
// Facade tour: the instance and its shared influence oracle are resolved
// through an api::Session (Status errors instead of crashes for unknown
// networks); the sweep itself stays on the exp layer, which the facade
// shares its caches with.
//
//   ./sample_number_selection [--network BA_s] [--prob iwc] [--k 1]

#include <cstdio>

#include "api/session.h"
#include "core/adaptive.h"
#include "core/bounds.h"
#include "core/tim.h"
#include "exp/sweep.h"
#include "exp/table_writer.h"
#include "util/args.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("sample_number_selection",
                 "Find the empirically sufficient sample number per "
                 "approach and compare with worst-case bounds.");
  args.AddString("network", "BA_s", "dataset name");
  args.AddString("prob", "iwc", "edge probabilities");
  args.AddInt64("k", 1, "seed-set size");
  args.AddInt64("trials", 100, "trials per sample number");
  args.AddInt64("max-exp", 13, "largest sample number 2^e (RIS gets +3)");
  args.AddDouble("quality", 0.95, "near-optimality factor");
  args.AddDouble("confidence", 0.99, "required success probability");
  args.AddInt64("seed", 42, "master seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  auto prob = ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  if (args.GetInt64("k") < 1 || args.GetInt64("trials") < 1 ||
      args.GetInt64("max-exp") < 0 || args.GetInt64("max-exp") > 30) {
    return ExitWithError(Status::InvalidArgument(
        "need --k >= 1, --trials >= 1, --max-exp in [0, 30]"));
  }
  if (args.GetDouble("quality") <= 0.0 || args.GetDouble("quality") > 1.0 ||
      args.GetDouble("confidence") <= 0.0 ||
      args.GetDouble("confidence") >= 1.0) {
    return ExitWithError(Status::InvalidArgument(
        "need --quality in (0, 1], --confidence in (0, 1)"));
  }

  api::WorkloadSpec workload =
      api::WorkloadSpec::Dataset(args.GetString("network"))
          .Probability(prob.value());
  api::SessionOptions session_options;
  session_options.seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
  session_options.oracle_rr = 200000;
  api::Session session(session_options);
  StatusOr<ModelInstance> instance = session.ResolveWorkload(workload);
  if (!instance.ok()) return ExitWithError(instance.status());
  StatusOr<const RrOracle*> oracle_or = session.ResolveOracle(workload);
  if (!oracle_or.ok()) return ExitWithError(oracle_or.status());
  const InfluenceGraph& ig = *instance.value().ig;
  const RrOracle& oracle = *oracle_or.value();

  const int k = static_cast<int>(args.GetInt64("k"));
  if (static_cast<VertexId>(k) > ig.num_vertices()) {
    return ExitWithError(Status::InvalidArgument(
        "--k " + std::to_string(k) + " exceeds the " +
        std::to_string(ig.num_vertices()) + " vertices of " +
        args.GetString("network")));
  }
  auto reference = oracle.OracleGreedySeeds(k);
  double reference_influence = oracle.EstimateInfluence(reference);
  double threshold = args.GetDouble("quality") * reference_influence;
  std::printf("reference greedy influence: %.3f; target: >= %.3f with "
              "probability %.0f%%\n",
              reference_influence, threshold,
              args.GetDouble("confidence") * 100);

  TextTable table({"approach", "empirical least sample number",
                   "worst-case bound", "gap factor"});
  BoundParams bound_params{
      .n = ig.num_vertices(),
      .m = ig.num_edges(),
      .k = static_cast<std::uint64_t>(k),
      .epsilon = 1.0 - args.GetDouble("quality"),
      .delta = 1.0 - args.GetDouble("confidence"),
      .opt_k = reference_influence,
  };
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    SweepConfig config;
    // RIS ladders reuse one per-trial RR arena across all sample numbers
    // (prefix views; see exp/trial_runner.h) — the sweep this example
    // runs is exactly the workload that reuse was built for.
    config.reuse = SweepReuse::kOn;
    config.approach = approach;
    config.k = k;
    config.trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
    config.master_seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
    config.max_exponent = static_cast<int>(args.GetInt64("max-exp")) +
                          (approach == Approach::kRis ? 3 : 0);
    auto cells = RunSweep(ig, oracle, config, session.pool());
    int idx = FindLeastSufficientCell(cells, threshold,
                                      args.GetDouble("confidence"));
    double bound = 0.0;
    switch (approach) {
      case Approach::kOneshot:
        bound = OneshotSampleBound(bound_params);
        break;
      case Approach::kSnapshot:
        bound = SnapshotSampleBound(bound_params);
        break;
      case Approach::kRis:
        bound = RisSampleBound(bound_params);
        break;
    }
    std::string empirical =
        idx < 0 ? "> 2^" + std::to_string(config.max_exponent)
                : FormatPowerOfTwo(cells[idx].sample_number) + " (= " +
                      WithThousands(cells[idx].sample_number) + ")";
    std::string gap =
        idx < 0 ? "-"
                : FormatDouble(
                      bound / static_cast<double>(cells[idx].sample_number),
                      1) + "x";
    table.AddRow({ApproachName(approach), empirical,
                  FormatDouble(bound, 0), gap});
    std::printf("  %s done\n", ApproachName(approach).c_str());
  }
  std::printf("\n%s\n", table.ToMarkdown().c_str());
  std::printf("The gap column is the paper's Section 5.2.1 message: "
              "worst-case bounds exceed empirical requirements by orders "
              "of magnitude.\n");

  // Two practical selectors on the same instance: TIM+'s principled θ
  // (RIS only) and this library's adaptive doubling rule (any approach —
  // the paper's Section 7 open problem).
  TimParams tim_params;
  tim_params.k = k;
  tim_params.epsilon = 1.0 - args.GetDouble("quality");
  TimResult tim = RunTimPlus(ig, tim_params,
                             static_cast<std::uint64_t>(args.GetInt64("seed")));
  std::printf("\nTIM+ selector (RIS): KPT*=%.3f -> θ=%s; seed influence "
              "%.3f\n",
              tim.kpt, WithThousands(tim.theta).c_str(),
              oracle.EstimateInfluence(tim.greedy.seeds));

  AdaptiveParams adaptive_params;
  adaptive_params.approach = Approach::kSnapshot;
  adaptive_params.k = k;
  adaptive_params.max_exponent =
      static_cast<int>(args.GetInt64("max-exp"));
  AdaptiveResult adaptive = SelectSampleNumber(
      ig, adaptive_params,
      static_cast<std::uint64_t>(args.GetInt64("seed")));
  std::printf("adaptive doubling selector (Snapshot): %s at τ=%s; seed "
              "influence %.3f\n",
              adaptive.converged ? "stabilized" : "NOT stabilized",
              WithThousands(adaptive.sample_number).c_str(),
              oracle.EstimateInfluence(adaptive.seeds));
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
