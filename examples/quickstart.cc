// Quickstart: load a network (a file if given, Zachary's karate club
// otherwise), assign edge probabilities, and pick k seeds with RIS — the
// most common end-to-end use of the library.
//
//   ./quickstart [--graph edges.txt] [--k 4] [--theta 16384] [--prob iwc]

#include <cstdio>

#include "core/greedy.h"
#include "core/lt_estimators.h"
#include "core/ris.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"
#include "util/args.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("quickstart", "Pick influential seeds with RIS.");
  args.AddString("graph", "", "edge-list file (empty = karate club)");
  args.AddInt64("k", 4, "number of seeds");
  args.AddInt64("theta", 16384, "number of RR sets");
  args.AddString("prob", "iwc", "edge probabilities: uc0.1|uc0.01|iwc|owc|tv");
  args.AddString("model", "ic",
                 "diffusion model: ic (independent cascade) or lt (linear "
                 "threshold; needs in-weights <= 1, e.g. iwc)");
  args.AddInt64("seed", 1, "PRNG seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  // 1. Load or build the network.
  EdgeList edges;
  if (args.GetString("graph").empty()) {
    edges = Datasets::Karate();
    std::printf("using the bundled karate-club network\n");
  } else {
    auto loaded = GraphIo::LoadEdgeList(args.GetString("graph"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(loaded).value();
  }
  Graph graph = GraphBuilder::FromEdgeList(edges);
  std::printf("graph: %u vertices, %llu arcs\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Assign influence probabilities.
  auto model = ParseProbabilityModel(args.GetString("prob"));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  Rng prob_rng(static_cast<std::uint64_t>(args.GetInt64("seed")));
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(graph), model.value(), &prob_rng);

  // 3. Run greedy with the RIS estimator (IC) or its LT counterpart.
  auto theta = static_cast<std::uint64_t>(args.GetInt64("theta"));
  auto k = static_cast<int>(args.GetInt64("k"));
  const bool use_lt = args.GetString("model") == "lt";
  if (!use_lt && args.GetString("model") != "ic") {
    std::fprintf(stderr, "unknown model: %s\n",
                 args.GetString("model").c_str());
    return 1;
  }
  std::unique_ptr<LtWeights> lt_weights;
  std::unique_ptr<InfluenceEstimator> estimator;
  if (use_lt) {
    if (!IsValidLtGraph(ig)) {
      std::fprintf(stderr,
                   "LT needs per-vertex in-weights <= 1; use --prob iwc\n");
      return 1;
    }
    lt_weights = std::make_unique<LtWeights>(&ig);
    estimator =
        MakeLtEstimator(lt_weights.get(), Approach::kRis, theta, 2024);
  } else {
    estimator = std::make_unique<RisEstimator>(&ig, theta, 2024);
  }
  Rng tie_rng(7);
  GreedyRunResult result =
      RunGreedy(estimator.get(), ig.num_vertices(), k, &tie_rng);

  // 4. Evaluate the chosen seeds with an independent oracle (shared RR
  // oracle for IC, Monte-Carlo evaluation for LT).
  std::printf("selected %d seeds with θ=%llu RR sets (%s model):\n", k,
              static_cast<unsigned long long>(theta), use_lt ? "LT" : "IC");
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    std::printf("  seed %zu: vertex %u (marginal estimate %.2f)\n", i + 1,
                result.seeds[i], result.estimates[i]);
  }
  if (use_lt) {
    LtForwardSimulator eval(&ig);
    Rng eval_rng(999);
    TraversalCounters scratch;
    double influence =
        eval.EstimateInfluence(result.seeds, 50000, &eval_rng, &scratch);
    std::printf("Monte-Carlo LT influence estimate: %.2f of %u vertices\n",
                influence, ig.num_vertices());
  } else {
    RrOracle oracle(&ig, 100000, 999);
    double influence = oracle.EstimateInfluence(result.seeds);
    std::printf("oracle influence estimate: %.2f of %u vertices (±%.2f at "
                "99%% confidence)\n",
                influence, ig.num_vertices(),
                oracle.ConfidenceInterval99());
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
