// Quickstart: pick k influential seeds with RIS through the api/ facade —
// the most common end-to-end use of the library in four steps: describe
// the workload (WorkloadSpec), open a Session, Solve, read the result.
// Bad input (missing file, unknown probability setting, --model lt on an
// LT-invalid instance) comes back as a Status, printed and exited with 1.
//
//   ./quickstart [--graph edges.txt] [--k 4] [--theta 16384] [--prob iwc]
//                [--model ic|lt]

#include <cstdio>

#include "api/session.h"
#include "util/args.h"
#include "util/cli.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("quickstart", "Pick influential seeds with RIS.");
  args.AddString("graph", "", "edge-list file (empty = karate club)");
  args.AddInt64("k", 4, "number of seeds");
  args.AddInt64("theta", 16384, "number of RR sets");
  args.AddString("prob", "iwc", "edge probabilities: uc0.1|uc0.01|iwc|owc|tv");
  args.AddString("model", "ic",
                 "diffusion model: ic (independent cascade) or lt (linear "
                 "threshold; needs in-weights <= 1, e.g. iwc)");
  args.AddInt64("seed", 1, "PRNG seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  // 1. Describe the workload: network source + probabilities + model.
  auto prob = ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  auto model = ParseDiffusionModel(args.GetString("model"));
  if (!model.ok()) return ExitWithError(model.status());
  api::WorkloadSpec workload =
      args.GetString("graph").empty()
          ? api::WorkloadSpec::Dataset("Karate")
          : api::WorkloadSpec::File(args.GetString("graph"));
  workload.Probability(prob.value()).Diffusion(model.value());
  if (args.GetString("graph").empty()) {
    std::printf("using the bundled karate-club network\n");
  }

  // 2. Open a session (owns the graph cache, the shared influence
  //    oracle, and the worker pool) and describe the solve.
  api::SessionOptions session_options;
  session_options.seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
  api::Session session(session_options);
  if (args.GetInt64("theta") < 1 || args.GetInt64("k") < 1) {
    return ExitWithError(
        Status::InvalidArgument("--theta and --k must be >= 1"));
  }
  api::SolveSpec solve =
      api::SolveSpec{}
          .WithApproach(Approach::kRis)
          .WithSampleNumber(static_cast<std::uint64_t>(args.GetInt64("theta")))
          .WithK(static_cast<int>(args.GetInt64("k")))
          .WithSeed(2024);

  // 3. Solve: one greedy seed selection, validated end to end.
  StatusOr<api::SolveResult> result = session.Solve(workload, solve);
  if (!result.ok()) return ExitWithError(result.status());

  // 4. Read the result: seeds with their selection-time estimates, and
  //    the independent shared-oracle influence value.
  std::printf("selected %d seeds with θ=%llu RR sets (%s model):\n",
              solve.k,
              static_cast<unsigned long long>(solve.sample_number),
              DiffusionModelName(workload.model).c_str());
  for (std::size_t i = 0; i < result.value().seeds.size(); ++i) {
    std::printf("  seed %zu: vertex %u (marginal estimate %.2f)\n", i + 1,
                result.value().seeds[i], result.value().estimates[i]);
  }
  std::printf("oracle influence estimate: %.2f (±%.2f at 99%% confidence) "
              "in %.0f ms\n",
              result.value().influence, result.value().oracle_ci99,
              result.value().solve_seconds * 1e3);
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
