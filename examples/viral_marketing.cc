// Viral marketing scenario (the paper's motivating application): a brand
// wants to gift k products so that word-of-mouth reaches as many users as
// possible. Compares the three algorithmic approaches plus cheap
// heuristics on a scale-free social-network proxy, reporting oracle
// influence and traversal cost for each — a miniature of the paper's
// efficiency-vs-quality trade-off.
//
// Facade tour: the network is a generator-produced edge list handed to
// WorkloadSpec::Edges, and the three approaches run as ONE
// Session::SolveBatch fanned out across the session's worker pool
// (byte-identical to solving them one by one).
//
//   ./viral_marketing [--n 20000] [--k 8] [--budget-exp 10]

#include <cstdio>

#include "api/session.h"
#include "core/baselines.h"
#include "gen/datasets.h"
#include "util/args.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("viral_marketing",
                 "Compare Oneshot/Snapshot/RIS and heuristics for a "
                 "viral-marketing seed selection.");
  args.AddInt64("n", 20000, "social-network size (com-Youtube-style proxy)");
  args.AddInt64("k", 8, "marketing budget (number of seeded users)");
  args.AddInt64("budget-exp", 10,
                "sample-number exponent: Snapshot/RIS use 2^e, Oneshot "
                "2^(e-4) (Oneshot resimulates per estimate)");
  args.AddInt64("seed", 42, "PRNG seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  if (args.GetInt64("n") < 8 || args.GetInt64("k") < 1 ||
      args.GetInt64("budget-exp") < 0 || args.GetInt64("budget-exp") > 40) {
    return ExitWithError(Status::InvalidArgument(
        "need --n >= 8 (the proxy generator's minimum), --k >= 1, "
        "--budget-exp in [0, 40]"));
  }
  auto n = static_cast<VertexId>(args.GetInt64("n"));
  auto k = static_cast<int>(args.GetInt64("k"));
  auto exp = static_cast<int>(args.GetInt64("budget-exp"));
  auto seed = static_cast<std::uint64_t>(args.GetInt64("seed"));

  // The workload: a generator-built social-network proxy handed straight
  // to the facade as an in-memory edge list.
  std::printf("building a %u-user social-network proxy...\n", n);
  api::WorkloadSpec workload =
      api::WorkloadSpec::Edges("youtube-proxy",
                               Datasets::ComYoutube(seed, n))
          .Probability(ProbabilityModel::kIwc);

  api::SessionOptions session_options;
  session_options.seed = seed;
  session_options.oracle_rr = 200000;
  api::Session session(session_options);

  // The three principled approaches as one batch on the session pool.
  std::vector<api::SolveSpec> specs;
  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    int e = approach == Approach::kOneshot ? std::max(0, exp - 4) : exp;
    specs.push_back(api::SolveSpec{}
                        .WithApproach(approach)
                        .WithSampleNumber(1ULL << e)
                        .WithK(k)
                        .WithSeed(seed + 9));
  }
  StatusOr<std::vector<api::SolveResult>> batch =
      session.SolveBatch(workload, specs);
  if (!batch.ok()) return ExitWithError(batch.status());

  TextTable table({"strategy", "sample number", "oracle influence",
                   "vertex traversals", "edge traversals"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const api::SolveResult& result = batch.value()[i];
    table.AddRow({ApproachName(specs[i].approach),
                  WithThousands(specs[i].sample_number),
                  FormatDouble(result.influence, 1),
                  WithThousands(result.counters.vertices),
                  WithThousands(result.counters.edges)});
    std::printf("  %s done in %.1fs\n",
                ApproachName(specs[i].approach).c_str(),
                result.solve_seconds);
  }

  // Cheap heuristics (paper Section 3.6: fast but less influential) —
  // scored against the SAME shared session oracle.
  StatusOr<ModelInstance> instance = session.ResolveWorkload(workload);
  if (!instance.ok()) return ExitWithError(instance.status());
  StatusOr<const RrOracle*> oracle = session.ResolveOracle(workload);
  if (!oracle.ok()) return ExitWithError(oracle.status());
  const InfluenceGraph& ig = *instance.value().ig;
  auto max_degree = MaxDegreeSeeds(ig.graph(), k);
  table.AddRow({"MaxDegree heuristic", "-",
                FormatDouble(oracle.value()->EstimateInfluence(max_degree), 1),
                "-", "-"});
  auto discount = DegreeDiscountSeeds(ig.graph(), k, 0.01);
  table.AddRow({"DegreeDiscount heuristic", "-",
                FormatDouble(oracle.value()->EstimateInfluence(discount), 1),
                "-", "-"});
  Rng random_rng(seed + 2);
  auto random = RandomSeeds(ig.num_vertices(), k, &random_rng);
  table.AddRow({"Random seeds", "-",
                FormatDouble(oracle.value()->EstimateInfluence(random), 1),
                "-", "-"});

  std::printf("\n%s\n", table.ToMarkdown().c_str());
  std::printf("Reading guide: the three principled approaches land within "
              "a few percent of each other (same greedy, different "
              "estimators) and beat the heuristics; their traversal costs "
              "differ by orders of magnitude — the paper's trade-off.\n");
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
