// Viral marketing scenario (the paper's motivating application): a brand
// wants to gift k products so that word-of-mouth reaches as many users as
// possible. Compares the three algorithmic approaches plus cheap
// heuristics on a scale-free social-network proxy, reporting oracle
// influence and traversal cost for each — a miniature of the paper's
// efficiency-vs-quality trade-off.
//
//   ./viral_marketing [--n 20000] [--k 8] [--budget-exp 10]

#include <cstdio>

#include "core/baselines.h"
#include "core/greedy.h"
#include "exp/trial_runner.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"
#include "util/args.h"
#include "util/string_util.h"
#include "util/table.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("viral_marketing",
                 "Compare Oneshot/Snapshot/RIS and heuristics for a "
                 "viral-marketing seed selection.");
  args.AddInt64("n", 20000, "social-network size (com-Youtube-style proxy)");
  args.AddInt64("k", 8, "marketing budget (number of seeded users)");
  args.AddInt64("budget-exp", 10,
                "sample-number exponent: Snapshot/RIS use 2^e, Oneshot "
                "2^(e-4) (Oneshot resimulates per estimate)");
  args.AddInt64("seed", 42, "PRNG seed");
  if (!args.Parse(argc, argv).ok()) return 1;

  auto n = static_cast<VertexId>(args.GetInt64("n"));
  auto k = static_cast<int>(args.GetInt64("k"));
  auto exp = static_cast<int>(args.GetInt64("budget-exp"));
  auto seed = static_cast<std::uint64_t>(args.GetInt64("seed"));

  std::printf("building a %u-user social-network proxy...\n", n);
  Graph graph =
      GraphBuilder::FromEdgeList(Datasets::ComYoutube(seed, n));
  InfluenceGraph ig =
      MakeInfluenceGraph(std::move(graph), ProbabilityModel::kIwc);
  RrOracle oracle(&ig, 200000, seed + 1);

  TextTable table({"strategy", "sample number", "oracle influence",
                   "vertex traversals", "edge traversals"});

  // The three principled approaches through the greedy framework.
  struct Strategy {
    Approach approach;
    std::uint64_t sample_number;
  };
  for (const Strategy& s :
       {Strategy{Approach::kOneshot, 1ULL << std::max(0, exp - 4)},
        Strategy{Approach::kSnapshot, 1ULL << exp},
        Strategy{Approach::kRis, 1ULL << exp}}) {
    auto estimator = MakeEstimator(&ig, s.approach, s.sample_number, seed);
    Rng tie_rng(seed + 9);
    GreedyRunResult result =
        RunGreedy(estimator.get(), ig.num_vertices(), k, &tie_rng);
    table.AddRow({ApproachName(s.approach),
                  WithThousands(s.sample_number),
                  FormatDouble(oracle.EstimateInfluence(result.seeds), 1),
                  WithThousands(estimator->counters().vertices),
                  WithThousands(estimator->counters().edges)});
    std::printf("  %s done\n", ApproachName(s.approach).c_str());
  }

  // Cheap heuristics (paper Section 3.6: fast but less influential).
  auto max_degree = MaxDegreeSeeds(ig.graph(), k);
  table.AddRow({"MaxDegree heuristic", "-",
                FormatDouble(oracle.EstimateInfluence(max_degree), 1), "-",
                "-"});
  auto discount = DegreeDiscountSeeds(ig.graph(), k, 0.01);
  table.AddRow({"DegreeDiscount heuristic", "-",
                FormatDouble(oracle.EstimateInfluence(discount), 1), "-",
                "-"});
  Rng random_rng(seed + 2);
  auto random = RandomSeeds(ig.num_vertices(), k, &random_rng);
  table.AddRow({"Random seeds", "-",
                FormatDouble(oracle.EstimateInfluence(random), 1), "-",
                "-"});

  std::printf("\n%s\n", table.ToMarkdown().c_str());
  std::printf("Reading guide: the three principled approaches land within "
              "a few percent of each other (same greedy, different "
              "estimators) and beat the heuristics; their traversal costs "
              "differ by orders of magnitude — the paper's trade-off.\n");
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
