// Kernel microbenchmarks (google-benchmark): the sampling primitives the
// traversal-cost model abstracts over. Useful to calibrate the
// "proportionality constant" between traversal cost and wall time that
// the paper's methodology deliberately leaves machine-dependent.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/greedy.h"
#include "core/oneshot.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "graph/reach_sketch.h"
#include "graph/traversal.h"
#include "model/probability.h"
#include "oracle/rr_oracle.h"
#include "random/splitmix64.h"
#include "random/xoshiro256pp.h"
#include "serve/query_service.h"
#include "sim/forward_sim.h"
#include "sim/rr_arena.h"
#include "sim/rr_sampler.h"
#include "sim/snapshot_arena.h"
#include "sim/snapshot_sampler.h"

namespace soldist {
namespace {

const InfluenceGraph& KarateIg() {
  static const InfluenceGraph* ig = new InfluenceGraph(MakeInfluenceGraph(
      GraphBuilder::FromEdgeList(Datasets::Karate()),
      ProbabilityModel::kUc01));
  return *ig;
}

const InfluenceGraph& BaDenseIg(ProbabilityModel model) {
  static std::map<ProbabilityModel, const InfluenceGraph*> cache;
  auto it = cache.find(model);
  if (it == cache.end()) {
    auto* ig = new InfluenceGraph(MakeInfluenceGraph(
        GraphBuilder::FromEdgeList(Datasets::BaDense(42)), model));
    it = cache.emplace(model, ig).first;
  }
  return *it->second;
}

void BM_GraphBuildKarate(benchmark::State& state) {
  EdgeList edges = Datasets::Karate();
  for (auto _ : state) {
    Graph g = GraphBuilder::FromEdgeList(edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphBuildKarate);

void BM_ForwardSimulation(benchmark::State& state) {
  const InfluenceGraph& ig =
      BaDenseIg(static_cast<ProbabilityModel>(state.range(0)));
  ForwardSimulator sim(&ig);
  Rng rng(1);
  TraversalCounters counters;
  const VertexId seeds[1] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Simulate(seeds, &rng, &counters));
  }
  state.SetLabel(ProbabilityModelName(
      static_cast<ProbabilityModel>(state.range(0))));
}
BENCHMARK(BM_ForwardSimulation)
    ->Arg(static_cast<int>(ProbabilityModel::kUc01))
    ->Arg(static_cast<int>(ProbabilityModel::kUc001))
    ->Arg(static_cast<int>(ProbabilityModel::kIwc))
    ->Arg(static_cast<int>(ProbabilityModel::kOwc));

void BM_SnapshotSample(benchmark::State& state) {
  const InfluenceGraph& ig =
      BaDenseIg(static_cast<ProbabilityModel>(state.range(0)));
  SnapshotSampler sampler(&ig);
  Rng rng(2);
  TraversalCounters counters;
  for (auto _ : state) {
    Snapshot snap = sampler.Sample(&rng, &counters);
    benchmark::DoNotOptimize(snap.num_live_edges());
  }
  state.SetLabel(ProbabilityModelName(
      static_cast<ProbabilityModel>(state.range(0))));
}
BENCHMARK(BM_SnapshotSample)
    ->Arg(static_cast<int>(ProbabilityModel::kUc01))
    ->Arg(static_cast<int>(ProbabilityModel::kIwc));

void BM_SnapshotBfs(benchmark::State& state) {
  const InfluenceGraph& ig = BaDenseIg(ProbabilityModel::kIwc);
  SnapshotSampler sampler(&ig);
  Rng rng(3);
  TraversalCounters counters;
  Snapshot snap = sampler.Sample(&rng, &counters);
  VertexId v = 0;
  for (auto _ : state) {
    const VertexId seeds[1] = {v};
    benchmark::DoNotOptimize(sampler.CountReachable(snap, seeds, &counters));
    v = (v + 1) % ig.num_vertices();
  }
}
BENCHMARK(BM_SnapshotBfs);

void BM_RrSetGeneration(benchmark::State& state) {
  const InfluenceGraph& ig =
      BaDenseIg(static_cast<ProbabilityModel>(state.range(0)));
  RrSampler sampler(&ig);
  Rng target_rng(4), coin_rng(5);
  TraversalCounters counters;
  std::vector<VertexId> rr_set;
  for (auto _ : state) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
    benchmark::DoNotOptimize(rr_set.size());
  }
  state.SetLabel(ProbabilityModelName(
      static_cast<ProbabilityModel>(state.range(0))));
}
BENCHMARK(BM_RrSetGeneration)
    ->Arg(static_cast<int>(ProbabilityModel::kUc01))
    ->Arg(static_cast<int>(ProbabilityModel::kIwc));

void BM_OracleEvaluate(benchmark::State& state) {
  const InfluenceGraph& ig = BaDenseIg(ProbabilityModel::kIwc);
  static const RrOracle* oracle = new RrOracle(&ig, 50000, 6);
  std::vector<VertexId> seeds{1, 17, 33, 99};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->EstimateInfluence(seeds));
  }
}
BENCHMARK(BM_OracleEvaluate);

void BM_GreedyRis(benchmark::State& state) {
  const InfluenceGraph& ig = KarateIg();
  std::uint64_t theta = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RisEstimator estimator(&ig, theta, ++seed);
    Rng tie_rng(seed);
    auto result = RunGreedy(&estimator, ig.num_vertices(), 4, &tie_rng);
    benchmark::DoNotOptimize(result.seeds.data());
  }
}
BENCHMARK(BM_GreedyRis)->Arg(256)->Arg(4096);

void BM_ReachSketchBuild(benchmark::State& state) {
  // Bottom-k sketches vs n BFS runs: the descendant-counting bottleneck
  // of Snapshot's first iteration (paper Section 3.4.3).
  const InfluenceGraph& ig = BaDenseIg(ProbabilityModel::kIwc);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    ReachabilitySketches sketches(&ig.graph(), 64, &rng);
    benchmark::DoNotOptimize(sketches.EstimateReachable(0));
  }
}
BENCHMARK(BM_ReachSketchBuild);

void BM_AllVerticesBfsReachability(benchmark::State& state) {
  const InfluenceGraph& ig = BaDenseIg(ProbabilityModel::kIwc);
  BfsReachability bfs(&ig.graph());
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (VertexId v = 0; v < ig.num_vertices(); ++v) {
      const VertexId source[1] = {v};
      total += bfs.CountReachable(source);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AllVerticesBfsReachability);

// ---------------------------------------------------------------------
// coverage_popcount: the serving layer's covered-count kernel. Both
// variants answer |covered(S)| over the SAME RR sets; what differs is
// the layout. The packed path is QueryView's word-packed bitmap over
// the arena's 32-bit inverted index: per-entry bit tests on uint64
// words (1 bit per RR set), cleared with one fill of the tiny bitmap.
// The walk path is the GreeDIMM TransposeRRRSets shape: one std::vector
// of 64-bit set ids per vertex, membership marked one byte per set,
// cleared via a touched list. The packed bitmap is 8x smaller scratch
// (2 KB vs 16 KB here) with 2x denser id reads — the layout win the
// serve/ design banks on. Note the run-grouped mask+popcount idiom the
// GREEDY engine uses (sim/max_coverage.cc) deliberately does NOT appear
// on this path: at point-query densities (~1 list entry per 64-set
// word, BaDense 0.99 / Physicians 1.16) the grouping loop costs more
// than the popcounts it saves.
// ---------------------------------------------------------------------

const RrArena& CoverageArena() {
  static const RrArena* arena = new RrArena(RrArena::SampleIc(
      BaDenseIg(ProbabilityModel::kIwc), 11, 16384, SamplingOptions{}));
  return *arena;
}

/// 64 rotating 4-seed query sets (deterministic, shared by both kernels).
const std::vector<std::vector<VertexId>>& CoverageQueries() {
  static const auto* queries = [] {
    auto* q = new std::vector<std::vector<VertexId>>(64);
    SplitMix64 rng(21);
    const VertexId n = CoverageArena().num_vertices();
    for (auto& seeds : *q) {
      seeds.resize(4);
      for (VertexId& v : seeds) v = static_cast<VertexId>(rng.Next() % n);
    }
    return q;
  }();
  return *queries;
}

void BM_CoveragePopcountPacked(benchmark::State& state) {
  const RrArena& arena = CoverageArena();
  // Non-owning shared_ptr: the static arena outlives the view.
  serve::QueryView view(
      std::shared_ptr<const RrArena>(&arena, [](const RrArena*) {}),
      arena.capacity());
  const auto& queries = CoverageQueries();
  serve::QueryScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.CoveredCount(queries[i], &scratch));
    i = (i + 1) % queries.size();
  }
  state.SetLabel("word-packed bitmap, per-entry bit tests (QueryView)");
}
BENCHMARK(BM_CoveragePopcountPacked);

void BM_CoveragePopcountVectorWalk(benchmark::State& state) {
  const RrArena& arena = CoverageArena();
  // GreeDIMM-style transpose: per-vertex vector<std::uint64_t> set ids.
  static const auto* transpose = [] {
    auto* t = new std::vector<std::vector<std::uint64_t>>(
        CoverageArena().num_vertices());
    for (VertexId v = 0; v < CoverageArena().num_vertices(); ++v) {
      for (std::uint32_t id : CoverageArena().InvertedAll(v)) {
        (*t)[v].push_back(id);
      }
    }
    return t;
  }();
  const auto& queries = CoverageQueries();
  std::vector<std::uint8_t> marked(arena.capacity(), 0);
  std::vector<std::uint64_t> touched;
  std::size_t i = 0;
  for (auto _ : state) {
    std::uint64_t covered = 0;
    for (VertexId v : queries[i]) {
      for (std::uint64_t id : (*transpose)[v]) {
        if (!marked[id]) {
          marked[id] = 1;
          touched.push_back(id);
          ++covered;
        }
      }
    }
    for (std::uint64_t id : touched) marked[id] = 0;
    touched.clear();
    benchmark::DoNotOptimize(covered);
    i = (i + 1) % queries.size();
  }
  state.SetLabel("per-vertex vector walk + byte markers (GreeDIMM shape)");
}
BENCHMARK(BM_CoveragePopcountVectorWalk);

// ---- Sampled-world reachability probe: arena-view condensed DAG vs ----
// ---- per-snapshot BFS re-walk over the raw live-edge CSRs          ----
//
// The serving question behind QueryService::SnapshotView's
// ReachProbability(src, dst): in how many of τ sampled worlds does src
// reach dst? The arena kernel answers over SCC-condensed DAGs with the
// reverse-topological prune (same-component O(1) hit, comp(dst) >
// comp(src) O(1) miss, early-exit DAG BFS otherwise); the baseline
// re-walks each raw snapshot with a vertex-level BFS — the cost profile
// a service without condensed worlds would pay. Same sampling streams,
// same (src, dst) rotation.

constexpr std::uint64_t kWorldReachTau = 256;

const SnapshotArena& WorldReachArena() {
  static const SnapshotArena* arena = new SnapshotArena(SnapshotArena::Sample(
      BaDenseIg(ProbabilityModel::kIwc), /*seed=*/17, kWorldReachTau,
      SamplingOptions()));
  return *arena;
}

/// The raw snapshots behind the SAME worlds: legacy sequential stream
/// from Rng(seed), exactly SnapshotArena::Sample's discipline.
const std::vector<Snapshot>& WorldReachSnapshots() {
  static const auto* snaps = [] {
    auto* s = new std::vector<Snapshot>();
    SnapshotSampler sampler(&BaDenseIg(ProbabilityModel::kIwc));
    Rng rng(17);
    TraversalCounters counters;
    s->reserve(kWorldReachTau);
    for (std::uint64_t i = 0; i < kWorldReachTau; ++i) {
      s->push_back(sampler.Sample(&rng, &counters));
    }
    return s;
  }();
  return *snaps;
}

void BM_WorldReachArenaDag(benchmark::State& state) {
  const SnapshotArena& arena = WorldReachArena();
  // Non-owning shared_ptr: the static arena outlives the view.
  serve::SnapshotQueryView view(
      std::shared_ptr<const SnapshotArena>(&arena,
                                           [](const SnapshotArena*) {}),
      arena.capacity());
  serve::WorldScratch scratch;
  const VertexId n = arena.num_vertices();
  VertexId src = 0, dst = n / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.ReachProbability(src, dst, &scratch));
    src = (src + 1) % n;
    dst = (dst + 3) % n;
  }
  state.SetLabel("condensed-DAG probe over SnapshotArena views");
}
BENCHMARK(BM_WorldReachArenaDag);

void BM_WorldReachSnapshotBfs(benchmark::State& state) {
  const std::vector<Snapshot>& snaps = WorldReachSnapshots();
  const VertexId n = WorldReachArena().num_vertices();
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<VertexId> queue;
  queue.reserve(n);
  VertexId src = 0, dst = n / 2;
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (const Snapshot& snap : snaps) {
      std::fill(visited.begin(), visited.end(), 0);
      queue.clear();
      visited[src] = 1;
      queue.push_back(src);
      bool found = src == dst;
      for (std::size_t head = 0; !found && head < queue.size(); ++head) {
        const VertexId u = queue[head];
        for (EdgeId e = snap.out_offsets[u]; e < snap.out_offsets[u + 1];
             ++e) {
          const VertexId w = snap.out_targets[e];
          if (w == dst) {
            found = true;
            break;
          }
          if (!visited[w]) {
            visited[w] = 1;
            queue.push_back(w);
          }
        }
      }
      hits += found ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
    src = (src + 1) % n;
    dst = (dst + 3) % n;
  }
  state.SetLabel("per-snapshot live-edge BFS re-walk");
}
BENCHMARK(BM_WorldReachSnapshotBfs);

void BM_Mt19937UnitReal(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UnitReal());
  }
}
BENCHMARK(BM_Mt19937UnitReal);

void BM_Xoshiro256ppNext(benchmark::State& state) {
  Xoshiro256pp rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Xoshiro256ppNext);

}  // namespace
}  // namespace soldist
