// Table 5 (paper Section 5.2.1): the least sample number (β*, τ*, θ*) for
// which each approach obtains a near-optimal seed set (influence >= 0.95x
// the Exact Greedy reference) with probability >= 99%, and the entropy H*
// of the seed-set distribution at that sample number.
//
// Reference solution: greedy on the shared oracle (the paper uses the
// unique seed set obtained at entropy 0, which coincides once converged).

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct Table5Instance {
  std::string network;
  ProbabilityModel prob;
  int k;
};

const Table5Instance kInstances[] = {
    {"Karate", ProbabilityModel::kUc01, 1},
    {"Karate", ProbabilityModel::kUc01, 4},
    {"Karate", ProbabilityModel::kUc001, 1},
    {"Karate", ProbabilityModel::kUc001, 4},
    {"Karate", ProbabilityModel::kIwc, 1},
    {"Karate", ProbabilityModel::kOwc, 1},
    {"Karate", ProbabilityModel::kOwc, 4},
    {"Physicians", ProbabilityModel::kUc001, 1},
    {"Physicians", ProbabilityModel::kIwc, 4},
    {"Physicians", ProbabilityModel::kOwc, 1},
    {"Wiki-Vote", ProbabilityModel::kUc001, 1},
    {"Wiki-Vote", ProbabilityModel::kUc001, 4},
    {"Wiki-Vote", ProbabilityModel::kIwc, 1},
    {"Wiki-Vote", ProbabilityModel::kIwc, 4},
    {"BA_s", ProbabilityModel::kUc01, 1},
    {"BA_s", ProbabilityModel::kUc001, 1},
    {"BA_s", ProbabilityModel::kIwc, 1},
    {"BA_s", ProbabilityModel::kIwc, 16},
    {"BA_s", ProbabilityModel::kOwc, 1},
    {"BA_d", ProbabilityModel::kUc001, 1},
    {"BA_d", ProbabilityModel::kIwc, 1},
};

int Run(int argc, const char* const* argv) {
  ArgParser args("table5_least_sample",
                 "Reproduces paper Table 5: least sample number for "
                 "99%-probability near-optimal solutions.");
  AddExperimentFlags(&args);
  args.AddDouble("near-optimal", 0.95,
                 "near-optimality factor vs the oracle-greedy reference");
  args.AddDouble("probability", 0.99, "required success probability");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table5_least_sample");
  if (!args.Provided("trials")) options.trials = 30;
  PrintBanner("Table 5: least sample number for near-optimal solutions",
              options);

  ExperimentContext context(options);
  const double factor = args.GetDouble("near-optimal");
  const double probability = args.GetDouble("probability");

  TextTable table({"network", "prob.", "k", "log2 β*", "H*(Oneshot)",
                   "log2 τ*", "H*(Snapshot)", "log2 θ*", "H*(RIS)"});
  CsvWriter csv({"network", "prob", "k", "approach", "least_sample_log2",
                 "entropy_at_least_sample", "reference_influence"});

  for (const Table5Instance& inst : kInstances) {
    const InfluenceGraph& ig = context.Instance(inst.network, inst.prob);
    const RrOracle& oracle = context.Oracle(inst.network, inst.prob);
    GridCaps caps = ScaledGridCaps(inst.network, options.full);
    auto reference = oracle.OracleGreedySeeds(inst.k);
    double threshold = factor * oracle.EstimateInfluence(reference);

    std::vector<std::string> row{inst.network,
                                 ProbabilityModelName(inst.prob),
                                 std::to_string(inst.k)};
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = approach;
      config.k = inst.k;
      config.trials = context.TrialsFor(inst.network);
      config.master_seed = options.seed + inst.k * 131;
      config.max_exponent =
          TrimExpForK(caps.MaxExp(approach), inst.k, approach);
      WallTimer timer;
      auto cells = RunSweep(ig, oracle, config, context.pool());
      int idx = FindLeastSufficientCell(cells, threshold, probability);
      SOLDIST_LOG(Info) << inst.network << " "
                        << ProbabilityModelName(inst.prob) << " k=" << inst.k
                        << " " << ApproachName(approach) << " in "
                        << timer.HumanElapsed();
      if (idx < 0) {
        row.push_back("> " + std::to_string(config.max_exponent));
        row.push_back("-");
        csv.Row()
            .Str(inst.network)
            .Str(ProbabilityModelName(inst.prob))
            .Int(inst.k)
            .Str(ApproachName(approach))
            .Int(-1)
            .Real(-1.0, 2)
            .Real(threshold / factor, 4)
            .Done();
      } else {
        row.push_back(FormatLog2(cells[idx].sample_number));
        row.push_back(FormatDouble(cells[idx].entropy, 2));
        csv.Row()
            .Str(inst.network)
            .Str(ProbabilityModelName(inst.prob))
            .Int(inst.k)
            .Str(ApproachName(approach))
            .Int(static_cast<std::int64_t>(idx) + 0)
            .Real(cells[idx].entropy, 4)
            .Real(threshold / factor, 4)
            .Done();
      }
    }
    table.AddRow(std::move(row));
  }
  PrintTable(
      "Table 5: least sample number (log2) and entropy H* for "
      "near-optimal solutions w.p. >= " +
          FormatDouble(probability * 100, 0) + "%",
      table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
