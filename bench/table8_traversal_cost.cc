// Table 8 (paper Section 5.3): average vertex and edge traversal cost at
// k = 1 and sample number 1 for each (network, setting, approach).
// Expected relations (Section 5.3.2):
//   vertex cost:  Oneshot ≈ Snapshot ≈ n · RIS
//   edge cost:    Oneshot ≈ (m/m̃) · Snapshot ≈ n · RIS
// and uc0.1 on dense graphs is the most expensive (giant component).

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("table8_traversal_cost",
                 "Reproduces paper Table 8: per-sample traversal cost at "
                 "k=1 and sample number 1.");
  AddExperimentFlags(&args);
  args.AddString("networks",
                 "Karate,Physicians,ca-GrQc,Wiki-Vote,com-Youtube,"
                 "soc-Pokec,BA_s,BA_d",
                 "networks to run");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table8_traversal_cost");
  PrintBanner("Table 8: traversal cost at k=1, sample number 1", options);

  ExperimentContext context(options);
  TextTable table({"network", "algorithm", "uc0.1 vertex", "uc0.1 edge",
                   "uc0.01 vertex", "uc0.01 edge", "iwc vertex", "iwc edge",
                   "owc vertex", "owc edge"});
  CsvWriter csv({"network", "setting", "approach", "vertex_cost",
                 "edge_cost", "sample_size"});

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    bool star = Datasets::IsStarNetwork(network);
    std::map<Approach, std::vector<std::string>> rows;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      // Paper's Table 8 omits Oneshot on the ⋆ networks and uc0.1 on
      // Wiki-Vote and the ⋆ networks; mirror those "-" cells.
      rows[approach] = {star ? "* " + network : network,
                        ApproachName(approach)};
    }
    for (ProbabilityModel model : PaperProbabilityModels()) {
      bool skip_setting = model == ProbabilityModel::kUc01 &&
                          (network == "Wiki-Vote" || star);
      for (Approach approach :
           {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
        bool skip = skip_setting || (star && approach == Approach::kOneshot);
        if (skip) {
          rows[approach].push_back("-");
          rows[approach].push_back("-");
          continue;
        }
        const InfluenceGraph& ig = context.Instance(network, model);
        TrialConfig config;
        config.sampling = context.sampling();
        config.approach = approach;
        config.sample_number = 1;
        config.k = 1;
        config.trials = context.TrialsFor(network);
        config.master_seed = options.seed;
        WallTimer timer;
        TrialResult result = RunTrials(ig, config, context.pool());
        SOLDIST_LOG(Info) << network << " " << ProbabilityModelName(model)
                          << " " << ApproachName(approach) << " in "
                          << timer.HumanElapsed();
        double vertex_cost = result.MeanVertexCost(config.trials);
        double edge_cost = result.MeanEdgeCost(config.trials);
        rows[approach].push_back(FormatCost(vertex_cost));
        rows[approach].push_back(FormatCost(edge_cost));
        csv.Row()
            .Str(network)
            .Str(ProbabilityModelName(model))
            .Str(ApproachName(approach))
            .Real(vertex_cost, 2)
            .Real(edge_cost, 2)
            .Real(result.MeanSampleSize(config.trials), 2)
            .Done();
      }
    }
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      table.AddRow(std::move(rows[approach]));
    }
  }
  PrintTable("Table 8: traversal cost at k=1 and sample number 1", table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
