// Table 6 + Figure 7 (paper Section 5.2.3): the comparable number ratio
// of Oneshot to Snapshot — the least β whose mean influence matches
// Snapshot's at each τ, reported per τ (Figure 7) and as the median
// (Table 6). Expected shape: ratios mostly in [1, 32], stable in τ, and
// growing with the seed size k (up to 96 in the paper).

#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct Table6Instance {
  std::string network;
  int k;
};

int Run(int argc, const char* const* argv) {
  ArgParser args("table6_comparable_oneshot",
                 "Reproduces paper Table 6/Figure 7: comparable number "
                 "ratio of Oneshot to Snapshot.");
  AddExperimentFlags(&args);
  args.AddString("networks", "Karate,Physicians,BA_s,BA_d",
                 "networks to run (paper also includes ca-GrQc/Wiki-Vote; "
                 "add them with --full time budgets)");
  args.AddString("k-list", "1,4,16", "seed sizes");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table6_comparable_oneshot");
  if (!args.Provided("trials")) options.trials = 25;
  PrintBanner("Table 6 / Figure 7: Oneshot vs Snapshot comparable ratio",
              options);

  ExperimentContext context(options);
  CsvWriter csv({"network", "setting", "k", "tau", "comparable_beta",
                 "number_ratio"});
  TextTable table({"network", "k", "uc0.1", "uc0.01", "iwc", "owc"});

  std::vector<int> k_values;
  for (const std::string& field : Split(args.GetString("k-list"), ',')) {
    std::int64_t k = 0;
    SOLDIST_CHECK(ParseInt64(field, &k)) << "bad k: " << field;
    k_values.push_back(static_cast<int>(k));
  }

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    GridCaps caps = ScaledGridCaps(network, options.full);
    for (int k : k_values) {
      std::vector<std::string> row{network, std::to_string(k)};
      for (ProbabilityModel model : PaperProbabilityModels()) {
        const InfluenceGraph& ig = context.Instance(network, model);
        const RrOracle& oracle = context.Oracle(network, model);
        std::uint64_t trials = context.TrialsFor(network);

        // Comparable ratios are stable in τ (Figure 7), so shallow grids
        // suffice: two fewer exponents than the per-network caps keeps
        // Oneshot tractable on giant-component instances (BA_d uc0.1 has
        // Inf ≈ 0.37·n, making every simulation scan a third of the
        // graph).
        SweepConfig snap_config;
        snap_config.sampling = context.sampling();
        snap_config.reuse = options.sweep_reuse;
        snap_config.approach = Approach::kSnapshot;
        snap_config.k = k;
        snap_config.trials = trials;
        snap_config.master_seed = options.seed + k * 17;
        snap_config.max_exponent = std::max(
            0, TrimExpForK(caps.snapshot_max_exp, k, Approach::kSnapshot) -
                   2);

        SweepConfig one_config = snap_config;
        one_config.approach = Approach::kOneshot;
        one_config.master_seed = options.seed + k * 17 + 7;
        one_config.max_exponent = std::max(
            0,
            TrimExpForK(caps.oneshot_max_exp, k, Approach::kOneshot) - 2);

        WallTimer timer;
        auto snap_cells = RunSweep(ig, oracle, snap_config, context.pool());
        auto one_cells = RunSweep(ig, oracle, one_config, context.pool());
        SOLDIST_LOG(Info) << network << " " << ProbabilityModelName(model)
                          << " k=" << k << " in " << timer.HumanElapsed();

        auto pairs =
            ComputeComparablePairs(CurveOf(snap_cells), CurveOf(one_cells));
        for (const ComparablePair& pair : pairs) {
          csv.Row()
              .Str(network)
              .Str(ProbabilityModelName(model))
              .Int(k)
              .UInt(pair.s1)
              .UInt(pair.s2)
              .Real(pair.number_ratio, 4)
              .Done();
        }
        auto median = MedianNumberRatio(pairs);
        row.push_back(median ? FormatDouble(*median, 2) : "-");
      }
      table.AddRow(std::move(row));
    }
  }
  PrintTable(
      "Table 6: median comparable number ratio β/τ of Oneshot to Snapshot",
      table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
