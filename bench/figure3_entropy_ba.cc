// Figure 3 + Table 4 companion (paper Section 5.1.2): entropy decay speed
// of RIS on BA_s and BA_d under the four probability settings, k = 1.
// Expected shape: iwc decays fastest (large gap between the best and
// second-best vertex); uc0.01 (BA_s) and owc (BA_d) decay slowest.

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("figure3_entropy_ba",
                 "Reproduces paper Figure 3: entropy decay by probability "
                 "setting (RIS, k=1, BA networks).");
  AddExperimentFlags(&args);
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure3_entropy_ba");
  if (!args.Provided("trials")) options.trials = 120;
  PrintBanner("Figure 3: entropy decay by edge-probability setting", options);

  ExperimentContext context(options);
  CsvWriter csv({"network", "setting", "sample_number", "entropy"});

  for (const std::string network : {"BA_s", "BA_d"}) {
    GridCaps caps = ScaledGridCaps(network, options.full);
    TextTable table(
        {"sample number θ", "uc0.1", "uc0.01", "iwc", "owc"});
    std::map<std::uint64_t, std::map<std::string, double>> entropy_by_s;
    for (ProbabilityModel model : PaperProbabilityModels()) {
      const InfluenceGraph& ig = context.Instance(network, model);
      const RrOracle& oracle = context.Oracle(network, model);
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = Approach::kRis;
      config.k = 1;
      config.trials = context.TrialsFor(network);
      config.master_seed = options.seed;
      config.max_exponent = caps.ris_max_exp;
      WallTimer timer;
      auto cells = RunSweep(ig, oracle, config, context.pool());
      SOLDIST_LOG(Info) << network << " " << ProbabilityModelName(model)
                        << " sweep in " << timer.HumanElapsed();
      for (const SweepCell& cell : cells) {
        entropy_by_s[cell.sample_number][ProbabilityModelName(model)] =
            cell.entropy;
        csv.Row()
            .Str(network)
            .Str(ProbabilityModelName(model))
            .UInt(cell.sample_number)
            .Real(cell.entropy, 4)
            .Done();
      }
    }
    for (const auto& [s, by_setting] : entropy_by_s) {
      std::vector<std::string> row{FormatPowerOfTwo(s)};
      for (const char* setting : {"uc0.1", "uc0.01", "iwc", "owc"}) {
        auto it = by_setting.find(setting);
        row.push_back(it == by_setting.end()
                          ? "-"
                          : FormatDouble(it->second, 3));
      }
      table.AddRow(std::move(row));
    }
    PrintTable("Figure 3 series: " + network + " (k=1, RIS entropy)", table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
