// Figure 7 (library extension): the Figure-1 entropy-decay experiment
// under the LINEAR THRESHOLD model — Shannon entropy of the seed-set
// distribution vs sample number on Karate (iwc, the LT-valid setting)
// for k = 1, 4. Expected shape mirrors IC: entropy starts near maximum
// and decays monotonically for all three approaches. The bench is
// model-aware: --model ic runs the same instance under IC for a direct
// side-by-side with the LT curves (default: lt).

#include "bench_common.h"
#include "stats/entropy.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("figure7_entropy_lt",
                 "Entropy decay on Karate (iwc) under the LT model (the "
                 "Figure-1 experiment's LT counterpart).");
  AddExperimentFlags(&args);
  args.AddString("k-list", "1,4", "comma-separated seed sizes");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  if (!args.Provided("trials")) options.trials = 150;
  if (!args.Provided("model")) options.model = DiffusionModel::kLt;
  PrintBanner("Figure 7: entropy of seed-set distributions, Karate (iwc), "
              "model=" + DiffusionModelName(options.model),
              options);

  ExperimentContext context(options);
  ModelInstance instance = context.Model("Karate", ProbabilityModel::kIwc);
  const RrOracle& oracle = context.Oracle("Karate", ProbabilityModel::kIwc);
  GridCaps caps = ScaledGridCaps("Karate", options.full);

  CsvWriter csv({"model", "k", "approach", "sample_number", "entropy",
                 "mean_influence", "distinct_sets"});

  std::vector<int> k_values;
  for (const std::string& field : Split(args.GetString("k-list"), ',')) {
    std::int64_t k = 0;
    SOLDIST_CHECK(ParseInt64(field, &k)) << "bad k: " << field;
    k_values.push_back(static_cast<int>(k));
  }

  for (int k : k_values) {
    TextTable table({"sample number", "Oneshot H", "Snapshot H", "RIS H"});
    std::map<std::uint64_t, std::map<Approach, double>> entropy_by_s;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = approach;
      config.k = k;
      config.trials = context.TrialsFor("Karate");
      config.master_seed = options.seed + static_cast<std::uint64_t>(k);
      config.min_exponent = 0;
      config.max_exponent = TrimExpForK(caps.MaxExp(approach), k, approach);
      WallTimer timer;
      auto cells = RunSweep(instance, oracle, config, context.pool());
      SOLDIST_LOG(Info) << "k=" << k << " " << ApproachName(approach)
                        << " sweep in " << timer.HumanElapsed();
      for (const SweepCell& cell : cells) {
        entropy_by_s[cell.sample_number][approach] = cell.entropy;
        csv.Row()
            .Str(DiffusionModelName(options.model))
            .Int(k)
            .Str(ApproachName(approach))
            .UInt(cell.sample_number)
            .Real(cell.entropy, 4)
            .Real(cell.summary.mean_influence, 4)
            .UInt(cell.result.distribution.num_distinct_sets())
            .Done();
      }
    }
    for (const auto& [s, per_approach] : entropy_by_s) {
      auto fmt = [&per_approach](Approach a) {
        auto it = per_approach.find(a);
        return it == per_approach.end() ? std::string("-")
                                        : FormatDouble(it->second, 3);
      };
      table.AddRow({FormatPowerOfTwo(s), fmt(Approach::kOneshot),
                    fmt(Approach::kSnapshot), fmt(Approach::kRis)});
    }
    PrintTable("Figure 7 series: Karate (iwc, " +
                   DiffusionModelName(options.model) + ", k=" +
                   std::to_string(k) + ") — Shannon entropy (max " +
                   FormatDouble(MaxEmpiricalEntropy(
                                    context.TrialsFor("Karate")),
                                2) +
                   " bits at T trials)",
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
