// Parallel sampling scaling: samples/sec vs. thread count for the three
// approaches' sampling primitives on the GRQC-scale instance, all routed
// through SamplingEngine's deterministic chunked streams.
//
//   * RIS       — RR sets/sec (SampleRrShards)
//   * Snapshot  — snapshots/sec (SampleSnapshotShards)
//   * Oneshot   — forward simulations/sec (EstimateInfluenceSharded)
//
// Every row also cross-checks determinism: the shard stream at N threads
// must be byte-identical to the 1-thread run (the engine's core contract;
// a mismatch aborts the bench). Speedups are relative to 1 engine thread.
//
// Usage: bench_parallel_scaling [--threads-max 8] [--rr-sets 16384]
//                               [--snapshots 512] [--simulations 16384]
//                               [--chunk-size 256] [--seed 42]

#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "random/splitmix64.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "sim/forward_sim.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"
#include "util/timer.h"

namespace soldist {
namespace {

struct Row {
  int threads;
  double rr_per_sec;
  double snap_per_sec;
  double sim_per_sec;
};

SamplingOptions EngineOptions(int threads, std::uint64_t chunk_size) {
  // The bench calls the Sample*Shards entry points directly, so threads=1
  // simply runs the chunked streams inline — same streams, one worker.
  SamplingOptions options;
  options.num_threads = threads;
  options.chunk_size = chunk_size;
  return options;
}

int Main(int argc, const char* const* argv) {
  ArgParser args("parallel_scaling",
                 "samples/sec vs. thread count for RIS / Snapshot / Oneshot "
                 "sampling through the deterministic SamplingEngine");
  args.AddInt64("threads-max", 8, "largest thread count (doubling from 1)");
  args.AddInt64("rr-sets", 16384, "RR sets per RIS measurement");
  args.AddInt64("snapshots", 512, "snapshots per Snapshot measurement");
  args.AddInt64("simulations", 16384,
                "forward simulations per Oneshot measurement");
  args.AddInt64("chunk-size", 256, "samples per deterministic chunk");
  args.AddInt64("seed", 42, "master PRNG seed");
  int exit_code = 0;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code)) return exit_code;

  const auto threads_max = static_cast<int>(args.GetInt64("threads-max"));
  const auto rr_sets = static_cast<std::uint64_t>(args.GetInt64("rr-sets"));
  const auto snapshots =
      static_cast<std::uint64_t>(args.GetInt64("snapshots"));
  const auto simulations =
      static_cast<std::uint64_t>(args.GetInt64("simulations"));
  const auto chunk_size =
      static_cast<std::uint64_t>(args.GetInt64("chunk-size"));
  const auto seed = static_cast<std::uint64_t>(args.GetInt64("seed"));

  std::printf("# parallel_scaling: ca-GrQc proxy (n=5242), uc0.1\n");
  std::printf(
      "# hardware_concurrency=%u; determinism is cross-checked against the "
      "1-thread shards each row\n",
      std::thread::hardware_concurrency());

  InfluenceGraph ig = MakeInfluenceGraph(
      GraphBuilder::FromEdgeList(Datasets::CaGrQc(seed)),
      ProbabilityModel::kUc01);
  const std::vector<VertexId> sim_seeds = {0, 1, 2, 3, 4};

  // Reference shards from the 1-thread engine (determinism baseline).
  std::vector<RrShard> rr_reference;
  double sim_reference = 0.0;
  std::uint64_t snap_reference_edges = 0;

  std::vector<Row> rows;
  for (int threads = 1; threads <= threads_max; threads *= 2) {
    SamplingEngine engine(EngineOptions(threads, chunk_size));
    Row row;
    row.threads = threads;

    WallTimer timer;
    std::vector<RrShard> rr_shards =
        SampleRrShards(ig, DeriveSeed(seed, 1), rr_sets, &engine);
    row.rr_per_sec = static_cast<double>(rr_sets) / timer.Seconds();

    timer.Restart();
    std::vector<SnapshotShard> snap_shards =
        SampleSnapshotShards(ig, DeriveSeed(seed, 2), snapshots, &engine);
    row.snap_per_sec = static_cast<double>(snapshots) / timer.Seconds();

    timer.Restart();
    double mean = EstimateInfluenceSharded(ig, sim_seeds, simulations,
                                           DeriveSeed(seed, 3), &engine,
                                           nullptr);
    row.sim_per_sec = static_cast<double>(simulations) / timer.Seconds();

    std::uint64_t snap_edges = 0;
    for (const SnapshotShard& shard : snap_shards) {
      snap_edges += shard.counters.sample_edges;
    }
    if (threads == 1) {
      rr_reference = std::move(rr_shards);
      sim_reference = mean;
      snap_reference_edges = snap_edges;
    } else {
      SOLDIST_CHECK(rr_shards.size() == rr_reference.size());
      for (std::size_t s = 0; s < rr_shards.size(); ++s) {
        SOLDIST_CHECK(rr_shards[s].flat == rr_reference[s].flat &&
                      rr_shards[s].offsets == rr_reference[s].offsets)
            << "RR shard " << s << " diverged at " << threads << " threads";
      }
      SOLDIST_CHECK(mean == sim_reference)
          << "Oneshot estimate diverged at " << threads << " threads";
      SOLDIST_CHECK(snap_edges == snap_reference_edges)
          << "snapshot live-edge total diverged at " << threads
          << " threads";
    }
    rows.push_back(row);
  }

  std::printf("\n%8s  %14s  %14s  %14s  %8s\n", "threads", "RR sets/s",
              "snapshots/s", "forward sims/s", "speedup");
  for (const Row& row : rows) {
    double speedup = row.rr_per_sec / rows.front().rr_per_sec;
    std::printf("%8d  %14.0f  %14.0f  %14.0f  %7.2fx\n", row.threads,
                row.rr_per_sec, row.snap_per_sec, row.sim_per_sec, speedup);
  }
  std::printf(
      "\n(all thread counts produced byte-identical shards; speedup column "
      "is RR-set throughput vs. 1 engine thread)\n");
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Main(argc, argv); }
