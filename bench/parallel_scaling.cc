// Parallel sampling scaling: samples/sec vs. thread count for the three
// approaches' sampling primitives on the GRQC-scale instance, all routed
// through SamplingEngine's deterministic chunked streams — under BOTH
// diffusion models.
//
//   IC (uc0.1):  * RIS      — RR sets/sec (SampleRrShards)
//                * Snapshot — snapshots/sec (SampleSnapshotShards)
//                * Oneshot  — forward simulations/sec
//                             (EstimateInfluenceSharded)
//   LT (iwc):    * RIS      — backward walks/sec (SampleLtRrShards)
//                * Snapshot — live-edge graphs/sec (SampleLtSnapshotShards)
//                * Oneshot  — threshold simulations/sec
//                             (EstimateLtInfluenceSharded)
//
// Every row also cross-checks determinism: the shard stream at N threads
// must be byte-identical to the 1-thread run (the engine's core contract;
// a mismatch aborts the bench). Speedups are relative to 1 engine thread.
//
// Usage: bench_parallel_scaling [--threads-max 8] [--rr-sets 16384]
//                               [--snapshots 512] [--simulations 16384]
//                               [--chunk-size 256] [--seed 42]

#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "random/splitmix64.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/lt.h"
#include "model/probability.h"
#include "sim/forward_sim.h"
#include "sim/lt_forward_sim.h"
#include "sim/lt_samplers.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"
#include "util/timer.h"

namespace soldist {
namespace {

struct Row {
  int threads;
  double rr_per_sec;
  double snap_per_sec;
  double sim_per_sec;
};

/// Byte-compares two snapshot shard sequences (full CSR contents, not
/// just live-edge totals).
bool SnapshotShardsEqual(const std::vector<SnapshotShard>& a,
                         const std::vector<SnapshotShard>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].snapshots.size() != b[s].snapshots.size()) return false;
    for (std::size_t i = 0; i < a[s].snapshots.size(); ++i) {
      if (a[s].snapshots[i].out_offsets != b[s].snapshots[i].out_offsets ||
          a[s].snapshots[i].out_targets != b[s].snapshots[i].out_targets) {
        return false;
      }
    }
  }
  return true;
}

SamplingOptions EngineOptions(int threads, std::uint64_t chunk_size) {
  // The bench calls the Sample*Shards entry points directly, so threads=1
  // simply runs the chunked streams inline — same streams, one worker.
  SamplingOptions options;
  options.num_threads = threads;
  options.chunk_size = chunk_size;
  return options;
}

int Main(int argc, const char* const* argv) {
  ArgParser args("parallel_scaling",
                 "samples/sec vs. thread count for RIS / Snapshot / Oneshot "
                 "sampling through the deterministic SamplingEngine");
  args.AddInt64("threads-max", 8, "largest thread count (doubling from 1)");
  args.AddInt64("rr-sets", 16384, "RR sets per RIS measurement");
  args.AddInt64("snapshots", 512, "snapshots per Snapshot measurement");
  args.AddInt64("simulations", 16384,
                "forward simulations per Oneshot measurement");
  args.AddInt64("chunk-size", 256, "samples per deterministic chunk");
  args.AddInt64("seed", 42, "master PRNG seed");
  int exit_code = 0;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code)) return exit_code;

  const auto threads_max = static_cast<int>(args.GetInt64("threads-max"));
  const auto rr_sets = static_cast<std::uint64_t>(args.GetInt64("rr-sets"));
  const auto snapshots =
      static_cast<std::uint64_t>(args.GetInt64("snapshots"));
  const auto simulations =
      static_cast<std::uint64_t>(args.GetInt64("simulations"));
  const auto chunk_size =
      static_cast<std::uint64_t>(args.GetInt64("chunk-size"));
  const auto seed = static_cast<std::uint64_t>(args.GetInt64("seed"));

  std::printf("# parallel_scaling: ca-GrQc proxy (n=5242), uc0.1\n");
  std::printf(
      "# hardware_concurrency=%u; determinism is cross-checked against the "
      "1-thread shards each row\n",
      std::thread::hardware_concurrency());

  InfluenceGraph ig = MakeInfluenceGraph(
      GraphBuilder::FromEdgeList(Datasets::CaGrQc(seed)),
      ProbabilityModel::kUc01);
  const std::vector<VertexId> sim_seeds = {0, 1, 2, 3, 4};

  // Reference shards from the 1-thread engine (determinism baseline).
  std::vector<RrShard> rr_reference;
  double sim_reference = 0.0;
  std::uint64_t snap_reference_edges = 0;

  std::vector<Row> rows;
  for (int threads = 1; threads <= threads_max; threads *= 2) {
    SamplingEngine engine(EngineOptions(threads, chunk_size));
    Row row;
    row.threads = threads;

    WallTimer timer;
    std::vector<RrShard> rr_shards =
        SampleRrShards(ig, DeriveSeed(seed, 1), rr_sets, &engine);
    row.rr_per_sec = static_cast<double>(rr_sets) / timer.Seconds();

    timer.Restart();
    std::vector<SnapshotShard> snap_shards =
        SampleSnapshotShards(ig, DeriveSeed(seed, 2), snapshots, &engine);
    row.snap_per_sec = static_cast<double>(snapshots) / timer.Seconds();

    timer.Restart();
    double mean = EstimateInfluenceSharded(ig, sim_seeds, simulations,
                                           DeriveSeed(seed, 3), &engine,
                                           nullptr);
    row.sim_per_sec = static_cast<double>(simulations) / timer.Seconds();

    std::uint64_t snap_edges = 0;
    for (const SnapshotShard& shard : snap_shards) {
      snap_edges += shard.counters.sample_edges;
    }
    if (threads == 1) {
      rr_reference = std::move(rr_shards);
      sim_reference = mean;
      snap_reference_edges = snap_edges;
    } else {
      SOLDIST_CHECK(rr_shards.size() == rr_reference.size());
      for (std::size_t s = 0; s < rr_shards.size(); ++s) {
        SOLDIST_CHECK(rr_shards[s].flat == rr_reference[s].flat &&
                      rr_shards[s].offsets == rr_reference[s].offsets)
            << "RR shard " << s << " diverged at " << threads << " threads";
      }
      SOLDIST_CHECK(mean == sim_reference)
          << "Oneshot estimate diverged at " << threads << " threads";
      SOLDIST_CHECK(snap_edges == snap_reference_edges)
          << "snapshot live-edge total diverged at " << threads
          << " threads";
    }
    rows.push_back(row);
  }

  std::printf("\n[IC, uc0.1]\n%8s  %14s  %14s  %14s  %8s\n", "threads",
              "RR sets/s", "snapshots/s", "forward sims/s", "speedup");
  for (const Row& row : rows) {
    double speedup = row.rr_per_sec / rows.front().rr_per_sec;
    std::printf("%8d  %14.0f  %14.0f  %14.0f  %7.2fx\n", row.threads,
                row.rr_per_sec, row.snap_per_sec, row.sim_per_sec, speedup);
  }

  // ---- LT: same scaling sweep on the iwc (LT-valid) instance.
  InfluenceGraph lt_ig = MakeInfluenceGraph(
      GraphBuilder::FromEdgeList(Datasets::CaGrQc(seed)),
      ProbabilityModel::kIwc);
  LtWeights lt_weights(&lt_ig);

  std::vector<RrShard> lt_rr_reference;
  std::vector<SnapshotShard> lt_snap_reference;
  double lt_sim_reference = 0.0;

  std::vector<Row> lt_rows;
  for (int threads = 1; threads <= threads_max; threads *= 2) {
    SamplingEngine engine(EngineOptions(threads, chunk_size));
    Row row;
    row.threads = threads;

    WallTimer timer;
    std::vector<RrShard> rr_shards =
        SampleLtRrShards(lt_weights, DeriveSeed(seed, 4), rr_sets, &engine);
    row.rr_per_sec = static_cast<double>(rr_sets) / timer.Seconds();

    timer.Restart();
    std::vector<SnapshotShard> snap_shards = SampleLtSnapshotShards(
        lt_weights, DeriveSeed(seed, 5), snapshots, &engine);
    row.snap_per_sec = static_cast<double>(snapshots) / timer.Seconds();

    timer.Restart();
    double mean = EstimateLtInfluenceSharded(lt_ig, sim_seeds, simulations,
                                             DeriveSeed(seed, 6), &engine,
                                             nullptr);
    row.sim_per_sec = static_cast<double>(simulations) / timer.Seconds();

    if (threads == 1) {
      lt_rr_reference = std::move(rr_shards);
      lt_snap_reference = std::move(snap_shards);
      lt_sim_reference = mean;
    } else {
      SOLDIST_CHECK(rr_shards.size() == lt_rr_reference.size());
      for (std::size_t s = 0; s < rr_shards.size(); ++s) {
        SOLDIST_CHECK(rr_shards[s].flat == lt_rr_reference[s].flat &&
                      rr_shards[s].offsets == lt_rr_reference[s].offsets)
            << "LT RR shard " << s << " diverged at " << threads
            << " threads";
      }
      SOLDIST_CHECK(SnapshotShardsEqual(snap_shards, lt_snap_reference))
          << "LT snapshot shards diverged at " << threads << " threads";
      SOLDIST_CHECK(mean == lt_sim_reference)
          << "LT Oneshot estimate diverged at " << threads << " threads";
    }
    lt_rows.push_back(row);
  }

  std::printf("\n[LT, iwc]\n%8s  %14s  %14s  %14s  %8s\n", "threads",
              "RR walks/s", "snapshots/s", "threshold sims/s", "speedup");
  for (const Row& row : lt_rows) {
    double speedup = row.rr_per_sec / lt_rows.front().rr_per_sec;
    std::printf("%8d  %14.0f  %14.0f  %14.0f  %7.2fx\n", row.threads,
                row.rr_per_sec, row.snap_per_sec, row.sim_per_sec, speedup);
  }
  std::printf(
      "\n(all thread counts produced byte-identical shards under both "
      "models; speedup column is RR throughput vs. 1 engine thread)\n");
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Main(argc, argv); }
