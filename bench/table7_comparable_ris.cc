// Table 7 + Figure 8 (paper Section 5.2.3): comparable number ratio θ/τ
// and comparable SIZE ratio (θ·EPT)/(τ·m̃) of RIS to Snapshot. Expected
// shape: RIS needs many more *samples* (ratios 4..500k, huge when the
// influence is tiny) but each sample is far smaller — on large networks
// the size ratio drops below 1 (e.g. 0.00033 on com-Youtube iwc), i.e.
// RIS is more space-saving than Snapshot.

#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("table7_comparable_ris",
                 "Reproduces paper Table 7/Figure 8: comparable number and "
                 "size ratios of RIS to Snapshot.");
  AddExperimentFlags(&args);
  args.AddString("networks",
                 "Karate,Physicians,ca-GrQc,Wiki-Vote,com-Youtube,"
                 "soc-Pokec,BA_s,BA_d",
                 "networks to run");
  args.AddString("k-list", "1,4", "seed sizes");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table7_comparable_ris");
  if (!args.Provided("trials")) options.trials = 25;
  PrintBanner("Table 7 / Figure 8: RIS vs Snapshot comparable ratios",
              options);

  ExperimentContext context(options);
  CsvWriter csv({"network", "setting", "k", "tau", "comparable_theta",
                 "number_ratio", "size_ratio"});
  TextTable table({"network", "k", "ratio", "uc0.1", "uc0.01", "iwc",
                   "owc"});

  std::vector<int> k_values;
  for (const std::string& field : Split(args.GetString("k-list"), ',')) {
    std::int64_t k = 0;
    SOLDIST_CHECK(ParseInt64(field, &k)) << "bad k: " << field;
    k_values.push_back(static_cast<int>(k));
  }

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    GridCaps caps = ScaledGridCaps(network, options.full);
    bool star = Datasets::IsStarNetwork(network);
    for (int k : k_values) {
      std::vector<std::string> number_row{
          star ? "* " + network : network, std::to_string(k), "θ/τ"};
      std::vector<std::string> size_row{star ? "* " + network : network,
                                        std::to_string(k), "size"};
      for (ProbabilityModel model : PaperProbabilityModels()) {
        // The paper leaves uc0.1 blank for the giant-component networks
        // (too expensive at scale); mirror that.
        bool skip = model == ProbabilityModel::kUc01 &&
                    (network == "Wiki-Vote" || star);
        if (skip) {
          number_row.push_back("-");
          size_row.push_back("-");
          continue;
        }
        const InfluenceGraph& ig = context.Instance(network, model);
        const RrOracle& oracle = context.Oracle(network, model);
        std::uint64_t trials = context.TrialsFor(network);

        // Shallow grids (caps − 2) as in table6: the ratio is stable
        // across the sweep (Figure 8), and full-depth Snapshot sweeps on
        // giant-component instances are the harness's priciest cells.
        SweepConfig snap_config;
        snap_config.sampling = context.sampling();
        snap_config.reuse = options.sweep_reuse;
        snap_config.approach = Approach::kSnapshot;
        snap_config.k = k;
        snap_config.trials = trials;
        snap_config.master_seed = options.seed + k * 29;
        snap_config.max_exponent = std::max(
            0, TrimExpForK(caps.snapshot_max_exp, k, Approach::kSnapshot) -
                   2);

        SweepConfig ris_config = snap_config;
        ris_config.approach = Approach::kRis;
        ris_config.master_seed = options.seed + k * 29 + 3;
        ris_config.max_exponent = std::max(0, caps.ris_max_exp - 2);

        WallTimer timer;
        auto snap_cells = RunSweep(ig, oracle, snap_config, context.pool());
        auto ris_cells = RunSweep(ig, oracle, ris_config, context.pool());
        SOLDIST_LOG(Info) << network << " " << ProbabilityModelName(model)
                          << " k=" << k << " in " << timer.HumanElapsed();

        auto pairs =
            ComputeComparablePairs(CurveOf(snap_cells), CurveOf(ris_cells));
        for (const ComparablePair& pair : pairs) {
          csv.Row()
              .Str(network)
              .Str(ProbabilityModelName(model))
              .Int(k)
              .UInt(pair.s1)
              .UInt(pair.s2)
              .Real(pair.number_ratio, 4)
              .Real(pair.size_ratio, 6)
              .Done();
        }
        auto number_median = MedianNumberRatio(pairs);
        auto size_median = MedianSizeRatio(pairs);
        number_row.push_back(
            number_median ? FormatDouble(*number_median, 1) : "-");
        size_row.push_back(size_median
                               ? (*size_median < 0.1
                                      ? FormatDouble(*size_median, 5)
                                      : FormatDouble(*size_median, 2))
                               : "-");
      }
      table.AddRow(std::move(number_row));
      table.AddRow(std::move(size_row));
    }
  }
  PrintTable(
      "Table 7: median comparable number ratio θ/τ and size ratio "
      "(θ·EPT)/(τ·m̃) of RIS to Snapshot (size < 0.1 ⇒ RIS is the more "
      "space-saving)",
      table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
