// Arena storage-backend bench: one flat RR arena is persisted
// (store/arena_io.h), reloaded cold and warm, and then served through
// every storage backend (flat / compressed / mmap-spill) under the same
// deterministic point-query workload — recording compression ratio,
// save/load times and per-backend p50/p99 latencies into
// BENCH_store.json (ISSUE 8's out-of-core storage subsystem, measured).
//
// Refusal discipline: every backend's per-query answers and TopK seed
// set are CHECKed identical to the flat reference — and the flat
// reference itself runs on the RELOADED arena, so the artifact also
// proves a saved arena serves without resampling. The --check-ratio
// gate fails the run (exit 1) when the compressed backend's storage
// bytes are not at least that factor below flat's.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "random/splitmix64.h"
#include "serve/query_service.h"
#include "store/arena_io.h"
#include "store/arena_storage.h"
#include "store/recovery.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

bool SameCounters(const TraversalCounters& a, const TraversalCounters& b) {
  return a.vertices == b.vertices && a.edges == b.edges &&
         a.sample_vertices == b.sample_vertices &&
         a.sample_edges == b.sample_edges;
}

struct Query {
  std::vector<VertexId> seeds;
  VertexId gain_vertex = 0;  ///< 0-seed queries become MarginalGain
  bool is_gain = false;
};

/// Deterministic mixed point-query workload (same shape as
/// bench/query_service.cc): single-vertex spread, 4-seed spread,
/// 3-seed marginal gain.
std::vector<Query> MakeWorkload(std::uint64_t count, VertexId n,
                                std::uint64_t seed) {
  SplitMix64 rng(DeriveSeed(seed, 0x57a7e));
  auto vertex = [&] { return static_cast<VertexId>(rng.Next() % n); };
  std::vector<Query> queries(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Query& q = queries[i];
    switch (i % 3) {
      case 0:
        q.seeds = {vertex()};
        break;
      case 1:
        q.seeds = {vertex(), vertex(), vertex(), vertex()};
        break;
      default:
        q.is_gain = true;
        q.seeds = {vertex(), vertex(), vertex()};
        q.gain_vertex = vertex();
        break;
    }
  }
  return queries;
}

struct BackendRecord {
  const char* name = "";
  std::uint64_t storage_bytes = 0;   ///< backend-owned payload bytes
  std::uint64_t memory_bytes = 0;    ///< whole arena (incl. counters)
  std::uint64_t resident_bytes = 0;  ///< after the query run
  double p50_us = 0.0;
  double p99_us = 0.0;
  double hot_hit_rate = 0.0;
  std::uint64_t chunk_loads = 0;
};

/// Runs the workload once on `view`, CHECKing answers against
/// `reference` when non-empty (filling it when empty), and returns
/// latency percentiles.
void RunQueries(const serve::QueryView& view,
                const std::vector<Query>& queries,
                std::vector<double>* reference, BackendRecord* record) {
  serve::QueryScratch scratch;
  std::vector<double> results(queries.size());
  std::vector<std::uint64_t> latency_ns(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const auto start = std::chrono::steady_clock::now();
    results[i] = q.is_gain
                     ? view.MarginalGain(q.seeds, q.gain_vertex, &scratch)
                     : view.Spread(q.seeds, &scratch);
    latency_ns[i] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  if (reference->empty()) {
    *reference = results;
  } else {
    // Exact equality: answers are integer counts scaled by constants, so
    // a backend that changes any byte fails loudly, never silently.
    SOLDIST_CHECK(results == *reference)
        << record->name
        << ": backend query answers differ from the flat reference — "
           "refusing to record";
  }
  std::sort(latency_ns.begin(), latency_ns.end());
  record->p50_us =
      static_cast<double>(latency_ns[latency_ns.size() / 2]) / 1000.0;
  record->p99_us =
      static_cast<double>(latency_ns[latency_ns.size() * 99 / 100]) / 1000.0;
}

int Run(int argc, const char* const* argv) {
  ArgParser args("bench_arena_store",
                 "Persist one flat RR arena, reload it (cold + warm), and "
                 "serve the same point-query workload through the flat / "
                 "compressed / mmap storage backends; emits "
                 "BENCH_store.json. All backend answers are CHECKed "
                 "identical to the flat reference, which itself runs on "
                 "the RELOADED arena.");
  AddExperimentFlags(&args);
  args.AddString("network", "ca-GrQc", "network to sample");
  args.AddString("prob", "uc0.1", "probability setting (uc0.1|owc|iwc|tri)");
  args.AddInt64("tau", 8192, "RR sets in the arena");
  args.AddInt64("queries", 30000, "point queries per backend run");
  args.AddInt64("topk", 10, "k for the per-backend TopK identity check");
  args.AddString("store-dir", "/tmp/soldist-bench-arena",
                 "scratch directory for the persisted arena and the mmap "
                 "spill file");
  args.AddString("json-out", "BENCH_store.json",
                 "write the JSON record here (empty = stdout only)");
  args.AddString("check-ratio", "",
                 "fail (exit 1) unless flat storage bytes / compressed "
                 "storage bytes >= this (e.g. 1.5)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "bench_arena_store");
  StatusOr<ProbabilityModel> prob =
      ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  double check_ratio = 0.0;
  if (!args.GetString("check-ratio").empty() &&
      !ParseDouble(args.GetString("check-ratio"), &check_ratio)) {
    return ExitWithError(Status::InvalidArgument(
        "bad --check-ratio value: '" + args.GetString("check-ratio") + "'"));
  }
  const auto tau = static_cast<std::uint64_t>(args.GetInt64("tau"));
  const auto num_queries =
      static_cast<std::uint64_t>(args.GetInt64("queries"));
  const int topk = static_cast<int>(args.GetInt64("topk"));
  const std::string store_dir = args.GetString("store-dir");

  PrintBanner("Arena storage backends: persistence + flat/compressed/mmap "
              "point-query service",
              options);
  ExperimentContext context(options);
  const std::string network = args.GetString("network");
  StatusOr<ModelInstance> instance = context.TryModel(network, prob.value());
  if (!instance.ok()) return ExitWithError(instance.status());
  const SamplingOptions sampling = context.sampling();

  // Sample the flat source arena, persist it, and reload — the reloaded
  // copy (not the original) becomes the serving reference.
  WallTimer timer;
  RrArena sampled = RrArena::SampleFor(instance.value(), options.seed, tau,
                                       sampling);
  const double sample_seconds = timer.Seconds();
  store::ArenaManifest manifest;
  manifest.kind = "rr";
  manifest.workload = context.Workload(network, prob.value()).Label();
  manifest.seed = options.seed;
  manifest.stream = sampling.UseEngine()
                        ? "engine/" + std::to_string(sampling.chunk_size)
                        : "seq";
  manifest.capacity = tau;
  timer.Restart();
  Status saved = store::SaveRrArena(sampled, manifest, store_dir);
  if (!saved.ok()) return ExitWithError(saved);
  const double save_seconds = timer.Seconds();
  timer.Restart();
  StatusOr<std::shared_ptr<RrArena>> cold =
      store::LoadRrArena(store_dir, manifest);
  const double cold_load_seconds = timer.Seconds();
  if (!cold.ok()) return ExitWithError(cold.status());
  timer.Restart();
  StatusOr<std::shared_ptr<RrArena>> warm =
      store::LoadRrArena(store_dir, manifest);
  const double warm_load_seconds = timer.Seconds();
  if (!warm.ok()) return ExitWithError(warm.status());
  std::shared_ptr<RrArena> flat_arena = cold.value();

  // Integrity-layer costs (ISSUE 10): VerifyArena is the per-entry price
  // of the scrubber's disk pass; the startup sweep is what QueryService
  // pays once per boot. The sweep runs over its own scratch root (one
  // saved entry + seeded tmp debris) so its work — and the CHECK that it
  // cleans exactly the debris — is independent of the serving copy.
  timer.Restart();
  Status verified = store::VerifyArena(store_dir);
  const double verify_seconds = timer.Seconds();
  if (!verified.ok()) return ExitWithError(verified);
  const std::string sweep_root = store_dir + "_recovery_root";
  std::filesystem::remove_all(sweep_root);
  Status sweep_saved =
      store::SaveRrArena(sampled, manifest, sweep_root + "/entry");
  if (!sweep_saved.ok()) return ExitWithError(sweep_saved);
  std::ofstream(sweep_root + "/payload.bin.tmp") << "debris";
  timer.Restart();
  StatusOr<store::RecoveryReport> swept = store::RecoverArenaDir(sweep_root);
  const double sweep_seconds = timer.Seconds();
  if (!swept.ok()) return ExitWithError(swept.status());
  SOLDIST_CHECK(swept.value().cleaned_tmp_files == 1 &&
                swept.value().healthy_entries == 1 &&
                swept.value().quarantined_entries == 0)
      << "recovery sweep misclassified the scratch tree: "
      << swept.value().ToJson();

  // Byte-identity of the round trip: every set, every inverted list,
  // every prefix counter.
  SOLDIST_CHECK(flat_arena->capacity() == sampled.capacity());
  SOLDIST_CHECK(flat_arena->total_entries() == sampled.total_entries());
  for (std::uint64_t i = 0; i < tau; ++i) {
    const auto a = sampled.Set(i);
    const auto b = flat_arena->Set(i);
    SOLDIST_CHECK(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "reloaded set " << i << " differs";
  }
  const VertexId n = flat_arena->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto a = sampled.InvertedAll(v);
    const auto b = flat_arena->InvertedAll(v);
    SOLDIST_CHECK(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "reloaded inverted list of vertex " << v << " differs";
  }
  for (std::uint64_t cut : {std::uint64_t{1}, tau / 2, tau}) {
    SOLDIST_CHECK(SameCounters(sampled.PrefixCounters(cut),
                               flat_arena->PrefixCounters(cut)));
  }
  std::printf("# arena: n=%u tau=%llu sample=%.3fs save=%.3fs "
              "cold_load=%.3fs warm_load=%.3fs verify=%.3fs sweep=%.3fs\n",
              n, static_cast<unsigned long long>(tau), sample_seconds,
              save_seconds, cold_load_seconds, warm_load_seconds,
              verify_seconds, sweep_seconds);

  const std::vector<Query> queries =
      MakeWorkload(num_queries, n, options.seed);
  std::vector<double> reference;
  std::vector<VertexId> topk_reference;
  std::vector<BackendRecord> records;
  std::string backends_json;
  TextTable table({"backend", "storage bytes", "arena bytes",
                   "resident bytes", "ratio vs flat", "p50 µs", "p99 µs"});
  const store::ArenaBackend backends[] = {store::ArenaBackend::kFlat,
                                          store::ArenaBackend::kCompressed,
                                          store::ArenaBackend::kMmap};
  std::uint64_t flat_storage_bytes = 0;
  for (store::ArenaBackend backend : backends) {
    // Each backend serves its own copy of the reloaded arena, converted
    // in place; the flat pass serves the reloaded arena as-is.
    auto arena = std::make_shared<RrArena>(*flat_arena);
    if (backend != store::ArenaBackend::kFlat) {
      store::StorageOptions storage;
      storage.backend = backend;
      storage.spill_dir = store_dir;
      Status converted = arena->ConvertStorage(storage);
      if (!converted.ok()) return ExitWithError(converted);
    }
    BackendRecord record;
    record.name = store::ArenaBackendName(backend);
    record.storage_bytes = arena->storage().MemoryBytes();
    record.memory_bytes = arena->MemoryBytes();
    serve::QueryView view(arena, tau);
    RunQueries(view, queries, &reference, &record);
    if (topk > 0) {
      serve::TopKResult top = view.TopK(topk);
      if (topk_reference.empty()) {
        topk_reference = top.seeds;
      } else {
        SOLDIST_CHECK(top.seeds == topk_reference)
            << record.name << ": TopK seeds differ from the flat reference";
      }
    }
    record.resident_bytes = arena->ResidentBytes();
    const store::StorageStats stats = arena->storage_stats();
    const std::uint64_t probes = stats.hot_hits + stats.hot_misses;
    record.hot_hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(stats.hot_hits) /
                          static_cast<double>(probes);
    record.chunk_loads = stats.chunk_loads;
    if (backend == store::ArenaBackend::kFlat) {
      flat_storage_bytes = record.storage_bytes;
    }
    records.push_back(record);
    table.AddRow({record.name, WithThousands(record.storage_bytes),
                  WithThousands(record.memory_bytes),
                  WithThousands(record.resident_bytes),
                  FormatDouble(static_cast<double>(flat_storage_bytes) /
                                   static_cast<double>(std::max<std::uint64_t>(
                                       1, record.storage_bytes)),
                               2),
                  FormatDouble(record.p50_us, 2),
                  FormatDouble(record.p99_us, 2)});
    JsonObject entry;
    entry.Str("backend", record.name)
        .UInt("storage_bytes", record.storage_bytes)
        .UInt("arena_bytes", record.memory_bytes)
        .UInt("resident_bytes", record.resident_bytes)
        .Real("p50_us", record.p50_us)
        .Real("p99_us", record.p99_us)
        .Real("hot_hit_rate", record.hot_hit_rate)
        .UInt("chunk_loads", record.chunk_loads)
        .Bool("identical_to_reference", true);
    if (!backends_json.empty()) backends_json += ",";
    backends_json += entry.ToString();
  }
  PrintTable("storage backends over one reloaded arena (" +
                 WithThousands(num_queries) +
                 " point queries each; answers + TopK CHECKed identical)",
             table);

  const double ratio =
      static_cast<double>(records[0].storage_bytes) /
      static_cast<double>(std::max<std::uint64_t>(1, records[1].storage_bytes));
  JsonObject summary;
  summary.Str("bench", "arena_store")
      .Str("network", network)
      .Str("prob", ProbabilityModelName(prob.value()))
      .UInt("seed", options.seed)
      .UInt("tau", tau)
      .UInt("n", n)
      .UInt("queries", num_queries)
      .Real("sample_seconds", sample_seconds)
      .Real("save_seconds", save_seconds)
      .Real("cold_load_seconds", cold_load_seconds)
      .Real("warm_load_seconds", warm_load_seconds)
      .Real("verify_seconds", verify_seconds)
      .Real("recovery_sweep_seconds", sweep_seconds)
      .Real("compression_ratio", ratio)
      .Bool("reload_byte_identical", true)
      .UIntArray("topk_seeds", topk_reference)
      .UInt("peak_rss_kb", PeakRssKb())
      .Raw("backends", "[" + backends_json + "]");
  const std::string json = summary.ToString();
  std::printf("%s\n", json.c_str());
  const std::string json_out = args.GetString("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      return ExitWithError(
          Status::Internal("cannot write --json-out " + json_out));
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (check_ratio > 0.0 && ratio < check_ratio) {
    std::fprintf(stderr,
                 "FAIL: compressed storage ratio %.2fx is below the "
                 "required %.2fx\n",
                 ratio, check_ratio);
    return 1;
  }
  if (check_ratio > 0.0) {
    std::fprintf(stderr, "ratio gate passed: %.2fx >= %.2fx\n", ratio,
                 check_ratio);
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
