// Shared helpers for the table/figure bench binaries. Benches resolve
// their (static) instance lists through ExperimentContext, which since
// the api/ facade wraps an api::Session; everything flag-driven is
// validated through Status so no CLI input can CHECK-abort.

#ifndef SOLDIST_BENCH_BENCH_COMMON_H_
#define SOLDIST_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/experiment.h"
#include "exp/table_writer.h"
#include "util/args.h"
#include "util/timer.h"

namespace soldist {

/// Peak resident set size of this process in KiB (ru_maxrss): the one
/// memory figure every bench reports the same way, so BENCH artifacts
/// and bench logs stay comparable across PRs. Monotone over the process
/// lifetime — per-phase figures must come from explicit byte counters
/// (MemoryBytes() on the big structures), not from re-reading this.
inline std::uint64_t PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

/// The standard end-of-bench memory line. `extra` appends labeled byte
/// figures (e.g. "arena_bytes=12345 index_bytes=678") for the bench's
/// dominant structures.
inline void ReportPeakRss(const std::string& extra = "") {
  std::printf("# peak_rss_kb=%llu%s%s\n",
              static_cast<unsigned long long>(PeakRssKb()),
              extra.empty() ? "" : " ", extra.c_str());
  std::fflush(stdout);
}

/// Parses argv; returns true when the program should exit immediately
/// (help or bad flags), storing the exit code in *exit_code.
inline bool ShouldExitAfterParse(ArgParser* args, int argc,
                                 const char* const* argv, int* exit_code) {
  Status status = args->Parse(argc, argv);
  if (status.ok()) return false;
  *exit_code = status.message() == "help requested" ? 0 : 1;
  if (*exit_code != 0) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return true;
}

/// Parses argv AND validates the shared experiment flags into *options.
/// Returns true when the program should exit (help, unknown flags, or
/// invalid option values — e.g. --model sir, --trials -5), with the exit
/// code in *exit_code and the explanation already printed to stderr.
inline bool ShouldExitAfterParse(ArgParser* args, int argc,
                                 const char* const* argv, int* exit_code,
                                 ExperimentOptions* options) {
  if (ShouldExitAfterParse(args, argc, argv, exit_code)) return true;
  StatusOr<ExperimentOptions> parsed = ParseExperimentFlags(*args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    *exit_code = 1;
    return true;
  }
  *options = std::move(parsed).value();
  return false;
}

/// Prints the standard bench banner with the scaled-grid disclaimer.
inline void PrintBanner(const std::string& title,
                        const ExperimentOptions& options) {
  std::printf("# %s\n", title.c_str());
  std::printf(
      "(soldist reproduction; model=%s, T=%llu trials [star: %llu], "
      "oracle=%llu RR sets, seed=%llu%s. The paper used T=1,000, a "
      "10^7-RR-set oracle and grids up to 2^16/2^24 on a 500 GB server; "
      "pass --full --trials 1000 to approach that. See EXPERIMENTS.md.)\n",
      DiffusionModelName(options.model).c_str(),
      static_cast<unsigned long long>(options.trials),
      static_cast<unsigned long long>(options.star_trials),
      static_cast<unsigned long long>(options.oracle_rr),
      static_cast<unsigned long long>(options.seed),
      options.full ? ", FULL grid" : "");
  std::fflush(stdout);
}

/// For IC-only benches: fail loudly when --model lt was requested, so the
/// flag never silently changes (or skips) the experiment. Model-aware
/// binaries (soldist_experiment, the LT entropy figure) honor the flag
/// instead of calling this. Prints the explanation and exits 1 — a flag
/// combination is user input, so it must never CHECK-abort.
inline void RequireIcModel(const ExperimentOptions& options,
                           const std::string& bench) {
  if (options.model == DiffusionModel::kIc) return;
  std::fprintf(stderr,
               "error: %s reproduces an IC-only table/figure; run "
               "soldist_experiment --model lt or bench_figure7_entropy_lt "
               "for the LT counterpart\n",
               bench.c_str());
  std::exit(1);
}

/// Oneshot/Snapshot sweeps get slower as k grows (each Estimate simulates
/// from the whole seed set): trim the max exponent accordingly so default
/// runs stay within the harness budget. RIS is unaffected.
inline int TrimExpForK(int max_exp, int k, Approach approach) {
  if (approach == Approach::kRis) return max_exp;
  int trim = 0;
  if (k >= 4) trim = 2;
  if (k >= 16) trim = approach == Approach::kOneshot ? 6 : 4;
  if (k >= 64) trim = 8;
  return max_exp > trim ? max_exp - trim : 0;
}

}  // namespace soldist

#endif  // SOLDIST_BENCH_BENCH_COMMON_H_
