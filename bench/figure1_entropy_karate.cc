// Figure 1 (paper Section 5.1.1): Shannon entropy of the seed-set
// distribution vs sample number on Karate (uc0.1) for k = 1, 4, 16.
// Expected shape: entropy starts near maximum, decays monotonically, and
// for k = 1, 4 converges to 0 at the same rate for all three approaches
// up to a scaling of the sample number.

#include "bench_common.h"
#include "stats/entropy.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("figure1_entropy_karate",
                 "Reproduces paper Figure 1: entropy decay on Karate.");
  AddExperimentFlags(&args);
  args.AddString("k-list", "1,4,16", "comma-separated seed sizes");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure1_entropy_karate");
  if (!args.Provided("trials")) options.trials = 150;
  PrintBanner("Figure 1: entropy of seed-set distributions, Karate (uc0.1)",
              options);

  ExperimentContext context(options);
  const InfluenceGraph& ig =
      context.Instance("Karate", ProbabilityModel::kUc01);
  const RrOracle& oracle = context.Oracle("Karate", ProbabilityModel::kUc01);
  GridCaps caps = ScaledGridCaps("Karate", options.full);

  CsvWriter csv({"k", "approach", "sample_number", "entropy",
                 "mean_influence", "distinct_sets"});

  std::vector<int> k_values;
  for (const std::string& field : Split(args.GetString("k-list"), ',')) {
    std::int64_t k = 0;
    SOLDIST_CHECK(ParseInt64(field, &k)) << "bad k: " << field;
    k_values.push_back(static_cast<int>(k));
  }

  for (int k : k_values) {
    TextTable table({"sample number", "Oneshot H", "Snapshot H", "RIS H"});
    std::map<std::uint64_t, std::map<Approach, double>> entropy_by_s;
    int max_exp_seen = 0;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = approach;
      config.k = k;
      config.trials = context.TrialsFor("Karate");
      config.master_seed = options.seed + static_cast<std::uint64_t>(k);
      config.min_exponent = 0;
      config.max_exponent = TrimExpForK(caps.MaxExp(approach), k, approach);
      max_exp_seen = std::max(max_exp_seen, config.max_exponent);
      WallTimer timer;
      auto cells = RunSweep(ig, oracle, config, context.pool());
      SOLDIST_LOG(Info) << "k=" << k << " " << ApproachName(approach)
                        << " sweep in " << timer.HumanElapsed();
      for (const SweepCell& cell : cells) {
        entropy_by_s[cell.sample_number][approach] = cell.entropy;
        csv.Row()
            .Int(k)
            .Str(ApproachName(approach))
            .UInt(cell.sample_number)
            .Real(cell.entropy, 4)
            .Real(cell.summary.mean_influence, 4)
            .UInt(cell.result.distribution.num_distinct_sets())
            .Done();
      }
    }
    for (const auto& [s, per_approach] : entropy_by_s) {
      auto fmt = [&per_approach](Approach a) {
        auto it = per_approach.find(a);
        return it == per_approach.end() ? std::string("-")
                                        : FormatDouble(it->second, 3);
      };
      table.AddRow({FormatPowerOfTwo(s), fmt(Approach::kOneshot),
                    fmt(Approach::kSnapshot), fmt(Approach::kRis)});
    }
    PrintTable("Figure 1 series: Karate (uc0.1, k=" + std::to_string(k) +
                   ") — Shannon entropy (max " +
                   FormatDouble(MaxEmpiricalEntropy(
                                    context.TrialsFor("Karate")),
                                2) +
                   " bits at T trials)",
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
