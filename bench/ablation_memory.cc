// Memory ablation: RR-set compression (paper Section 7's space-reduction
// direction). Samples θ RR sets per instance and compares the plain
// RrCollection layout against the delta+varint CompressedRrCollection,
// verifying query equivalence as it goes.

#include "bench_common.h"
#include "core/snapshot.h"
#include "sim/rr_arena.h"
#include "sim/rr_sampler.h"
#include "store/arena_storage.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("ablation_memory",
                 "RR-set compression ablation: plain vs delta+varint "
                 "storage (paper Section 7 future-work direction).");
  AddExperimentFlags(&args);
  args.AddInt64("theta", 1 << 16, "RR sets per instance");
  args.AddInt64("snapshot-tau", 512,
                "snapshots per estimator in the Snapshot-storage section");
  args.AddInt64("arena-theta", 2048,
                "RR sets per arena in the storage-backend section (kept "
                "below --theta: uc0.1 percolates the denser networks)");
  args.AddString("networks", "Karate,Physicians,ca-GrQc,Wiki-Vote,BA_d",
                 "networks to run");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "ablation_memory");
  PrintBanner("RR-set compression ablation", options);

  ExperimentContext context(options);
  auto theta = static_cast<std::uint64_t>(args.GetInt64("theta"));
  TextTable table({"network", "setting", "θ", "entries", "plain bytes",
                   "compressed bytes", "ratio", "bytes/entry"});
  CsvWriter csv({"network", "setting", "theta", "entries", "plain_bytes",
                 "compressed_bytes"});

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    for (ProbabilityModel model :
         {ProbabilityModel::kUc001, ProbabilityModel::kIwc}) {
      const InfluenceGraph& ig = context.Instance(network, model);
      RrSampler sampler(&ig);
      Rng target_rng(options.seed), coin_rng(options.seed + 1);
      TraversalCounters counters;
      RrCollection plain(ig.num_vertices());
      CompressedRrCollection compressed(ig.num_vertices());
      std::vector<VertexId> rr_set;
      for (std::uint64_t i = 0; i < theta; ++i) {
        sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
        plain.Add(rr_set);
        compressed.Add(rr_set);
      }
      plain.BuildIndex();
      compressed.BuildIndex();

      // Query equivalence spot check: this ablation must not trade
      // correctness for bytes.
      Rng query_rng(options.seed + 2);
      for (int q = 0; q < 50; ++q) {
        std::vector<VertexId> seeds{
            static_cast<VertexId>(query_rng.UniformInt(ig.num_vertices()))};
        SOLDIST_CHECK(plain.CountCovered(seeds) ==
                      compressed.CountCovered(seeds));
      }

      std::uint64_t plain_bytes = compressed.UncompressedBytes();
      std::uint64_t compressed_bytes = compressed.MemoryBytes();
      table.AddRow(
          {network, ProbabilityModelName(model), FormatPowerOfTwo(theta),
           WithThousands(compressed.total_entries()),
           WithThousands(plain_bytes), WithThousands(compressed_bytes),
           FormatDouble(static_cast<double>(compressed_bytes) /
                            static_cast<double>(plain_bytes),
                        3),
           FormatDouble(static_cast<double>(compressed_bytes) /
                            std::max<std::uint64_t>(
                                1, compressed.total_entries()),
                        2)});
      csv.Row()
          .Str(network)
          .Str(ProbabilityModelName(model))
          .UInt(theta)
          .UInt(compressed.total_entries())
          .UInt(plain_bytes)
          .UInt(compressed_bytes)
          .Done();
    }
  }
  PrintTable("RR-set storage: plain (4 B/set entry + 4 B/index entry) vs "
             "delta+varint compressed",
             table);

  // Snapshot estimator storage: full live-edge CSRs + O(n·τ) removal
  // bitmap (residual) vs SCC DAGs with component-granular state
  // (condensed). Scratch is sized per mode, so the condensed column is
  // the real resident footprint of a greedy run.
  auto snapshot_tau =
      static_cast<std::uint64_t>(args.GetInt64("snapshot-tau"));
  TextTable snap_table({"network", "setting", "τ", "residual bytes",
                        "condensed bytes", "ratio"});
  // uc0.1 percolates the denser networks (BA_d): large live components
  // are the regime where dropping the CSRs beats paying the component
  // maps — the ratio column is the honest, regime-dependent answer.
  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    for (ProbabilityModel model :
         {ProbabilityModel::kUc01, ProbabilityModel::kIwc}) {
      const InfluenceGraph& ig = context.Instance(network, model);
      std::uint64_t bytes[2] = {0, 0};
      const SnapshotEstimator::Mode modes[2] = {
          SnapshotEstimator::Mode::kResidual,
          SnapshotEstimator::Mode::kCondensed};
      for (int i = 0; i < 2; ++i) {
        SnapshotEstimator estimator(&ig, snapshot_tau, options.seed,
                                    modes[i]);
        estimator.Build();
        bytes[i] = estimator.MemoryBytes();
      }
      snap_table.AddRow(
          {network, ProbabilityModelName(model),
           FormatPowerOfTwo(snapshot_tau), WithThousands(bytes[0]),
           WithThousands(bytes[1]),
           FormatDouble(static_cast<double>(bytes[1]) /
                            static_cast<double>(std::max<std::uint64_t>(
                                1, bytes[0])),
                        3)});
    }
  }
  PrintTable("Snapshot estimator storage: residual (live-edge CSRs + n·τ "
             "removal bitmap) vs condensed (SCC DAGs, component-granular "
             "state)",
             snap_table);

  // Arena storage backends (store/): ONE sampled RrArena held through
  // each backend. The flat column is today's zero-copy layout; the
  // compressed column is the delta+varint promotion of the section-1
  // encoding to a queryable backend; the mmap column reports RESIDENT
  // bytes (offsets + hot chunks), the number the serve-layer cache
  // budget actually charges. Every backend answers byte-identically, so
  // the columns are a pure memory trade.
  auto arena_theta =
      static_cast<std::uint64_t>(args.GetInt64("arena-theta"));
  TextTable backend_table({"network", "setting", "θ", "flat bytes",
                           "compressed bytes", "ratio", "mmap resident"});
  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    for (ProbabilityModel model :
         {ProbabilityModel::kUc01, ProbabilityModel::kIwc}) {
      ModelInstance instance = context.Model(network, model);
      RrArena flat = RrArena::SampleFor(instance, options.seed, arena_theta,
                                        context.sampling());
      const std::uint64_t flat_bytes = flat.storage().MemoryBytes();
      RrArena compressed = flat;
      store::StorageOptions compress_options;
      compress_options.backend = store::ArenaBackend::kCompressed;
      SOLDIST_CHECK(compressed.ConvertStorage(compress_options).ok());
      RrArena mapped = flat;
      store::StorageOptions mmap_options;
      mmap_options.backend = store::ArenaBackend::kMmap;
      mmap_options.spill_dir = "/tmp/soldist-ablation-arena";
      SOLDIST_CHECK(mapped.ConvertStorage(mmap_options).ok());
      const std::uint64_t compressed_bytes =
          compressed.storage().MemoryBytes();
      backend_table.AddRow(
          {network, ProbabilityModelName(model),
           FormatPowerOfTwo(arena_theta),
           WithThousands(flat_bytes), WithThousands(compressed_bytes),
           FormatDouble(static_cast<double>(flat_bytes) /
                            static_cast<double>(std::max<std::uint64_t>(
                                1, compressed_bytes)),
                        3),
           WithThousands(mapped.ResidentBytes())});
    }
  }
  PrintTable("Arena storage backends (store/): flat vs delta+varint "
             "compressed vs mmap-spill resident footprint, byte-identical "
             "answers",
             backend_table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
