// Memory ablation: RR-set compression (paper Section 7's space-reduction
// direction). Samples θ RR sets per instance and compares the plain
// RrCollection layout against the delta+varint CompressedRrCollection,
// verifying query equivalence as it goes.

#include "bench_common.h"
#include "sim/rr_compress.h"
#include "sim/rr_sampler.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("ablation_memory",
                 "RR-set compression ablation: plain vs delta+varint "
                 "storage (paper Section 7 future-work direction).");
  AddExperimentFlags(&args);
  args.AddInt64("theta", 1 << 16, "RR sets per instance");
  args.AddString("networks", "Karate,Physicians,ca-GrQc,Wiki-Vote,BA_d",
                 "networks to run");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "ablation_memory");
  PrintBanner("RR-set compression ablation", options);

  ExperimentContext context(options);
  auto theta = static_cast<std::uint64_t>(args.GetInt64("theta"));
  TextTable table({"network", "setting", "θ", "entries", "plain bytes",
                   "compressed bytes", "ratio", "bytes/entry"});
  CsvWriter csv({"network", "setting", "theta", "entries", "plain_bytes",
                 "compressed_bytes"});

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    for (ProbabilityModel model :
         {ProbabilityModel::kUc001, ProbabilityModel::kIwc}) {
      const InfluenceGraph& ig = context.Instance(network, model);
      RrSampler sampler(&ig);
      Rng target_rng(options.seed), coin_rng(options.seed + 1);
      TraversalCounters counters;
      RrCollection plain(ig.num_vertices());
      CompressedRrCollection compressed(ig.num_vertices());
      std::vector<VertexId> rr_set;
      for (std::uint64_t i = 0; i < theta; ++i) {
        sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters);
        plain.Add(rr_set);
        compressed.Add(rr_set);
      }
      plain.BuildIndex();
      compressed.BuildIndex();

      // Query equivalence spot check: this ablation must not trade
      // correctness for bytes.
      Rng query_rng(options.seed + 2);
      for (int q = 0; q < 50; ++q) {
        std::vector<VertexId> seeds{
            static_cast<VertexId>(query_rng.UniformInt(ig.num_vertices()))};
        SOLDIST_CHECK(plain.CountCovered(seeds) ==
                      compressed.CountCovered(seeds));
      }

      std::uint64_t plain_bytes = compressed.UncompressedBytes();
      std::uint64_t compressed_bytes = compressed.MemoryBytes();
      table.AddRow(
          {network, ProbabilityModelName(model), FormatPowerOfTwo(theta),
           WithThousands(compressed.total_entries()),
           WithThousands(plain_bytes), WithThousands(compressed_bytes),
           FormatDouble(static_cast<double>(compressed_bytes) /
                            static_cast<double>(plain_bytes),
                        3),
           FormatDouble(static_cast<double>(compressed_bytes) /
                            std::max<std::uint64_t>(
                                1, compressed.total_entries()),
                        2)});
      csv.Row()
          .Str(network)
          .Str(ProbabilityModelName(model))
          .UInt(theta)
          .UInt(compressed.total_entries())
          .UInt(plain_bytes)
          .UInt(compressed_bytes)
          .Done();
    }
  }
  PrintTable("RR-set storage: plain (4 B/set entry + 8 B/index entry) vs "
             "delta+varint compressed",
             table);
  MaybeWriteCsv(csv, options.out_csv);
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
