// Figure 2 (paper Section 5.1.2): instances whose entropy hits a plateau
// around 1 bit — Karate (iwc, k=4) and Physicians (iwc, k=1) each contain
// two seed sets of almost identical influence, and the randomized
// tie-breaking picks either with near-equal probability. The bench also
// prints the two most frequent sets and their oracle influence to exhibit
// the near-tie (the paper reports 21.444 vs 21.446 and 12.403 vs 12.412).

#include "bench_common.h"
#include "stats/entropy.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct PlateauInstance {
  std::string network;
  int k;
};

int Run(int argc, const char* const* argv) {
  ArgParser args("figure2_entropy_plateau",
                 "Reproduces paper Figure 2: entropy plateaus from "
                 "almost-tied seed sets (iwc instances).");
  AddExperimentFlags(&args);
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure2_entropy_plateau");
  if (!args.Provided("trials")) options.trials = 120;
  PrintBanner("Figure 2: entropy plateaus on iwc instances", options);

  ExperimentContext context(options);
  CsvWriter csv({"instance", "approach", "sample_number", "entropy"});

  for (const PlateauInstance& inst :
       {PlateauInstance{"Karate", 4}, PlateauInstance{"Physicians", 1}}) {
    const InfluenceGraph& ig =
        context.Instance(inst.network, ProbabilityModel::kIwc);
    const RrOracle& oracle =
        context.Oracle(inst.network, ProbabilityModel::kIwc);
    GridCaps caps = ScaledGridCaps(inst.network, options.full);
    std::string label =
        inst.network + " (iwc, k=" + std::to_string(inst.k) + ")";

    TextTable table({"sample number", "Oneshot H", "Snapshot H", "RIS H"});
    std::map<std::uint64_t, std::map<Approach, double>> entropy_by_s;
    const SweepCell* largest_ris_cell = nullptr;
    std::vector<SweepCell> ris_cells;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = approach;
      config.k = inst.k;
      config.trials = context.TrialsFor(inst.network);
      config.master_seed = options.seed + inst.k;
      config.max_exponent =
          TrimExpForK(caps.MaxExp(approach), inst.k, approach);
      WallTimer timer;
      auto cells = RunSweep(ig, oracle, config, context.pool());
      SOLDIST_LOG(Info) << label << " " << ApproachName(approach)
                        << " sweep in " << timer.HumanElapsed();
      for (const SweepCell& cell : cells) {
        entropy_by_s[cell.sample_number][approach] = cell.entropy;
        csv.Row()
            .Str(label)
            .Str(ApproachName(approach))
            .UInt(cell.sample_number)
            .Real(cell.entropy, 4)
            .Done();
      }
      if (approach == Approach::kRis) {
        ris_cells = std::move(cells);
        largest_ris_cell = &ris_cells.back();
      }
    }
    for (const auto& [s, per_approach] : entropy_by_s) {
      auto fmt = [&per_approach](Approach a) {
        auto it = per_approach.find(a);
        return it == per_approach.end() ? std::string("-")
                                        : FormatDouble(it->second, 3);
      };
      table.AddRow({FormatPowerOfTwo(s), fmt(Approach::kOneshot),
                    fmt(Approach::kSnapshot), fmt(Approach::kRis)});
    }
    PrintTable("Figure 2 series: " + label, table);

    // Exhibit the near-tie behind the plateau: the two most frequent seed
    // sets of the largest RIS cell and their oracle influence.
    if (largest_ris_cell != nullptr) {
      std::vector<std::pair<std::uint64_t, std::vector<VertexId>>> ranked;
      for (const auto& [set, count] :
           largest_ris_cell->result.distribution.counts()) {
        ranked.emplace_back(count, set);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::printf("Top seed sets at %s (%s):\n",
                  FormatPowerOfTwo(largest_ris_cell->sample_number).c_str(),
                  label.c_str());
      for (std::size_t i = 0; i < std::min<std::size_t>(2, ranked.size());
           ++i) {
        std::vector<std::string> ids;
        for (VertexId v : ranked[i].second) ids.push_back(std::to_string(v));
        std::printf("  {%s}: frequency %llu/%llu, oracle influence %.3f\n",
                    Join(ids, ",").c_str(),
                    static_cast<unsigned long long>(ranked[i].first),
                    static_cast<unsigned long long>(
                        largest_ris_cell->result.distribution.num_trials()),
                    oracle.EstimateInfluence(ranked[i].second));
      }
      std::fflush(stdout);
    }
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
