// Figure 4 (paper Section 5.2.1): the influence distribution of
// Physicians (uc0.1, k=16) as notched box plots, one panel per approach.
// Expected shape: mean and median increase monotonically with the sample
// number and concentrate toward the unique limit influence.

#include "bench_common.h"
#include "stats/box_stats.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("figure4_boxplot_physicians",
                 "Reproduces paper Figure 4: influence distributions in "
                 "notched box plots, Physicians (uc0.1, k=16).");
  AddExperimentFlags(&args);
  args.AddInt64("k", 16, "seed-set size (paper: 16)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure4_boxplot_physicians");
  // Oneshot with k=16 re-simulates 16-seed cascades: the priciest cell of
  // the harness. Keep the default T modest unless the user overrides.
  if (!args.Provided("trials")) options.trials = 60;
  PrintBanner("Figure 4: influence distribution box plots", options);

  ExperimentContext context(options);
  const int k = static_cast<int>(args.GetInt64("k"));
  const InfluenceGraph& ig =
      context.Instance("Physicians", ProbabilityModel::kUc01);
  const RrOracle& oracle =
      context.Oracle("Physicians", ProbabilityModel::kUc01);
  GridCaps caps = ScaledGridCaps("Physicians", options.full);

  CsvWriter csv({"approach", "sample_number", "mean", "median", "q1", "q3",
                 "p1", "p99", "notch_low", "notch_high"});

  for (Approach approach :
       {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
    SweepConfig config;
    config.sampling = context.sampling();
    config.reuse = options.sweep_reuse;
    config.approach = approach;
    config.k = k;
    config.trials = context.TrialsFor("Physicians");
    config.master_seed = options.seed;
    config.max_exponent = TrimExpForK(caps.MaxExp(approach), k, approach);
    WallTimer timer;
    auto cells = RunSweep(ig, oracle, config, context.pool());
    SOLDIST_LOG(Info) << ApproachName(approach) << " sweep in "
                      << timer.HumanElapsed();

    TextTable table({"sample number", "p1", "q1", "median", "q3", "p99",
                     "mean", "notch (95% CI of median)"});
    for (const SweepCell& cell : cells) {
      NotchedBoxStats box = ComputeBoxStats(cell.result.influence);
      table.AddRow({FormatPowerOfTwo(cell.sample_number),
                    FormatDouble(box.p1, 2), FormatDouble(box.q1, 2),
                    FormatDouble(box.median, 2), FormatDouble(box.q3, 2),
                    FormatDouble(box.p99, 2), FormatDouble(box.mean, 2),
                    "[" + FormatDouble(box.notch_low, 2) + ", " +
                        FormatDouble(box.notch_high, 2) + "]"});
      csv.Row()
          .Str(ApproachName(approach))
          .UInt(cell.sample_number)
          .Real(box.mean, 4)
          .Real(box.median, 4)
          .Real(box.q1, 4)
          .Real(box.q3, 4)
          .Real(box.p1, 4)
          .Real(box.p99, 4)
          .Real(box.notch_low, 4)
          .Real(box.notch_high, 4)
          .Done();
    }
    PrintTable("Figure 4 panel: " + ApproachName(approach) +
                   " on Physicians (uc0.1, k=" + std::to_string(k) + ")",
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
