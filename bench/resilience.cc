// Resilient-serving bench: the same deterministic point-query workload
// is served through a persisting QueryService under injected IO-fault
// storms of rate 0, 1% and 10%, recording per-rate p50/p99 query
// latency, view-acquisition time, retry/degraded counters and the
// degraded-answer rate of a tight-deadline probe — into
// BENCH_resilience.json (ISSUE 9's resilience subsystem, measured).
//
// Refusal discipline: every NON-degraded view's answers are CHECKed
// byte-identical to the fault-free reference — faults may slow a
// request or degrade it to a smaller τ, but a served full-τ answer must
// never differ from the clean run. Degraded probe views are CHECKed to
// report served_tau <= requested (their byte-identity to direct smaller
// builds is pinned by tests/query_service_test.cc).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "bench_common.h"
#include "random/splitmix64.h"
#include "serve/query_service.h"
#include "store/fault_injection.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct Query {
  std::vector<VertexId> seeds;
  VertexId gain_vertex = 0;
  bool is_gain = false;
};

/// Deterministic mixed point-query workload (same shape as
/// bench/arena_store.cc): single-vertex spread, 4-seed spread, 3-seed
/// marginal gain.
std::vector<Query> MakeWorkload(std::uint64_t count, VertexId n,
                                std::uint64_t seed) {
  SplitMix64 rng(DeriveSeed(seed, 0x57a7e));
  auto vertex = [&] { return static_cast<VertexId>(rng.Next() % n); };
  std::vector<Query> queries(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Query& q = queries[i];
    switch (i % 3) {
      case 0:
        q.seeds = {vertex()};
        break;
      case 1:
        q.seeds = {vertex(), vertex(), vertex(), vertex()};
        break;
      default:
        q.is_gain = true;
        q.seeds = {vertex(), vertex(), vertex()};
        q.gain_vertex = vertex();
        break;
    }
  }
  return queries;
}

struct RateRecord {
  double rate = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double view_ms_mean = 0.0;   ///< full-τ view acquisition, per round
  std::uint64_t probe_views = 0;
  std::uint64_t probe_degraded = 0;
  std::uint64_t retries = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t injected_errors = 0;
};

int Run(int argc, const char* const* argv) {
  ArgParser args(
      "bench_resilience",
      "Serve one deterministic point-query workload through a persisting "
      "QueryService under injected IO-error storms (rates 0 / 1% / 10%), "
      "recording p50/p99 latency, retries and the degraded-answer rate "
      "of a tight-deadline probe; emits BENCH_resilience.json. Every "
      "non-degraded view's answers are CHECKed byte-identical to the "
      "fault-free reference.");
  AddExperimentFlags(&args);
  args.AddString("network", "Karate", "network to sample");
  args.AddString("prob", "uc0.1", "probability setting (uc0.1|owc|iwc|tri)");
  args.AddInt64("tau", 4096, "RR sets behind the served view");
  args.AddInt64("queries", 6000, "point queries per fault rate");
  args.AddInt64("rounds", 3,
                "service incarnations per rate: round 1 samples and "
                "saves, later rounds reload through the faulted IO path");
  args.AddInt64("probe-deadline-ms", 1,
                "deadline for the degraded-answer probe at 16x tau");
  args.AddString("store-dir", "/tmp/soldist-bench-resilience",
                 "scratch root for the persisted arenas (one subdir per "
                 "fault rate)");
  args.AddString("json-out", "BENCH_resilience.json",
                 "write the JSON record here (empty = stdout only)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "bench_resilience");
  StatusOr<ProbabilityModel> prob =
      ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  const auto tau = static_cast<std::uint64_t>(args.GetInt64("tau"));
  const auto num_queries =
      static_cast<std::uint64_t>(args.GetInt64("queries"));
  const auto rounds = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, args.GetInt64("rounds")));
  if (num_queries < rounds) {
    return ExitWithError(Status::InvalidArgument(
        "--queries must be >= --rounds (each round needs at least one "
        "point query)"));
  }
  const auto probe_deadline_ms =
      static_cast<std::uint64_t>(args.GetInt64("probe-deadline-ms"));
  const std::string store_dir = args.GetString("store-dir");
  const std::string network = args.GetString("network");

  PrintBanner("Resilient serving under injected IO-fault storms", options);
  const api::WorkloadSpec workload =
      api::WorkloadSpec::Dataset(network).Probability(prob.value());

  const double kRates[] = {0.0, 0.01, 0.1};
  std::vector<RateRecord> records;
  // Per-query answers of the first fault-free view: the byte-identity
  // reference every later NON-degraded view must reproduce exactly.
  std::vector<double> reference;
  std::vector<Query> queries;

  for (const double rate : kRates) {
    if (rate > 0.0) {
      Status installed = store::InstallFaultInjector(
          "error-rate=" + FormatDouble(rate, 4) + ",seed=7");
      if (!installed.ok()) return ExitWithError(installed);
    } else {
      store::UninstallFaultInjector();
    }
    const std::string rate_dir =
        store_dir + "/rate_" + FormatDouble(rate, 4);
    std::filesystem::remove_all(rate_dir);

    RateRecord record;
    record.rate = rate;
    std::vector<std::uint64_t> latency_ns;
    latency_ns.reserve(num_queries);
    double view_ms_total = 0.0;
    const std::uint64_t per_round = num_queries / rounds;

    for (std::uint64_t round = 0; round < rounds; ++round) {
      api::SessionOptions session_options;
      session_options.arena_dir = rate_dir;
      api::Session session(session_options);
      serve::QueryService service(&session);

      serve::QuerySpec spec;
      spec.sample_number = tau;
      spec.seed = options.seed;
      WallTimer view_timer;
      StatusOr<serve::QueryView> view = service.View(workload, spec);
      if (!view.ok()) return ExitWithError(view.status());
      view_ms_total += view_timer.Seconds() * 1000.0;
      // No deadline on the main view: faults may slow it (retries) but
      // can never truncate it, so it must be full τ.
      SOLDIST_CHECK(!view.value().degraded())
          << "undeadlined view degraded at rate " << rate;

      if (queries.empty()) {
        queries = MakeWorkload(num_queries,
                               view.value().num_vertices(), options.seed);
      }
      serve::QueryScratch scratch;
      std::vector<double> answers;
      answers.reserve(per_round);
      const std::uint64_t begin = round * per_round;
      for (std::uint64_t i = begin; i < begin + per_round; ++i) {
        const Query& q = queries[i];
        const auto start = std::chrono::steady_clock::now();
        const double answer =
            q.is_gain
                ? view.value().MarginalGain(q.seeds, q.gain_vertex, &scratch)
                : view.value().Spread(q.seeds, &scratch);
        latency_ns.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        answers.push_back(answer);
      }
      if (reference.size() < begin + per_round) {
        // Fault-free first pass over this query range: record it.
        reference.insert(reference.end(), answers.begin(), answers.end());
      } else {
        SOLDIST_CHECK(std::equal(answers.begin(), answers.end(),
                                 reference.begin() + begin))
            << "non-degraded answers differ from the fault-free "
               "reference at rate "
            << rate << " round " << round << " — refusing to record";
      }

      // Tight-deadline probe at 16x tau: the build is cancelled at the
      // deadline and the view degrades to the completed prefix (or, on
      // a fast round, completes — both legal; only the contract is
      // checked).
      serve::QuerySpec probe = spec;
      probe.sample_number = tau * 16;
      probe.deadline_ms = probe_deadline_ms;
      StatusOr<serve::QueryView> probed = service.View(workload, probe);
      if (!probed.ok()) return ExitWithError(probed.status());
      ++record.probe_views;
      SOLDIST_CHECK(probed.value().served_tau() <= probe.sample_number);
      if (probed.value().degraded()) ++record.probe_degraded;

      const serve::ResilienceStats stats = service.resilience_stats();
      record.retries += stats.retries;
      record.deadline_misses += stats.deadline_misses;
    }

    std::sort(latency_ns.begin(), latency_ns.end());
    record.p50_us =
        static_cast<double>(latency_ns[latency_ns.size() / 2]) / 1000.0;
    record.p99_us =
        static_cast<double>(latency_ns[latency_ns.size() * 99 / 100]) /
        1000.0;
    record.view_ms_mean = view_ms_total / static_cast<double>(rounds);
    if (store::FaultInjector* injector = store::fault_injector()) {
      record.injected_errors = injector->counters().injected_errors;
    }
    records.push_back(record);
  }
  store::UninstallFaultInjector();

  TextTable table({"fault rate", "p50 us", "p99 us", "view ms",
                   "retries", "probe degraded", "injected errors"});
  std::string rates_json;
  for (const RateRecord& record : records) {
    table.AddRow({FormatDouble(record.rate, 2),
                  FormatDouble(record.p50_us, 2),
                  FormatDouble(record.p99_us, 2),
                  FormatDouble(record.view_ms_mean, 2),
                  std::to_string(record.retries),
                  std::to_string(record.probe_degraded) + "/" +
                      std::to_string(record.probe_views),
                  std::to_string(record.injected_errors)});
    JsonObject entry;
    entry.Real("rate", record.rate)
        .Real("p50_us", record.p50_us)
        .Real("p99_us", record.p99_us)
        .Real("view_ms_mean", record.view_ms_mean)
        .UInt("retries", record.retries)
        .UInt("deadline_misses", record.deadline_misses)
        .UInt("probe_views", record.probe_views)
        .UInt("probe_degraded", record.probe_degraded)
        .Real("probe_degraded_rate",
              static_cast<double>(record.probe_degraded) /
                  static_cast<double>(record.probe_views))
        .UInt("injected_errors", record.injected_errors)
        .Bool("non_degraded_identical_to_fault_free", true);
    if (!rates_json.empty()) rates_json += ",";
    rates_json += entry.ToString();
  }
  PrintTable("resilient serving under IO-error storms (" +
                 WithThousands(num_queries) + " point queries per rate; "
                 "non-degraded answers CHECKed identical to fault-free)",
             table);

  JsonObject summary;
  summary.Str("bench", "resilience")
      .Str("network", network)
      .Str("prob", ProbabilityModelName(prob.value()))
      .UInt("seed", options.seed)
      .UInt("tau", tau)
      .UInt("queries", num_queries)
      .UInt("rounds", rounds)
      .UInt("probe_deadline_ms", probe_deadline_ms)
      .UInt("peak_rss_kb", PeakRssKb())
      .Raw("rates", "[" + rates_json + "]");
  const std::string json = summary.ToString();
  std::printf("%s\n", json.c_str());
  const std::string json_out = args.GetString("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      return ExitWithError(
          Status::Internal("cannot write --json-out " + json_out));
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
