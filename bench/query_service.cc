// Concurrent query-service stress bench: hammers one immutable QueryView
// with a deterministic mixed point-query workload (single-vertex spread,
// small-set spread, marginal gain) from 1/2/4/8 threads and records
// per-query p50/p99 latency and queries/sec into BENCH_query.json — the
// ROADMAP's "microsecond point queries" serving claim, measured.
//
// The refusal discipline of the other recorded benches applies: every
// multi-threaded run's per-query results are compared against the
// single-threaded reference and the bench CHECK-aborts on any mismatch,
// so the artifact can never show throughput bought by racing answers.
// Near-linear scaling is only expected when the host actually has the
// cores — hardware_concurrency is recorded alongside so a 1-CPU
// container's flat curve reads as what it is.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "random/splitmix64.h"
#include "serve/query_service.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

/// One point query: spread of `seeds`, or marginal gain of `vertex`
/// given `seeds`.
struct Query {
  enum class Kind { kSpread, kGain };
  Kind kind = Kind::kSpread;
  std::vector<VertexId> seeds;
  VertexId vertex = 0;
};

double RunQuery(const serve::QueryView& view, const Query& query,
                serve::QueryScratch* scratch) {
  return query.kind == Query::Kind::kSpread
             ? view.Spread(query.seeds, scratch)
             : view.MarginalGain(query.seeds, query.vertex, scratch);
}

/// The deterministic mixed workload: rotates single-vertex spread (the
/// O(log capacity) fast path), 4-seed spread, marginal gain against a
/// 3-seed base, and 8-seed spread.
std::vector<Query> MakeWorkload(std::uint64_t count, VertexId n,
                                std::uint64_t seed) {
  SplitMix64 rng(DeriveSeed(seed, 0xbe9c));
  auto vertex = [&] { return static_cast<VertexId>(rng.Next() % n); };
  std::vector<Query> queries(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Query& q = queries[i];
    switch (i % 4) {
      case 0:
        q.seeds = {vertex()};
        break;
      case 1:
        q.seeds = {vertex(), vertex(), vertex(), vertex()};
        break;
      case 2:
        q.kind = Query::Kind::kGain;
        q.seeds = {vertex(), vertex(), vertex()};
        q.vertex = vertex();
        break;
      default:
        q.seeds.resize(8);
        for (VertexId& v : q.seeds) v = vertex();
        break;
    }
  }
  return queries;
}

struct RunRecord {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

int Run(int argc, const char* const* argv) {
  ArgParser args("bench_query_service",
                 "Concurrent point-query stress test of the serve/ "
                 "QueryView (spread + marginal gain) at several thread "
                 "counts; emits BENCH_query.json. Multi-threaded results "
                 "are CHECKed identical to the single-threaded "
                 "reference.");
  AddExperimentFlags(&args);
  args.AddString("network", "Physicians", "network to serve");
  args.AddString("prob", "iwc", "probability setting (uc0.1|owc|iwc|tri)");
  args.AddInt64("tau", 65536, "RR sets behind the view (2^16 default)");
  args.AddInt64("queries", 200000, "point queries per thread-count run");
  args.AddString("threads-list", "1,2,4,8",
                 "comma-separated querying thread counts; the first is "
                 "the identity reference (keep it 1)");
  args.AddInt64("topk", 10, "k for the one timed TopK call (0 = skip)");
  args.AddString("json-out", "BENCH_query.json",
                 "write the JSON record here (empty = stdout only)");
  args.AddString("check-qps", "",
                 "fail (exit 1) unless single-threaded queries/sec is at "
                 "least this (e.g. 1e5)");
  args.AddString("check-p99-us", "",
                 "fail (exit 1) if single-threaded p99 latency exceeds "
                 "this many microseconds");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  StatusOr<ProbabilityModel> prob =
      ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  double check_qps = 0.0, check_p99_us = 0.0;
  if (!args.GetString("check-qps").empty() &&
      !ParseDouble(args.GetString("check-qps"), &check_qps)) {
    return ExitWithError(Status::InvalidArgument(
        "bad --check-qps value: '" + args.GetString("check-qps") + "'"));
  }
  if (!args.GetString("check-p99-us").empty() &&
      !ParseDouble(args.GetString("check-p99-us"), &check_p99_us)) {
    return ExitWithError(Status::InvalidArgument(
        "bad --check-p99-us value: '" + args.GetString("check-p99-us") +
        "'"));
  }
  const auto tau = static_cast<std::uint64_t>(args.GetInt64("tau"));
  const auto num_queries =
      static_cast<std::uint64_t>(args.GetInt64("queries"));
  const int topk = static_cast<int>(args.GetInt64("topk"));
  std::vector<int> thread_counts;
  for (const std::string& field :
       Split(args.GetString("threads-list"), ',')) {
    std::int64_t value = 0;
    if (!ParseInt64(std::string(Trim(field)), &value) || value < 1) {
      return ExitWithError(Status::InvalidArgument(
          "bad --threads-list entry: '" + std::string(Trim(field)) + "'"));
    }
    thread_counts.push_back(static_cast<int>(value));
  }
  if (thread_counts.empty() || num_queries == 0) {
    return ExitWithError(Status::InvalidArgument(
        "--threads-list and --queries must be non-empty"));
  }

  PrintBanner("Query service: concurrent spread/gain point queries over "
              "one immutable word-packed arena",
              options);

  ExperimentContext context(options);
  serve::QueryService service(context.session());
  api::WorkloadSpec workload =
      context.Workload(args.GetString("network"), prob.value());
  serve::QuerySpec spec;
  spec.sample_number = tau;
  spec.seed = options.seed;
  spec.sample_threads = options.sample_threads;
  spec.chunk_size = static_cast<std::uint64_t>(options.chunk_size);

  WallTimer build_timer;
  StatusOr<serve::QueryView> view_or = service.View(workload, spec);
  if (!view_or.ok()) return ExitWithError(view_or.status());
  const double arena_build_seconds = build_timer.Seconds();
  const serve::QueryView view = view_or.value();
  const VertexId n = view.num_vertices();
  std::printf("# arena: n=%u tau=%llu bytes=%llu build=%.3fs\n", n,
              static_cast<unsigned long long>(tau),
              static_cast<unsigned long long>(view.arena().MemoryBytes()),
              arena_build_seconds);

  const std::vector<Query> queries =
      MakeWorkload(num_queries, n, options.seed);

  std::vector<double> reference;  // run 0's per-query results
  std::vector<RunRecord> records;
  std::string runs_json;
  TextTable table({"threads", "qps", "p50 µs", "p99 µs", "seconds"});
  for (int threads : thread_counts) {
    std::vector<double> results(num_queries);
    std::vector<std::uint64_t> latency_ns(num_queries);
    auto worker = [&](std::uint64_t begin, std::uint64_t end) {
      serve::QueryScratch scratch;
      for (std::uint64_t q = begin; q < end; ++q) {
        const auto start = std::chrono::steady_clock::now();
        results[q] = RunQuery(view, queries[q], &scratch);
        latency_ns[q] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    };
    WallTimer wall;
    if (threads == 1) {
      worker(0, num_queries);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(threads));
      const std::uint64_t per_thread =
          (num_queries + threads - 1) / static_cast<std::uint64_t>(threads);
      for (int t = 0; t < threads; ++t) {
        const std::uint64_t begin = per_thread * static_cast<std::uint64_t>(t);
        const std::uint64_t end = std::min(num_queries, begin + per_thread);
        if (begin >= end) break;
        workers.emplace_back(worker, begin, end);
      }
      for (std::thread& w : workers) w.join();
    }
    const double seconds = wall.Seconds();

    if (reference.empty()) {
      reference = results;
    } else {
      // Refusal discipline: no recorded throughput may come from racing
      // answers. Results are pure integer counts scaled by constants, so
      // equality is exact.
      SOLDIST_CHECK(results == reference)
          << "threads=" << threads
          << ": concurrent query results differ from the single-threaded "
             "reference — refusing to record";
    }

    std::vector<std::uint64_t> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    RunRecord record;
    record.threads = threads;
    record.seconds = seconds;
    record.qps = static_cast<double>(num_queries) / seconds;
    record.p50_us =
        static_cast<double>(sorted[sorted.size() / 2]) / 1000.0;
    record.p99_us =
        static_cast<double>(sorted[sorted.size() * 99 / 100]) / 1000.0;
    records.push_back(record);
    table.AddRow({std::to_string(threads),
                  WithThousands(static_cast<std::uint64_t>(record.qps)),
                  FormatDouble(record.p50_us, 2),
                  FormatDouble(record.p99_us, 2),
                  FormatDouble(record.seconds, 3)});
    JsonObject run;
    run.Int("threads", threads)
        .Real("seconds", record.seconds)
        .Real("qps", record.qps)
        .Real("p50_us", record.p50_us)
        .Real("p99_us", record.p99_us)
        .Bool("identical_to_reference", true);
    if (!runs_json.empty()) runs_json += ",";
    runs_json += run.ToString();
  }
  PrintTable(
      "mixed point queries (" + WithThousands(num_queries) +
          " per run: 1/4/8-seed spread + 3-seed marginal gain), answers "
          "identical across thread counts (CHECKed)",
      table);

  double topk_seconds = 0.0;
  std::vector<VertexId> topk_seeds;
  if (topk > 0) {
    WallTimer topk_timer;
    serve::TopKResult result = view.TopK(topk);
    topk_seconds = topk_timer.Seconds();
    topk_seeds = result.seeds;
    std::printf("# topk k=%d covered=%llu spread=%.2f in %.3fs\n", topk,
                static_cast<unsigned long long>(result.covered),
                result.spread, topk_seconds);
  }

  const RunRecord& single = records.front();
  JsonObject summary;
  summary.Str("bench", "query_service")
      .Str("network", args.GetString("network"))
      .Str("prob", ProbabilityModelName(prob.value()))
      .Str("model", DiffusionModelName(options.model))
      .UInt("seed", options.seed)
      .UInt("tau", tau)
      .UInt("n", n)
      .UInt("queries", num_queries)
      .UInt("arena_bytes", view.arena().MemoryBytes())
      .Real("arena_build_seconds", arena_build_seconds)
      .UInt("hardware_concurrency", std::thread::hardware_concurrency())
      .Real("qps_single_thread", single.qps)
      .Real("p99_us_single_thread", single.p99_us)
      .Int("topk_k", topk)
      .Real("topk_seconds", topk_seconds)
      .UIntArray("topk_seeds", topk_seeds)
      .UInt("peak_rss_kb", PeakRssKb())
      .Raw("runs", "[" + runs_json + "]");
  const std::string json = summary.ToString();
  std::printf("%s\n", json.c_str());
  const std::string json_out = args.GetString("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      return ExitWithError(
          Status::Internal("cannot write --json-out " + json_out));
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (check_qps > 0.0 && single.qps < check_qps) {
    std::fprintf(stderr,
                 "FAIL: single-threaded throughput %.0f qps is below the "
                 "required %.0f\n",
                 single.qps, check_qps);
    return 1;
  }
  if (check_p99_us > 0.0 && single.p99_us > check_p99_us) {
    std::fprintf(stderr,
                 "FAIL: single-threaded p99 latency %.2f µs exceeds the "
                 "allowed %.2f\n",
                 single.p99_us, check_p99_us);
    return 1;
  }
  if (check_qps > 0.0 || check_p99_us > 0.0) {
    std::fprintf(stderr, "latency gates passed: %.0f qps, p99 %.2f µs\n",
                 single.qps, single.p99_us);
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
