// Figure 6 (paper Section 5.2.3): the mean of the influence distribution
// is a sufficient quality measure — for a fixed instance, the relation
// between the mean and the standard deviation (6a) and between the mean
// and the 1st percentile (6b) is nearly independent of which approach
// produced the distribution. This justifies comparing approaches by mean
// alone (the comparable-ratio analysis of Tables 6-7).

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct Figure6Instance {
  ProbabilityModel prob;
  int k;
};

int Run(int argc, const char* const* argv) {
  ArgParser args("figure6_mean_vs_stats",
                 "Reproduces paper Figure 6: mean vs SD / 1st percentile "
                 "of influence distributions on Physicians.");
  AddExperimentFlags(&args);
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure6_mean_vs_stats");
  if (!args.Provided("trials")) options.trials = 60;
  PrintBanner("Figure 6: mean value vs other statistics", options);

  ExperimentContext context(options);
  CsvWriter csv({"instance", "approach", "sample_number", "mean", "sd",
                 "p1"});

  // Solid lines: Physicians (owc, k=4); dashed: Physicians (uc0.1, k=16).
  for (const Figure6Instance& inst :
       {Figure6Instance{ProbabilityModel::kOwc, 4},
        Figure6Instance{ProbabilityModel::kUc01, 16}}) {
    const InfluenceGraph& ig = context.Instance("Physicians", inst.prob);
    const RrOracle& oracle = context.Oracle("Physicians", inst.prob);
    GridCaps caps = ScaledGridCaps("Physicians", options.full);
    std::string label = "Physicians (" + ProbabilityModelName(inst.prob) +
                        ", k=" + std::to_string(inst.k) + ")";

    TextTable table({"approach", "sample number", "mean", "SD",
                     "1st percentile"});
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      SweepConfig config;
      config.sampling = context.sampling();
      config.reuse = options.sweep_reuse;
      config.approach = approach;
      config.k = inst.k;
      config.trials = context.TrialsFor("Physicians");
      config.master_seed = options.seed + inst.k;
      config.max_exponent =
          TrimExpForK(caps.MaxExp(approach), inst.k, approach);
      WallTimer timer;
      auto cells = RunSweep(ig, oracle, config, context.pool());
      SOLDIST_LOG(Info) << label << " " << ApproachName(approach) << " in "
                        << timer.HumanElapsed();
      for (const SweepCell& cell : cells) {
        const InfluenceDistribution& dist = cell.result.influence;
        table.AddRow({ApproachName(approach),
                      FormatPowerOfTwo(cell.sample_number),
                      FormatDouble(dist.Mean(), 3),
                      FormatDouble(dist.StdDev(), 4),
                      FormatDouble(dist.Percentile(1.0), 3)});
        csv.Row()
            .Str(label)
            .Str(ApproachName(approach))
            .UInt(cell.sample_number)
            .Real(dist.Mean(), 4)
            .Real(dist.StdDev(), 5)
            .Real(dist.Percentile(1.0), 4)
            .Done();
      }
    }
    PrintTable("Figure 6 series: " + label +
                   " — (mean, SD, p1) triples; the mean→SD and mean→p1 "
                   "mappings should coincide across approaches",
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
