// Figure 5 (paper Section 5.2.2): contrasting convergence of RIS on
// ca-GrQc (k=1). On uc0.1 a giant component exists in the live-edge graph
// (core-whisker structure): the mean starts below 20% of the maximum but
// converges quickly once core vertices are identifiable. On owc every
// vertex has one expected live out-edge: the start is better than half of
// the maximum but improvement is slow (many near-tied vertices).

#include "bench_common.h"
#include "stats/box_stats.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("figure5_ris_grqc",
                 "Reproduces paper Figure 5: RIS influence distributions "
                 "on ca-GrQc (uc0.1 vs owc, k=1).");
  AddExperimentFlags(&args);
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "figure5_ris_grqc");
  if (!args.Provided("trials")) options.trials = 100;
  PrintBanner("Figure 5: RIS on ca-GrQc — quick vs slow convergence",
              options);

  ExperimentContext context(options);
  GridCaps caps = ScaledGridCaps("ca-GrQc", options.full);
  CsvWriter csv({"setting", "sample_number", "p1", "median", "p99", "mean"});

  for (ProbabilityModel model :
       {ProbabilityModel::kUc01, ProbabilityModel::kOwc}) {
    const InfluenceGraph& ig = context.Instance("ca-GrQc", model);
    const RrOracle& oracle = context.Oracle("ca-GrQc", model);
    SweepConfig config;
    config.sampling = context.sampling();
    config.reuse = options.sweep_reuse;
    config.approach = Approach::kRis;
    config.k = 1;
    config.trials = context.TrialsFor("ca-GrQc");
    config.master_seed = options.seed;
    config.max_exponent = caps.ris_max_exp;
    WallTimer timer;
    auto cells = RunSweep(ig, oracle, config, context.pool());
    SOLDIST_LOG(Info) << "ca-GrQc " << ProbabilityModelName(model)
                      << " sweep in " << timer.HumanElapsed();

    TextTable table({"sample number θ", "p1", "median", "p99", "mean"});
    for (const SweepCell& cell : cells) {
      NotchedBoxStats box = ComputeBoxStats(cell.result.influence);
      table.AddRow({FormatPowerOfTwo(cell.sample_number),
                    FormatDouble(box.p1, 3), FormatDouble(box.median, 3),
                    FormatDouble(box.p99, 3), FormatDouble(box.mean, 3)});
      csv.Row()
          .Str(ProbabilityModelName(model))
          .UInt(cell.sample_number)
          .Real(box.p1, 4)
          .Real(box.median, 4)
          .Real(box.p99, 4)
          .Real(box.mean, 4)
          .Done();
    }
    std::string expectation = model == ProbabilityModel::kUc01
                                  ? "quick convergence (giant component)"
                                  : "slow improvement (near-tied vertices)";
    PrintTable("Figure 5 panel: ca-GrQc (" + ProbabilityModelName(model) +
                   ", k=1) — " + expectation,
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
