// Ablation benchmarks (google-benchmark) for the two implementation
// techniques DESIGN.md calls out:
//  1. Snapshot residual-graph reduction (Section 3.4.3) vs the naive
//     BFS-from-S estimate — identical estimates, very different cost as
//     k grows;
//  2. CELF lazy greedy vs the plain Estimate-sweep framework on RIS.

#include <benchmark/benchmark.h>

#include "core/celf.h"
#include "core/greedy.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"

namespace soldist {
namespace {

const InfluenceGraph& PhysiciansIg() {
  static const InfluenceGraph* ig = new InfluenceGraph(MakeInfluenceGraph(
      GraphBuilder::FromEdgeList(Datasets::Physicians(42)),
      ProbabilityModel::kUc01));
  return *ig;
}

void BM_SnapshotGreedy(benchmark::State& state, SnapshotEstimator::Mode mode) {
  const InfluenceGraph& ig = PhysiciansIg();
  const int k = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_edges = 0;
  for (auto _ : state) {
    SnapshotEstimator estimator(&ig, 64, ++seed, mode);
    Rng tie_rng(seed);
    auto result = RunGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
    benchmark::DoNotOptimize(result.seeds.data());
    total_edges += estimator.counters().edges;
  }
  state.counters["edge_traversals"] = benchmark::Counter(
      static_cast<double>(total_edges), benchmark::Counter::kAvgIterations);
}

void BM_SnapshotGreedyNaive(benchmark::State& state) {
  BM_SnapshotGreedy(state, SnapshotEstimator::Mode::kNaive);
}
BENCHMARK(BM_SnapshotGreedyNaive)->Arg(1)->Arg(4)->Arg(16);

void BM_SnapshotGreedyResidual(benchmark::State& state) {
  BM_SnapshotGreedy(state, SnapshotEstimator::Mode::kResidual);
}
BENCHMARK(BM_SnapshotGreedyResidual)->Arg(1)->Arg(4)->Arg(16);

void BM_SnapshotGreedyCondensed(benchmark::State& state) {
  BM_SnapshotGreedy(state, SnapshotEstimator::Mode::kCondensed);
}
BENCHMARK(BM_SnapshotGreedyCondensed)->Arg(1)->Arg(4)->Arg(16);

void BM_RisGreedyPlain(benchmark::State& state) {
  const InfluenceGraph& ig = PhysiciansIg();
  const int k = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RisEstimator estimator(&ig, 4096, ++seed);
    Rng tie_rng(seed);
    auto result = RunGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
    benchmark::DoNotOptimize(result.seeds.data());
  }
}
BENCHMARK(BM_RisGreedyPlain)->Arg(4)->Arg(16);

void BM_RisGreedyCelf(benchmark::State& state) {
  const InfluenceGraph& ig = PhysiciansIg();
  const int k = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_calls = 0;
  for (auto _ : state) {
    RisEstimator estimator(&ig, 4096, ++seed);
    Rng tie_rng(seed);
    auto result = RunCelfGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
    benchmark::DoNotOptimize(result.greedy.seeds.data());
    total_calls += result.estimate_calls;
  }
  state.counters["estimate_calls"] = benchmark::Counter(
      static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RisGreedyCelf)->Arg(4)->Arg(16);

}  // namespace
}  // namespace soldist
