// The sweep-reuse shoot-out (the prefix-arena perf claim, recorded): runs
// the SAME sample-number ladder — same prefix-closed streams, same
// trials, same oracle — once with --sweep-reuse off (fresh sampling +
// index per cell, the pre-arena cost profile) and once with on (one
// arena per trial, every cell a prefix view), and records per-cell
// seconds, arena bytes, and sampling-work saved as machine-readable JSON
// (BENCH_sweep.json). The fig* configs ladder RIS over an RrArena; the
// snap-* configs ladder the condensed Snapshot approach over a
// SnapshotArena of SCC-condensed sampled worlds. Byte-identical seed
// sets across the two runs are CHECKed cell by cell before anything is
// recorded, so the artifact can never show a speedup obtained by
// changing the answer.
//
// Ladder shape: the paper's sweeps are powers of two, for which
// Σ τ ≈ 2·τ_max caps the reuse win at 2x by arithmetic alone. Reuse's
// real payoff is that DENSER ladders stop costing more sampling: with
// --half-steps (default on, the Table-5 least-sufficient-sample-number
// resolution) the ladder carries √2-spaced intermediate points,
// Σ τ ≈ 3.4·τ_max, and the arena still pays τ_max once. The recorded
// configurations are the Figure 2 / Figure 5 instances on their
// half-stepped RIS grids.
//
// CI runs this scaled down and fails when reuse-on stops beating
// reuse-off (--check-speedup 1.0).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/rr_arena.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct SweepInstance {
  std::string name;      // figure tag
  std::string network;
  ProbabilityModel prob;
  int k;
  /// kRis ladders reuse an RrArena; kSnapshot ladders (forced to
  /// Mode::kCondensed) reuse a SnapshotArena of condensed worlds.
  Approach approach = Approach::kRis;
};

struct CellRecord {
  std::uint64_t tau = 0;
  double seconds_on = 0.0;
  double seconds_off = 0.0;
  TraversalCounters counters;  // identical on/off (CHECKed)
};

int Run(int argc, const char* const* argv) {
  ArgParser args("bench_sweep_reuse",
                 "Wall-clock comparison of a RIS sample-number ladder "
                 "with --sweep-reuse on (per-trial RR arena, prefix "
                 "views) vs off (fresh per-cell sampling); emits "
                 "BENCH_sweep.json.");
  AddExperimentFlags(&args);
  args.AddString("configs", "fig2-karate,fig2-physicians,fig5-uc,fig5-owc",
                 "comma-separated instances: fig2-karate (Karate iwc "
                 "k=4), fig2-physicians (Physicians iwc k=1), fig5-uc "
                 "(ca-GrQc uc0.1 k=1), fig5-owc (ca-GrQc owc k=1), "
                 "snap-karate (Karate iwc k=4, condensed Snapshot "
                 "ladder), snap-physicians (Physicians iwc k=1, "
                 "condensed Snapshot ladder)");
  args.AddInt64("min-exp", 0, "smallest ladder exponent");
  args.AddInt64("max-exp", -1,
                "largest ladder exponent (-1 = the network's RIS grid "
                "cap, ScaledGridCaps)");
  args.AddBool("half-steps", true,
               "interleave √2-spaced sample numbers between the powers "
               "of two (denser ladder, same arena cost)");
  args.AddString("json-out", "BENCH_sweep.json",
                 "write the JSON record here (empty = stdout only)");
  args.AddString("check-speedup", "",
                 "fail (exit 1) unless the overall on-vs-off speedup is "
                 "at least this (e.g. 1.0, 2.5)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "bench_sweep_reuse");
  if (!args.Provided("trials")) options.trials = 40;
  double check_speedup = 0.0;
  if (!args.GetString("check-speedup").empty() &&
      !ParseDouble(args.GetString("check-speedup"), &check_speedup)) {
    return ExitWithError(Status::InvalidArgument(
        "bad --check-speedup value: '" + args.GetString("check-speedup") +
        "'"));
  }
  const bool half_steps = args.GetBool("half-steps");
  const int min_exp = static_cast<int>(args.GetInt64("min-exp"));

  std::vector<SweepInstance> catalog = {
      {"fig2-karate", "Karate", ProbabilityModel::kIwc, 4},
      {"fig2-physicians", "Physicians", ProbabilityModel::kIwc, 1},
      {"fig5-uc", "ca-GrQc", ProbabilityModel::kUc01, 1},
      {"fig5-owc", "ca-GrQc", ProbabilityModel::kOwc, 1},
      {"snap-karate", "Karate", ProbabilityModel::kIwc, 4,
       Approach::kSnapshot},
      {"snap-physicians", "Physicians", ProbabilityModel::kIwc, 1,
       Approach::kSnapshot},
  };
  std::vector<SweepInstance> instances;
  for (const std::string& field : Split(args.GetString("configs"), ',')) {
    const std::string name(Trim(field));
    bool found = false;
    for (const SweepInstance& inst : catalog) {
      if (inst.name == name) {
        instances.push_back(inst);
        found = true;
      }
    }
    if (!found) {
      return ExitWithError(Status::InvalidArgument(
          "unknown --configs entry '" + name +
          "' (expected fig2-karate | fig2-physicians | fig5-uc | "
          "fig5-owc | snap-karate | snap-physicians)"));
    }
  }
  if (instances.empty()) {
    return ExitWithError(Status::InvalidArgument("--configs list is empty"));
  }

  PrintBanner("Sweep-reuse shoot-out: RIS ladder, arena prefix views vs "
              "fresh per-cell sampling",
              options);

  ExperimentContext context(options);
  double total_on = 0.0, total_off = 0.0;
  std::string config_json;
  std::uint64_t max_arena_bytes = 0;

  for (const SweepInstance& inst : instances) {
    const RrOracle& oracle = context.Oracle(inst.network, inst.prob);
    ModelInstance model = context.Model(inst.network, inst.prob);
    GridCaps caps = ScaledGridCaps(inst.network, options.full);
    int max_exp = static_cast<int>(args.GetInt64("max-exp"));
    if (max_exp < 0) max_exp = caps.MaxExp(inst.approach);
    if (max_exp < min_exp) max_exp = min_exp;

    TrialLadderConfig ladder;
    ladder.approach = inst.approach;
    // Snapshot ladders reuse through the condensed-world arena: force
    // the one mode with an arena form (sim/snapshot_arena.h).
    if (inst.approach == Approach::kSnapshot) {
      ladder.snapshot_mode = SnapshotEstimator::Mode::kCondensed;
    }
    for (int e = min_exp; e <= max_exp; ++e) {
      const std::uint64_t tau = 1ULL << e;
      if (ladder.sample_numbers.empty() ||
          tau > ladder.sample_numbers.back()) {
        ladder.sample_numbers.push_back(tau);
      }
      if (half_steps && e < max_exp) {
        const auto half = static_cast<std::uint64_t>(
            std::floor(std::sqrt(2.0) * static_cast<double>(tau)));
        if (half > ladder.sample_numbers.back() && half < 2 * tau) {
          ladder.sample_numbers.push_back(half);
        }
      }
    }
    ladder.k = inst.k;
    ladder.trials = context.TrialsFor(inst.network);
    ladder.master_seed = options.seed + inst.k;
    ladder.sampling = context.sampling();

    // off first, then on: a warm page cache can only help the BASELINE.
    ladder.reuse = false;
    WallTimer timer;
    std::vector<TrialResult> off = RunTrialLadder(model, ladder,
                                                  context.pool());
    for (TrialResult& cell : off) EvaluateInfluence(oracle, &cell);
    const double off_seconds = timer.Seconds();

    ladder.reuse = true;
    std::uint64_t arena_bytes = 0;  // trial 0's arena, reported below
    // The one-off arena builds are timed separately so no cell's figure
    // absorbs them (the τ_max cell used to, hiding its real serving
    // cost); they remain inside on_seconds / the overall speedup.
    double arena_build_seconds = 0.0;
    ladder.arena_bytes_out = &arena_bytes;
    ladder.arena_seconds_out = &arena_build_seconds;
    timer.Restart();
    std::vector<TrialResult> on = RunTrialLadder(model, ladder,
                                                 context.pool());
    for (TrialResult& cell : on) EvaluateInfluence(oracle, &cell);
    const double on_seconds = timer.Seconds();
    ladder.arena_bytes_out = nullptr;
    ladder.arena_seconds_out = nullptr;

    // The hard contract this bench rides on: reuse may only change cost,
    // never the selection (nor the per-cell cost attribution).
    SOLDIST_CHECK(on.size() == off.size());
    std::vector<CellRecord> cells(on.size());
    std::uint64_t sum_tau = 0;
    for (std::size_t l = 0; l < on.size(); ++l) {
      SOLDIST_CHECK(on[l].seed_sets == off[l].seed_sets)
          << inst.name << " cell " << l
          << ": reuse changed the seed sets — refusing to record a bogus "
             "speedup";
      SOLDIST_CHECK(on[l].total_counters.sample_vertices ==
                        off[l].total_counters.sample_vertices &&
                    on[l].total_counters.sample_edges ==
                        off[l].total_counters.sample_edges)
          << inst.name << " cell " << l << ": counter attribution differs";
      cells[l].tau = ladder.sample_numbers[l];
      cells[l].seconds_on = on[l].seconds;
      cells[l].seconds_off = off[l].seconds;
      cells[l].counters = on[l].total_counters;
      sum_tau += ladder.sample_numbers[l];
    }

    max_arena_bytes = std::max(max_arena_bytes, arena_bytes);

    const double speedup = on_seconds > 0.0 ? off_seconds / on_seconds : 0.0;
    total_on += on_seconds;
    total_off += off_seconds;
    const std::uint64_t tau_max = ladder.sample_numbers.back();

    TextTable table({"τ", "off s", "on s", "speedup"});
    std::string cells_json;
    for (const CellRecord& cell : cells) {
      table.AddRow({WithThousands(cell.tau),
                    FormatDouble(cell.seconds_off, 3),
                    FormatDouble(cell.seconds_on, 3),
                    FormatDouble(cell.seconds_on > 0.0
                                     ? cell.seconds_off / cell.seconds_on
                                     : 0.0,
                                 2) +
                        "x"});
      JsonObject cell_obj;
      cell_obj.UInt("tau", cell.tau)
          .Real("seconds_off", cell.seconds_off)
          .Real("seconds_on", cell.seconds_on)
          .UInt("sample_vertices", cell.counters.sample_vertices)
          .UInt("vertices_traversed", cell.counters.vertices)
          .UInt("edges_traversed", cell.counters.edges);
      if (!cells_json.empty()) cells_json += ",";
      cells_json += cell_obj.ToString();
    }
    PrintTable(inst.name + ": " + inst.network + " (" +
                   ProbabilityModelName(inst.prob) + ", k=" +
                   std::to_string(inst.k) + "), T=" +
                   std::to_string(ladder.trials) + ", ladder Στ=" +
                   WithThousands(sum_tau) + " vs arena τ=" +
                   WithThousands(tau_max) + " — " +
                   FormatDouble(speedup, 2) + "x (seeds identical CHECKed; "
                   "arena build " +
                   FormatDouble(arena_build_seconds, 3) + "s separate)",
               table);

    JsonObject obj;
    obj.Str("config", inst.name)
        .Str("network", inst.network)
        .Str("prob", ProbabilityModelName(inst.prob))
        .Str("approach", ApproachName(inst.approach))
        .Str("snapshot_mode", inst.approach == Approach::kSnapshot
                                  ? SnapshotModeName(ladder.snapshot_mode)
                                  : "")
        .Int("k", inst.k)
        .UInt("trials", ladder.trials)
        .UInt("tau_max", tau_max)
        .UInt("ladder_sum_tau", sum_tau)
        .UInt("sets_sampled_per_trial_off", sum_tau)
        .UInt("sets_sampled_per_trial_on", tau_max)
        .UInt("arena_bytes", arena_bytes)
        .Real("arena_build_seconds", arena_build_seconds)
        .Real("seconds_off", off_seconds)
        .Real("seconds_on", on_seconds)
        .Real("speedup", speedup)
        .Raw("cells", "[" + cells_json + "]");
    if (!config_json.empty()) config_json += ",";
    config_json += obj.ToString();
  }

  const double overall = total_on > 0.0 ? total_off / total_on : 0.0;
  JsonObject summary;
  summary.Str("bench", "sweep_reuse")
      .Str("model", DiffusionModelName(options.model))
      .UInt("seed", options.seed)
      .Int("sample_threads", options.sample_threads)
      .Int("min_exp", min_exp)
      .Bool("half_steps", half_steps)
      .Real("seconds_off_total", total_off)
      .Real("seconds_on_total", total_on)
      .Real("speedup_overall", overall)
      .UInt("max_arena_bytes", max_arena_bytes)
      .UInt("peak_rss_kb", PeakRssKb())
      .Raw("configs", "[" + config_json + "]");
  const std::string json = summary.ToString();
  std::printf("%s\n", json.c_str());
  const std::string json_out = args.GetString("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      return ExitWithError(
          Status::Internal("cannot write --json-out " + json_out));
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (check_speedup > 0.0) {
    if (overall < check_speedup) {
      std::fprintf(stderr,
                   "FAIL: sweep-reuse on/off speedup %.2fx is below the "
                   "required %.2fx\n",
                   overall, check_speedup);
      return 1;
    }
    std::fprintf(stderr, "speedup %.2fx >= required %.2fx\n", overall,
                 check_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
