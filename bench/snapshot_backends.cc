// Snapshot backend shoot-out (the condensed-DAG perf claim, recorded):
// runs the SAME Snapshot greedy — same sampler streams, same driver,
// same seeds out — under each reachability backend and records
// wall-clock seconds, traversal counters, estimator memory, and peak
// RSS as machine-readable JSON (BENCH_snapshot.json). Byte-identical
// seed sets across backends are CHECKed on every run, so the artifact
// can never record a speedup obtained by changing the answer.
//
// CI runs this on the bundled Physicians network and fails when the
// condensed backend stops beating residual (--check-speedup).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/celf.h"
#include "core/greedy.h"
#include "core/snapshot.h"
#include "random/splitmix64.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/string_util.h"

namespace soldist {
namespace {

struct ModeRecord {
  SnapshotEstimator::Mode mode;
  std::vector<double> seconds;     // per rep, driver total (build+select)
  double best_seconds = 0.0;
  double build_seconds = 0.0;      // dedicated Build-only instance
  std::uint64_t estimate_calls = 0;
  TraversalCounters counters;
  std::uint64_t estimator_bytes = 0;
  std::vector<VertexId> seeds;
};

int Run(int argc, const char* const* argv) {
  ArgParser args("bench_snapshot_backends",
                 "Wall-clock + traversal-cost comparison of the Snapshot "
                 "reachability backends (naive | residual | condensed) on "
                 "one instance; emits BENCH_snapshot.json.");
  AddExperimentFlags(&args);
  args.AddString("network", "Physicians", "network name (see gen/datasets)");
  args.AddString("prob", "iwc", "edge-probability setting");
  args.AddInt64("tau", 1 << 16,
                "snapshots per build (paper-scale Snapshot grid tops at "
                "2^16)");
  args.AddInt64("k", 4, "seed-set size");
  args.AddInt64("reps", 1, "timed repetitions per backend (best counts)");
  args.AddString("modes", "residual,condensed",
                 "comma-separated backends to time");
  args.AddString("driver", "celf",
                 "greedy driver: celf (lazy; condensed seeds the queue "
                 "with DAG-sketch bounds) | greedy (full sweeps)");
  args.AddString("json-out", "BENCH_snapshot.json",
                 "write the JSON record here (empty = stdout only)");
  args.AddString("check-speedup", "",
                 "fail (exit 1) unless condensed is at least this many "
                 "times faster than residual (e.g. 1.0, 3.0)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "bench_snapshot_backends");

  StatusOr<ProbabilityModel> prob =
      ParseProbabilityModel(args.GetString("prob"));
  if (!prob.ok()) return ExitWithError(prob.status());
  auto tau = static_cast<std::uint64_t>(args.GetInt64("tau"));
  const int k = static_cast<int>(args.GetInt64("k"));
  const auto reps =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.GetInt64("reps")));
  const std::string driver = args.GetString("driver");
  if (driver != "celf" && driver != "greedy") {
    return ExitWithError(Status::InvalidArgument(
        "--driver must be celf or greedy, got '" + driver + "'"));
  }
  double check_speedup = 0.0;
  if (!args.GetString("check-speedup").empty() &&
      !ParseDouble(args.GetString("check-speedup"), &check_speedup)) {
    return ExitWithError(Status::InvalidArgument(
        "bad --check-speedup value: '" + args.GetString("check-speedup") +
        "'"));
  }

  std::vector<SnapshotEstimator::Mode> modes;
  for (const std::string& field : Split(args.GetString("modes"), ',')) {
    StatusOr<SnapshotEstimator::Mode> mode =
        ParseSnapshotMode(std::string(Trim(field)));
    if (!mode.ok()) return ExitWithError(mode.status());
    modes.push_back(mode.value());
  }
  if (modes.empty()) {
    return ExitWithError(Status::InvalidArgument("--modes list is empty"));
  }

  PrintBanner("Snapshot backend shoot-out: " + args.GetString("network") +
                  " (" + ProbabilityModelName(prob.value()) + "), τ=" +
                  std::to_string(tau) + ", k=" + std::to_string(k) +
                  ", driver=" + driver,
              options);

  ExperimentContext context(options);
  const InfluenceGraph& ig =
      context.Instance(args.GetString("network"), prob.value());
  SamplingOptions sampling = context.sampling();
  // One stream pair for every backend: estimator stream 0, tie-break
  // shuffle stream 1 (trial 0 of the harness convention).
  const std::uint64_t estimator_seed = DeriveSeed(options.seed, 0);
  const std::uint64_t shuffle_seed = DeriveSeed(options.seed, 1);

  std::vector<ModeRecord> records;
  for (SnapshotEstimator::Mode mode : modes) {
    ModeRecord record;
    record.mode = mode;
    {
      // Dedicated instance for the build-only figure (sampling [+
      // condensation]); the timed driver runs below rebuild from the
      // same streams.
      SnapshotEstimator estimator(&ig, tau, estimator_seed, mode, sampling);
      WallTimer timer;
      estimator.Build();
      record.build_seconds = timer.Seconds();
    }
    for (std::size_t rep = 0; rep < reps; ++rep) {
      SnapshotEstimator estimator(&ig, tau, estimator_seed, mode, sampling);
      Rng tie_rng(shuffle_seed);
      WallTimer timer;
      GreedyRunResult greedy;
      std::uint64_t calls = 0;
      if (driver == "celf") {
        CelfRunResult celf =
            RunCelfGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
        greedy = std::move(celf.greedy);
        calls = celf.estimate_calls;
      } else {
        greedy = RunGreedy(&estimator, ig.num_vertices(), k, &tie_rng);
        // RunGreedy sweeps every not-yet-selected vertex each round.
        for (int round = 0; round < k; ++round) {
          calls += static_cast<std::uint64_t>(ig.num_vertices() - round);
        }
      }
      record.seconds.push_back(timer.Seconds());
      if (rep == 0) {
        record.seeds = greedy.seeds;
        record.estimate_calls = calls;
        record.counters = estimator.counters();
        record.estimator_bytes = estimator.MemoryBytes();
      }
    }
    record.best_seconds =
        *std::min_element(record.seconds.begin(), record.seconds.end());
    // The hard contract this bench rides on: backends may only change
    // cost, never the selection.
    if (!records.empty()) {
      SOLDIST_CHECK(record.seeds == records[0].seeds)
          << "backend " << SnapshotModeName(mode)
          << " changed the seed set — refusing to record a bogus speedup";
    }
    records.push_back(std::move(record));
  }

  TextTable table({"backend", "best s", "build s", "estimate calls",
                   "vertex cost", "edge cost", "estimator MiB"});
  double residual_best = 0.0, condensed_best = 0.0;
  std::string records_json;
  for (const ModeRecord& record : records) {
    if (record.mode == SnapshotEstimator::Mode::kResidual) {
      residual_best = record.best_seconds;
    }
    if (record.mode == SnapshotEstimator::Mode::kCondensed) {
      condensed_best = record.best_seconds;
    }
    table.AddRow(
        {SnapshotModeName(record.mode), FormatDouble(record.best_seconds, 3),
         FormatDouble(record.build_seconds, 3),
         WithThousands(record.estimate_calls),
         FormatCost(static_cast<double>(record.counters.vertices)),
         FormatCost(static_cast<double>(record.counters.edges)),
         FormatDouble(static_cast<double>(record.estimator_bytes) /
                          (1024.0 * 1024.0),
                      2)});
    JsonObject obj;
    obj.Str("mode", SnapshotModeName(record.mode))
        .Real("seconds", record.best_seconds)
        .RealArray("rep_seconds", record.seconds)
        .Real("build_seconds", record.build_seconds)
        .UInt("estimate_calls", record.estimate_calls)
        .UInt("vertices_traversed", record.counters.vertices)
        .UInt("edges_traversed", record.counters.edges)
        .UInt("sample_edges", record.counters.sample_edges)
        .UInt("estimator_bytes", record.estimator_bytes)
        .UIntArray("seeds", record.seeds);
    if (!records_json.empty()) records_json += ",";
    records_json += obj.ToString();
  }
  PrintTable("Snapshot backends (identical seed sets CHECKed; τ=" +
                 std::to_string(tau) + ")",
             table);

  const double speedup =
      residual_best > 0.0 && condensed_best > 0.0
          ? residual_best / condensed_best
          : 0.0;
  JsonObject summary;
  summary.Str("bench", "snapshot_backends")
      .Str("network", args.GetString("network"))
      .Str("prob", ProbabilityModelName(prob.value()))
      .Str("model", DiffusionModelName(options.model))
      .Str("driver", driver)
      .UInt("tau", tau)
      .Int("k", k)
      .UInt("seed", options.seed)
      .Int("sample_threads", options.sample_threads)
      .UInt("n", ig.num_vertices())
      .UInt("m", ig.graph().num_edges())
      .Raw("records", "[" + records_json + "]")
      // Process-wide high-water mark over the whole run: ru_maxrss is
      // monotone, so a per-backend figure would just inherit the largest
      // earlier backend. Per-backend memory is estimator_bytes.
      .UInt("peak_rss_kb", PeakRssKb())
      .Real("speedup_condensed_vs_residual", speedup);
  const std::string json = summary.ToString();
  std::printf("%s\n", json.c_str());
  const std::string json_out = args.GetString("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      return ExitWithError(
          Status::Internal("cannot write --json-out " + json_out));
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (check_speedup > 0.0) {
    if (speedup < check_speedup) {
      std::fprintf(stderr,
                   "FAIL: condensed/residual speedup %.2fx is below the "
                   "required %.2fx\n",
                   speedup, check_speedup);
      return 1;
    }
    std::fprintf(stderr, "speedup %.2fx >= required %.2fx\n", speedup,
                 check_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
