// Table 4 (paper Section 5.1.2): top-3 single-vertex influence spread on
// BA_s and BA_d for each probability setting. The gap between Inf(v_1st)
// and Inf(v_2nd) explains the entropy decay speed of Figure 3: iwc shows
// a clear leader (fast convergence) while uc0.01/owc are nearly tied.

#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("table4_top_influence",
                 "Reproduces paper Table 4: top-3 single-vertex influence "
                 "on the BA networks.");
  AddExperimentFlags(&args);
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table4_top_influence");
  PrintBanner("Table 4: top three influence spread of a single vertex",
              options);

  ExperimentContext context(options);
  CsvWriter csv({"network", "setting", "rank", "vertex", "influence"});

  for (const std::string network : {"BA_s", "BA_d"}) {
    TextTable table({"rank", "uc0.1", "uc0.01", "iwc", "owc"});
    std::map<std::string, std::vector<std::pair<double, VertexId>>> top3;
    for (ProbabilityModel model : PaperProbabilityModels()) {
      const InfluenceGraph& ig = context.Instance(network, model);
      const RrOracle& oracle = context.Oracle(network, model);
      // Influence of every single vertex from the oracle's inverted index.
      std::vector<std::pair<double, VertexId>> ranked;
      ranked.reserve(ig.num_vertices());
      for (VertexId v = 0; v < ig.num_vertices(); ++v) {
        const VertexId seed[1] = {v};
        ranked.emplace_back(oracle.EstimateInfluence(seed), v);
      }
      std::partial_sort(ranked.begin(), ranked.begin() + 3, ranked.end(),
                        std::greater<>());
      ranked.resize(3);
      top3[ProbabilityModelName(model)] = ranked;
      for (int rank = 0; rank < 3; ++rank) {
        csv.Row()
            .Str(network)
            .Str(ProbabilityModelName(model))
            .Int(rank + 1)
            .UInt(ranked[rank].second)
            .Real(ranked[rank].first, 4)
            .Done();
      }
    }
    const char* kRankNames[3] = {"Inf(v1st)", "Inf(v2nd)", "Inf(v3rd)"};
    for (int rank = 0; rank < 3; ++rank) {
      std::vector<std::string> row{kRankNames[rank]};
      for (const char* setting : {"uc0.1", "uc0.01", "iwc", "owc"}) {
        row.push_back(FormatDouble(top3[setting][rank].first, 4));
      }
      table.AddRow(std::move(row));
    }
    PrintTable("Table 4: " + network +
                   " — top three single-vertex influence (oracle estimate)",
               table);
  }
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
