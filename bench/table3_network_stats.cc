// Table 3 (paper Section 4.2): network statistics — n, m, Δ+, Δ−,
// clustering coefficient, average distance — for all eight networks.
// Karate and BA_s/BA_d are exact reproductions; the other five are the
// synthetic proxies documented in DESIGN.md Section 4.

#include "bench_common.h"
#include "gen/datasets.h"
#include "graph/stats.h"
#include "random/splitmix64.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("table3_network_stats",
                 "Reproduces paper Table 3: network statistics.");
  AddExperimentFlags(&args);
  args.AddInt64("distance-pairs", 4000,
                "sampled pairs for the average distance (paper reports it "
                "only for Karate/BA_s/BA_d; 0 skips)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table3_network_stats");
  PrintBanner("Table 3: network statistics", options);

  ExperimentContext context(options);
  auto pairs = static_cast<std::uint32_t>(args.GetInt64("distance-pairs"));

  TextTable table({"network", "n", "m", "type", "Δ+", "Δ−", "clus. coef.",
                   "avg. dis."});
  CsvWriter csv({"network", "n", "m", "max_out_degree", "max_in_degree",
                 "clustering_coefficient", "average_distance"});
  const std::map<std::string, std::string> kTypes = {
      {"Karate", "social"},       {"Physicians", "social"},
      {"ca-GrQc", "collab."},     {"Wiki-Vote", "voting"},
      {"com-Youtube", "social"},  {"soc-Pokec", "social"},
      {"BA_s", "BA"},             {"BA_d", "BA"}};

  for (const std::string& name : Datasets::Names()) {
    auto graph = context.registry()->GetGraph(name);
    SOLDIST_CHECK(graph.ok()) << graph.status().ToString();
    // Average distance only where the paper reports it (small networks).
    bool wants_distance =
        name == "Karate" || name == "BA_s" || name == "BA_d";
    Rng rng(DeriveSeed(options.seed, std::hash<std::string>{}(name)));
    WallTimer timer;
    NetworkStats stats = ComputeNetworkStats(
        *graph.value(), wants_distance ? pairs : 0, &rng);
    SOLDIST_LOG(Info) << name << " stats in " << timer.HumanElapsed();

    std::string star = Datasets::IsStarNetwork(name) ? "* " : "";
    table.AddRow({star + name, WithThousands(stats.num_vertices),
                  WithThousands(stats.num_edges), kTypes.at(name),
                  WithThousands(stats.max_out_degree),
                  WithThousands(stats.max_in_degree),
                  FormatDouble(stats.clustering_coefficient, 2),
                  stats.average_distance
                      ? FormatDouble(*stats.average_distance, 2)
                      : "-"});
    csv.Row()
        .Str(name)
        .UInt(stats.num_vertices)
        .UInt(stats.num_edges)
        .UInt(stats.max_out_degree)
        .UInt(stats.max_in_degree)
        .Real(stats.clustering_coefficient, 4)
        .Real(stats.average_distance.value_or(-1.0), 3)
        .Done();
  }
  PrintTable("Table 3: network statistics (* = scaled proxy of a ⋆ network)",
             table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
