// Table 9 (paper Section 6): traversal cost at k=1 when the sample
// numbers are conditioned so the three approaches are of identical
// accuracy — β = cr1·γ, τ = γ, θ = cr2·γ, where cr1/cr2 are the
// comparable number ratios of Oneshot/RIS to Snapshot (Tables 6-7).
// Each cell is (per-sample vertex+edge cost) × comparable ratio, the
// coefficient of γ. Expected shape: Oneshot is almost always the least
// time-efficient; RIS beats Snapshot on the large networks, Snapshot
// wins on small/low-probability instances (e.g. BA_s uc0.01).

#include <algorithm>

#include "bench_common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace soldist {
namespace {

int Run(int argc, const char* const* argv) {
  ArgParser args("table9_conditioned_cost",
                 "Reproduces paper Table 9: traversal cost conditioned on "
                 "identical accuracy.");
  AddExperimentFlags(&args);
  args.AddString("networks",
                 "ca-GrQc,Wiki-Vote,com-Youtube,soc-Pokec,BA_s,BA_d",
                 "networks to run (paper Table 9 rows)");
  int exit_code = 0;
  ExperimentOptions options;
  if (ShouldExitAfterParse(&args, argc, argv, &exit_code, &options)) {
    return exit_code;
  }
  RequireIcModel(options, "table9_conditioned_cost");
  if (!args.Provided("trials")) options.trials = 25;
  PrintBanner("Table 9: traversal cost at identical accuracy (γ "
              "coefficients)",
              options);

  ExperimentContext context(options);
  TextTable table({"network", "algorithm", "uc0.1", "uc0.01", "iwc", "owc"});
  CsvWriter csv({"network", "setting", "approach", "per_sample_cost",
                 "comparable_ratio", "conditioned_cost"});

  for (const std::string& network : Split(args.GetString("networks"), ',')) {
    GridCaps caps = ScaledGridCaps(network, options.full);
    bool star = Datasets::IsStarNetwork(network);
    std::map<Approach, std::vector<std::string>> rows;
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      rows[approach] = {star ? "* " + network : network,
                        ApproachName(approach)};
    }
    for (ProbabilityModel model : PaperProbabilityModels()) {
      bool skip_setting = model == ProbabilityModel::kUc01 &&
                          (network == "Wiki-Vote" || star);
      if (skip_setting) {
        for (auto& [approach, row] : rows) row.push_back("-");
        continue;
      }
      const InfluenceGraph& ig = context.Instance(network, model);
      const RrOracle& oracle = context.Oracle(network, model);
      std::uint64_t trials = context.TrialsFor(network);

      // Per-sample traversal cost (vertex + edge) at sample number 1.
      auto per_sample_cost = [&](Approach approach) {
        TrialConfig config;
        config.sampling = context.sampling();
        config.approach = approach;
        config.sample_number = 1;
        config.k = 1;
        config.trials = trials;
        config.master_seed = options.seed + 91;
        TrialResult result = RunTrials(ig, config, context.pool());
        return result.MeanVertexCost(trials) + result.MeanEdgeCost(trials);
      };

      // Comparable ratios at k=1 from fresh sweeps. The ratios are
      // stable across the grid (Figure 7), so shallow sweeps (caps − 2)
      // keep the giant-component Oneshot cells tractable.
      SweepConfig snap_config;
      snap_config.reuse = options.sweep_reuse;
      snap_config.approach = Approach::kSnapshot;
      snap_config.k = 1;
      snap_config.trials = trials;
      snap_config.master_seed = options.seed + 5;
      snap_config.max_exponent = std::max(0, caps.snapshot_max_exp - 2);
      auto snap_cells = RunSweep(ig, oracle, snap_config, context.pool());

      SweepConfig ris_config = snap_config;
      ris_config.approach = Approach::kRis;
      ris_config.max_exponent = std::max(0, caps.ris_max_exp - 2);
      auto ris_cells = RunSweep(ig, oracle, ris_config, context.pool());
      auto cr2 = MedianNumberRatio(
          ComputeComparablePairs(CurveOf(snap_cells), CurveOf(ris_cells)));

      std::optional<double> cr1;
      if (!star) {
        SweepConfig one_config = snap_config;
        one_config.approach = Approach::kOneshot;
        one_config.max_exponent = std::max(0, caps.oneshot_max_exp - 2);
        auto one_cells = RunSweep(ig, oracle, one_config, context.pool());
        cr1 = MedianNumberRatio(
            ComputeComparablePairs(CurveOf(snap_cells), CurveOf(one_cells)));
      }
      SOLDIST_LOG(Info) << network << " " << ProbabilityModelName(model)
                        << " ratios done";

      struct Cell {
        Approach approach;
        std::optional<double> ratio;
      };
      for (const Cell& cell :
           {Cell{Approach::kOneshot, star ? std::optional<double>() : cr1},
            Cell{Approach::kSnapshot, std::optional<double>(1.0)},
            Cell{Approach::kRis, cr2}}) {
        if (star && cell.approach == Approach::kOneshot) {
          rows[cell.approach].push_back("-");
          continue;
        }
        if (!cell.ratio) {
          rows[cell.approach].push_back("-");
          continue;
        }
        double base = per_sample_cost(cell.approach);
        double conditioned = base * (*cell.ratio);
        rows[cell.approach].push_back(FormatCost(conditioned) + "γ");
        csv.Row()
            .Str(network)
            .Str(ProbabilityModelName(model))
            .Str(ApproachName(cell.approach))
            .Real(base, 2)
            .Real(*cell.ratio, 3)
            .Real(conditioned, 2)
            .Done();
      }
    }
    for (Approach approach :
         {Approach::kOneshot, Approach::kSnapshot, Approach::kRis}) {
      table.AddRow(std::move(rows[approach]));
    }
  }
  PrintTable("Table 9: traversal cost at k=1 conditioned on identical "
             "accuracy",
             table);
  MaybeWriteCsv(csv, options.out_csv);
  ReportPeakRss();
  return 0;
}

}  // namespace
}  // namespace soldist

int main(int argc, char** argv) { return soldist::Run(argc, argv); }
