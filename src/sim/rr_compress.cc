#include "sim/rr_compress.h"

#include <algorithm>

#include "util/logging.h"

namespace soldist {

void VarintEncode(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t VarintDecode(const std::uint8_t* data, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    std::uint8_t byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    SOLDIST_DCHECK(shift < 64);
  }
  return v;
}

CompressedRrCollection::CompressedRrCollection(VertexId num_vertices)
    : num_vertices_(num_vertices) {
  set_offsets_.push_back(0);
}

void CompressedRrCollection::Add(const std::vector<VertexId>& rr_set) {
  std::vector<VertexId> sorted = rr_set;
  std::sort(sorted.begin(), sorted.end());
  VarintEncode(sorted.size(), &set_bytes_);
  VertexId prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // First entry absolute, rest gaps (>= 1 since entries are distinct).
    std::uint64_t delta = i == 0 ? sorted[0] : sorted[i] - prev;
    VarintEncode(delta, &set_bytes_);
    prev = sorted[i];
  }
  set_offsets_.push_back(static_cast<std::uint64_t>(set_bytes_.size()));
  total_entries_ += sorted.size();
  index_built_ = false;
}

void CompressedRrCollection::DecodeSet(std::uint64_t i,
                                       std::vector<VertexId>* out) const {
  SOLDIST_DCHECK(i < size());
  out->clear();
  std::size_t pos = set_offsets_[i];
  std::uint64_t count = VarintDecode(set_bytes_.data(), &pos);
  std::uint64_t value = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    value += VarintDecode(set_bytes_.data(), &pos);
    out->push_back(static_cast<VertexId>(value));
  }
}

void CompressedRrCollection::BuildIndex() {
  // Two passes: count per-vertex list lengths, then encode each vertex's
  // ascending set ids as gaps. Set ids are visited in ascending order so
  // a per-vertex "previous id" array suffices.
  std::vector<std::uint32_t> list_len(num_vertices_, 0);
  std::vector<VertexId> decoded;
  for (std::uint64_t i = 0; i < size(); ++i) {
    DecodeSet(i, &decoded);
    for (VertexId v : decoded) ++list_len[v];
  }
  // Encode into per-vertex byte buffers sized by a conservative pass.
  std::vector<std::vector<std::uint8_t>> per_vertex(num_vertices_);
  std::vector<std::uint64_t> prev_id(num_vertices_, 0);
  std::vector<std::uint8_t> has_any(num_vertices_, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    VarintEncode(list_len[v], &per_vertex[v]);
  }
  for (std::uint64_t i = 0; i < size(); ++i) {
    DecodeSet(i, &decoded);
    for (VertexId v : decoded) {
      std::uint64_t delta = has_any[v] ? i - prev_id[v] : i;
      VarintEncode(delta, &per_vertex[v]);
      prev_id[v] = i;
      has_any[v] = 1;
    }
  }
  index_bytes_.clear();
  index_offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    index_bytes_.insert(index_bytes_.end(), per_vertex[v].begin(),
                        per_vertex[v].end());
    index_offsets_[v + 1] = static_cast<std::uint64_t>(index_bytes_.size());
  }
  covered_stamp_.assign(size(), 0);
  covered_epoch_ = 0;
  index_built_ = true;
}

void CompressedRrCollection::DecodeInvertedList(
    VertexId v, std::vector<std::uint64_t>* out) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  SOLDIST_DCHECK(v < num_vertices_);
  out->clear();
  std::size_t pos = index_offsets_[v];
  std::uint64_t count = VarintDecode(index_bytes_.data(), &pos);
  std::uint64_t id = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    id += VarintDecode(index_bytes_.data(), &pos);
    out->push_back(id);
  }
}

std::uint64_t CompressedRrCollection::CountCovered(
    std::span<const VertexId> seeds) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  if (++covered_epoch_ == 0) {
    std::fill(covered_stamp_.begin(), covered_stamp_.end(), 0);
    covered_epoch_ = 1;
  }
  std::uint64_t covered = 0;
  for (VertexId v : seeds) {
    DecodeInvertedList(v, &scratch_ids_);
    for (std::uint64_t set_id : scratch_ids_) {
      if (covered_stamp_[set_id] != covered_epoch_) {
        covered_stamp_[set_id] = covered_epoch_;
        ++covered;
      }
    }
  }
  return covered;
}

std::uint64_t CompressedRrCollection::MemoryBytes() const {
  return set_bytes_.size() + index_bytes_.size() +
         set_offsets_.size() * sizeof(std::uint64_t) +
         index_offsets_.size() * sizeof(std::uint64_t);
}

std::uint64_t CompressedRrCollection::UncompressedBytes() const {
  // RrCollection: 4 B per set entry, 8 B per index entry, 8 B offsets.
  return total_entries_ * (4 + 8) +
         set_offsets_.size() * sizeof(std::uint64_t) +
         (static_cast<std::uint64_t>(num_vertices_) + 1) *
             sizeof(std::uint64_t);
}

}  // namespace soldist
