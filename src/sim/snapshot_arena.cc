#include "sim/snapshot_arena.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "graph/reach_sketch.h"
#include "random/splitmix64.h"
#include "util/logging.h"

namespace soldist {

std::vector<SnapshotWarmth> ComputeSnapshotWarmth(
    std::span<const CondensedSnapshot> snaps, VertexId num_vertices,
    std::uint64_t perm_seed, const SamplingOptions& sampling) {
  const VertexId n = num_vertices;
  // ONE random permutation of ranks (perm[v]+1)/n shared by all
  // sketches: only rank distinctness matters for exactness, and a fixed
  // assignment keeps the per-snapshot cost at the merges. (The stream
  // never touches results — see the permutation-independence note in the
  // header.)
  Rng rng(perm_seed);
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  std::vector<double> ranks(n);
  std::vector<VertexId> by_rank(n);  // inverse permutation = rank order
  for (VertexId v = 0; v < n; ++v) {
    ranks[v] = static_cast<double>(perm[v] + 1) / static_cast<double>(n);
    by_rank[perm[v]] = v;
  }

  std::vector<SnapshotWarmth> warmth(snaps.size());
  struct Slot {
    DagSketcher sketcher;
    DagSketches sketches;
    Slot(VertexId n, int k) : sketcher(n, k) {}
  };
  auto warm_range = [&](std::uint64_t begin, std::uint64_t end, Slot* slot) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const CondensedSnapshot& snap = snaps[i];
      SOLDIST_CHECK(!snap.comp_of.empty())
          << "snapshot " << i << " has no comp_of (already transposed?)";
      const std::uint32_t num_components = snap.num_components();
      slot->sketcher.Sketch(snap.comp_of, n, snap.dag, ranks, by_rank,
                            &slot->sketches);
      SnapshotWarmth& w = warmth[i];
      w.bound.resize(num_components);
      w.is_exact.assign(num_components, 0);
      std::uint64_t prefix = 0;  // Σ size over ids ≤ c ⊇ descendants
      for (std::uint32_t c = 0; c < num_components; ++c) {
        prefix += snap.comp_size[c];
        if (slot->sketches.IsExact(c)) {
          // Saturated below k: len IS the exact reachable count.
          w.bound[c] = slot->sketches.len[c];
          w.is_exact[c] = 1;
          continue;
        }
        std::uint64_t sum = snap.comp_size[c];
        for (std::uint32_t succ : snap.dag.Successors(c)) {
          sum += w.bound[succ];
          if (sum >= prefix) break;  // already at the cap
        }
        w.bound[c] = static_cast<std::uint32_t>(std::min(sum, prefix));
      }
    }
  };

  const auto count = static_cast<std::uint64_t>(snaps.size());
  if (sampling.UseEngine() && count > 0) {
    SamplingEngine engine(sampling);
    std::vector<std::unique_ptr<Slot>> slots(engine.num_workers());
    engine.Run(/*master_seed=*/0, count,
               [&](const SamplingEngine::Chunk& chunk, std::size_t idx) {
      if (slots[idx] == nullptr) {
        slots[idx] = std::make_unique<Slot>(n, kSnapshotSketchK);
      }
      warm_range(chunk.begin, chunk.end, slots[idx].get());
    });
  } else if (count > 0) {
    Slot slot(n, kSnapshotSketchK);
    warm_range(0, count, &slot);
  }
  return warmth;
}

SnapshotArena SnapshotArena::Sample(const InfluenceGraph& ig,
                                    std::uint64_t seed,
                                    std::uint64_t capacity,
                                    const SamplingOptions& sampling) {
  SOLDIST_CHECK(capacity >= 1);
  SnapshotArena arena;
  arena.num_vertices_ = ig.num_vertices();
  arena.snaps_.reserve(capacity);
  arena.counters_.Reserve(capacity);
  std::uint64_t actual = capacity;
  if (sampling.UseEngine()) {
    SamplingEngine engine(sampling);
    std::vector<CondensedSnapshotShard> shards = SampleCondensedSnapshotShards(
        ig, seed, capacity, &engine, /*record_per_snapshot=*/true);
    if (sampling.cancel != nullptr) {
      // Truncate a cancelled build to its contiguous completed prefix:
      // an empty shard (skipped chunk) or a short shard marks the cut;
      // the survivors are byte-identical to a direct smaller build
      // (chunk c draws only from DeriveSeed(seed, c)).
      std::size_t keep = 0;
      actual = 0;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shards[s].snapshots.empty()) break;
        const std::uint64_t begin = s * engine.chunk_size();
        const std::uint64_t expected =
            std::min(begin + engine.chunk_size(), capacity) - begin;
        actual += shards[s].snapshots.size();
        keep = s + 1;
        if (shards[s].snapshots.size() < expected) break;
      }
      shards.resize(keep);
    }
    for (CondensedSnapshotShard& shard : shards) {
      SOLDIST_CHECK(shard.per_snapshot.size() == shard.snapshots.size());
      for (std::size_t j = 0; j < shard.snapshots.size(); ++j) {
        arena.counters_.Append(shard.per_snapshot[j]);
        arena.snaps_.push_back(std::move(shard.snapshots[j]));
      }
    }
  } else {
    // Legacy single-stream path: same snapshot stream as the fresh
    // condensed backend, condensed one at a time so the raw CSR never
    // accumulates; per-snapshot counter deltas feed the prefix table.
    Rng rng(seed);
    SnapshotSampler sampler(&ig);
    SnapshotCondenser condenser(ig.num_vertices());
    Snapshot scratch;
    TraversalCounters running;
    for (std::uint64_t i = 0; i < capacity; ++i) {
      // Cooperative cancel: stop early; the produced prefix IS a direct
      // smaller build (snapshot 0 always lands).
      if (sampling.cancel != nullptr && i > 0 &&
          sampling.cancel->cancelled()) {
        actual = i;
        break;
      }
      const TraversalCounters before = running;
      sampler.SampleInto(&rng, &running, &scratch);
      TraversalCounters delta;
      delta.vertices = running.vertices - before.vertices;
      delta.edges = running.edges - before.edges;
      delta.sample_vertices = running.sample_vertices - before.sample_vertices;
      delta.sample_edges = running.sample_edges - before.sample_edges;
      arena.counters_.Append(delta);
      arena.snaps_.push_back(condenser.Condense(scratch));
    }
  }
  SOLDIST_CHECK(arena.capacity() == actual);
  for (const CondensedSnapshot& snap : arena.snaps_) {
    arena.max_components_ =
        std::max(arena.max_components_, snap.num_components());
  }
  // Warmth permutation stream: off the sampler chunk streams, like the
  // fresh backend's DeriveSeed(seed, τ + 1) — any distinct-rank
  // permutation yields the same warmth (header note), so capacity vs τ
  // in the derivation cannot change a byte.
  arena.warmth_ = ComputeSnapshotWarmth(
      arena.snaps_, ig.num_vertices(), DeriveSeed(seed, capacity + 1),
      sampling);
  return arena;
}

SnapshotArena SnapshotArena::Restore(
    VertexId num_vertices, std::vector<CondensedSnapshot> snaps,
    std::vector<SnapshotWarmth> warmth,
    const std::vector<TraversalCounters>& per_snapshot) {
  SOLDIST_CHECK(!snaps.empty());
  SOLDIST_CHECK(snaps.size() == warmth.size());
  SOLDIST_CHECK(snaps.size() == per_snapshot.size());
  SnapshotArena arena;
  arena.num_vertices_ = num_vertices;
  arena.counters_.Reserve(per_snapshot.size());
  for (const TraversalCounters& delta : per_snapshot) {
    arena.counters_.Append(delta);
  }
  arena.snaps_ = std::move(snaps);
  arena.warmth_ = std::move(warmth);
  for (const CondensedSnapshot& snap : arena.snaps_) {
    arena.max_components_ =
        std::max(arena.max_components_, snap.num_components());
  }
  return arena;
}

std::uint64_t SnapshotArena::MemoryBytes() const {
  std::uint64_t bytes = counters_.MemoryBytes();
  for (const CondensedSnapshot& snap : snaps_) bytes += snap.MemoryBytes();
  for (const SnapshotWarmth& w : warmth_) bytes += w.MemoryBytes();
  return bytes;
}

std::uint64_t SnapshotArena::ContentChecksum() const {
  const std::uint64_t cap = capacity();
  const std::uint64_t n = num_vertices_;
  std::uint64_t hash = Fnv1a64(&cap, sizeof(cap));
  hash = Fnv1a64(&n, sizeof(n), hash);
  const auto mix = [&hash](const auto& vec) {
    const std::uint64_t len = vec.size();
    hash = Fnv1a64(&len, sizeof(len), hash);
    if (!vec.empty()) {
      hash = Fnv1a64(vec.data(), vec.size() * sizeof(vec[0]), hash);
    }
  };
  for (std::uint64_t i = 0; i < cap; ++i) {
    const CondensedSnapshot& snap = snaps_[i];
    mix(snap.comp_of);
    mix(snap.comp_size);
    mix(snap.dag.offsets);
    mix(snap.dag.targets);
    mix(snap.rev.offsets);
    mix(snap.rev.targets);
    mix(warmth_[i].bound);
    mix(warmth_[i].is_exact);
  }
  return hash;
}

}  // namespace soldist
