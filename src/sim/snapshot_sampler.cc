#include "sim/snapshot_sampler.h"

#include <memory>

#include "random/splitmix64.h"

namespace soldist {

SnapshotSampler::SnapshotSampler(const InfluenceGraph* ig)
    : ig_(ig), visited_(ig->num_vertices()) {
  queue_.reserve(ig->num_vertices());
}

Snapshot SnapshotSampler::Sample(Rng* rng, TraversalCounters* counters) {
  Snapshot snap;
  SampleInto(rng, counters, &snap);
  return snap;
}

void SnapshotSampler::SampleInto(Rng* rng, TraversalCounters* counters,
                                 Snapshot* out) {
  const Graph& g = ig_->graph();
  const VertexId n = g.num_vertices();
  out->out_offsets.resize(static_cast<std::size_t>(n) + 1);
  out->out_targets.clear();
  out->out_targets.reserve(
      static_cast<std::size_t>(ig_->SumProbabilities()) + 16);
  out->out_offsets[0] = 0;
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId begin = g.out_offsets()[u];
    const EdgeId end = g.out_offsets()[u + 1];
    for (EdgeId e = begin; e < end; ++e) {
      if (rng->Bernoulli(ig_->OutProbability(e))) {
        out->out_targets.push_back(g.out_targets()[e]);
      }
    }
    out->out_offsets[u + 1] = static_cast<EdgeId>(out->out_targets.size());
  }
  counters->sample_edges += out->num_live_edges();
}

std::uint32_t SnapshotSampler::CountReachable(const Snapshot& snapshot,
                                              std::span<const VertexId> seeds,
                                              TraversalCounters* counters) {
  visited_.NextEpoch();
  queue_.clear();
  for (VertexId s : seeds) {
    if (visited_.Mark(s)) queue_.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    counters->vertices += 1;
    const EdgeId begin = snapshot.out_offsets[u];
    const EdgeId end = snapshot.out_offsets[u + 1];
    counters->edges += end - begin;
    for (EdgeId e = begin; e < end; ++e) {
      VertexId w = snapshot.out_targets[e];
      if (visited_.Mark(w)) queue_.push_back(w);
    }
  }
  return static_cast<std::uint32_t>(queue_.size());
}

std::vector<VertexId> SnapshotSampler::ReachableSet(
    const Snapshot& snapshot, std::span<const VertexId> seeds,
    TraversalCounters* counters) {
  CountReachable(snapshot, seeds, counters);
  return queue_;
}

std::vector<SnapshotShard> SampleSnapshotShards(const InfluenceGraph& ig,
                                                std::uint64_t master_seed,
                                                std::uint64_t count,
                                                SamplingEngine* engine) {
  std::vector<SnapshotShard> shards(engine->NumChunks(count));
  std::vector<std::unique_ptr<SnapshotSampler>> samplers(
      engine->num_workers());
  engine->Run(master_seed, count,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    if (samplers[slot] == nullptr) {
      samplers[slot] = std::make_unique<SnapshotSampler>(&ig);
    }
    Rng rng(DeriveSeed(chunk.seed, 1));
    SnapshotShard& shard = shards[chunk.index];
    shard.snapshots.reserve(chunk.end - chunk.begin);
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      shard.snapshots.push_back(
          samplers[slot]->Sample(&rng, &shard.counters));
    }
  });
  return shards;
}

}  // namespace soldist
