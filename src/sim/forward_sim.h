// Forward Monte-Carlo simulation of the independent cascade model (paper
// Section 2.2): the sampling primitive behind Oneshot.

#ifndef SOLDIST_SIM_FORWARD_SIM_H_
#define SOLDIST_SIM_FORWARD_SIM_H_

#include <memory>
#include <span>
#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief Simulates IC diffusions on one influence graph.
///
/// Reusable across simulations (epoch-marked visited array, persistent
/// queue); not thread-safe — use one simulator per thread.
class ForwardSimulator {
 public:
  explicit ForwardSimulator(const InfluenceGraph* ig);

  /// Runs one diffusion from `seeds`; returns |A_<=n|, the number of
  /// activated vertices (seeds included).
  ///
  /// Traversal accounting (paper Appendix): every activated vertex is
  /// scanned once (+1 vertex); scanning examines all its out-edges
  /// (+d+(u) edges), including edges to already-active targets.
  std::uint32_t Simulate(std::span<const VertexId> seeds, Rng* rng,
                         TraversalCounters* counters);

  /// Like Simulate but also returns the activated set (visit order).
  std::vector<VertexId> SimulateSet(std::span<const VertexId> seeds, Rng* rng,
                                    TraversalCounters* counters);

  /// Mean activated count over `runs` simulations: the Oneshot estimator's
  /// core loop (Algorithm 3.2).
  double EstimateInfluence(std::span<const VertexId> seeds,
                           std::uint64_t runs, Rng* rng,
                           TraversalCounters* counters);

  const InfluenceGraph& influence_graph() const { return *ig_; }

 private:
  const InfluenceGraph* ig_;
  VisitedMarker active_;
  std::vector<VertexId> queue_;
};

/// Per-worker-slot simulator cache for EstimateInfluenceSharded: pass the
/// same cache across calls (Oneshot calls once per candidate vertex per
/// greedy round) so each slot's O(n) simulator is built once, not per
/// chunk. Scratch reuse never affects results — all randomness comes from
/// the per-chunk streams.
using ForwardSimulatorCache = std::vector<std::unique_ptr<ForwardSimulator>>;

/// Mean activated count over `runs` diffusions from `seeds`, fanned out
/// through `engine` with per-chunk PRNG streams (chunk c draws from
/// DeriveSeed(DeriveSeed(master_seed, c), 1)). Activated counts are
/// integers accumulated per chunk and merged in chunk order, so the result
/// is byte-identical for any worker count. `cache` (optional) amortizes
/// simulator construction across calls; it must not be shared between
/// concurrently running calls.
double EstimateInfluenceSharded(const InfluenceGraph& ig,
                                std::span<const VertexId> seeds,
                                std::uint64_t runs, std::uint64_t master_seed,
                                SamplingEngine* engine,
                                TraversalCounters* counters,
                                ForwardSimulatorCache* cache = nullptr);

}  // namespace soldist

#endif  // SOLDIST_SIM_FORWARD_SIM_H_
