// Forward Monte-Carlo simulation of the independent cascade model (paper
// Section 2.2): the sampling primitive behind Oneshot.

#ifndef SOLDIST_SIM_FORWARD_SIM_H_
#define SOLDIST_SIM_FORWARD_SIM_H_

#include <span>
#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"

namespace soldist {

/// \brief Simulates IC diffusions on one influence graph.
///
/// Reusable across simulations (epoch-marked visited array, persistent
/// queue); not thread-safe — use one simulator per thread.
class ForwardSimulator {
 public:
  explicit ForwardSimulator(const InfluenceGraph* ig);

  /// Runs one diffusion from `seeds`; returns |A_<=n|, the number of
  /// activated vertices (seeds included).
  ///
  /// Traversal accounting (paper Appendix): every activated vertex is
  /// scanned once (+1 vertex); scanning examines all its out-edges
  /// (+d+(u) edges), including edges to already-active targets.
  std::uint32_t Simulate(std::span<const VertexId> seeds, Rng* rng,
                         TraversalCounters* counters);

  /// Like Simulate but also returns the activated set (visit order).
  std::vector<VertexId> SimulateSet(std::span<const VertexId> seeds, Rng* rng,
                                    TraversalCounters* counters);

  /// Mean activated count over `runs` simulations: the Oneshot estimator's
  /// core loop (Algorithm 3.2).
  double EstimateInfluence(std::span<const VertexId> seeds,
                           std::uint64_t runs, Rng* rng,
                           TraversalCounters* counters);

  const InfluenceGraph& influence_graph() const { return *ig_; }

 private:
  const InfluenceGraph* ig_;
  VisitedMarker active_;
  std::vector<VertexId> queue_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_FORWARD_SIM_H_
