// SCC-condensed live-edge snapshots (core/snapshot.h Mode::kCondensed).
//
// A sampled Snapshot preserves reachability exactly when collapsed to its
// SCC DAG: every vertex of a strongly connected component reaches exactly
// what the component reaches. The condensed form keeps, per snapshot,
// only the vertex→component map, per-component member counts, and the
// deduplicated condensation DAG (forward + reverse CSR) — the raw
// live-edge CSR is discarded right after condensation, so the resident
// footprint is component-granular. Greedy reachability then walks the
// (much smaller) DAG instead of the live-edge graph.

#ifndef SOLDIST_SIM_CONDENSED_SNAPSHOT_H_
#define SOLDIST_SIM_CONDENSED_SNAPSHOT_H_

#include <vector>

#include "graph/components.h"
#include "model/influence_graph.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"

namespace soldist {

/// \brief One live-edge random graph, condensed to its SCC DAG.
struct CondensedSnapshot {
  /// comp_of[v] is v's component id; Tarjan's reverse-topological
  /// numbering (every DAG successor of c has an id < c).
  std::vector<std::uint32_t> comp_of;   // size n
  /// Member count per component (Σ comp_size = n).
  std::vector<std::uint32_t> comp_size; // size C
  CondensationDag dag;                  ///< deduplicated forward DAG
  CondensationDag rev;                  ///< reverse DAG (invalidation walks)

  std::uint32_t num_components() const {
    return static_cast<std::uint32_t>(comp_size.size());
  }

  /// Heap bytes of the condensed representation.
  std::uint64_t MemoryBytes() const;

  /// Number of vertices reachable from `v` in the original snapshot,
  /// summed component-granular over the DAG (reference implementation for
  /// parity tests; the estimator backend has its own residual-aware walk).
  std::uint32_t CountReachable(VertexId v) const;
};

/// Condenses one sampled snapshot. Deterministic: a pure function of the
/// snapshot, so condensing shards in parallel can never change results.
CondensedSnapshot CondenseSnapshot(const Snapshot& snapshot,
                                   VertexId num_vertices);

/// \brief Scratch-reusing condenser for τ-scale build loops: the Tarjan
/// DFS arrays and the decomposition buffer live across calls (one
/// condenser per worker slot), so each snapshot pays traversal work, not
/// allocator churn. Output equals CondenseSnapshot exactly.
class SnapshotCondenser {
 public:
  explicit SnapshotCondenser(VertexId num_vertices);

  CondensedSnapshot Condense(const Snapshot& snapshot);

 private:
  VertexId num_vertices_;
  SccSolver solver_;
  ComponentDecomposition scc_;  // reused; copied into the output
  CondenseScratch scratch_;     // reused by CondenseCsrInto
  std::vector<std::uint32_t> rev_cursor_;
};

/// \brief One chunk's worth of condensed snapshots.
struct CondensedSnapshotShard {
  std::vector<CondensedSnapshot> snapshots;
  TraversalCounters counters;
  /// Per-snapshot counter deltas (only when sampled with
  /// record_per_snapshot; feeds SnapshotArena's prefix counter table).
  std::vector<TraversalCounters> per_snapshot;
};

/// Samples `count` snapshots through `engine` (same chunk streams as
/// SampleSnapshotShards, so a condensed build sees byte-identical
/// live-edge graphs) and condenses each inside its chunk worker; the raw
/// CSR never outlives the chunk. Shard concatenation in chunk order is
/// worker-count-independent. With `record_per_snapshot`, each shard also
/// records per-snapshot counter deltas so any prefix's sampling cost is
/// exactly attributable.
std::vector<CondensedSnapshotShard> SampleCondensedSnapshotShards(
    const InfluenceGraph& ig, std::uint64_t master_seed, std::uint64_t count,
    SamplingEngine* engine, bool record_per_snapshot = false);

}  // namespace soldist

#endif  // SOLDIST_SIM_CONDENSED_SNAPSHOT_H_
