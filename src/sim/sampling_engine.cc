#include "sim/sampling_engine.h"

#include <condition_variable>
#include <mutex>

#include "random/splitmix64.h"
#include "util/logging.h"

namespace soldist {

SamplingEngine::SamplingEngine(const SamplingOptions& options)
    : chunk_size_(options.chunk_size), cancel_(options.cancel) {
  SOLDIST_CHECK(chunk_size_ >= 1);
  SOLDIST_CHECK(options.num_threads >= 0);
  if (options.pool != nullptr) {
    pool_ = options.pool;
  } else if (options.num_threads == 1) {
    pool_ = nullptr;  // inline execution on the calling thread
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
    pool_ = owned_pool_.get();
  }
}

std::uint64_t SamplingEngine::NumChunks(std::uint64_t count) const {
  return (count + chunk_size_ - 1) / chunk_size_;
}

SamplingEngine::Chunk SamplingEngine::MakeChunk(std::uint64_t master_seed,
                                                std::uint64_t index,
                                                std::uint64_t count) const {
  Chunk chunk;
  chunk.index = index;
  chunk.begin = index * chunk_size_;
  chunk.end = std::min(chunk.begin + chunk_size_, count);
  chunk.seed = DeriveSeed(master_seed, index);
  return chunk;
}

void SamplingEngine::Run(std::uint64_t master_seed, std::uint64_t count,
                         const ChunkFn& fn) {
  const std::uint64_t num_chunks = NumChunks(count);
  if (num_chunks == 0) return;
  // Inline when there is nothing to fan out (or when executing on a pool
  // worker already: submitting and latching here would idle that worker).
  if (pool_ == nullptr || pool_->num_threads() <= 1 || num_chunks == 1 ||
      pool_->InWorkerThread()) {
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      fn(MakeChunk(master_seed, c, count), /*worker_slot=*/0);
    }
    return;
  }
  // Per-Run completion latch: the pool's Wait() drains *all* in-flight
  // work and allows only a single waiter, whereas this Run must be able
  // to coexist with other users of a shared pool. The same mutex guards
  // the worker-slot freelist: at most pool-width chunks run concurrently,
  // so a slot popped before fn and pushed after is exclusive for the call.
  std::mutex mutex;
  std::condition_variable done;
  std::uint64_t remaining = num_chunks;
  std::vector<std::size_t> free_slots(pool_->num_threads());
  for (std::size_t s = 0; s < free_slots.size(); ++s) free_slots[s] = s;
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    Chunk chunk = MakeChunk(master_seed, c, count);
    pool_->Submit([&, chunk] {
      std::size_t slot;
      {
        std::unique_lock<std::mutex> lock(mutex);
        SOLDIST_CHECK(!free_slots.empty());
        slot = free_slots.back();
        free_slots.pop_back();
      }
      fn(chunk, slot);
      std::unique_lock<std::mutex> lock(mutex);
      free_slots.push_back(slot);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace soldist
