// The shared arena substrate: the prefix-closed sampled-store contract
// that RrArena (RR sets) and SnapshotArena (condensed sampled worlds)
// both implement.
//
// An arena samples ONCE at the largest sample number of a ladder under a
// prefix-closed stream discipline, so the first τ of its capacity are
// byte-identical to a direct τ-sized build. Everything after the build is
// const: any number of threads may serve prefix views concurrently, a
// byte-budgeted cache (serve/ArenaCache) can hold arenas of either kind
// behind one key space, and per-prefix sampling cost is exactly
// attributable through a cumulative counter table.
//
// The base keeps the hot accessors (capacity / num_vertices /
// PrefixCounters) non-virtual over protected data; only identity
// (kind) and accounting (MemoryBytes / ResidentBytes) dispatch virtually.

#ifndef SOLDIST_SIM_WORLD_ARENA_H_
#define SOLDIST_SIM_WORLD_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sim/counters.h"
#include "util/logging.h"

namespace soldist {

/// \brief What a WorldArena stores — RR sets or sampled snapshot worlds.
/// Carried in cache keys so the two kinds never alias.
enum class ArenaKind { kRr, kSnapshot };

const char* ArenaKindName(ArenaKind kind);

/// FNV-1a 64 accumulator (same constants as the store/ payload
/// checksum) — the building block of WorldArena::ContentChecksum.
inline std::uint64_t Fnv1a64(const void* data, std::size_t size,
                             std::uint64_t hash = 0xcbf29ce484222325ull) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// \brief Cumulative per-sample traversal counters: Prefix(i) is exactly
/// the cost a direct build of the first i samples would have accumulated,
/// making reuse-on sweeps report the same per-cell counters as reuse-off.
class PrefixCounterTable {
 public:
  PrefixCounterTable() { cum_.push_back(TraversalCounters{}); }

  void Reserve(std::uint64_t capacity) { cum_.reserve(capacity + 1); }

  /// Appends one sample's counter delta (running total stored).
  void Append(const TraversalCounters& delta) {
    TraversalCounters next = cum_.back();
    next += delta;
    cum_.push_back(next);
  }

  /// Number of samples recorded.
  std::uint64_t size() const {
    return static_cast<std::uint64_t>(cum_.size()) - 1;
  }

  /// Exact counters of the first `count` samples.
  TraversalCounters Prefix(std::uint64_t count) const {
    SOLDIST_DCHECK(count < cum_.size());
    return cum_[count];
  }

  std::uint64_t MemoryBytes() const {
    return cum_.size() * sizeof(TraversalCounters);
  }

 private:
  std::vector<TraversalCounters> cum_;  // size() + 1 running totals
};

/// \brief Abstract immutable sampled-store: `capacity()` prefix-closed
/// samples over `num_vertices()` vertices with exact prefix cost
/// attribution. Derived classes add their payload (flat RR sets +
/// inverted index, or condensed per-world DAGs) and their own sampling
/// constructors.
class WorldArena {
 public:
  virtual ~WorldArena() = default;

  virtual ArenaKind kind() const = 0;

  /// Logical heap bytes of all arena payloads.
  virtual std::uint64_t MemoryBytes() const = 0;

  /// Bytes actually occupying RAM right now — what serve/ArenaCache
  /// budgets against, so a spilled (store::MmapSpillStorage) arena is
  /// charged its resident chunks, not its logical footprint. Defaults to
  /// MemoryBytes() for fully-resident arenas.
  virtual std::uint64_t ResidentBytes() const { return MemoryBytes(); }

  /// Checksum of the LOGICAL content (the answers the arena can give),
  /// not the physical representation: the same sampled data hashes
  /// identically across storage backends (flat / compressed / mmap) and
  /// across save/load round-trips. The background scrubber records it
  /// at admission and recomputes it later — a mismatch means the
  /// resident arena rotted and must be evicted, never served.
  virtual std::uint64_t ContentChecksum() const = 0;

  std::uint64_t capacity() const { return counters_.size(); }
  VertexId num_vertices() const { return num_vertices_; }

  /// Exact traversal/sample counters of the first `count` samples — equal
  /// to the counters a direct build at `count` would have accumulated.
  TraversalCounters PrefixCounters(std::uint64_t count) const {
    return counters_.Prefix(count);
  }

 protected:
  WorldArena() = default;
  // The virtual destructor suppresses implicit moves; restore them so
  // derived arenas stay cheap value types.
  WorldArena(const WorldArena&) = default;
  WorldArena(WorldArena&&) = default;
  WorldArena& operator=(const WorldArena&) = default;
  WorldArena& operator=(WorldArena&&) = default;

  VertexId num_vertices_ = 0;
  PrefixCounterTable counters_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_WORLD_ARENA_H_
