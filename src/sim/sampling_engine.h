// SamplingEngine: deterministic chunked parallel sampling.
//
// The paper's methodology runs every estimator T times with fresh PRNG
// states and compares the resulting solution distributions, so a parallel
// sampler must not silently change the experiment (cf. Lu et al.,
// "Refutations on 'Debunking the Myths of Influence Maximization'"). The
// engine therefore decouples the *randomness schedule* from the *thread
// schedule*:
//
//   * Work of `count` samples is split into fixed-size chunks;
//     chunk c covers sample indices [c*chunk_size, min((c+1)*chunk_size,
//     count)).
//   * Chunk c always draws from PRNG streams seeded with
//     DeriveSeed(master, c) — regardless of which worker executes it or
//     how many workers exist.
//   * Per-chunk outputs land in per-chunk shards, merged in chunk order.
//
// Consequently the output of any engine-routed build is a pure function
// of (master seed, count, chunk_size): byte-identical for 1 or N threads.
// Chunk results are accumulated per chunk and merged in chunk-index order,
// so even floating-point reductions stay bit-reproducible.
//
// The engine either borrows a shared ThreadPool (SamplingOptions::pool —
// the experiment harness passes its trial pool) or owns a private one.
// Completion uses a per-Run latch rather than ThreadPool::Wait(), keeping
// the pool's single-waiter contract available to the caller.

#ifndef SOLDIST_SIM_SAMPLING_ENGINE_H_
#define SOLDIST_SIM_SAMPLING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "util/thread_pool.h"

namespace soldist {

/// \brief Cooperative cancellation flag for in-flight sampling builds.
///
/// Samplers poll `cancelled()` at chunk boundaries (and optionally per
/// set) and stop producing further work once it flips. Because every
/// sampling stream is prefix-closed, a cancelled build is not garbage:
/// the contiguous prefix of chunks that completed before the flip is
/// byte-identical to a direct build at that smaller capacity, which is
/// exactly what the serving layer hands out as a degraded answer.
///
/// A token may carry an optional deadline predicate (e.g. a
/// serve::Deadline) so builds self-cancel when a request budget runs
/// out without the caller having to watch from another thread. The
/// predicate must be thread-safe; once it fires the token latches.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::function<bool()> expired)
      : expired_(std::move(expired)) {}

  /// Latches the token; all future cancelled() calls return true.
  void Cancel() { flag_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called or the deadline predicate fired.
  /// Relaxed ordering: samplers only use it to stop producing work, and
  /// the result is made deterministic downstream by truncating to the
  /// contiguous completed prefix.
  bool cancelled() const {
    if (flag_.load(std::memory_order_relaxed)) return true;
    if (expired_ && expired_()) {
      flag_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> flag_{false};
  std::function<bool()> expired_;
};

/// \brief Sampling parallelism knob threaded through the estimator factory.
struct SamplingOptions {
  /// 1 (default): sampling stays on the calling thread through the legacy
  /// single-stream loops — bit-identical to the pre-engine code. Any other
  /// value routes sampling through SamplingEngine's chunked deterministic
  /// streams: 0 = hardware concurrency, N >= 2 = N workers. A non-null
  /// `pool` also selects the engine path (its width then caps parallelism).
  int num_threads = 1;

  /// Samples per deterministic chunk. Smaller chunks balance load better;
  /// larger chunks amortize per-chunk sampler setup. The *value* changes
  /// which PRNG stream produces which sample, so hold it fixed when
  /// comparing runs (the thread count never matters).
  std::uint64_t chunk_size = 256;

  /// Optional shared pool (not owned). When null and the engine path is
  /// selected, each SamplingEngine owns a private pool of `num_threads`.
  ThreadPool* pool = nullptr;

  /// Optional cooperative cancel token (not owned). Samplers that honor
  /// it skip whole chunks (never chunk 0, so at least one set always
  /// lands) once it fires; the build then finalizes at the contiguous
  /// completed prefix. Null = never cancelled.
  CancelToken* cancel = nullptr;

  /// True when sampling should route through SamplingEngine.
  bool UseEngine() const { return num_threads != 1 || pool != nullptr; }
};

/// \brief Fans chunked sampling work out across a thread pool.
class SamplingEngine {
 public:
  /// One deterministic unit of work: sample indices [begin, end) driven by
  /// PRNG streams derived from `seed` = DeriveSeed(master, index).
  struct Chunk {
    std::uint64_t index;
    std::uint64_t begin;
    std::uint64_t end;
    std::uint64_t seed;
  };

  /// Chunk callback. `worker_slot` < num_workers() identifies a slot held
  /// exclusively for the duration of the call: chunks running concurrently
  /// always see distinct slots, so callers may keep per-slot scratch
  /// (samplers, visited markers) and reuse it across chunks without locks.
  /// Slot assignment is schedule-dependent — results must never depend on
  /// it; all determinism flows from the Chunk alone.
  using ChunkFn = std::function<void(const Chunk&, std::size_t worker_slot)>;

  explicit SamplingEngine(const SamplingOptions& options = {});

  SamplingEngine(const SamplingEngine&) = delete;
  SamplingEngine& operator=(const SamplingEngine&) = delete;

  /// Invokes fn once per chunk of [0, count), possibly concurrently, and
  /// blocks until all chunks are done. fn must write only to state owned
  /// by its chunk (e.g. shards[chunk.index]) or its worker slot. Chunk
  /// seeds depend only on `master_seed` and the chunk index, never on the
  /// worker count.
  void Run(std::uint64_t master_seed, std::uint64_t count,
           const ChunkFn& fn);

  /// Number of chunks Run() will produce for `count` samples.
  std::uint64_t NumChunks(std::uint64_t count) const;

  std::uint64_t chunk_size() const { return chunk_size_; }

  /// The cancel token carried in from SamplingOptions (may be null).
  /// Chunk fns poll it to skip work once a request budget expires.
  const CancelToken* cancel() const { return cancel_; }

  /// Worker count of the underlying pool (1 when running inline).
  std::size_t num_workers() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

 private:
  Chunk MakeChunk(std::uint64_t master_seed, std::uint64_t index,
                  std::uint64_t count) const;

  std::uint64_t chunk_size_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // borrowed or owned_pool_.get(); null = inline
  const CancelToken* cancel_ = nullptr;  // borrowed, may be null
};

}  // namespace soldist

#endif  // SOLDIST_SIM_SAMPLING_ENGINE_H_
