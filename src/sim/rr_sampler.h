// Reverse-reachable (RR) set sampling (paper Definition 3.1): the
// primitive behind RIS and behind the shared influence oracle.
//
// An RR set for target z is the set of vertices that can reach z in a
// live-edge random graph; for a uniformly random z,
// Pr[R ∩ S != ∅] = Inf(S)/n (Borgs et al., Observation 3.2).

#ifndef SOLDIST_SIM_RR_SAMPLER_H_
#define SOLDIST_SIM_RR_SAMPLER_H_

#include <span>
#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief Generates RR sets by reverse BFS with per-in-edge coin flips.
///
/// Matches the paper's PRNG discipline (Section 4.1): one stream picks the
/// random target, a second stream drives the edge coins.
class RrSampler {
 public:
  explicit RrSampler(const InfluenceGraph* ig);

  /// Samples one RR set for a uniformly random target into `*out`
  /// (cleared first; target is out->front()).
  ///
  /// Accounting (paper Section 3.5.2): every vertex added to R is scanned
  /// (+1 vertex) and all its in-edges are examined (+d−(v) edges); the RR
  /// set's weight w(R) = Σ_{v∈R} d−(v) is exactly the edge count. Stored
  /// entries are sample size (counters->sample_vertices += |R|).
  void Sample(Rng* target_rng, Rng* coin_rng, std::vector<VertexId>* out,
              TraversalCounters* counters);

  /// Samples an RR set for a *fixed* target (tests; oracle stratification).
  void SampleForTarget(VertexId target, Rng* coin_rng,
                       std::vector<VertexId>* out,
                       TraversalCounters* counters);

  const InfluenceGraph& influence_graph() const { return *ig_; }

 private:
  const InfluenceGraph* ig_;
  VisitedMarker visited_;
};

/// \brief One chunk's worth of RR sets in flat+offsets (CSR) form, ready
/// for a bulk RrCollection::Merge. Produced by SampleRrShards.
struct RrShard {
  std::vector<VertexId> flat;
  std::vector<std::uint64_t> offsets;  ///< local: offsets[0] = 0
  TraversalCounters counters;
  /// Per-set counter deltas (set i of this shard cost per_set[i]); filled
  /// only when the sampler was asked to record them (RrArena needs them to
  /// attribute exact costs to every prefix).
  std::vector<TraversalCounters> per_set;

  std::uint64_t num_sets() const {
    return offsets.empty() ? 0
                           : static_cast<std::uint64_t>(offsets.size()) - 1;
  }
};

/// Samples `count` RR sets through `engine`, one shard per chunk.
///
/// Chunk c derives its (target, coin) stream pair from the chunk seed
/// DeriveSeed(master_seed, c), so the shard sequence — and therefore the
/// merged collection — is byte-identical for any worker count.
/// `record_per_set` additionally fills RrShard::per_set (never affects
/// the sampled content: recording draws nothing from the streams).
std::vector<RrShard> SampleRrShards(const InfluenceGraph& ig,
                                    std::uint64_t master_seed,
                                    std::uint64_t count,
                                    SamplingEngine* engine,
                                    bool record_per_set = false);

/// \brief A flattened collection of RR sets with an inverted index.
///
/// Storage: entries of set i are flat()[offsets()[i] .. offsets()[i+1]).
/// The inverted index maps vertex v to the ids of the RR sets containing
/// v, enabling O(Σ_v |index(v)|) coverage queries.
class RrCollection {
 public:
  explicit RrCollection(VertexId num_vertices);

  /// Appends one RR set (entries need not be sorted).
  void Add(const std::vector<VertexId>& rr_set);

  /// Bulk-appends shards in shard order: one flat+offsets (CSR-style)
  /// splice per shard instead of a per-set Add loop. Call BuildIndex()
  /// once afterwards.
  void Merge(std::span<const RrShard> shards);

  /// Move overload: when the collection is still empty, the first
  /// shard's flat buffer is adopted wholesale instead of copied (the
  /// single largest allocation of an engine-routed RIS/IMM build);
  /// remaining shards append as usual.
  void Merge(std::vector<RrShard>&& shards);

  std::uint64_t size() const { return static_cast<std::uint64_t>(offsets_.size()) - 1; }
  std::uint64_t total_entries() const {
    return static_cast<std::uint64_t>(flat_.size());
  }
  VertexId num_vertices() const { return num_vertices_; }

  std::span<const VertexId> Set(std::uint64_t i) const {
    return {flat_.data() + offsets_[i], flat_.data() + offsets_[i + 1]};
  }

  /// Builds the vertex -> set-ids index; call after the last Add/Merge and
  /// before InvertedList/CountCovered. Incremental: only sets appended
  /// since the previous build are counting-sorted in (their ids are larger
  /// than every indexed id, so per-vertex lists stay ascending and the
  /// already-indexed prefix is a bulk copy, not a scattered re-placement);
  /// a call with no new sets is a DCHECK-guarded no-op instead of the
  /// full rebuild it used to be (IMM's Merge-then-select rounds hit both
  /// cases every run). Set ids and offsets are 32-bit: a collection must
  /// stay under 2^32 entries (CHECKed; the paper-full grids top out at
  /// ~2^28).
  void BuildIndex();

  /// Ids of the RR sets containing v, ascending. Requires BuildIndex().
  std::span<const std::uint32_t> InvertedList(VertexId v) const;

  /// Number of RR sets intersecting `seeds` (requires BuildIndex()).
  std::uint64_t CountCovered(std::span<const VertexId> seeds) const;

  /// Mean RR-set size: the empirical EPT of Section 3.5.2.
  double MeanSize() const;

 private:
  VertexId num_vertices_;
  std::vector<VertexId> flat_;
  std::vector<std::uint64_t> offsets_;  // size() + 1 entries
  std::vector<std::uint32_t> index_flat_;
  std::vector<std::uint32_t> index_offsets_;  // n + 1 entries once built
  std::uint64_t indexed_sets_ = 0;  // sets covered by the current index
  bool index_built_ = false;
  // Scratch for CountCovered (mutable: queries are logically const).
  mutable std::vector<std::uint32_t> covered_stamp_;
  mutable std::uint32_t covered_epoch_ = 0;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_RR_SAMPLER_H_
