// Lazy-greedy maximum coverage over an RR-set collection: the common core
// of RIS seed selection (paper Section 3.5.1 — "influence maximization is
// therefore equivalent to a maximum coverage problem"), the oracle-greedy
// reference, and IMM's node-selection phase.

#ifndef SOLDIST_SIM_MAX_COVERAGE_H_
#define SOLDIST_SIM_MAX_COVERAGE_H_

#include <vector>

#include "sim/rr_sampler.h"

namespace soldist {

/// Result of a max-coverage run.
struct MaxCoverageResult {
  /// Selected vertices in greedy order.
  std::vector<VertexId> seeds;
  /// Number of RR sets covered by the full selection.
  std::uint64_t covered = 0;

  /// Fraction of the collection covered: F_R(seeds).
  double Fraction(std::uint64_t collection_size) const {
    return collection_size == 0
               ? 0.0
               : static_cast<double>(covered) /
                     static_cast<double>(collection_size);
  }
};

/// \brief Greedy max coverage with CELF-style lazy evaluation.
///
/// Deterministic: ties break toward the smaller vertex id. Requires
/// collection.BuildIndex() to have been called.
MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, int k);

}  // namespace soldist

#endif  // SOLDIST_SIM_MAX_COVERAGE_H_
