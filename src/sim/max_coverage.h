// Lazy-greedy maximum coverage over an RR-set collection: the common core
// of RIS seed selection (paper Section 3.5.1 — "influence maximization is
// therefore equivalent to a maximum coverage problem"), the oracle-greedy
// reference, and IMM's node-selection phase.
//
// The production engine is word-packed: covered/uncovered state lives in
// packed uint64 bitmap words (gain recomputation and set deactivation
// mask whole words at a time and popcount), the CELF lazy queue is a
// gain-indexed bucket array instead of a binary heap (gains are integers
// that only shrink, so a descending cursor over buckets replaces every
// log-n heap operation), and set ids flow through the 32-bit vertex-major
// inverted index. Output is byte-identical to the pre-PR-5 heap
// implementation — same seeds, covered counts, smaller-id tie-breaking,
// and smallest-id zero-gain fill — which is kept as
// MaxCoverageImpl::kReferenceForTest and differentially tested against
// randomized collections (tests/max_coverage_test.cc).

#ifndef SOLDIST_SIM_MAX_COVERAGE_H_
#define SOLDIST_SIM_MAX_COVERAGE_H_

#include <vector>

#include "sim/rr_arena.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// Result of a max-coverage run.
struct MaxCoverageResult {
  /// Selected vertices in greedy order.
  std::vector<VertexId> seeds;
  /// Number of RR sets covered by the full selection.
  std::uint64_t covered = 0;
  /// False when a CancelToken stopped the run between rounds: seeds
  /// holds the completed r-round prefix (r >= 1) — byte-identical to a
  /// direct k = r solve, because greedy selection is prefix-consistent
  /// (round i depends only on rounds < i).
  bool completed = true;

  /// Fraction of the collection covered: F_R(seeds).
  double Fraction(std::uint64_t collection_size) const {
    return collection_size == 0
               ? 0.0
               : static_cast<double>(covered) /
                     static_cast<double>(collection_size);
  }
};

/// Implementation selector: the reference heap engine exists ONLY so
/// tests can differentially verify the word-packed engine; production
/// callers never pass it.
enum class MaxCoverageImpl { kWordPacked, kReferenceForTest };

/// \brief Greedy max coverage with CELF-style lazy evaluation.
///
/// Deterministic: ties break toward the smaller vertex id; once every
/// remaining gain is zero the rest of the seed set is filled with the
/// smallest unselected ids. Requires collection.BuildIndex().
///
/// `cancel` (deadline-aware CELF — serve/resilience.h): the token is
/// checked BETWEEN rounds, so a fired deadline stops selection at a
/// round boundary with the completed prefix (at least round 0 always
/// lands) and MaxCoverageResult::completed = false. Both engines honor
/// it identically, keeping the differential tests valid under cancel.
MaxCoverageResult GreedyMaxCoverage(
    const RrCollection& collection, int k,
    MaxCoverageImpl impl = MaxCoverageImpl::kWordPacked,
    const CancelToken* cancel = nullptr);

/// Same greedy over a zero-copy arena prefix view (the sweep-reuse path):
/// byte-identical to running it on an equal collection.
MaxCoverageResult GreedyMaxCoverage(const RrPrefixView& view, int k,
                                    const CancelToken* cancel = nullptr);

}  // namespace soldist

#endif  // SOLDIST_SIM_MAX_COVERAGE_H_
