#include "sim/lt_forward_sim.h"

#include "random/splitmix64.h"

namespace soldist {

LtForwardSimulator::LtForwardSimulator(const InfluenceGraph* ig)
    : ig_(ig),
      active_(ig->num_vertices()),
      weighted_(ig->num_vertices()),
      weight_(ig->num_vertices(), 0.0),
      threshold_(ig->num_vertices(), 0.0) {
  queue_.reserve(ig->num_vertices());
}

std::uint32_t LtForwardSimulator::Simulate(std::span<const VertexId> seeds,
                                           Rng* rng,
                                           TraversalCounters* counters) {
  const Graph& g = ig_->graph();
  active_.NextEpoch();
  weighted_.NextEpoch();
  queue_.clear();
  for (VertexId s : seeds) {
    if (active_.Mark(s)) queue_.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    counters->vertices += 1;
    const EdgeId begin = g.out_offsets()[u];
    const EdgeId end = g.out_offsets()[u + 1];
    counters->edges += end - begin;
    for (EdgeId e = begin; e < end; ++e) {
      VertexId v = g.out_targets()[e];
      if (active_.IsMarked(v)) continue;
      if (weighted_.Mark(v)) {
        // First contact this run: reset accumulator, draw the threshold.
        weight_[v] = 0.0;
        threshold_[v] = rng->UnitReal();
      }
      weight_[v] += ig_->OutProbability(e);
      if (weight_[v] >= threshold_[v]) {
        active_.Mark(v);
        queue_.push_back(v);
      }
    }
  }
  return static_cast<std::uint32_t>(queue_.size());
}

double LtForwardSimulator::EstimateInfluence(std::span<const VertexId> seeds,
                                             std::uint64_t runs, Rng* rng,
                                             TraversalCounters* counters) {
  SOLDIST_CHECK(runs > 0);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    total += Simulate(seeds, rng, counters);
  }
  return static_cast<double>(total) / static_cast<double>(runs);
}

double EstimateLtInfluenceSharded(const InfluenceGraph& ig,
                                  std::span<const VertexId> seeds,
                                  std::uint64_t runs,
                                  std::uint64_t master_seed,
                                  SamplingEngine* engine,
                                  TraversalCounters* counters,
                                  LtForwardSimulatorCache* cache) {
  SOLDIST_CHECK(runs > 0);
  const std::uint64_t num_chunks = engine->NumChunks(runs);
  LtForwardSimulatorCache local_cache;
  LtForwardSimulatorCache& sims = cache != nullptr ? *cache : local_cache;
  if (sims.size() < engine->num_workers()) {
    sims.resize(engine->num_workers());
  }
  std::vector<std::uint64_t> totals(num_chunks, 0);
  std::vector<TraversalCounters> chunk_counters(num_chunks);
  engine->Run(master_seed, runs,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    if (sims[slot] == nullptr) {
      sims[slot] = std::make_unique<LtForwardSimulator>(&ig);
    }
    Rng rng(DeriveSeed(chunk.seed, 1));
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      totals[chunk.index] +=
          sims[slot]->Simulate(seeds, &rng, &chunk_counters[chunk.index]);
    }
  });
  std::uint64_t total = 0;
  for (std::uint64_t t : totals) total += t;
  if (counters != nullptr) *counters += MergeCounters(chunk_counters);
  return static_cast<double>(total) / static_cast<double>(runs);
}

}  // namespace soldist
