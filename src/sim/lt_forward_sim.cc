#include "sim/lt_forward_sim.h"

namespace soldist {

LtForwardSimulator::LtForwardSimulator(const InfluenceGraph* ig)
    : ig_(ig),
      active_(ig->num_vertices()),
      weighted_(ig->num_vertices()),
      weight_(ig->num_vertices(), 0.0),
      threshold_(ig->num_vertices(), 0.0) {
  queue_.reserve(ig->num_vertices());
}

std::uint32_t LtForwardSimulator::Simulate(std::span<const VertexId> seeds,
                                           Rng* rng,
                                           TraversalCounters* counters) {
  const Graph& g = ig_->graph();
  active_.NextEpoch();
  weighted_.NextEpoch();
  queue_.clear();
  for (VertexId s : seeds) {
    if (active_.Mark(s)) queue_.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    counters->vertices += 1;
    const EdgeId begin = g.out_offsets()[u];
    const EdgeId end = g.out_offsets()[u + 1];
    counters->edges += end - begin;
    for (EdgeId e = begin; e < end; ++e) {
      VertexId v = g.out_targets()[e];
      if (active_.IsMarked(v)) continue;
      if (weighted_.Mark(v)) {
        // First contact this run: reset accumulator, draw the threshold.
        weight_[v] = 0.0;
        threshold_[v] = rng->UnitReal();
      }
      weight_[v] += ig_->OutProbability(e);
      if (weight_[v] >= threshold_[v]) {
        active_.Mark(v);
        queue_.push_back(v);
      }
    }
  }
  return static_cast<std::uint32_t>(queue_.size());
}

double LtForwardSimulator::EstimateInfluence(std::span<const VertexId> seeds,
                                             std::uint64_t runs, Rng* rng,
                                             TraversalCounters* counters) {
  SOLDIST_CHECK(runs > 0);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    total += Simulate(seeds, rng, counters);
  }
  return static_cast<double>(total) / static_cast<double>(runs);
}

}  // namespace soldist
