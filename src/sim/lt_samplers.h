// LT counterparts of the snapshot and RR-set samplers, built on the
// live-edge interpretation: every vertex keeps at most one in-edge.
//
// Consequences exploited here:
//  * an LT snapshot has at most n live edges (in-degree <= 1);
//  * an LT RR set is a backward *walk* (each vertex has one candidate
//    live in-edge), so generation is a chain, not a BFS tree.

#ifndef SOLDIST_SIM_LT_SAMPLERS_H_
#define SOLDIST_SIM_LT_SAMPLERS_H_

#include <vector>

#include "model/lt.h"
#include "sim/snapshot_sampler.h"

namespace soldist {

/// \brief Samples LT live-edge snapshots (reusing the Snapshot struct and
/// the IC sampler's reachability BFS, which is model-agnostic).
class LtSnapshotSampler {
 public:
  explicit LtSnapshotSampler(const LtWeights* weights);

  /// Draws one LT snapshot: per vertex, at most one live in-edge.
  /// Stored live edges count toward counters->sample_edges.
  Snapshot Sample(Rng* rng, TraversalCounters* counters);

  /// Reachability on a sampled snapshot (delegates to the shared BFS).
  std::uint32_t CountReachable(const Snapshot& snapshot,
                               std::span<const VertexId> seeds,
                               TraversalCounters* counters) {
    return bfs_.CountReachable(snapshot, seeds, counters);
  }

 private:
  const LtWeights* weights_;
  SnapshotSampler bfs_;  // used only for its model-agnostic BFS
  std::vector<Arc> scratch_arcs_;
};

/// \brief Samples LT RR sets by a backward random walk.
class LtRrSampler {
 public:
  explicit LtRrSampler(const LtWeights* weights);

  /// Samples one RR set for a uniform random target into `*out`.
  /// Accounting: one vertex and one examined edge per walk step (the
  /// cumulative-table lookup is O(log d) but touches one live edge).
  void Sample(Rng* target_rng, Rng* coin_rng, std::vector<VertexId>* out,
              TraversalCounters* counters);

  /// Walks backward from a fixed target.
  void SampleForTarget(VertexId target, Rng* coin_rng,
                       std::vector<VertexId>* out,
                       TraversalCounters* counters);

 private:
  const LtWeights* weights_;
  VisitedMarker visited_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_LT_SAMPLERS_H_
