// LT counterparts of the snapshot and RR-set samplers, built on the
// live-edge interpretation: every vertex keeps at most one in-edge.
//
// Consequences exploited here:
//  * an LT snapshot has at most n live edges (in-degree <= 1);
//  * an LT RR set is a backward *walk* (each vertex has one candidate
//    live in-edge), so generation is a chain, not a BFS tree.
//
// Both samplers also come in chunked batch form (SampleLtRrShards /
// SampleLtSnapshotShards) on top of SamplingEngine, mirroring the IC
// shard samplers: chunk c draws from streams derived from the chunk seed
// alone, so LT parallel builds are byte-identical for any worker count.

#ifndef SOLDIST_SIM_LT_SAMPLERS_H_
#define SOLDIST_SIM_LT_SAMPLERS_H_

#include <vector>

#include "model/lt.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"

namespace soldist {

/// \brief Samples LT live-edge snapshots (reusing the Snapshot struct and
/// the IC sampler's reachability BFS, which is model-agnostic).
class LtSnapshotSampler {
 public:
  explicit LtSnapshotSampler(const LtWeights* weights);

  /// Draws one LT snapshot: per vertex, at most one live in-edge.
  ///
  /// Build accounting mirrors LtRrSampler: each vertex's SampleLiveInEdge
  /// is one vertex examination (+1 vertex) and a kept live edge is one
  /// edge examination (+1 edge), so LT snapshot build cost shows up in
  /// Table-8-style traversal accounting. Stored live edges count toward
  /// counters->sample_edges.
  Snapshot Sample(Rng* rng, TraversalCounters* counters);

  /// Reachability on a sampled snapshot (delegates to the shared BFS).
  std::uint32_t CountReachable(const Snapshot& snapshot,
                               std::span<const VertexId> seeds,
                               TraversalCounters* counters) {
    return bfs_.CountReachable(snapshot, seeds, counters);
  }

 private:
  const LtWeights* weights_;
  SnapshotSampler bfs_;  // used only for its model-agnostic BFS
  std::vector<Arc> scratch_arcs_;
};

/// \brief Samples LT RR sets by a backward random walk.
class LtRrSampler {
 public:
  explicit LtRrSampler(const LtWeights* weights);

  /// Samples one RR set for a uniform random target into `*out`.
  /// Accounting: one vertex and one examined edge per walk step (the
  /// cumulative-table lookup is O(log d) but touches one live edge).
  void Sample(Rng* target_rng, Rng* coin_rng, std::vector<VertexId>* out,
              TraversalCounters* counters);

  /// Walks backward from a fixed target.
  void SampleForTarget(VertexId target, Rng* coin_rng,
                       std::vector<VertexId>* out,
                       TraversalCounters* counters);

 private:
  const LtWeights* weights_;
  VisitedMarker visited_;
};

/// Samples `count` LT RR sets through `engine`, one RrShard per chunk.
///
/// Chunk c derives its (target, coin) stream pair from the chunk seed
/// DeriveSeed(master_seed, c) exactly like the IC SampleRrShards, so the
/// shard sequence — and therefore the merged collection — is
/// byte-identical for any worker count. `record_per_set` fills
/// RrShard::per_set (pure observation, drawn content unchanged).
std::vector<RrShard> SampleLtRrShards(const LtWeights& weights,
                                      std::uint64_t master_seed,
                                      std::uint64_t count,
                                      SamplingEngine* engine,
                                      bool record_per_set = false);

/// Samples `count` LT snapshots through `engine`, one SnapshotShard per
/// chunk; chunk c draws from a stream seeded with
/// DeriveSeed(DeriveSeed(master_seed, c), 1), mirroring the IC
/// SampleSnapshotShards.
std::vector<SnapshotShard> SampleLtSnapshotShards(const LtWeights& weights,
                                                  std::uint64_t master_seed,
                                                  std::uint64_t count,
                                                  SamplingEngine* engine);

}  // namespace soldist

#endif  // SOLDIST_SIM_LT_SAMPLERS_H_
