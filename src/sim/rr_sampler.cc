#include "sim/rr_sampler.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>

#include "random/splitmix64.h"

namespace soldist {

RrSampler::RrSampler(const InfluenceGraph* ig)
    : ig_(ig), visited_(ig->num_vertices()) {}

void RrSampler::Sample(Rng* target_rng, Rng* coin_rng,
                       std::vector<VertexId>* out,
                       TraversalCounters* counters) {
  auto target =
      static_cast<VertexId>(target_rng->UniformInt(ig_->num_vertices()));
  SampleForTarget(target, coin_rng, out, counters);
}

void RrSampler::SampleForTarget(VertexId target, Rng* coin_rng,
                                std::vector<VertexId>* out,
                                TraversalCounters* counters) {
  const Graph& g = ig_->graph();
  out->clear();
  visited_.NextEpoch();
  visited_.Mark(target);
  out->push_back(target);
  std::size_t head = 0;
  while (head < out->size()) {
    VertexId v = (*out)[head++];
    counters->vertices += 1;
    const EdgeId begin = g.in_offsets()[v];
    const EdgeId end = g.in_offsets()[v + 1];
    counters->edges += end - begin;
    for (EdgeId pos = begin; pos < end; ++pos) {
      VertexId w = g.in_sources()[pos];
      if (visited_.IsMarked(w)) continue;
      if (coin_rng->Bernoulli(ig_->InProbability(pos))) {
        visited_.Mark(w);
        out->push_back(w);
      }
    }
  }
  counters->sample_vertices += out->size();
}

std::vector<RrShard> SampleRrShards(const InfluenceGraph& ig,
                                    std::uint64_t master_seed,
                                    std::uint64_t count,
                                    SamplingEngine* engine,
                                    bool record_per_set) {
  std::vector<RrShard> shards(engine->NumChunks(count));
  // Per-worker-slot samplers: the O(n) scratch is built at most once per
  // slot and reused across chunks; sampler scratch never affects output
  // (every chunk's randomness comes from its own derived streams).
  std::vector<std::unique_ptr<RrSampler>> samplers(engine->num_workers());
  // Per-slot running mean RR-set size: later chunks pre-reserve their
  // flat buffer instead of growing it through doubling reallocations.
  // Slot statistics are schedule-dependent scratch — they size capacity
  // only, never content.
  struct SlotStats {
    std::uint64_t sets = 0;
    std::uint64_t entries = 0;
  };
  std::vector<SlotStats> stats(engine->num_workers());
  const CancelToken* cancel = engine->cancel();
  engine->Run(master_seed, count,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    // Cooperative cancel: a fired token skips whole chunks (the empty
    // shard marks the cut) — except chunk 0, so at least one set always
    // lands. Completed-prefix content is untouched, so a cancelled
    // build truncates to a byte-identical smaller arena.
    if (cancel != nullptr && chunk.index > 0 && cancel->cancelled()) {
      return;
    }
    if (samplers[slot] == nullptr) {
      samplers[slot] = std::make_unique<RrSampler>(&ig);
    }
    Rng target_rng(DeriveSeed(chunk.seed, 1));
    Rng coin_rng(DeriveSeed(chunk.seed, 2));
    RrShard& shard = shards[chunk.index];
    const std::uint64_t chunk_sets = chunk.end - chunk.begin;
    shard.offsets.reserve(chunk_sets + 1);
    shard.offsets.push_back(0);
    SlotStats& st = stats[slot];
    if (st.sets > 0) {
      const double mean = static_cast<double>(st.entries) /
                          static_cast<double>(st.sets);
      shard.flat.reserve(
          static_cast<std::size_t>(mean * static_cast<double>(chunk_sets) *
                                   1.25) +
          16);
    }
    std::vector<VertexId> rr_set;
    if (record_per_set) shard.per_set.reserve(chunk_sets);
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      // Per-set cancel inside the chunk (guarded so the global first set
      // always completes); a partial shard keeps its produced prefix.
      if (cancel != nullptr && (chunk.index > 0 || i > chunk.begin) &&
          cancel->cancelled()) {
        break;
      }
      const TraversalCounters before = shard.counters;
      samplers[slot]->Sample(&target_rng, &coin_rng, &rr_set,
                             &shard.counters);
      if (record_per_set) {
        TraversalCounters delta;
        delta.vertices = shard.counters.vertices - before.vertices;
        delta.edges = shard.counters.edges - before.edges;
        delta.sample_vertices =
            shard.counters.sample_vertices - before.sample_vertices;
        delta.sample_edges =
            shard.counters.sample_edges - before.sample_edges;
        shard.per_set.push_back(delta);
      }
      shard.flat.insert(shard.flat.end(), rr_set.begin(), rr_set.end());
      shard.offsets.push_back(static_cast<std::uint64_t>(shard.flat.size()));
    }
    st.sets += chunk_sets;
    st.entries += static_cast<std::uint64_t>(shard.flat.size());
  });
  return shards;
}

RrCollection::RrCollection(VertexId num_vertices)
    : num_vertices_(num_vertices) {
  offsets_.push_back(0);
}

void RrCollection::Add(const std::vector<VertexId>& rr_set) {
  flat_.insert(flat_.end(), rr_set.begin(), rr_set.end());
  offsets_.push_back(static_cast<std::uint64_t>(flat_.size()));
  index_built_ = false;
}

void RrCollection::Merge(std::vector<RrShard>&& shards) {
  std::size_t first = 0;
  if (flat_.empty() && size() == 0 && !shards.empty()) {
    // Adopt the first shard's flat buffer: on a fresh collection this is
    // a pointer swap instead of the build's single largest copy.
    RrShard& head = shards[0];
    flat_ = std::move(head.flat);
    offsets_.reserve(offsets_.size() + head.num_sets());
    for (std::uint64_t j = 1; j < head.offsets.size(); ++j) {
      offsets_.push_back(head.offsets[j]);
    }
    index_built_ = false;
    first = 1;
  }
  Merge(std::span<const RrShard>(shards.data() + first,
                                 shards.size() - first));
}

void RrCollection::Merge(std::span<const RrShard> shards) {
  std::uint64_t extra_entries = 0;
  std::uint64_t extra_sets = 0;
  for (const RrShard& shard : shards) {
    extra_entries += shard.flat.size();
    extra_sets += shard.num_sets();
  }
  flat_.reserve(flat_.size() + extra_entries);
  offsets_.reserve(offsets_.size() + extra_sets);
  for (const RrShard& shard : shards) {
    const std::uint64_t base = static_cast<std::uint64_t>(flat_.size());
    flat_.insert(flat_.end(), shard.flat.begin(), shard.flat.end());
    for (std::uint64_t j = 1; j < shard.offsets.size(); ++j) {
      offsets_.push_back(base + shard.offsets[j]);
    }
  }
  index_built_ = false;
}

void RrCollection::BuildIndex() {
  const std::uint64_t total_sets = size();
  SOLDIST_CHECK(total_sets <=
                std::numeric_limits<std::uint32_t>::max())
      << "32-bit set ids overflow: " << total_sets << " RR sets";
  SOLDIST_CHECK(flat_.size() <=
                std::numeric_limits<std::uint32_t>::max())
      << "32-bit index offsets overflow: " << flat_.size() << " entries";
  if (index_built_ && indexed_sets_ == total_sets) {
    // Double-build with no new sets: a no-op, never a full rebuild
    // (IMM's final selection round builds on an unchanged collection).
    SOLDIST_DCHECK(index_flat_.size() == flat_.size())
        << "index/content mismatch on a supposedly indexed collection";
    return;
  }
  // Single-pass counting sort of the appended tail: new per-vertex counts
  // come from one scan of the un-indexed entries; appended set ids exceed
  // every indexed id, so the old per-vertex lists are bulk-copied in front
  // and the new ids placed behind them keep each list ascending.
  const std::uint64_t n = num_vertices_;
  const std::uint64_t indexed_entries = offsets_[indexed_sets_];
  SOLDIST_DCHECK(index_flat_.size() == indexed_entries);
  std::vector<std::uint32_t> new_offsets(n + 1, 0);
  for (std::uint64_t pos = indexed_entries; pos < flat_.size(); ++pos) {
    ++new_offsets[static_cast<std::size_t>(flat_[pos]) + 1];
  }
  if (indexed_sets_ > 0) {
    for (std::uint64_t v = 0; v < n; ++v) {
      new_offsets[v + 1] += index_offsets_[v + 1] - index_offsets_[v];
    }
  }
  std::partial_sum(new_offsets.begin(), new_offsets.end(),
                   new_offsets.begin());
  std::vector<std::uint32_t> new_flat(flat_.size());
  std::vector<std::uint32_t> cursor(new_offsets.begin(),
                                    new_offsets.end() - 1);
  if (indexed_sets_ > 0) {
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::uint32_t len = index_offsets_[v + 1] - index_offsets_[v];
      std::copy_n(index_flat_.begin() + index_offsets_[v], len,
                  new_flat.begin() + cursor[v]);
      cursor[v] += len;
    }
  }
  for (std::uint64_t set_id = indexed_sets_; set_id < total_sets;
       ++set_id) {
    for (VertexId v : Set(set_id)) {
      new_flat[cursor[v]++] = static_cast<std::uint32_t>(set_id);
    }
  }
  index_flat_ = std::move(new_flat);
  index_offsets_ = std::move(new_offsets);
  indexed_sets_ = total_sets;
  covered_stamp_.assign(total_sets, 0);
  covered_epoch_ = 0;
  index_built_ = true;
}

std::span<const std::uint32_t> RrCollection::InvertedList(VertexId v) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  SOLDIST_DCHECK(v < num_vertices_);
  return {index_flat_.data() + index_offsets_[v],
          index_flat_.data() + index_offsets_[v + 1]};
}

std::uint64_t RrCollection::CountCovered(
    std::span<const VertexId> seeds) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  if (++covered_epoch_ == 0) {
    std::fill(covered_stamp_.begin(), covered_stamp_.end(), 0);
    covered_epoch_ = 1;
  }
  std::uint64_t covered = 0;
  for (VertexId v : seeds) {
    for (std::uint32_t set_id : InvertedList(v)) {
      if (covered_stamp_[set_id] != covered_epoch_) {
        covered_stamp_[set_id] = covered_epoch_;
        ++covered;
      }
    }
  }
  return covered;
}

double RrCollection::MeanSize() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(total_entries()) / static_cast<double>(size());
}

}  // namespace soldist
