#include "sim/rr_arena.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "random/splitmix64.h"
#include "sim/lt_samplers.h"
#include "util/logging.h"

namespace soldist {
namespace {

/// Rebuilds the vertex-major ascending inverted index of a flat payload
/// (counting sort over the flat array — deterministic, so save/load
/// round-trips reproduce the index byte-for-byte).
void BuildFlatIndex(store::RrFlatPayload* payload, VertexId num_vertices) {
  const std::uint64_t n = num_vertices;
  payload->index_offsets.assign(n + 1, 0);
  for (VertexId v : payload->flat) {
    ++payload->index_offsets[static_cast<std::size_t>(v) + 1];
  }
  std::partial_sum(payload->index_offsets.begin(),
                   payload->index_offsets.end(),
                   payload->index_offsets.begin());
  payload->index_ids.resize(payload->flat.size());
  std::vector<std::uint32_t> cursor(payload->index_offsets.begin(),
                                    payload->index_offsets.end() - 1);
  const std::uint64_t num_sets =
      static_cast<std::uint64_t>(payload->set_offsets.size()) - 1;
  for (std::uint64_t set_id = 0; set_id < num_sets; ++set_id) {
    for (std::uint64_t k = payload->set_offsets[set_id];
         k < payload->set_offsets[set_id + 1]; ++k) {
      payload->index_ids[cursor[payload->flat[k]]++] =
          static_cast<std::uint32_t>(set_id);
    }
  }
}

/// Cuts a possibly-cancelled shard list to its longest contiguous
/// completed prefix: an empty shard (skipped chunk) or a short shard
/// (per-set cancel inside a chunk) marks the cut; a short shard's
/// produced prefix is kept. Returns the number of surviving sets.
/// Because chunk c draws only from DeriveSeed(master, c) and sets are
/// drawn in order, the survivors are byte-identical to a direct build
/// at the returned (smaller) capacity.
std::uint64_t TruncateCancelledShards(std::vector<RrShard>* shards,
                                      std::uint64_t chunk_size,
                                      std::uint64_t capacity) {
  std::uint64_t kept = 0;
  std::size_t keep_shards = 0;
  for (std::size_t s = 0; s < shards->size(); ++s) {
    const RrShard& shard = (*shards)[s];
    if (shard.offsets.empty()) break;
    const std::uint64_t begin = s * chunk_size;
    const std::uint64_t expected =
        std::min(begin + chunk_size, capacity) - begin;
    kept += shard.num_sets();
    keep_shards = s + 1;
    if (shard.num_sets() < expected) break;
  }
  shards->resize(keep_shards);
  return kept;
}

}  // namespace

RrArena RrArena::SampleIc(const InfluenceGraph& ig, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling) {
  SOLDIST_CHECK(capacity >= 1);
  RrArena arena;
  arena.num_vertices_ = ig.num_vertices();
  if (sampling.UseEngine()) {
    SamplingEngine engine(sampling);
    std::vector<RrShard> shards = SampleRrShards(ig, seed, capacity, &engine,
                                                 /*record_per_set=*/true);
    const std::uint64_t actual =
        sampling.cancel == nullptr
            ? capacity
            : TruncateCancelledShards(&shards, engine.chunk_size(), capacity);
    arena.Finalize(std::move(shards), actual);
    return arena;
  }
  // Legacy sequential discipline (RisEstimator::Build's non-engine path):
  // one (target, coin) stream pair drives every set in order, so every
  // prefix coincides with a direct smaller build.
  RrSampler sampler(&ig);
  Rng target_rng(DeriveSeed(seed, 1));
  Rng coin_rng(DeriveSeed(seed, 2));
  std::vector<RrShard> shards(1);
  RrShard& shard = shards[0];
  shard.offsets.reserve(capacity + 1);
  shard.offsets.push_back(0);
  shard.per_set.reserve(capacity);
  std::vector<VertexId> rr_set;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    // Cooperative cancel: the single-stream loop simply stops early; the
    // produced prefix IS a direct smaller build (set 0 always lands).
    if (sampling.cancel != nullptr && i > 0 && sampling.cancel->cancelled()) {
      break;
    }
    const TraversalCounters before = shard.counters;
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &shard.counters);
    TraversalCounters delta;
    delta.vertices = shard.counters.vertices - before.vertices;
    delta.edges = shard.counters.edges - before.edges;
    delta.sample_vertices =
        shard.counters.sample_vertices - before.sample_vertices;
    delta.sample_edges = shard.counters.sample_edges - before.sample_edges;
    shard.per_set.push_back(delta);
    shard.flat.insert(shard.flat.end(), rr_set.begin(), rr_set.end());
    shard.offsets.push_back(static_cast<std::uint64_t>(shard.flat.size()));
  }
  arena.Finalize(std::move(shards), shard.num_sets());
  return arena;
}

RrArena RrArena::SampleLt(const LtWeights& weights, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling) {
  SOLDIST_CHECK(capacity >= 1);
  RrArena arena;
  arena.num_vertices_ = weights.influence_graph().num_vertices();
  // LT RIS always draws through the chunked engine streams (the engine
  // runs inline for the default SamplingOptions) — same as
  // LtRisEstimator::Build.
  SamplingEngine engine(sampling);
  std::vector<RrShard> shards = SampleLtRrShards(weights, seed, capacity,
                                                 &engine,
                                                 /*record_per_set=*/true);
  const std::uint64_t actual =
      sampling.cancel == nullptr
          ? capacity
          : TruncateCancelledShards(&shards, engine.chunk_size(), capacity);
  arena.Finalize(std::move(shards), actual);
  return arena;
}

RrArena RrArena::SampleFor(const ModelInstance& instance, std::uint64_t seed,
                           std::uint64_t capacity,
                           const SamplingOptions& sampling) {
  SOLDIST_CHECK(instance.ig != nullptr);
  if (instance.model == DiffusionModel::kLt) {
    SOLDIST_CHECK(instance.lt_weights != nullptr)
        << "LT instance without LtWeights";
    return SampleLt(*instance.lt_weights, seed, capacity, sampling);
  }
  return SampleIc(*instance.ig, seed, capacity, sampling);
}

RrArena RrArena::FromParts(VertexId num_vertices,
                           std::vector<VertexId> flat,
                           std::vector<std::uint64_t> set_offsets,
                           const std::vector<TraversalCounters>& per_set) {
  SOLDIST_CHECK(!set_offsets.empty());
  SOLDIST_CHECK(set_offsets.size() == per_set.size() + 1);
  SOLDIST_CHECK(set_offsets.back() ==
                static_cast<std::uint64_t>(flat.size()));
  RrArena arena;
  arena.num_vertices_ = num_vertices;
  arena.counters_.Reserve(per_set.size());
  for (const TraversalCounters& delta : per_set) {
    arena.counters_.Append(delta);
  }
  store::RrFlatPayload payload;
  payload.flat = std::move(flat);
  payload.set_offsets = std::move(set_offsets);
  BuildFlatIndex(&payload, num_vertices);
  arena.AdoptPayload(std::move(payload));
  return arena;
}

void RrArena::Finalize(std::vector<RrShard>&& shards,
                       std::uint64_t capacity) {
  std::uint64_t total_entries = 0;
  for (const RrShard& shard : shards) total_entries += shard.flat.size();
  SOLDIST_CHECK(capacity <= std::numeric_limits<std::uint32_t>::max())
      << "32-bit set ids overflow: arena capacity " << capacity;
  SOLDIST_CHECK(total_entries <= std::numeric_limits<std::uint32_t>::max())
      << "32-bit index offsets overflow: " << total_entries << " entries";
  store::RrFlatPayload payload;
  payload.set_offsets.reserve(capacity + 1);
  payload.set_offsets.push_back(0);
  counters_.Reserve(capacity);
  if (!shards.empty()) {
    // Adopt the first shard's flat buffer (cf. RrCollection::Merge's
    // rvalue overload); remaining shards append.
    payload.flat = std::move(shards[0].flat);
    payload.flat.reserve(total_entries);
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    RrShard& shard = shards[s];
    const std::uint64_t base =
        s == 0 ? 0
               : static_cast<std::uint64_t>(payload.flat.size());
    if (s > 0) {
      payload.flat.insert(payload.flat.end(), shard.flat.begin(),
                          shard.flat.end());
    }
    SOLDIST_CHECK(shard.per_set.size() == shard.num_sets());
    for (std::uint64_t j = 1; j < shard.offsets.size(); ++j) {
      payload.set_offsets.push_back(base + shard.offsets[j]);
      counters_.Append(shard.per_set[j - 1]);
    }
  }
  SOLDIST_CHECK(this->capacity() == capacity)
      << "shards produced " << this->capacity() << " sets, expected "
      << capacity;
  BuildFlatIndex(&payload, num_vertices_);
  AdoptPayload(std::move(payload));
}

void RrArena::AdoptPayload(store::RrFlatPayload&& payload) {
  auto flat = std::make_shared<store::FlatStorage>(std::move(payload),
                                                   num_vertices_);
  flat_ = flat->flat_payload();
  storage_ = std::move(flat);
}

Status RrArena::ConvertStorage(const store::StorageOptions& options) {
  SOLDIST_RETURN_IF_ERROR(options.Validate());
  SOLDIST_CHECK(storage_ != nullptr);
  if (options.backend == storage_->backend()) return Status::OK();
  if (flat_ == nullptr) {
    return Status::FailedPrecondition(
        "ConvertStorage: only a flat arena can re-home its payload "
        "(current backend: " +
        std::string(store::ArenaBackendName(storage_->backend())) + ")");
  }
  // Copy the payload out (the encoder reads it while the flat storage is
  // still alive), then swap the handle.
  store::RrFlatPayload payload = *flat_;
  StatusOr<std::shared_ptr<const store::RrStorage>> next =
      store::MakeRrStorage(std::move(payload), num_vertices_, options);
  if (!next.ok()) return next.status();
  storage_ = std::move(next).value();
  flat_ = storage_->flat_payload();
  return Status::OK();
}

std::span<const std::uint32_t> RrArena::InvertedPrefix(
    VertexId v, std::uint64_t count) const {
  SOLDIST_DCHECK(v < num_vertices_);
  std::span<const std::uint32_t> all = InvertedAll(v);
  if (count >= capacity()) return all;
  const auto bound = static_cast<std::uint32_t>(count);
  return all.first(static_cast<std::size_t>(
      std::lower_bound(all.begin(), all.end(), bound) - all.begin()));
}

std::span<const std::uint32_t> RrArena::InvertedPrefix(
    VertexId v, std::uint64_t count, store::StorageScratch* scratch) const {
  SOLDIST_DCHECK(v < num_vertices_);
  std::span<const std::uint32_t> all = InvertedAll(v, scratch);
  if (count >= capacity()) return all;
  const auto bound = static_cast<std::uint32_t>(count);
  return all.first(static_cast<std::size_t>(
      std::lower_bound(all.begin(), all.end(), bound) - all.begin()));
}

std::uint64_t RrArena::MemoryBytes() const {
  return storage_->MemoryBytes() + counters_.MemoryBytes();
}

std::uint64_t RrArena::ResidentBytes() const {
  return storage_->ResidentBytes() + counters_.MemoryBytes();
}

std::uint64_t RrArena::ContentChecksum() const {
  const std::uint64_t cap = capacity();
  const std::uint64_t n = num_vertices_;
  std::uint64_t hash = Fnv1a64(&cap, sizeof(cap));
  hash = Fnv1a64(&n, sizeof(n), hash);
  // The inverted lists are identical across backends and fully determine
  // set membership, so hashing them (not the backend's physical bytes)
  // keeps the checksum stable under ConvertStorage and save/load.
  store::StorageScratch scratch;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const std::span<const std::uint32_t> ids = InvertedAll(v, &scratch);
    const std::uint64_t len = ids.size();
    hash = Fnv1a64(&len, sizeof(len), hash);
    if (!ids.empty()) hash = Fnv1a64(ids.data(), ids.size_bytes(), hash);
  }
  return hash;
}

RrPrefixView RrArena::Prefix(std::uint64_t count) const {
  return RrPrefixView(this, count);
}

RrPrefixView::RrPrefixView(const RrArena* arena, std::uint64_t count)
    : arena_(arena), count_(count) {
  SOLDIST_CHECK(count_ >= 1);
  SOLDIST_CHECK(count_ <= arena_->capacity())
      << "prefix " << count_ << " exceeds arena capacity "
      << arena_->capacity();
  const VertexId n = arena_->num_vertices();
  cut_.resize(n);
  if (!arena_->is_flat()) {
    // Encoded backend: materialize the prefix once so estimators and
    // CELF run the identical access pattern they run on a flat arena.
    // Sets come back sorted ascending (order-free consumers only);
    // inverted lists decode to exactly the flat index, cut at count_.
    materialized_ = true;
    store::StorageScratch scratch;
    own_set_offsets_.reserve(count_ + 1);
    own_set_offsets_.push_back(0);
    for (std::uint64_t i = 0; i < count_; ++i) {
      std::span<const VertexId> set = arena_->Set(i, &scratch);
      own_flat_.insert(own_flat_.end(), set.begin(), set.end());
      own_set_offsets_.push_back(
          static_cast<std::uint64_t>(own_flat_.size()));
    }
    const auto bound = static_cast<std::uint32_t>(count_);
    own_index_offsets_.reserve(static_cast<std::size_t>(n) + 1);
    own_index_offsets_.push_back(0);
    for (VertexId v = 0; v < n; ++v) {
      std::span<const std::uint32_t> all = arena_->InvertedAll(v, &scratch);
      const std::size_t keep =
          count_ == arena_->capacity()
              ? all.size()
              : static_cast<std::size_t>(
                    std::lower_bound(all.begin(), all.end(), bound) -
                    all.begin());
      own_ids_.insert(own_ids_.end(), all.begin(), all.begin() + keep);
      own_index_offsets_.push_back(
          static_cast<std::uint32_t>(own_ids_.size()));
      cut_[v] = static_cast<std::uint32_t>(keep);
    }
    return;
  }
  if (count_ == arena_->capacity()) {
    // Full-arena view: every inverted list is already entirely in range,
    // so the cut is its length — no binary searches.
    for (VertexId v = 0; v < n; ++v) {
      cut_[v] = static_cast<std::uint32_t>(arena_->InvertedAll(v).size());
    }
    return;
  }
  const auto bound = static_cast<std::uint32_t>(count_);
  for (VertexId v = 0; v < n; ++v) {
    std::span<const std::uint32_t> all = arena_->InvertedAll(v);
    cut_[v] = static_cast<std::uint32_t>(
        std::lower_bound(all.begin(), all.end(), bound) - all.begin());
  }
}

double RrPrefixView::MeanSize() const {
  if (count_ == 0) return 0.0;
  const std::uint64_t entries = arena_->PrefixCounters(count_).sample_vertices;
  return static_cast<double>(entries) / static_cast<double>(count_);
}

// ---------------------------------------------------------------------
// Compressed storage (moved from sim/rr_compress.cc).
// ---------------------------------------------------------------------

void VarintEncode(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t VarintDecode(const std::uint8_t* data, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    std::uint8_t byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    SOLDIST_DCHECK(shift < 64);
  }
  return v;
}

CompressedRrCollection::CompressedRrCollection(VertexId num_vertices)
    : num_vertices_(num_vertices) {
  set_offsets_.push_back(0);
}

void CompressedRrCollection::Add(const std::vector<VertexId>& rr_set) {
  std::vector<VertexId> sorted = rr_set;
  std::sort(sorted.begin(), sorted.end());
  VarintEncode(sorted.size(), &set_bytes_);
  VertexId prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // First entry absolute, rest gaps (>= 1 since entries are distinct).
    std::uint64_t delta = i == 0 ? sorted[0] : sorted[i] - prev;
    VarintEncode(delta, &set_bytes_);
    prev = sorted[i];
  }
  set_offsets_.push_back(static_cast<std::uint64_t>(set_bytes_.size()));
  total_entries_ += sorted.size();
  index_built_ = false;
}

void CompressedRrCollection::DecodeSet(std::uint64_t i,
                                       std::vector<VertexId>* out) const {
  SOLDIST_DCHECK(i < size());
  out->clear();
  std::size_t pos = set_offsets_[i];
  std::uint64_t count = VarintDecode(set_bytes_.data(), &pos);
  std::uint64_t value = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    value += VarintDecode(set_bytes_.data(), &pos);
    out->push_back(static_cast<VertexId>(value));
  }
}

void CompressedRrCollection::BuildIndex() {
  // Two passes: count per-vertex list lengths, then encode each vertex's
  // ascending set ids as gaps. Set ids are visited in ascending order so
  // a per-vertex "previous id" array suffices.
  std::vector<std::uint32_t> list_len(num_vertices_, 0);
  std::vector<VertexId> decoded;
  for (std::uint64_t i = 0; i < size(); ++i) {
    DecodeSet(i, &decoded);
    for (VertexId v : decoded) ++list_len[v];
  }
  // Encode into per-vertex byte buffers sized by a conservative pass.
  std::vector<std::vector<std::uint8_t>> per_vertex(num_vertices_);
  std::vector<std::uint64_t> prev_id(num_vertices_, 0);
  std::vector<std::uint8_t> has_any(num_vertices_, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    VarintEncode(list_len[v], &per_vertex[v]);
  }
  for (std::uint64_t i = 0; i < size(); ++i) {
    DecodeSet(i, &decoded);
    for (VertexId v : decoded) {
      std::uint64_t delta = has_any[v] ? i - prev_id[v] : i;
      VarintEncode(delta, &per_vertex[v]);
      prev_id[v] = i;
      has_any[v] = 1;
    }
  }
  index_bytes_.clear();
  index_offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    index_bytes_.insert(index_bytes_.end(), per_vertex[v].begin(),
                        per_vertex[v].end());
    index_offsets_[v + 1] = static_cast<std::uint64_t>(index_bytes_.size());
  }
  covered_stamp_.assign(size(), 0);
  covered_epoch_ = 0;
  index_built_ = true;
}

void CompressedRrCollection::DecodeInvertedList(
    VertexId v, std::vector<std::uint64_t>* out) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  SOLDIST_DCHECK(v < num_vertices_);
  out->clear();
  std::size_t pos = index_offsets_[v];
  std::uint64_t count = VarintDecode(index_bytes_.data(), &pos);
  std::uint64_t id = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    id += VarintDecode(index_bytes_.data(), &pos);
    out->push_back(id);
  }
}

std::uint64_t CompressedRrCollection::CountCovered(
    std::span<const VertexId> seeds) const {
  SOLDIST_CHECK(index_built_) << "call BuildIndex() first";
  if (++covered_epoch_ == 0) {
    std::fill(covered_stamp_.begin(), covered_stamp_.end(), 0);
    covered_epoch_ = 1;
  }
  std::uint64_t covered = 0;
  for (VertexId v : seeds) {
    DecodeInvertedList(v, &scratch_ids_);
    for (std::uint64_t set_id : scratch_ids_) {
      if (covered_stamp_[set_id] != covered_epoch_) {
        covered_stamp_[set_id] = covered_epoch_;
        ++covered;
      }
    }
  }
  return covered;
}

std::uint64_t CompressedRrCollection::MemoryBytes() const {
  return set_bytes_.size() + index_bytes_.size() +
         set_offsets_.size() * sizeof(std::uint64_t) +
         index_offsets_.size() * sizeof(std::uint64_t);
}

std::uint64_t CompressedRrCollection::UncompressedBytes() const {
  // RrCollection: 4 B per set entry, 4 B per (32-bit) index entry, plus
  // the 8 B set offsets and 4 B index offsets.
  return total_entries_ * (4 + 4) +
         set_offsets_.size() * sizeof(std::uint64_t) +
         (static_cast<std::uint64_t>(num_vertices_) + 1) *
             sizeof(std::uint32_t);
}

}  // namespace soldist
