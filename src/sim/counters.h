// Traversal-cost and sample-size counters (paper Sections 1.3, 3.2).
//
// The paper deliberately measures implementation-independent work instead
// of CPU time: the number of vertices/edges *examined* (traversal cost,
// proportional to running time) and the number of vertices/edges *stored*
// as samples (sample size, proportional to memory usage).

#ifndef SOLDIST_SIM_COUNTERS_H_
#define SOLDIST_SIM_COUNTERS_H_

#include <cstdint>
#include <span>

namespace soldist {

/// \brief Work counters threaded through every sampler and estimator.
struct TraversalCounters {
  /// Vertices examined by diffusion simulation, snapshot BFS, or RR-set
  /// generation (a vertex may be counted many times across samples).
  std::uint64_t vertices = 0;
  /// Edges examined (every out-edge of a scanned vertex in forward
  /// traversals; every in-edge in reverse traversals; only *live* edges in
  /// snapshot BFS — that is what produces the m̃/m factor of Section 5.3.2).
  std::uint64_t edges = 0;
  /// Vertices stored in memory as samples (RR-set entries).
  std::uint64_t sample_vertices = 0;
  /// Edges stored in memory as samples (live edges of snapshots).
  std::uint64_t sample_edges = 0;

  void Reset() { *this = TraversalCounters{}; }

  /// Total sample size, the paper's "(# vertices) + (# edges)" stored.
  std::uint64_t TotalSampleSize() const {
    return sample_vertices + sample_edges;
  }

  TraversalCounters& operator+=(const TraversalCounters& other) {
    vertices += other.vertices;
    edges += other.edges;
    sample_vertices += other.sample_vertices;
    sample_edges += other.sample_edges;
    return *this;
  }
};

/// Sum of per-thread/per-chunk counter shards (integer fields, so the
/// merge is order-independent and thread-count-independent).
TraversalCounters MergeCounters(std::span<const TraversalCounters> parts);

}  // namespace soldist

#endif  // SOLDIST_SIM_COUNTERS_H_
