// Compressed RR-set storage: the paper's concluding remarks (Section 7)
// ask whether Snapshot/RIS memory can be cut "e.g., by compressing
// reverse-reachable sets" — this module answers with a delta+varint
// encoded collection exposing the same query API as RrCollection.
//
// Layout: each RR set is sorted, delta-encoded, and LEB128-varint packed;
// the inverted index (vertex -> ids of containing sets) is stored the
// same way. Small RR sets over dense ids compress to 1-2 bytes/entry vs
// 4 (sets) + 8 (index) in the uncompressed collection.

#ifndef SOLDIST_SIM_RR_COMPRESS_H_
#define SOLDIST_SIM_RR_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sim/rr_sampler.h"

namespace soldist {

/// Appends v as LEB128 to `out`.
void VarintEncode(std::uint64_t v, std::vector<std::uint8_t>* out);

/// Decodes one LEB128 value from data[*pos], advancing *pos.
std::uint64_t VarintDecode(const std::uint8_t* data, std::size_t* pos);

/// \brief RR-set collection with compressed sets and compressed inverted
/// index. Query-compatible with RrCollection (decode on the fly).
class CompressedRrCollection {
 public:
  explicit CompressedRrCollection(VertexId num_vertices);

  /// Appends one RR set (copied, sorted, delta+varint encoded).
  void Add(const std::vector<VertexId>& rr_set);

  /// Builds the compressed inverted index; call after the last Add.
  void BuildIndex();

  std::uint64_t size() const {
    return static_cast<std::uint64_t>(set_offsets_.size()) - 1;
  }
  std::uint64_t total_entries() const { return total_entries_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Decodes set i into *out (sorted ascending).
  void DecodeSet(std::uint64_t i, std::vector<VertexId>* out) const;

  /// Decodes the ids of sets containing v into *out (ascending).
  /// Requires BuildIndex().
  void DecodeInvertedList(VertexId v, std::vector<std::uint64_t>* out) const;

  /// Number of RR sets intersecting `seeds` (requires BuildIndex()).
  std::uint64_t CountCovered(std::span<const VertexId> seeds) const;

  /// Heap bytes used by the compressed payloads (sets + index + offsets).
  std::uint64_t MemoryBytes() const;

  /// Bytes an uncompressed RrCollection needs for the same content
  /// (4 B/set entry + 8 B/index entry + offset arrays), for comparison.
  std::uint64_t UncompressedBytes() const;

 private:
  VertexId num_vertices_;
  std::uint64_t total_entries_ = 0;
  std::vector<std::uint8_t> set_bytes_;
  std::vector<std::uint64_t> set_offsets_;  // into set_bytes_
  std::vector<std::uint8_t> index_bytes_;
  std::vector<std::uint64_t> index_offsets_;  // per vertex, into index_bytes_
  bool index_built_ = false;
  mutable std::vector<std::uint32_t> covered_stamp_;
  mutable std::uint32_t covered_epoch_ = 0;
  mutable std::vector<std::uint64_t> scratch_ids_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_RR_COMPRESS_H_
