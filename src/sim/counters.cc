#include "sim/counters.h"

// Header-only; anchors the library target.
