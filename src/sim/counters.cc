#include "sim/counters.h"

namespace soldist {

TraversalCounters MergeCounters(std::span<const TraversalCounters> parts) {
  TraversalCounters total;
  for (const TraversalCounters& part : parts) total += part;
  return total;
}

}  // namespace soldist
