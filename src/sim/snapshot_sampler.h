// Snapshot sampling (paper Section 3.4): live-edge random graphs G(i) ~ G
// generated once in Build and shared across the greedy selection.

#ifndef SOLDIST_SIM_SNAPSHOT_SAMPLER_H_
#define SOLDIST_SIM_SNAPSHOT_SAMPLER_H_

#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief One live-edge random graph in CSR form.
struct Snapshot {
  std::vector<EdgeId> out_offsets;    // size n+1
  std::vector<VertexId> out_targets;  // live edges only

  EdgeId num_live_edges() const {
    return static_cast<EdgeId>(out_targets.size());
  }
};

/// \brief Samples snapshots and answers reachability on them.
class SnapshotSampler {
 public:
  explicit SnapshotSampler(const InfluenceGraph* ig);

  /// Draws one snapshot: every edge e kept independently with p(e).
  ///
  /// Accounting: stored live edges are *sample size* (counters->
  /// sample_edges); the coin flip per edge is Build work the paper
  /// excludes from the traversal cost ("Build touches each edge only τ
  /// times, which does not dominate", Section 3.4.2).
  Snapshot Sample(Rng* rng, TraversalCounters* counters);

  /// Sample into a caller-owned snapshot, reusing its buffers — the
  /// condensed build discards each raw CSR right after condensing it, so
  /// one scratch snapshot serves the whole loop.
  void SampleInto(Rng* rng, TraversalCounters* counters, Snapshot* out);

  /// r_G(i)(seeds): vertices reachable from `seeds` in `snapshot`.
  ///
  /// Accounting: each reached vertex is scanned (+1 vertex) and its *live*
  /// out-edges are examined (+live-degree edges) — the m̃/m edge-cost
  /// factor of Section 5.3.2 comes from scanning live edges only.
  std::uint32_t CountReachable(const Snapshot& snapshot,
                               std::span<const VertexId> seeds,
                               TraversalCounters* counters);

  /// Like CountReachable but returns the reached set (visit order).
  std::vector<VertexId> ReachableSet(const Snapshot& snapshot,
                                     std::span<const VertexId> seeds,
                                     TraversalCounters* counters);

 private:
  const InfluenceGraph* ig_;
  VisitedMarker visited_;
  std::vector<VertexId> queue_;
};

/// \brief One chunk's worth of snapshots, produced by SampleSnapshotShards.
struct SnapshotShard {
  std::vector<Snapshot> snapshots;
  TraversalCounters counters;
};

/// Samples `count` snapshots through `engine`, one shard per chunk; chunk
/// c draws from a stream seeded with DeriveSeed(DeriveSeed(master_seed, c),
/// 1), so the concatenation in shard order is worker-count-independent.
std::vector<SnapshotShard> SampleSnapshotShards(const InfluenceGraph& ig,
                                                std::uint64_t master_seed,
                                                std::uint64_t count,
                                                SamplingEngine* engine);

}  // namespace soldist

#endif  // SOLDIST_SIM_SNAPSHOT_SAMPLER_H_
