// Forward simulation of the linear threshold model with lazily drawn
// thresholds: the LT counterpart of ForwardSimulator.

#ifndef SOLDIST_SIM_LT_FORWARD_SIM_H_
#define SOLDIST_SIM_LT_FORWARD_SIM_H_

#include <span>
#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"

namespace soldist {

/// \brief Simulates LT diffusions.
///
/// Thresholds θ_v are drawn lazily the first time influence weight
/// reaches v (equivalent to drawing all upfront; saves n draws per run).
/// Traversal accounting mirrors the IC simulator: each activated vertex
/// is scanned once and contributes all its out-edges.
class LtForwardSimulator {
 public:
  explicit LtForwardSimulator(const InfluenceGraph* ig);

  /// Runs one LT diffusion from `seeds`; returns the activated count.
  std::uint32_t Simulate(std::span<const VertexId> seeds, Rng* rng,
                         TraversalCounters* counters);

  /// Mean activated count over `runs` simulations.
  double EstimateInfluence(std::span<const VertexId> seeds,
                           std::uint64_t runs, Rng* rng,
                           TraversalCounters* counters);

 private:
  const InfluenceGraph* ig_;
  VisitedMarker active_;
  VisitedMarker weighted_;  // has v accumulated any weight this run?
  std::vector<double> weight_;
  std::vector<double> threshold_;
  std::vector<VertexId> queue_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_LT_FORWARD_SIM_H_
