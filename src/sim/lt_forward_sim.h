// Forward simulation of the linear threshold model with lazily drawn
// thresholds: the LT counterpart of ForwardSimulator.

#ifndef SOLDIST_SIM_LT_FORWARD_SIM_H_
#define SOLDIST_SIM_LT_FORWARD_SIM_H_

#include <memory>
#include <span>
#include <vector>

#include "graph/traversal.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief Simulates LT diffusions.
///
/// Thresholds θ_v are drawn lazily the first time influence weight
/// reaches v (equivalent to drawing all upfront; saves n draws per run).
/// Traversal accounting mirrors the IC simulator: each activated vertex
/// is scanned once and contributes all its out-edges.
class LtForwardSimulator {
 public:
  explicit LtForwardSimulator(const InfluenceGraph* ig);

  /// Runs one LT diffusion from `seeds`; returns the activated count.
  std::uint32_t Simulate(std::span<const VertexId> seeds, Rng* rng,
                         TraversalCounters* counters);

  /// Mean activated count over `runs` simulations.
  double EstimateInfluence(std::span<const VertexId> seeds,
                           std::uint64_t runs, Rng* rng,
                           TraversalCounters* counters);

 private:
  const InfluenceGraph* ig_;
  VisitedMarker active_;
  VisitedMarker weighted_;  // has v accumulated any weight this run?
  std::vector<double> weight_;
  std::vector<double> threshold_;
  std::vector<VertexId> queue_;
};

/// Per-worker-slot simulator cache for EstimateLtInfluenceSharded, the LT
/// counterpart of ForwardSimulatorCache: pass the same cache across calls
/// so each slot's O(n) simulator is built once, not per chunk. Scratch
/// reuse never affects results — all randomness comes from the per-chunk
/// streams.
using LtForwardSimulatorCache =
    std::vector<std::unique_ptr<LtForwardSimulator>>;

/// Mean activated count over `runs` LT diffusions from `seeds`, fanned out
/// through `engine` with per-chunk PRNG streams (chunk c draws from
/// DeriveSeed(DeriveSeed(master_seed, c), 1), mirroring the IC
/// EstimateInfluenceSharded). Activated counts are integers accumulated
/// per chunk and merged in chunk order, so the result is byte-identical
/// for any worker count. `cache` (optional) must not be shared between
/// concurrently running calls.
double EstimateLtInfluenceSharded(const InfluenceGraph& ig,
                                  std::span<const VertexId> seeds,
                                  std::uint64_t runs,
                                  std::uint64_t master_seed,
                                  SamplingEngine* engine,
                                  TraversalCounters* counters,
                                  LtForwardSimulatorCache* cache = nullptr);

}  // namespace soldist

#endif  // SOLDIST_SIM_LT_FORWARD_SIM_H_
