#include "sim/max_coverage.h"

#include <queue>

namespace soldist {

MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, int k) {
  SOLDIST_CHECK(k >= 1);
  const VertexId n = collection.num_vertices();
  SOLDIST_CHECK(static_cast<VertexId>(k) <= n);

  std::vector<std::uint32_t> cover_count(n, 0);
  for (std::uint64_t set_id = 0; set_id < collection.size(); ++set_id) {
    for (VertexId v : collection.Set(set_id)) ++cover_count[v];
  }
  std::vector<std::uint8_t> set_active(collection.size(), 1);

  struct Entry {
    std::uint32_t gain;
    VertexId vertex;
    int round;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // smaller id wins ties
    }
  };
  std::priority_queue<Entry> heap;
  for (VertexId v = 0; v < n; ++v) heap.push({cover_count[v], v, 0});

  MaxCoverageResult result;
  result.seeds.reserve(k);
  for (int round = 0; round < k; ++round) {
    while (true) {
      Entry top = heap.top();
      heap.pop();
      if (top.round == round) {
        for (std::uint64_t set_id : collection.InvertedList(top.vertex)) {
          if (!set_active[set_id]) continue;
          set_active[set_id] = 0;
          ++result.covered;
          for (VertexId w : collection.Set(set_id)) --cover_count[w];
        }
        result.seeds.push_back(top.vertex);
        break;
      }
      top.gain = cover_count[top.vertex];
      top.round = round;
      heap.push(top);
    }
  }
  return result;
}

}  // namespace soldist
