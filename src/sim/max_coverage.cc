#include "sim/max_coverage.h"

#include <queue>

namespace soldist {

MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, int k) {
  SOLDIST_CHECK(k >= 1);
  const VertexId n = collection.num_vertices();
  SOLDIST_CHECK(static_cast<VertexId>(k) <= n);

  std::vector<std::uint32_t> cover_count(n, 0);
  for (std::uint64_t set_id = 0; set_id < collection.size(); ++set_id) {
    for (VertexId v : collection.Set(set_id)) ++cover_count[v];
  }
  std::vector<std::uint8_t> set_active(collection.size(), 1);

  struct Entry {
    std::uint32_t gain;
    VertexId vertex;
    int round;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // smaller id wins ties
    }
  };
  // Zero-gain vertices never enter the heap (gains only shrink, so they
  // can never be selected on merit); on sparse collections this also
  // stops every round from popping n stale zero entries. They are still
  // eligible for the zero-gain fill below, which reproduces the heap's
  // old smallest-id-first order exactly.
  std::priority_queue<Entry> heap;
  for (VertexId v = 0; v < n; ++v) {
    if (cover_count[v] > 0) heap.push({cover_count[v], v, 0});
  }

  MaxCoverageResult result;
  result.seeds.reserve(k);
  std::vector<std::uint8_t> chosen(n, 0);
  VertexId fill_cursor = 0;
  bool exhausted = false;  // every remaining gain is 0 for good
  for (int round = 0; round < k; ++round) {
    bool selected = false;
    while (!exhausted && !heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      if (top.round != round) {
        top.gain = cover_count[top.vertex];
        if (top.gain == 0) continue;  // gains never grow: drop for good
        top.round = round;
        heap.push(top);
        continue;
      }
      for (std::uint64_t set_id : collection.InvertedList(top.vertex)) {
        if (!set_active[set_id]) continue;
        set_active[set_id] = 0;
        ++result.covered;
        for (VertexId w : collection.Set(set_id)) --cover_count[w];
      }
      result.seeds.push_back(top.vertex);
      chosen[top.vertex] = 1;
      selected = true;
      break;
    }
    if (selected) continue;
    // Heap drained without a positive gain: early-break the lazy loop for
    // all remaining rounds and fill with the smallest unselected ids —
    // exactly what the old all-vertices heap selected once every gain hit
    // zero, without its n stale pops per round.
    exhausted = true;
    while (chosen[fill_cursor]) ++fill_cursor;
    result.seeds.push_back(fill_cursor);
    chosen[fill_cursor] = 1;
  }
  return result;
}

}  // namespace soldist
