#include "sim/max_coverage.h"

#include <bit>
#include <queue>

namespace soldist {
namespace {

/// Counts the ids in `list` whose bit is still set in `words` — the true
/// current gain of the vertex owning `list`. Ids arrive ascending, so
/// runs that share a word are accumulated into one mask and resolved with
/// a single AND+popcount.
std::uint32_t CountUncovered(std::span<const std::uint32_t> list,
                             const std::vector<std::uint64_t>& words) {
  std::uint32_t count = 0;
  std::size_t i = 0;
  const std::size_t len = list.size();
  while (i < len) {
    const std::uint64_t word_index = list[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= std::uint64_t{1} << (list[i] & 63);
      ++i;
    } while (i < len && (list[i] >> 6) == word_index);
    count += static_cast<std::uint32_t>(
        std::popcount(words[word_index] & mask));
  }
  return count;
}

/// Clears the bits of `list` in `words`, returning how many were set —
/// the coverage gained by committing the vertex. Word-at-a-time like
/// CountUncovered.
std::uint64_t ClearCovered(std::span<const std::uint32_t> list,
                           std::vector<std::uint64_t>* words) {
  std::uint64_t cleared = 0;
  std::size_t i = 0;
  const std::size_t len = list.size();
  while (i < len) {
    const std::uint64_t word_index = list[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= std::uint64_t{1} << (list[i] & 63);
      ++i;
    } while (i < len && (list[i] >> 6) == word_index);
    std::uint64_t& word = (*words)[word_index];
    cleared += static_cast<std::uint64_t>(std::popcount(word & mask));
    word &= ~mask;
  }
  return cleared;
}

/// The word-packed bucket-CELF engine, generic over the two index-backed
/// views (RrCollection and RrPrefixView expose num_vertices / size /
/// InvertedList with ascending 32-bit ids).
///
/// Selection invariant (matches the reference heap): each round commits
/// the vertex maximizing (current gain, smaller id); gains only shrink,
/// so a cached gain is an upper bound and a vertex re-evaluated at the
/// bucket cursor either confirms the level or demotes. Once the cursor
/// hits zero every remaining gain is zero for good ("exhausted") and the
/// remaining rounds fill with the smallest unselected ids.
template <typename View>
MaxCoverageResult PackedGreedyMaxCoverage(const View& view, int k,
                                          const CancelToken* cancel) {
  SOLDIST_CHECK(k >= 1);
  const VertexId n = view.num_vertices();
  SOLDIST_CHECK(static_cast<VertexId>(k) <= n);
  const std::uint64_t num_sets = view.size();

  std::vector<std::uint64_t> uncovered((num_sets + 63) / 64, ~std::uint64_t{0});
  if (num_sets % 64 != 0 && !uncovered.empty()) {
    uncovered.back() = (std::uint64_t{1} << (num_sets % 64)) - 1;
  }

  // All sets are active initially, so the starting gain of v is just its
  // inverted-list length — no counting pass over the collection needed.
  // After this block, bucket membership IS the cached gain.
  std::uint32_t max_gain = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_gain = std::max(
        max_gain, static_cast<std::uint32_t>(view.InvertedList(v).size()));
  }
  std::vector<std::vector<VertexId>> buckets(
      static_cast<std::size_t>(max_gain) + 1);
  for (VertexId v = 0; v < n; ++v) {
    const auto gain =
        static_cast<std::uint32_t>(view.InvertedList(v).size());
    if (gain > 0) buckets[gain].push_back(v);
  }
  // fresh[v] == round means cached_gain[v] is exact for the current
  // coverage state; initial gains are exact, so the stamp starts at
  // round 0.
  std::vector<std::int32_t> fresh(n, 0);

  MaxCoverageResult result;
  result.seeds.reserve(k);
  std::vector<std::uint8_t> chosen(n, 0);
  VertexId fill_cursor = 0;
  bool exhausted = false;
  std::uint32_t cur = max_gain;
  for (int round = 0; round < k; ++round) {
    // Deadline-aware CELF: stop at a round boundary so the seeds picked
    // so far ARE a direct smaller-k solve. Round 0 always runs — the
    // most degraded answer is still one seed, never zero.
    if (cancel != nullptr && round > 0 && cancel->cancelled()) {
      result.completed = false;
      break;
    }
    VertexId pick = kInvalidVertex;
    while (!exhausted) {
      while (cur > 0 && buckets[cur].empty()) --cur;
      if (cur == 0) {
        exhausted = true;
        break;
      }
      std::vector<VertexId>& bucket = buckets[cur];
      // Refresh every stale entry at the cursor level; a confirmed entry
      // stays, a shrunk one demotes to its true bucket.
      std::size_t i = 0;
      while (i < bucket.size()) {
        const VertexId v = bucket[i];
        if (fresh[v] == round) {
          ++i;
          continue;
        }
        const std::uint32_t gain =
            CountUncovered(view.InvertedList(v), uncovered);
        SOLDIST_DCHECK(gain <= cur) << "gain grew on a shrinking cover";
        fresh[v] = round;
        if (gain == cur) {
          ++i;
          continue;
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        if (gain > 0) buckets[gain].push_back(v);
      }
      if (bucket.empty()) continue;  // everything demoted: descend
      // All survivors are exact maxima; smaller id wins the tie.
      std::size_t best = 0;
      for (std::size_t j = 1; j < bucket.size(); ++j) {
        if (bucket[j] < bucket[best]) best = j;
      }
      pick = bucket[best];
      bucket[best] = bucket.back();
      bucket.pop_back();
      break;
    }
    if (pick != kInvalidVertex) {
      result.covered += ClearCovered(view.InvertedList(pick), &uncovered);
      chosen[pick] = 1;
      result.seeds.push_back(pick);
      continue;
    }
    // Zero-gain fill: smallest unselected ids, exactly what the old
    // all-vertices heap selected once every gain hit zero.
    while (chosen[fill_cursor]) ++fill_cursor;
    result.seeds.push_back(fill_cursor);
    chosen[fill_cursor] = 1;
  }
  return result;
}

/// The pre-word-packed heap implementation, kept verbatim as the
/// differential-test baseline (MaxCoverageImpl::kReferenceForTest).
MaxCoverageResult ReferenceGreedyMaxCoverage(const RrCollection& collection,
                                             int k,
                                             const CancelToken* cancel) {
  SOLDIST_CHECK(k >= 1);
  const VertexId n = collection.num_vertices();
  SOLDIST_CHECK(static_cast<VertexId>(k) <= n);

  std::vector<std::uint32_t> cover_count(n, 0);
  for (std::uint64_t set_id = 0; set_id < collection.size(); ++set_id) {
    for (VertexId v : collection.Set(set_id)) ++cover_count[v];
  }
  std::vector<std::uint8_t> set_active(collection.size(), 1);

  struct Entry {
    std::uint32_t gain;
    VertexId vertex;
    int round;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // smaller id wins ties
    }
  };
  std::priority_queue<Entry> heap;
  for (VertexId v = 0; v < n; ++v) {
    if (cover_count[v] > 0) heap.push({cover_count[v], v, 0});
  }

  MaxCoverageResult result;
  result.seeds.reserve(k);
  std::vector<std::uint8_t> chosen(n, 0);
  VertexId fill_cursor = 0;
  bool exhausted = false;  // every remaining gain is 0 for good
  for (int round = 0; round < k; ++round) {
    // Same round-boundary cancel as the packed engine, so differential
    // tests stay valid under a firing token.
    if (cancel != nullptr && round > 0 && cancel->cancelled()) {
      result.completed = false;
      break;
    }
    bool selected = false;
    while (!exhausted && !heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      if (top.round != round) {
        top.gain = cover_count[top.vertex];
        if (top.gain == 0) continue;  // gains never grow: drop for good
        top.round = round;
        heap.push(top);
        continue;
      }
      for (std::uint64_t set_id : collection.InvertedList(top.vertex)) {
        if (!set_active[set_id]) continue;
        set_active[set_id] = 0;
        ++result.covered;
        for (VertexId w : collection.Set(set_id)) --cover_count[w];
      }
      result.seeds.push_back(top.vertex);
      chosen[top.vertex] = 1;
      selected = true;
      break;
    }
    if (selected) continue;
    exhausted = true;
    while (chosen[fill_cursor]) ++fill_cursor;
    result.seeds.push_back(fill_cursor);
    chosen[fill_cursor] = 1;
  }
  return result;
}

}  // namespace

MaxCoverageResult GreedyMaxCoverage(const RrCollection& collection, int k,
                                    MaxCoverageImpl impl,
                                    const CancelToken* cancel) {
  if (impl == MaxCoverageImpl::kReferenceForTest) {
    return ReferenceGreedyMaxCoverage(collection, k, cancel);
  }
  return PackedGreedyMaxCoverage(collection, k, cancel);
}

MaxCoverageResult GreedyMaxCoverage(const RrPrefixView& view, int k,
                                    const CancelToken* cancel) {
  return PackedGreedyMaxCoverage(view, k, cancel);
}

}  // namespace soldist
