#include "sim/lt_samplers.h"

#include <algorithm>

namespace soldist {

LtSnapshotSampler::LtSnapshotSampler(const LtWeights* weights)
    : weights_(weights), bfs_(&weights->influence_graph()) {}

Snapshot LtSnapshotSampler::Sample(Rng* rng, TraversalCounters* counters) {
  const InfluenceGraph& ig = weights_->influence_graph();
  const Graph& g = ig.graph();
  const VertexId n = g.num_vertices();

  scratch_arcs_.clear();
  for (VertexId v = 0; v < n; ++v) {
    EdgeId pos = weights_->SampleLiveInEdge(v, rng);
    if (pos == LtWeights::kNoInEdge) continue;
    scratch_arcs_.push_back({g.in_sources()[pos], v});
  }
  // Counting sort by source into the out-CSR snapshot.
  Snapshot snap;
  snap.out_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Arc& a : scratch_arcs_) {
    ++snap.out_offsets[static_cast<std::size_t>(a.src) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    snap.out_offsets[v + 1] += snap.out_offsets[v];
  }
  snap.out_targets.resize(scratch_arcs_.size());
  std::vector<EdgeId> cursor(snap.out_offsets.begin(),
                             snap.out_offsets.end() - 1);
  for (const Arc& a : scratch_arcs_) {
    snap.out_targets[cursor[a.src]++] = a.dst;
  }
  counters->sample_edges += snap.num_live_edges();
  return snap;
}

LtRrSampler::LtRrSampler(const LtWeights* weights)
    : weights_(weights),
      visited_(weights->influence_graph().num_vertices()) {}

void LtRrSampler::Sample(Rng* target_rng, Rng* coin_rng,
                         std::vector<VertexId>* out,
                         TraversalCounters* counters) {
  auto target = static_cast<VertexId>(target_rng->UniformInt(
      weights_->influence_graph().num_vertices()));
  SampleForTarget(target, coin_rng, out, counters);
}

void LtRrSampler::SampleForTarget(VertexId target, Rng* coin_rng,
                                  std::vector<VertexId>* out,
                                  TraversalCounters* counters) {
  const Graph& g = weights_->influence_graph().graph();
  out->clear();
  visited_.NextEpoch();
  visited_.Mark(target);
  out->push_back(target);
  VertexId current = target;
  while (true) {
    counters->vertices += 1;
    EdgeId pos = weights_->SampleLiveInEdge(current, coin_rng);
    if (pos == LtWeights::kNoInEdge) break;
    counters->edges += 1;
    VertexId u = g.in_sources()[pos];
    if (!visited_.Mark(u)) break;  // walked into a cycle: stop
    out->push_back(u);
    current = u;
  }
  counters->sample_vertices += out->size();
}

}  // namespace soldist
