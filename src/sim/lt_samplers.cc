#include "sim/lt_samplers.h"

#include <algorithm>
#include <memory>

#include "random/splitmix64.h"

namespace soldist {

LtSnapshotSampler::LtSnapshotSampler(const LtWeights* weights)
    : weights_(weights), bfs_(&weights->influence_graph()) {}

Snapshot LtSnapshotSampler::Sample(Rng* rng, TraversalCounters* counters) {
  const InfluenceGraph& ig = weights_->influence_graph();
  const Graph& g = ig.graph();
  const VertexId n = g.num_vertices();

  scratch_arcs_.clear();
  for (VertexId v = 0; v < n; ++v) {
    // Build work, counted like the RR walk: one vertex examination per
    // SampleLiveInEdge, one edge examination per kept live edge.
    counters->vertices += 1;
    EdgeId pos = weights_->SampleLiveInEdge(v, rng);
    if (pos == LtWeights::kNoInEdge) continue;
    counters->edges += 1;
    scratch_arcs_.push_back({g.in_sources()[pos], v});
  }
  // Counting sort by source into the out-CSR snapshot.
  Snapshot snap;
  snap.out_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Arc& a : scratch_arcs_) {
    ++snap.out_offsets[static_cast<std::size_t>(a.src) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    snap.out_offsets[v + 1] += snap.out_offsets[v];
  }
  snap.out_targets.resize(scratch_arcs_.size());
  std::vector<EdgeId> cursor(snap.out_offsets.begin(),
                             snap.out_offsets.end() - 1);
  for (const Arc& a : scratch_arcs_) {
    snap.out_targets[cursor[a.src]++] = a.dst;
  }
  counters->sample_edges += snap.num_live_edges();
  return snap;
}

LtRrSampler::LtRrSampler(const LtWeights* weights)
    : weights_(weights),
      visited_(weights->influence_graph().num_vertices()) {}

void LtRrSampler::Sample(Rng* target_rng, Rng* coin_rng,
                         std::vector<VertexId>* out,
                         TraversalCounters* counters) {
  auto target = static_cast<VertexId>(target_rng->UniformInt(
      weights_->influence_graph().num_vertices()));
  SampleForTarget(target, coin_rng, out, counters);
}

void LtRrSampler::SampleForTarget(VertexId target, Rng* coin_rng,
                                  std::vector<VertexId>* out,
                                  TraversalCounters* counters) {
  const Graph& g = weights_->influence_graph().graph();
  out->clear();
  visited_.NextEpoch();
  visited_.Mark(target);
  out->push_back(target);
  VertexId current = target;
  while (true) {
    counters->vertices += 1;
    EdgeId pos = weights_->SampleLiveInEdge(current, coin_rng);
    if (pos == LtWeights::kNoInEdge) break;
    counters->edges += 1;
    VertexId u = g.in_sources()[pos];
    if (!visited_.Mark(u)) break;  // walked into a cycle: stop
    out->push_back(u);
    current = u;
  }
  counters->sample_vertices += out->size();
}

std::vector<RrShard> SampleLtRrShards(const LtWeights& weights,
                                      std::uint64_t master_seed,
                                      std::uint64_t count,
                                      SamplingEngine* engine,
                                      bool record_per_set) {
  std::vector<RrShard> shards(engine->NumChunks(count));
  // Per-worker-slot samplers: O(n) scratch built at most once per slot and
  // reused across chunks; scratch never affects output (every chunk's
  // randomness comes from its own derived streams).
  std::vector<std::unique_ptr<LtRrSampler>> samplers(engine->num_workers());
  const CancelToken* cancel = engine->cancel();
  engine->Run(master_seed, count,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    // Cooperative cancel (see SampleRrShards): skip whole chunks past
    // chunk 0 once the token fires; the empty shard marks the cut.
    if (cancel != nullptr && chunk.index > 0 && cancel->cancelled()) {
      return;
    }
    if (samplers[slot] == nullptr) {
      samplers[slot] = std::make_unique<LtRrSampler>(&weights);
    }
    Rng target_rng(DeriveSeed(chunk.seed, 1));
    Rng coin_rng(DeriveSeed(chunk.seed, 2));
    RrShard& shard = shards[chunk.index];
    shard.offsets.reserve(chunk.end - chunk.begin + 1);
    shard.offsets.push_back(0);
    std::vector<VertexId> rr_set;
    if (record_per_set) shard.per_set.reserve(chunk.end - chunk.begin);
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      if (cancel != nullptr && (chunk.index > 0 || i > chunk.begin) &&
          cancel->cancelled()) {
        break;
      }
      const TraversalCounters before = shard.counters;
      samplers[slot]->Sample(&target_rng, &coin_rng, &rr_set,
                             &shard.counters);
      if (record_per_set) {
        TraversalCounters delta;
        delta.vertices = shard.counters.vertices - before.vertices;
        delta.edges = shard.counters.edges - before.edges;
        delta.sample_vertices =
            shard.counters.sample_vertices - before.sample_vertices;
        delta.sample_edges =
            shard.counters.sample_edges - before.sample_edges;
        shard.per_set.push_back(delta);
      }
      shard.flat.insert(shard.flat.end(), rr_set.begin(), rr_set.end());
      shard.offsets.push_back(static_cast<std::uint64_t>(shard.flat.size()));
    }
  });
  return shards;
}

std::vector<SnapshotShard> SampleLtSnapshotShards(const LtWeights& weights,
                                                  std::uint64_t master_seed,
                                                  std::uint64_t count,
                                                  SamplingEngine* engine) {
  std::vector<SnapshotShard> shards(engine->NumChunks(count));
  std::vector<std::unique_ptr<LtSnapshotSampler>> samplers(
      engine->num_workers());
  engine->Run(master_seed, count,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    if (samplers[slot] == nullptr) {
      samplers[slot] = std::make_unique<LtSnapshotSampler>(&weights);
    }
    Rng rng(DeriveSeed(chunk.seed, 1));
    SnapshotShard& shard = shards[chunk.index];
    shard.snapshots.reserve(chunk.end - chunk.begin);
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      shard.snapshots.push_back(
          samplers[slot]->Sample(&rng, &shard.counters));
    }
  });
  return shards;
}

}  // namespace soldist
