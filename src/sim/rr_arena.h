// Prefix-reusable RR-set arena: sample ONCE at the largest sample number
// of a sweep ladder and serve every smaller sample number as a zero-copy
// prefix view.
//
// Why a prefix view is exact (not an approximation): every RR sampling
// path in this repo is prefix-closed in its master seed. The chunked
// engine streams (sim/sampling_engine.h) give chunk c its randomness from
// DeriveSeed(master, c) alone and draw the chunk's sets in order, so the
// first τ₁ sets of a τ₂-set build are byte-identical to a τ₁-set build;
// the legacy sequential IC loop draws every set from one (target, coin)
// stream pair, so its prefixes coincide trivially. The arena samples with
// EXACTLY the stream discipline of RisEstimator::Build (IC) /
// LtRisEstimator::Build (LT), which is what makes an arena-served sweep
// cell byte-identical to a freshly sampled one (ctest rr_arena_test
// enforces this for worker counts 1/2/4, both models).
//
// Storage: the payload lives behind a pluggable store::RrStorage backend
// (store/arena_storage.h). Arenas always SAMPLE into the flat layout —
//
//   flat:          [ set 0 vertices | set 1 vertices | ... ]
//   set_offsets:   [0, |R₀|, |R₀|+|R₁|, ...]            (uint64)
//   index_ids:     [ ids of sets containing v=0, v=1, ... ] (uint32, asc)
//   index_offsets: n+1 cuts into index_ids               (uint32)
//   counters_:     PrefixCounterTable (WorldArena base), Prefix(i) = cost
//                  of sets [0,i)
//
// — and ConvertStorage() can then re-home the payload into the
// compressed (delta+varint, decode-on-demand) or mmap-spill backend.
// The raw zero-copy accessors (Set / InvertedAll / InvertedPrefix
// without a scratch) remain flat-only fast paths; backend-agnostic
// callers use the StorageScratch overloads, and RrPrefixView
// materializes the prefix for non-flat arenas so estimators and CELF
// stay identical across backends at every cut.
//
// A prefix view at τ resolves InvertedList(v) by cutting v's ascending id
// list at the first id >= τ (one binary search per vertex, cached in the
// view); the cut length doubles as the initial CELF cover count.
//
// This header also hosts the delta+varint compressed collection (folded
// in from the former sim/rr_compress.h): the paper's Section 7 question
// about compressing reverse-reachable sets, answered with an
// RrCollection-compatible query API over ~1-2 bytes/entry storage. Its
// encoding is the one store::CompressedStorage promotes to a real arena
// backend.

#ifndef SOLDIST_SIM_RR_ARENA_H_
#define SOLDIST_SIM_RR_ARENA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/diffusion.h"
#include "model/lt.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"
#include "sim/world_arena.h"
#include "store/arena_storage.h"
#include "util/status.h"

namespace soldist {

class RrPrefixView;

/// \brief An immutable, index-complete RR-set store sampled once at the
/// ladder maximum; all queries are const, so any number of threads may
/// serve prefix views from one arena concurrently (non-flat backends
/// need one store::StorageScratch per thread). The prefix-closed
/// lifecycle (capacity, prefix counter table, cache budgeting hooks)
/// lives in the shared WorldArena substrate; the payload bytes live
/// behind a store::RrStorage backend.
class RrArena : public WorldArena {
 public:
  /// Samples `capacity` IC RR sets with RisEstimator::Build's exact
  /// stream discipline: the engine path (chunked deterministic streams)
  /// when sampling.UseEngine(), the legacy sequential two-stream loop
  /// otherwise. A fresh RisEstimator(ig, τ, seed, sampling) for any
  /// τ <= capacity builds the byte-identical prefix of this arena.
  static RrArena SampleIc(const InfluenceGraph& ig, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling);

  /// LT counterpart (LtRisEstimator::Build discipline: always the chunked
  /// engine streams, backward-walk RR sets).
  static RrArena SampleLt(const LtWeights& weights, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling);

  /// Model dispatch on a resolved instance (LT requires lt_weights).
  static RrArena SampleFor(const ModelInstance& instance, std::uint64_t seed,
                           std::uint64_t capacity,
                           const SamplingOptions& sampling);

  /// Rebuilds a FLAT arena from persisted parts (store/arena_io.h): the
  /// flat set array, per-set offsets, and per-set counter deltas. The
  /// inverted index is rebuilt deterministically, so a loaded arena is
  /// byte-identical to the arena that was saved.
  static RrArena FromParts(VertexId num_vertices,
                           std::vector<VertexId> flat,
                           std::vector<std::uint64_t> set_offsets,
                           const std::vector<TraversalCounters>& per_set);

  ArenaKind kind() const override { return ArenaKind::kRr; }

  std::uint64_t total_entries() const { return storage_->total_entries(); }

  /// Zero-copy FLAT fast path (traversal order). Non-flat arenas must use
  /// the StorageScratch overload.
  std::span<const VertexId> Set(std::uint64_t i) const {
    SOLDIST_DCHECK(flat_ != nullptr) << "raw Set() on non-flat arena";
    return {flat_->flat.data() + flat_->set_offsets[i],
            flat_->flat.data() + flat_->set_offsets[i + 1]};
  }

  /// Backend-agnostic set decode; encoded backends return it sorted
  /// ascending (membership identical to flat). The span is valid until
  /// the next call on the same scratch.
  std::span<const VertexId> Set(std::uint64_t i,
                                store::StorageScratch* scratch) const {
    return storage_->Set(i, scratch);
  }

  /// Ascending ids of ALL arena sets containing v (prefix views cut it).
  /// Zero-copy FLAT fast path; non-flat arenas use the scratch overload.
  std::span<const std::uint32_t> InvertedAll(VertexId v) const {
    SOLDIST_DCHECK(flat_ != nullptr) << "raw InvertedAll() on non-flat arena";
    return {flat_->index_ids.data() + flat_->index_offsets[v],
            flat_->index_ids.data() + flat_->index_offsets[v + 1]};
  }

  /// Backend-agnostic inverted list — identical across backends.
  std::span<const std::uint32_t> InvertedAll(
      VertexId v, store::StorageScratch* scratch) const {
    return storage_->InvertedAll(v, scratch);
  }

  /// Lazy-cut inverted list: the ids < `count` of sets containing v,
  /// resolved with ONE binary search on demand. This is the point-query
  /// path's alternative to materializing an RrPrefixView, whose
  /// constructor cuts every vertex up front (O(n log capacity)) — a
  /// caller that only ever queries a handful of vertices pays
  /// O(log capacity) per queried vertex instead. `count == capacity()`
  /// short-circuits to InvertedAll with no search at all. FLAT only.
  std::span<const std::uint32_t> InvertedPrefix(VertexId v,
                                                std::uint64_t count) const;

  /// Backend-agnostic lazy-cut inverted list.
  std::span<const std::uint32_t> InvertedPrefix(
      VertexId v, std::uint64_t count, store::StorageScratch* scratch) const;

  /// Logical bytes of the arena payloads (flat + offsets + index +
  /// counters) regardless of residency.
  std::uint64_t MemoryBytes() const override;

  /// Bytes occupying RAM right now (backend-reported; == MemoryBytes for
  /// flat). serve/ArenaCache budgets against this.
  std::uint64_t ResidentBytes() const override;

  /// Backend-stable content hash: FNV-1a over the inverted lists (which
  /// are documented identical across flat/compressed/mmap and fully
  /// determine set membership — the thing every query answers from),
  /// plus the shape. Same sampled data => same checksum on any backend
  /// and across a save/load round-trip.
  std::uint64_t ContentChecksum() const override;

  bool is_flat() const { return flat_ != nullptr; }
  store::ArenaBackend backend() const { return storage_->backend(); }
  const store::RrStorage& storage() const { return *storage_; }
  store::StorageStats storage_stats() const { return storage_->stats(); }

  /// Re-homes the payload into `options.backend`. Only a flat arena can
  /// convert (sampling always produces flat); converting to the current
  /// backend is a no-op. Queries before and after answer identically.
  Status ConvertStorage(const store::StorageOptions& options);

  RrPrefixView Prefix(std::uint64_t count) const;

 private:
  RrArena() = default;
  void Finalize(std::vector<RrShard>&& shards, std::uint64_t capacity);
  void AdoptPayload(store::RrFlatPayload&& payload);

  std::shared_ptr<const store::RrStorage> storage_;
  const store::RrFlatPayload* flat_ = nullptr;  // cached fast path, may be null
};

/// \brief A view of the first `count` sets of an arena.
///
/// Query-compatible with the slice of RrCollection the coverage engines
/// need: Set / InvertedList / size / num_vertices, plus the per-vertex
/// cover counts (cut lengths) that seed greedy state for free. Over a
/// flat arena the view is zero-copy; over an encoded backend the
/// constructor materializes the prefix (sets + cut inverted lists) into
/// owned arrays, so estimators and CELF run the identical access pattern
/// — and produce identical results — on every backend.
class RrPrefixView {
 public:
  RrPrefixView(const RrArena* arena, std::uint64_t count);

  std::uint64_t size() const { return count_; }
  VertexId num_vertices() const { return arena_->num_vertices(); }

  std::span<const VertexId> Set(std::uint64_t i) const {
    if (materialized_) {
      return {own_flat_.data() + own_set_offsets_[i],
              own_flat_.data() + own_set_offsets_[i + 1]};
    }
    return arena_->Set(i);
  }

  /// Ascending ids (< size()) of the viewed sets containing v.
  std::span<const std::uint32_t> InvertedList(VertexId v) const {
    if (materialized_) {
      return {own_ids_.data() + own_index_offsets_[v],
              own_ids_.data() + own_index_offsets_[v + 1]};
    }
    return arena_->InvertedAll(v).first(cut_[v]);
  }

  /// |InvertedList(v)|: the initial cover count / CELF gain of v.
  std::uint32_t CoverCount(VertexId v) const { return cut_[v]; }
  const std::vector<std::uint32_t>& CoverCounts() const { return cut_; }

  /// Sampling counters of exactly these sets (see
  /// RrArena::PrefixCounters).
  TraversalCounters Counters() const {
    return arena_->PrefixCounters(count_);
  }

  /// Mean RR-set size over the prefix (empirical EPT).
  double MeanSize() const;

  const RrArena& arena() const { return *arena_; }

 private:
  const RrArena* arena_;
  std::uint64_t count_;
  std::vector<std::uint32_t> cut_;  // per vertex: ids < count_
  // Materialized prefix (non-flat arenas only).
  bool materialized_ = false;
  std::vector<VertexId> own_flat_;
  std::vector<std::uint64_t> own_set_offsets_;
  std::vector<std::uint32_t> own_ids_;
  std::vector<std::uint32_t> own_index_offsets_;
};

// ---------------------------------------------------------------------
// Compressed RR-set storage (folded in from sim/rr_compress.h): the
// paper's concluding remarks (Section 7) ask whether Snapshot/RIS memory
// can be cut "e.g., by compressing reverse-reachable sets" — answered
// with a delta+varint encoded collection exposing the same query API as
// RrCollection. Each RR set is sorted, delta-encoded, and LEB128-varint
// packed; the inverted index is stored the same way. Small RR sets over
// dense ids compress to 1-2 bytes/entry vs 4 (sets) + 4 (index) in the
// uncompressed collection.
// ---------------------------------------------------------------------

/// Appends v as LEB128 to `out`.
void VarintEncode(std::uint64_t v, std::vector<std::uint8_t>* out);

/// Decodes one LEB128 value from data[*pos], advancing *pos.
std::uint64_t VarintDecode(const std::uint8_t* data, std::size_t* pos);

/// \brief RR-set collection with compressed sets and compressed inverted
/// index. Query-compatible with RrCollection (decode on the fly).
class CompressedRrCollection {
 public:
  explicit CompressedRrCollection(VertexId num_vertices);

  /// Appends one RR set (copied, sorted, delta+varint encoded).
  void Add(const std::vector<VertexId>& rr_set);

  /// Builds the compressed inverted index; call after the last Add.
  void BuildIndex();

  std::uint64_t size() const {
    return static_cast<std::uint64_t>(set_offsets_.size()) - 1;
  }
  std::uint64_t total_entries() const { return total_entries_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Decodes set i into *out (sorted ascending).
  void DecodeSet(std::uint64_t i, std::vector<VertexId>* out) const;

  /// Decodes the ids of sets containing v into *out (ascending).
  /// Requires BuildIndex().
  void DecodeInvertedList(VertexId v, std::vector<std::uint64_t>* out) const;

  /// Number of RR sets intersecting `seeds` (requires BuildIndex()).
  std::uint64_t CountCovered(std::span<const VertexId> seeds) const;

  /// Heap bytes used by the compressed payloads (sets + index + offsets).
  std::uint64_t MemoryBytes() const;

  /// Bytes an uncompressed RrCollection needs for the same content
  /// (4 B/set entry + 4 B/index entry + offset arrays), for comparison.
  std::uint64_t UncompressedBytes() const;

 private:
  VertexId num_vertices_;
  std::uint64_t total_entries_ = 0;
  std::vector<std::uint8_t> set_bytes_;
  std::vector<std::uint64_t> set_offsets_;  // into set_bytes_
  std::vector<std::uint8_t> index_bytes_;
  std::vector<std::uint64_t> index_offsets_;  // per vertex, into index_bytes_
  bool index_built_ = false;
  mutable std::vector<std::uint32_t> covered_stamp_;
  mutable std::uint32_t covered_epoch_ = 0;
  mutable std::vector<std::uint64_t> scratch_ids_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_RR_ARENA_H_
