// Prefix-reusable RR-set arena: sample ONCE at the largest sample number
// of a sweep ladder and serve every smaller sample number as a zero-copy
// prefix view.
//
// Why a prefix view is exact (not an approximation): every RR sampling
// path in this repo is prefix-closed in its master seed. The chunked
// engine streams (sim/sampling_engine.h) give chunk c its randomness from
// DeriveSeed(master, c) alone and draw the chunk's sets in order, so the
// first τ₁ sets of a τ₂-set build are byte-identical to a τ₁-set build;
// the legacy sequential IC loop draws every set from one (target, coin)
// stream pair, so its prefixes coincide trivially. The arena samples with
// EXACTLY the stream discipline of RisEstimator::Build (IC) /
// LtRisEstimator::Build (LT), which is what makes an arena-served sweep
// cell byte-identical to a freshly sampled one (ctest rr_arena_test
// enforces this for worker counts 1/2/4, both models).
//
// Layout (all 32-bit ids): one flat vertex array in set order with
// per-set offsets; one vertex-major inverted index (vertex -> ascending
// ids of containing sets) with 32-bit ids and offsets; per-set cumulative
// traversal counters so any prefix's sampling cost is exactly
// attributable (a reuse-on sweep reports the same per-cell counters as a
// reuse-off sweep).
//
//   flat_:         [ set 0 vertices | set 1 vertices | ... ]
//   set_offsets_:  [0, |R₀|, |R₀|+|R₁|, ...]            (uint64)
//   index_ids_:    [ ids of sets containing v=0, v=1, ... ] (uint32, asc)
//   index_offsets_: n+1 cuts into index_ids_             (uint32)
//   counters_:     PrefixCounterTable (WorldArena base), Prefix(i) = cost
//                  of sets [0,i)
//
// A prefix view at τ resolves InvertedList(v) by cutting v's ascending id
// list at the first id >= τ (one binary search per vertex, cached in the
// view); the cut length doubles as the initial CELF cover count.
//
// This header also hosts the delta+varint compressed collection (folded
// in from the former sim/rr_compress.h): the paper's Section 7 question
// about compressing reverse-reachable sets, answered with an
// RrCollection-compatible query API over ~1-2 bytes/entry storage.

#ifndef SOLDIST_SIM_RR_ARENA_H_
#define SOLDIST_SIM_RR_ARENA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/diffusion.h"
#include "model/lt.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"
#include "sim/world_arena.h"

namespace soldist {

class RrPrefixView;

/// \brief An immutable, index-complete RR-set store sampled once at the
/// ladder maximum; all queries are const, so any number of threads may
/// serve prefix views from one arena concurrently. The prefix-closed
/// lifecycle (capacity, prefix counter table, cache budgeting hooks)
/// lives in the shared WorldArena substrate.
class RrArena : public WorldArena {
 public:
  /// Samples `capacity` IC RR sets with RisEstimator::Build's exact
  /// stream discipline: the engine path (chunked deterministic streams)
  /// when sampling.UseEngine(), the legacy sequential two-stream loop
  /// otherwise. A fresh RisEstimator(ig, τ, seed, sampling) for any
  /// τ <= capacity builds the byte-identical prefix of this arena.
  static RrArena SampleIc(const InfluenceGraph& ig, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling);

  /// LT counterpart (LtRisEstimator::Build discipline: always the chunked
  /// engine streams, backward-walk RR sets).
  static RrArena SampleLt(const LtWeights& weights, std::uint64_t seed,
                          std::uint64_t capacity,
                          const SamplingOptions& sampling);

  /// Model dispatch on a resolved instance (LT requires lt_weights).
  static RrArena SampleFor(const ModelInstance& instance, std::uint64_t seed,
                           std::uint64_t capacity,
                           const SamplingOptions& sampling);

  ArenaKind kind() const override { return ArenaKind::kRr; }

  std::uint64_t total_entries() const {
    return static_cast<std::uint64_t>(flat_.size());
  }

  std::span<const VertexId> Set(std::uint64_t i) const {
    return {flat_.data() + set_offsets_[i],
            flat_.data() + set_offsets_[i + 1]};
  }

  /// Ascending ids of ALL arena sets containing v (prefix views cut it).
  std::span<const std::uint32_t> InvertedAll(VertexId v) const {
    return {index_ids_.data() + index_offsets_[v],
            index_ids_.data() + index_offsets_[v + 1]};
  }

  /// Lazy-cut inverted list: the ids < `count` of sets containing v,
  /// resolved with ONE binary search on demand. This is the point-query
  /// path's alternative to materializing an RrPrefixView, whose
  /// constructor cuts every vertex up front (O(n log capacity)) — a
  /// caller that only ever queries a handful of vertices pays
  /// O(log capacity) per queried vertex instead. `count == capacity()`
  /// short-circuits to InvertedAll with no search at all.
  std::span<const std::uint32_t> InvertedPrefix(VertexId v,
                                                std::uint64_t count) const;

  /// Heap bytes of the arena payloads (flat + offsets + index + counters).
  std::uint64_t MemoryBytes() const override;

  RrPrefixView Prefix(std::uint64_t count) const;

 private:
  RrArena() = default;
  void Finalize(std::vector<RrShard>&& shards, std::uint64_t capacity);
  void BuildIndex();

  std::vector<VertexId> flat_;
  std::vector<std::uint64_t> set_offsets_;      // capacity + 1
  std::vector<std::uint32_t> index_ids_;        // ascending per vertex
  std::vector<std::uint32_t> index_offsets_;    // n + 1
};

/// \brief A zero-copy view of the first `count` sets of an arena.
///
/// Query-compatible with the slice of RrCollection the coverage engines
/// need: Set / InvertedList / size / num_vertices, plus the per-vertex
/// cover counts (cut lengths) that seed greedy state for free.
class RrPrefixView {
 public:
  RrPrefixView(const RrArena* arena, std::uint64_t count);

  std::uint64_t size() const { return count_; }
  VertexId num_vertices() const { return arena_->num_vertices(); }

  std::span<const VertexId> Set(std::uint64_t i) const {
    return arena_->Set(i);
  }

  /// Ascending ids (< size()) of the viewed sets containing v.
  std::span<const std::uint32_t> InvertedList(VertexId v) const {
    return arena_->InvertedAll(v).first(cut_[v]);
  }

  /// |InvertedList(v)|: the initial cover count / CELF gain of v.
  std::uint32_t CoverCount(VertexId v) const { return cut_[v]; }
  const std::vector<std::uint32_t>& CoverCounts() const { return cut_; }

  /// Sampling counters of exactly these sets (see
  /// RrArena::PrefixCounters).
  TraversalCounters Counters() const {
    return arena_->PrefixCounters(count_);
  }

  /// Mean RR-set size over the prefix (empirical EPT).
  double MeanSize() const;

  const RrArena& arena() const { return *arena_; }

 private:
  const RrArena* arena_;
  std::uint64_t count_;
  std::vector<std::uint32_t> cut_;  // per vertex: ids < count_
};

// ---------------------------------------------------------------------
// Compressed RR-set storage (folded in from sim/rr_compress.h): the
// paper's concluding remarks (Section 7) ask whether Snapshot/RIS memory
// can be cut "e.g., by compressing reverse-reachable sets" — answered
// with a delta+varint encoded collection exposing the same query API as
// RrCollection. Each RR set is sorted, delta-encoded, and LEB128-varint
// packed; the inverted index is stored the same way. Small RR sets over
// dense ids compress to 1-2 bytes/entry vs 4 (sets) + 4 (index) in the
// uncompressed collection.
// ---------------------------------------------------------------------

/// Appends v as LEB128 to `out`.
void VarintEncode(std::uint64_t v, std::vector<std::uint8_t>* out);

/// Decodes one LEB128 value from data[*pos], advancing *pos.
std::uint64_t VarintDecode(const std::uint8_t* data, std::size_t* pos);

/// \brief RR-set collection with compressed sets and compressed inverted
/// index. Query-compatible with RrCollection (decode on the fly).
class CompressedRrCollection {
 public:
  explicit CompressedRrCollection(VertexId num_vertices);

  /// Appends one RR set (copied, sorted, delta+varint encoded).
  void Add(const std::vector<VertexId>& rr_set);

  /// Builds the compressed inverted index; call after the last Add.
  void BuildIndex();

  std::uint64_t size() const {
    return static_cast<std::uint64_t>(set_offsets_.size()) - 1;
  }
  std::uint64_t total_entries() const { return total_entries_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Decodes set i into *out (sorted ascending).
  void DecodeSet(std::uint64_t i, std::vector<VertexId>* out) const;

  /// Decodes the ids of sets containing v into *out (ascending).
  /// Requires BuildIndex().
  void DecodeInvertedList(VertexId v, std::vector<std::uint64_t>* out) const;

  /// Number of RR sets intersecting `seeds` (requires BuildIndex()).
  std::uint64_t CountCovered(std::span<const VertexId> seeds) const;

  /// Heap bytes used by the compressed payloads (sets + index + offsets).
  std::uint64_t MemoryBytes() const;

  /// Bytes an uncompressed RrCollection needs for the same content
  /// (4 B/set entry + 4 B/index entry + offset arrays), for comparison.
  std::uint64_t UncompressedBytes() const;

 private:
  VertexId num_vertices_;
  std::uint64_t total_entries_ = 0;
  std::vector<std::uint8_t> set_bytes_;
  std::vector<std::uint64_t> set_offsets_;  // into set_bytes_
  std::vector<std::uint8_t> index_bytes_;
  std::vector<std::uint64_t> index_offsets_;  // per vertex, into index_bytes_
  bool index_built_ = false;
  mutable std::vector<std::uint32_t> covered_stamp_;
  mutable std::uint32_t covered_epoch_ = 0;
  mutable std::vector<std::uint64_t> scratch_ids_;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_RR_ARENA_H_
