#include "sim/world_arena.h"

namespace soldist {

const char* ArenaKindName(ArenaKind kind) {
  switch (kind) {
    case ArenaKind::kRr:
      return "rr";
    case ArenaKind::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

}  // namespace soldist
