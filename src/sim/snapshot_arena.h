// Prefix-reusable arena of SCC-condensed sampled worlds: the Snapshot
// counterpart of RrArena. Sample ONCE at the largest τ of a sweep ladder
// and serve every smaller τ as a zero-copy prefix — plus point queries
// over the sampled worlds themselves (reachability probability, expected
// component size; serve/query_service.h).
//
// Why a prefix is exact: both snapshot stream disciplines are
// prefix-closed in the master seed. The chunked engine gives chunk c its
// randomness from DeriveSeed(master, c) alone and draws the chunk's
// snapshots in order, so the first τ₁ snapshots of a τ₂ build are
// byte-identical to a τ₁ build; the legacy sequential loop draws every
// snapshot from ONE Rng(seed) stream, so its prefixes coincide
// trivially. The arena samples with EXACTLY the stream discipline of
// SnapshotEstimator's condensed backend, which is what makes an
// arena-served sweep cell byte-identical to a freshly sampled one
// (ctest snapshot_arena_test enforces this for worker counts 1/2/4).
//
// Warmth: the condensed gain backend pre-seeds its cache and CELF bounds
// from bottom-k DAG sketches. Both the exactness test (len < k ⟺
// reachable count < k) and every bound value are *permutation-
// independent* — a pure function of the snapshot — so the arena can
// precompute warmth once at build and every prefix estimator starts from
// byte-identical warm state no matter which rank permutation seeded the
// sketches (see ComputeSnapshotWarmth).

#ifndef SOLDIST_SIM_SNAPSHOT_ARENA_H_
#define SOLDIST_SIM_SNAPSHOT_ARENA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/influence_graph.h"
#include "sim/condensed_snapshot.h"
#include "sim/sampling_engine.h"
#include "sim/world_arena.h"

namespace soldist {

/// Sketch width shared by the condensed Snapshot backend and the arena
/// warm pass: sketches saturating below k yield EXACT counts, so k trades
/// bound tightness (fewer CELF refreshes) against per-sketch merge cost.
/// 8 already bounds the long subcritical tail exactly.
inline constexpr int kSnapshotSketchK = 8;

/// \brief Precomputed warm state of one condensed snapshot: per
/// component, a sound CELF upper bound on its reachable count, and
/// whether that bound is EXACT (the sketch saturated below k — the gain
/// cache can then be pre-seeded with bound[c] as the exact value).
///
/// Pure function of the snapshot: exactness is len < k ⟺ reachable
/// count < k for ANY distinct-rank permutation, exact bounds are the
/// exact counts, and non-exact bounds derive only from exact ones via
/// the topologically capped successor-sum. ctest snapshot_arena_test
/// relies on this to match arena warmth (one permutation at capacity)
/// against fresh-build warmth (one permutation per τ) byte for byte.
struct SnapshotWarmth {
  std::vector<std::uint32_t> bound;    ///< per component, sound and tight
  std::vector<std::uint8_t> is_exact;  ///< bound[c] is the exact count

  std::uint64_t MemoryBytes() const {
    return bound.capacity() * sizeof(std::uint32_t) +
           is_exact.capacity() * sizeof(std::uint8_t);
  }
};

/// Computes warmth for every snapshot: ONE distinct-rank permutation
/// drawn from Rng(perm_seed), bottom-k sketches per DAG, then the capped
/// successor-sum bounds. Chunked over snapshots through the engine when
/// sampling.UseEngine() (per-slot sketcher scratch; each snapshot's
/// warmth is a pure function of that snapshot, so the worker count never
/// changes a byte), else sequential.
std::vector<SnapshotWarmth> ComputeSnapshotWarmth(
    std::span<const CondensedSnapshot> snaps, VertexId num_vertices,
    std::uint64_t perm_seed, const SamplingOptions& sampling);

/// \brief An immutable arena of `capacity` condensed sampled worlds with
/// precomputed warmth and exact per-prefix sampling-cost attribution.
/// All queries are const: any number of threads may serve estimator
/// prefixes and point queries from one arena concurrently.
class SnapshotArena : public WorldArena {
 public:
  /// Samples `capacity` snapshots with the condensed backend's exact
  /// stream discipline (engine chunk streams when sampling.UseEngine(),
  /// legacy sequential Rng(seed) loop otherwise), condensing each as it
  /// is sampled, then precomputes warmth with the permutation stream
  /// DeriveSeed(seed, capacity + 1). A fresh condensed
  /// SnapshotEstimator(ig, τ, seed, sampling) for any τ <= capacity
  /// consumes the byte-identical prefix of this arena.
  static SnapshotArena Sample(const InfluenceGraph& ig, std::uint64_t seed,
                              std::uint64_t capacity,
                              const SamplingOptions& sampling);

  /// Rebuilds an arena from persisted parts (store/arena_io.h): the
  /// condensed worlds, their precomputed warmth (saved rather than
  /// recomputed — the loader has no InfluenceGraph), and per-snapshot
  /// counter deltas. max_components is recomputed; the result is
  /// byte-identical to the arena that was saved.
  static SnapshotArena Restore(VertexId num_vertices,
                               std::vector<CondensedSnapshot> snaps,
                               std::vector<SnapshotWarmth> warmth,
                               const std::vector<TraversalCounters>& per_snapshot);

  ArenaKind kind() const override { return ArenaKind::kSnapshot; }

  const CondensedSnapshot& World(std::uint64_t i) const { return snaps_[i]; }
  const SnapshotWarmth& Warmth(std::uint64_t i) const { return warmth_[i]; }

  /// The first `count` worlds / warmths, for prefix estimators.
  std::span<const CondensedSnapshot> Worlds(std::uint64_t count) const {
    return {snaps_.data(), count};
  }
  std::span<const SnapshotWarmth> Warmths(std::uint64_t count) const {
    return {warmth_.data(), count};
  }

  /// Largest component count over all worlds (scratch sizing).
  std::uint32_t max_components() const { return max_components_; }

  /// Heap bytes of the arena payloads (worlds + warmth + counters).
  std::uint64_t MemoryBytes() const override;

  /// Content hash over every world's condensation + warmth (FNV-1a;
  /// see WorldArena::ContentChecksum). Stable across save/load.
  std::uint64_t ContentChecksum() const override;

 private:
  SnapshotArena() = default;

  std::vector<CondensedSnapshot> snaps_;
  std::vector<SnapshotWarmth> warmth_;
  std::uint32_t max_components_ = 0;
};

}  // namespace soldist

#endif  // SOLDIST_SIM_SNAPSHOT_ARENA_H_
