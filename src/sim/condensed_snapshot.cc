#include "sim/condensed_snapshot.h"

#include <memory>

#include "random/splitmix64.h"

namespace soldist {

std::uint64_t CondensedSnapshot::MemoryBytes() const {
  auto vec_bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.capacity() * sizeof(v[0]));
  };
  return vec_bytes(comp_of) + vec_bytes(comp_size) + vec_bytes(dag.offsets) +
         vec_bytes(dag.targets) + vec_bytes(rev.offsets) +
         vec_bytes(rev.targets);
}

std::uint32_t CondensedSnapshot::CountReachable(VertexId v) const {
  std::vector<std::uint8_t> visited(num_components(), 0);
  std::vector<std::uint32_t> queue;
  const std::uint32_t start = comp_of[v];
  visited[start] = 1;
  queue.push_back(start);
  std::uint64_t total = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    std::uint32_t c = queue[head++];
    total += comp_size[c];
    for (std::uint32_t succ : dag.Successors(c)) {
      if (!visited[succ]) {
        visited[succ] = 1;
        queue.push_back(succ);
      }
    }
  }
  return static_cast<std::uint32_t>(total);
}

CondensedSnapshot CondenseSnapshot(const Snapshot& snapshot,
                                   VertexId num_vertices) {
  return SnapshotCondenser(num_vertices).Condense(snapshot);
}

SnapshotCondenser::SnapshotCondenser(VertexId num_vertices)
    : num_vertices_(num_vertices), solver_(num_vertices) {}

CondensedSnapshot SnapshotCondenser::Condense(const Snapshot& snapshot) {
  solver_.Solve(num_vertices_, snapshot.out_offsets, snapshot.out_targets,
                &scc_);
  CondensedSnapshot out;
  CondenseCsrInto(scc_, num_vertices_, snapshot.out_offsets,
                  snapshot.out_targets, &scratch_, &out.dag);

  // Reverse DAG (counting sort by target) straight into the output.
  const std::uint32_t num_components = scc_.num_components();
  const auto num_dag_edges =
      static_cast<std::uint32_t>(out.dag.targets.size());
  out.rev.offsets.assign(static_cast<std::size_t>(num_components) + 1, 0);
  for (std::uint32_t i = 0; i < num_dag_edges; ++i) {
    ++out.rev.offsets[out.dag.targets[i] + 1];
  }
  for (std::uint32_t c = 0; c < num_components; ++c) {
    out.rev.offsets[c + 1] += out.rev.offsets[c];
  }
  out.rev.targets.resize(num_dag_edges);
  rev_cursor_.assign(out.rev.offsets.begin(), out.rev.offsets.end() - 1);
  for (std::uint32_t c = 0; c < num_components; ++c) {
    for (std::uint32_t target : out.dag.Successors(c)) {
      out.rev.targets[rev_cursor_[target]++] = c;
    }
  }

  out.comp_of = scc_.component;  // copy: scc_ scratch persists
  out.comp_size = scc_.size;
  return out;
}

std::vector<CondensedSnapshotShard> SampleCondensedSnapshotShards(
    const InfluenceGraph& ig, std::uint64_t master_seed, std::uint64_t count,
    SamplingEngine* engine, bool record_per_snapshot) {
  std::vector<CondensedSnapshotShard> shards(engine->NumChunks(count));
  // Per-worker-slot scratch (sampler, condenser, one reusable raw
  // snapshot): schedule-dependent but output-invisible — every chunk's
  // randomness comes from its own derived stream and condensation is a
  // pure function of the sampled snapshot.
  struct Slot {
    SnapshotSampler sampler;
    SnapshotCondenser condenser;
    Snapshot scratch;
    Slot(const InfluenceGraph* ig)
        : sampler(ig), condenser(ig->num_vertices()) {}
  };
  std::vector<std::unique_ptr<Slot>> slots(engine->num_workers());
  const CancelToken* cancel = engine->cancel();
  engine->Run(master_seed, count,
              [&](const SamplingEngine::Chunk& chunk, std::size_t slot) {
    // Cooperative cancel (see SampleRrShards): skip whole chunks past
    // chunk 0 once the token fires; the empty shard marks the cut.
    if (cancel != nullptr && chunk.index > 0 && cancel->cancelled()) {
      return;
    }
    if (slots[slot] == nullptr) {
      slots[slot] = std::make_unique<Slot>(&ig);
    }
    // Stream 1 of the chunk seed: byte-identical live-edge graphs to
    // SampleSnapshotShards, so kCondensed condenses exactly the snapshots
    // kResidual walks.
    Rng rng(DeriveSeed(chunk.seed, 1));
    CondensedSnapshotShard& shard = shards[chunk.index];
    shard.snapshots.reserve(chunk.end - chunk.begin);
    if (record_per_snapshot) shard.per_snapshot.reserve(chunk.end - chunk.begin);
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
      if (cancel != nullptr && (chunk.index > 0 || i > chunk.begin) &&
          cancel->cancelled()) {
        break;
      }
      const TraversalCounters before = shard.counters;
      slots[slot]->sampler.SampleInto(&rng, &shard.counters,
                                      &slots[slot]->scratch);
      if (record_per_snapshot) {
        TraversalCounters delta;
        delta.vertices = shard.counters.vertices - before.vertices;
        delta.edges = shard.counters.edges - before.edges;
        delta.sample_vertices =
            shard.counters.sample_vertices - before.sample_vertices;
        delta.sample_edges =
            shard.counters.sample_edges - before.sample_edges;
        shard.per_snapshot.push_back(delta);
      }
      shard.snapshots.push_back(
          slots[slot]->condenser.Condense(slots[slot]->scratch));
    }
  });
  return shards;
}

}  // namespace soldist
