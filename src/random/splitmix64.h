// SplitMix64: the standard seed-stretcher (Steele, Lea & Flood 2014;
// public-domain reference by Vigna). Used to derive independent per-trial
// seeds from one master seed so parallel trials never share a stream.

#ifndef SOLDIST_RANDOM_SPLITMIX64_H_
#define SOLDIST_RANDOM_SPLITMIX64_H_

#include <cstdint>

namespace soldist {

/// \brief 64-bit SplitMix generator; also a UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Derives the `index`-th child seed of `master`: deterministic, and
/// distinct indexes give statistically independent seeds.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index);

}  // namespace soldist

#endif  // SOLDIST_RANDOM_SPLITMIX64_H_
