#include "random/xoshiro256pp.h"

#include "random/splitmix64.h"

namespace soldist {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.Next();
}

std::uint64_t Xoshiro256pp::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace soldist
