// Rng: the PRNG facade used throughout the library.
//
// The paper (Section 4.1) draws all randomness from the Mersenne Twister
// and initializes a fresh state per algorithm run; Rng reproduces that:
// one Rng per trial, seeded via DeriveSeed(master, trial). RIS uses two
// logical streams (vertex choice, edge coins), realized as two Rng
// instances with distinct derived seeds.
//
// Parallel sampling keeps the same discipline one level down: the
// SamplingEngine (sim/sampling_engine.h) gives chunk c of a build its own
// stream family rooted at DeriveSeed(master, c), so results never depend
// on the thread schedule.

#ifndef SOLDIST_RANDOM_RNG_H_
#define SOLDIST_RANDOM_RNG_H_

#include <cstdint>
#include <random>

#include "util/logging.h"

namespace soldist {

/// \brief Mersenne-Twister-backed random source with the operations the
/// samplers need: unit reals, bounded ints, Bernoulli coins.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Next 64 random bits.
  std::uint64_t NextBits() { return engine_(); }

  /// Uniform real in [0, 1) with 53-bit resolution.
  double UnitReal() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  /// Lemire's multiply-with-rejection: unbiased and division-free on the
  /// hot path.
  std::uint64_t UniformInt(std::uint64_t bound) {
    SOLDIST_DCHECK(bound > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(engine_()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      std::uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(engine_()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Coin flip: true with probability p. Matches the paper's convention
  /// "generate random x in [0,1] ... alive if x < p(e)".
  bool Bernoulli(double p) { return UnitReal() < p; }

  /// Underlying engine, for std::shuffle and std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace soldist

#endif  // SOLDIST_RANDOM_RNG_H_
