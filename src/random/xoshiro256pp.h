// xoshiro256++ (Blackman & Vigna 2019, public domain reference): a fast
// alternative engine offered alongside the Mersenne Twister. The paper's
// experiments use the Mersenne Twister; xoshiro is exposed for users and
// for the PRNG-sensitivity ablation bench.

#ifndef SOLDIST_RANDOM_XOSHIRO256PP_H_
#define SOLDIST_RANDOM_XOSHIRO256PP_H_

#include <cstdint>

namespace soldist {

/// \brief xoshiro256++ engine; a UniformRandomBitGenerator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64 as recommended upstream.
  explicit Xoshiro256pp(std::uint64_t seed);

  std::uint64_t Next();
  std::uint64_t operator()() { return Next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Advances the state by 2^128 steps (for manual stream partitioning).
  void Jump();

 private:
  std::uint64_t s_[4];
};

}  // namespace soldist

#endif  // SOLDIST_RANDOM_XOSHIRO256PP_H_
