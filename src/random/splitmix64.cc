#include "random/splitmix64.h"

namespace soldist {

std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index) {
  // Jump the SplitMix state to `master + index * gamma` and emit once; this
  // is exactly the "split" operation of the original design.
  SplitMix64 mixer(master ^ (index * 0xd1342543de82ef95ULL));
  std::uint64_t s = mixer.Next();
  // One extra round decorrelates adjacent indexes further.
  return SplitMix64(s).Next();
}

}  // namespace soldist
