// Session: the long-lived, thread-safe entry point of the soldist query
// facade. One Session owns everything that should be built once and
// shared across queries — the instance registry (graphs, influence
// graphs, LT weight tables), the per-instance RR-set influence oracles,
// and the worker thread pools — and answers WorkloadSpec/SolveSpec
// queries with StatusOr<SolveResult>: invalid input (unknown network,
// LT-invalid probability setting, k > n, unreadable edge-list file)
// surfaces as a Status with an actionable message, never a CHECK-abort.
//
// Concurrency model: resolution (graph building, oracle construction,
// pool creation) is serialized under an internal mutex; the solver runs
// lock-free on stable, immutable instance data, so any number of threads
// may call Solve concurrently. SolveBatch additionally fans independent
// runs out across the shared pool — batches are serialized against each
// other (the pool has a single-waiter contract) but results are ALWAYS
// byte-identical to issuing the same specs sequentially through Solve:
// every run is a pure function of its spec and the resolved workload
// (see sim/sampling_engine.h for the chunked deterministic streams).

#ifndef SOLDIST_API_SESSION_H_
#define SOLDIST_API_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/spec.h"
#include "exp/instance_registry.h"
#include "oracle/rr_oracle.h"
#include "sim/rr_arena.h"
#include "store/arena_storage.h"
#include "util/thread_pool.h"

namespace soldist {
namespace api {

/// Options fixed for the lifetime of a Session.
struct SessionOptions {
  /// Master seed: synthetic dataset generation, trivalency probability
  /// draws, and per-instance oracle seed derivation all flow from it.
  std::uint64_t seed = 42;
  /// RR sets per shared influence oracle (paper Section 5.2 uses 10^7;
  /// the default is the harness-scale 10^5).
  std::uint64_t oracle_rr = 100000;
  /// Shared worker-pool width (0 = hardware concurrency).
  std::int64_t threads = 0;
  /// Vertex-count override for the ⋆ proxy networks (0 = defaults).
  VertexId star_n = 0;
  /// SolveBatch sample-number-ladder reuse: RIS specs of one batch that
  /// differ only in sample_number share one RR arena sampled at the
  /// largest θ and are served as prefix views. Results are byte-identical
  /// either way (the arena's prefixes ARE the per-spec collections — see
  /// sim/rr_arena.h); the toggle exists so tests can A/B the mechanics.
  bool batch_reuse = true;
  /// Byte budget for the serving layer's arena cache
  /// (serve::QueryService): the total RrArena::MemoryBytes the cache
  /// keeps resident before evicting least-recently-used arenas. Evicted
  /// arenas are rebuilt on demand, byte-identically — arena content is a
  /// pure function of its cache key (prefix-closed streams) — so the
  /// budget trades rebuild latency for memory, never correctness.
  /// 0 = unlimited.
  std::uint64_t arena_budget_bytes = 0;
  /// How session-built world arenas store their sampled bytes: flat (the
  /// default — today's zero-copy layout), compressed (delta+varint,
  /// decode-on-demand) or mmap (chunk-granular spill to disk). Applies
  /// to batch ladder arenas and serve::QueryService cache fills; every
  /// backend answers byte-identically (store/arena_storage.h), so this
  /// only trades decode latency for resident memory. For the mmap
  /// backend, arena_storage.spill_dir must name a writable directory.
  store::StorageOptions arena_storage;
  /// When non-empty: the session-lifetime arena persistence root
  /// (store/arena_io.h). serve::QueryService saves every arena it
  /// samples under a key-derived subdirectory and reloads it on later
  /// builds — including in LATER PROCESSES — so one sampling pass serves
  /// many runs. Empty = no persistence. Safe to share across sessions:
  /// files are identity-checked (workload/seed/stream/τ + checksum)
  /// before use, and any mismatch or corruption is a plain rebuild.
  std::string arena_dir;
  /// Serving-layer resilience budgets (serve/resilience.h):
  /// default deadline applied to QuerySpecs that do not set their own
  /// (milliseconds, 0 = unlimited) ...
  std::uint64_t default_deadline_ms = 0;
  /// ... maximum concurrent arena builds in serve::QueryService (0 =
  /// unlimited; admission control off) ...
  std::int64_t max_inflight_builds = 0;
  /// ... and how many further requests may QUEUE for a build slot
  /// (bounded by their deadline) before the service sheds with
  /// kUnavailable. Only meaningful when max_inflight_builds > 0;
  /// 0 = no queue, shed immediately once all slots are busy.
  std::int64_t max_queued_builds = 0;
  /// Cadence of serve::QueryService's background integrity scrubber
  /// (serve/scrubber.h): every scrub_interval_ms one resident arena is
  /// re-hashed against its admitted checksum (mismatch = evict and
  /// rebuild) and one persisted arena_dir entry is re-verified (failure
  /// = quarantine). 0 = time-driven scrubbing off; the REPL `scrub`
  /// command still runs a full rotation on demand.
  std::uint64_t scrub_interval_ms = 0;

  /// Validation for flag-derived options (the struct defaults are valid).
  Status Validate() const;
};

/// \brief The facade: WorkloadSpec → Session → Solve.
///
/// \code
///   api::Session session;
///   auto workload = api::WorkloadSpec::Dataset("Karate")
///                       .Probability(ProbabilityModel::kIwc);
///   auto result = session.Solve(
///       workload, api::SolveSpec{}.WithSampleNumber(4096).WithK(4));
///   if (!result.ok()) { /* result.status().ToString() says why */ }
/// \endcode
class Session {
 public:
  explicit Session(const SessionOptions& options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs one greedy seed selection for `solve` on `workload`.
  /// Deterministic: the result is a pure function of the two specs and
  /// the session's seed (see SolveSpec's determinism contract).
  StatusOr<SolveResult> Solve(const WorkloadSpec& workload,
                              const SolveSpec& solve);

  /// Runs every spec on the one workload, fanning independent runs out
  /// across the shared pool (runs with engine-routed sampling execute in
  /// order instead, each spreading its own sampling chunks — never both
  /// parallelism levels at once). Results are byte-identical to calling
  /// Solve(workload, specs[i]) sequentially, for any pool width and any
  /// sampling.num_threads. Fails fast: the first invalid spec fails the
  /// whole batch before any run starts.
  ///
  /// Sample-number-ladder reuse (SessionOptions::batch_reuse, default
  /// on): RIS specs that agree on (seed, sampling) and differ only in
  /// sample_number — a sweep ladder — share one RR arena sampled lazily
  /// at the group's largest θ; every member is served as a prefix view.
  /// Byte-identity with sequential Solve is preserved exactly because
  /// the arena's prefixes are the specs' collections (sim/rr_arena.h).
  StatusOr<std::vector<SolveResult>> SolveBatch(
      const WorkloadSpec& workload, const std::vector<SolveSpec>& specs);

  /// Resolves the workload to its (graph, model) instance, building and
  /// caching graphs/weights on first use. The pointers inside stay valid
  /// for the session's lifetime.
  StatusOr<ModelInstance> ResolveWorkload(const WorkloadSpec& workload);

  /// The workload's shared influence oracle (built on first use, then
  /// reused for every query on the instance — paper Section 5.2). Keyed
  /// by (network, prob, model): LT oracles draw backward-walk RR sets.
  StatusOr<const RrOracle*> ResolveOracle(const WorkloadSpec& workload);

  /// SamplingOptions with the session's pools attached: 0 = the shared
  /// pool at full width, N >= 2 = a cached dedicated N-worker pool, 1 =
  /// sequential legacy sampling (no pool). Negative widths fall back to
  /// sequential.
  SamplingOptions SamplingFor(std::int64_t sample_threads,
                              std::uint64_t chunk_size = 256);

  ThreadPool* pool() { return pool_.get(); }
  const SessionOptions& options() const { return options_; }
  /// The underlying registry. NOT thread-safe — only touch it while no
  /// other thread is resolving (exp-layer benches build up front).
  InstanceRegistry* registry() { return &registry_; }

 private:
  /// A batch group's lazily built shared arena: the first run to need it
  /// samples it (call_once), later runs — possibly on other pool workers
  /// — read it immutably. Content is a pure function of (instance, seed,
  /// capacity, sampling), so the build schedule can never matter.
  struct ArenaSlot {
    std::once_flag once;
    std::unique_ptr<RrArena> arena;
    std::uint64_t capacity = 0;
  };

  /// One fully resolved, immutable run: safe to execute lock-free.
  struct ResolvedSolve {
    SolveSpec spec;
    ModelInstance instance;
    const RrOracle* oracle = nullptr;  // null when influence is skipped
    /// Non-null only for batch ladder groups: serve the run from a
    /// prefix view of the shared arena instead of a fresh build.
    std::shared_ptr<ArenaSlot> arena_slot;
  };

  /// Loads file/in-memory networks into the registry once (mu_ held).
  Status EnsureNetworkLocked(const WorkloadSpec& workload);
  StatusOr<ModelInstance> ResolveWorkloadLocked(const WorkloadSpec& workload);
  StatusOr<const RrOracle*> ResolveOracleLocked(const WorkloadSpec& workload);
  SamplingOptions SamplingLocked(const SamplingOptions& requested);
  StatusOr<ResolvedSolve> ResolveSolveLocked(const WorkloadSpec& workload,
                                             const SolveSpec& solve);
  SolveResult RunResolved(const ResolvedSolve& resolved);

  SessionOptions options_;
  std::mutex mu_;        ///< guards all mutable session state below
  std::mutex batch_mu_;  ///< serializes SolveBatch pool fan-outs
  /// Serializes oracle influence queries: RrCollection::CountCovered
  /// keeps mutable per-query scratch, so concurrent EstimateInfluence
  /// calls on one shared oracle would race (the result is deterministic
  /// either way — the scratch never carries state between queries).
  std::mutex oracle_eval_mu_;
  InstanceRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
  /// Names already loaded from a file / in-memory edge list.
  std::set<std::string> registered_networks_;
  /// Names resolved from the bundled catalog — a later file/edges
  /// workload may not reuse them (it would invalidate live instances).
  std::set<std::string> dataset_networks_;
  /// Dedicated sample pools, one per requested width N >= 2.
  std::map<std::size_t, std::unique_ptr<ThreadPool>> sample_pools_;
  /// Oracles keyed by WorkloadSpec::Label().
  std::map<std::string, std::unique_ptr<RrOracle>> oracles_;
};

}  // namespace api
}  // namespace soldist

#endif  // SOLDIST_API_SESSION_H_
