#include "api/session.h"

#include <algorithm>
#include <functional>
#include <tuple>
#include <utility>

#include "core/factory.h"
#include "core/greedy.h"
#include "core/ris.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "random/splitmix64.h"
#include "util/logging.h"
#include "util/timer.h"

namespace soldist {
namespace api {

Status SessionOptions::Validate() const {
  if (oracle_rr < 1) {
    return Status::InvalidArgument(
        "SessionOptions: oracle_rr must be >= 1 (RR sets per shared "
        "oracle)");
  }
  if (threads < 0) {
    return Status::InvalidArgument(
        "SessionOptions: threads must be >= 0 (0 = hardware concurrency)");
  }
  if (max_inflight_builds < 0) {
    return Status::InvalidArgument(
        "SessionOptions: max_inflight_builds must be >= 0 (0 = unlimited)");
  }
  if (max_queued_builds < 0) {
    return Status::InvalidArgument(
        "SessionOptions: max_queued_builds must be >= 0 (0 = no queue)");
  }
  return arena_storage.Validate();
}

Session::Session(const SessionOptions& options)
    : options_(options),
      registry_(options.seed, options.star_n),
      pool_(std::make_unique<ThreadPool>(
          options.threads > 0 ? static_cast<std::size_t>(options.threads)
                              : 0)) {}

Session::~Session() = default;

Status Session::EnsureNetworkLocked(const WorkloadSpec& workload) {
  // Catalog names and loaded names live in one registry namespace;
  // reusing a name across sources (either order) would silently serve
  // the wrong graph or invalidate live instances — reject both ways.
  if (workload.source == WorkloadSpec::Source::kDataset) {
    if (registered_networks_.count(workload.network) > 0) {
      return Status::InvalidArgument(
          "network name '" + workload.network +
          "' was loaded from a file/edge list in this session; a bundled "
          "dataset workload cannot reuse it");
    }
    return Status::OK();
  }
  if (registered_networks_.count(workload.network) > 0) return Status::OK();
  // Registering over an already-resolved catalog name would erase its
  // cached influence graphs while cached oracles (and any outstanding
  // ModelInstance) still point into them — reject the collision instead.
  if (dataset_networks_.count(workload.network) > 0) {
    return Status::InvalidArgument(
        "network name '" + workload.network +
        "' is already in use by a resolved bundled dataset; give the "
        "file/edge-list workload a distinct name");
  }
  EdgeList edges;
  if (workload.source == WorkloadSpec::Source::kFile) {
    StatusOr<EdgeList> loaded = GraphIo::LoadEdgeList(workload.path);
    if (!loaded.ok()) return loaded.status();
    edges = std::move(loaded).value();
  } else {
    edges = *workload.edges;
  }
  registry_.RegisterGraph(workload.network,
                          GraphBuilder::FromEdgeList(edges));
  registered_networks_.insert(workload.network);
  return Status::OK();
}

StatusOr<ModelInstance> Session::ResolveWorkloadLocked(
    const WorkloadSpec& workload) {
  SOLDIST_RETURN_IF_ERROR(options_.Validate());
  SOLDIST_RETURN_IF_ERROR(workload.Validate());
  SOLDIST_RETURN_IF_ERROR(EnsureNetworkLocked(workload));
  StatusOr<ModelInstance> instance = registry_.GetModelInstance(
      workload.network, workload.prob, workload.model);
  if (instance.ok() &&
      workload.source == WorkloadSpec::Source::kDataset) {
    dataset_networks_.insert(workload.network);
  }
  return instance;
}

StatusOr<ModelInstance> Session::ResolveWorkload(
    const WorkloadSpec& workload) {
  std::lock_guard<std::mutex> lock(mu_);
  return ResolveWorkloadLocked(workload);
}

StatusOr<const RrOracle*> Session::ResolveOracleLocked(
    const WorkloadSpec& workload) {
  // Resolve (and so validate) the workload BEFORE consulting the cache:
  // a mismatched workload that merely shares a label must hit the
  // collision rejection, not silently receive another workload's oracle.
  StatusOr<ModelInstance> instance = ResolveWorkloadLocked(workload);
  if (!instance.ok()) return instance.status();
  // The label doubles as the cache key; it also feeds the oracle seed via
  // hash, matching the pre-facade experiment harness so migrated benches
  // keep their exact influence values.
  std::string key = workload.Label();
  auto it = oracles_.find(key);
  if (it != oracles_.end()) return it->second.get();
  std::uint64_t oracle_seed =
      DeriveSeed(options_.seed, std::hash<std::string>{}(key));
  auto oracle =
      workload.model == DiffusionModel::kLt
          ? std::make_unique<RrOracle>(instance.value().lt_weights,
                                       options_.oracle_rr, oracle_seed)
          : std::make_unique<RrOracle>(instance.value().ig,
                                       options_.oracle_rr, oracle_seed);
  const RrOracle* ptr = oracle.get();
  oracles_[key] = std::move(oracle);
  return ptr;
}

StatusOr<const RrOracle*> Session::ResolveOracle(
    const WorkloadSpec& workload) {
  std::lock_guard<std::mutex> lock(mu_);
  return ResolveOracleLocked(workload);
}

SamplingOptions Session::SamplingLocked(const SamplingOptions& requested) {
  SamplingOptions sampling = requested;
  if (sampling.num_threads < 0) {
    sampling.num_threads = 1;  // nonsense width: fall back to sequential
  }
  if (sampling.pool != nullptr || sampling.num_threads == 1) {
    return sampling;  // caller-supplied pool or sequential legacy path
  }
  if (sampling.num_threads == 0) {
    sampling.pool = pool_.get();  // shared pool, full width
  } else {
    // A pool's width caps the engine's parallelism, so honor the exact
    // requested count with a cached dedicated pool instead of the shared
    // pool (whose width is configured independently).
    auto width = static_cast<std::size_t>(sampling.num_threads);
    auto& sample_pool = sample_pools_[width];
    if (sample_pool == nullptr) {
      sample_pool = std::make_unique<ThreadPool>(width);
    }
    sampling.pool = sample_pool.get();
  }
  return sampling;
}

SamplingOptions Session::SamplingFor(std::int64_t sample_threads,
                                     std::uint64_t chunk_size) {
  SamplingOptions requested;
  requested.num_threads = static_cast<int>(sample_threads);
  requested.chunk_size = chunk_size;
  std::lock_guard<std::mutex> lock(mu_);
  return SamplingLocked(requested);
}

StatusOr<Session::ResolvedSolve> Session::ResolveSolveLocked(
    const WorkloadSpec& workload, const SolveSpec& solve) {
  SOLDIST_RETURN_IF_ERROR(solve.Validate());
  ResolvedSolve resolved;
  resolved.spec = solve;
  StatusOr<ModelInstance> instance = ResolveWorkloadLocked(workload);
  if (!instance.ok()) return instance.status();
  resolved.instance = instance.value();
  const VertexId n = resolved.instance.ig->num_vertices();
  if (static_cast<VertexId>(solve.k) > n) {
    return Status::InvalidArgument(
        "SolveSpec: k=" + std::to_string(solve.k) + " exceeds the " +
        std::to_string(n) + " vertices of " + workload.Label());
  }
  if (solve.evaluate_influence) {
    StatusOr<const RrOracle*> oracle = ResolveOracleLocked(workload);
    if (!oracle.ok()) return oracle.status();
    resolved.oracle = oracle.value();
  }
  resolved.spec.sampling = SamplingLocked(solve.sampling);
  return resolved;
}

SolveResult Session::RunResolved(const ResolvedSolve& resolved) {
  const SolveSpec& spec = resolved.spec;
  WallTimer timer;
  // Exactly trial 0 of the exp-layer RunTrials with master_seed =
  // spec.seed: stream 0 drives the estimator, stream 1 the tie-break
  // shuffle (the facade and the harness stay byte-comparable).
  std::unique_ptr<InfluenceEstimator> estimator;
  if (resolved.arena_slot != nullptr) {
    // Batch ladder group: the shared arena holds this spec's collection
    // as its first sample_number sets (sampled with the group's common
    // DeriveSeed(seed, 0) stream), so the prefix-view estimator is
    // byte-identical to the fresh build below.
    ArenaSlot* slot = resolved.arena_slot.get();
    std::call_once(slot->once, [&] {
      slot->arena = std::make_unique<RrArena>(
          RrArena::SampleFor(resolved.instance, DeriveSeed(spec.seed, 0),
                             slot->capacity, spec.sampling));
      // The group shares one backend (it is part of the grouping key),
      // so converting inside the call_once is race-free. Conversion
      // never changes an answer; a failed conversion (e.g. spill dir
      // vanished) degrades to the flat arena, never fails the solve.
      const store::ArenaBackend backend =
          spec.arena_backend.value_or(options_.arena_storage.backend);
      if (backend != store::ArenaBackend::kFlat) {
        store::StorageOptions storage = options_.arena_storage;
        storage.backend = backend;
        Status converted = slot->arena->ConvertStorage(storage);
        if (!converted.ok()) {
          SOLDIST_LOG(Warning)
              << "ladder arena stays flat: " << converted.ToString();
        }
      }
    });
    estimator = std::make_unique<ArenaRisEstimator>(slot->arena.get(),
                                                    spec.sample_number);
  } else {
    estimator =
        MakeEstimator(resolved.instance, spec.approach, spec.sample_number,
                      DeriveSeed(spec.seed, 0), spec.snapshot_mode,
                      spec.sampling);
  }
  Rng tie_rng(DeriveSeed(spec.seed, 1));
  GreedyRunResult run =
      RunGreedy(estimator.get(), resolved.instance.ig->num_vertices(),
                spec.k, &tie_rng);
  SolveResult result;
  result.seeds = run.seeds;
  result.estimates = run.estimates;
  result.seed_set = run.SortedSeedSet();
  result.counters = estimator->counters();
  result.solve_seconds = timer.Seconds();
  if (resolved.oracle != nullptr) {
    timer.Restart();
    {
      // CountCovered's per-query scratch is not thread-safe; concurrent
      // runs (batch fan-out, concurrent Solve callers) take turns. The
      // value is a pure function of (oracle, seed_set) either way.
      std::lock_guard<std::mutex> lock(oracle_eval_mu_);
      result.influence =
          resolved.oracle->EstimateInfluence(result.seed_set);
    }
    result.oracle_ci99 = resolved.oracle->ConfidenceInterval99();
    result.evaluate_seconds = timer.Seconds();
  }
  return result;
}

StatusOr<SolveResult> Session::Solve(const WorkloadSpec& workload,
                                     const SolveSpec& solve) {
  StatusOr<ResolvedSolve> resolved = [&]() -> StatusOr<ResolvedSolve> {
    std::lock_guard<std::mutex> lock(mu_);
    return ResolveSolveLocked(workload, solve);
  }();
  if (!resolved.ok()) return resolved.status();
  return RunResolved(resolved.value());
}

StatusOr<std::vector<SolveResult>> Session::SolveBatch(
    const WorkloadSpec& workload, const std::vector<SolveSpec>& specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("SolveBatch: empty spec list");
  }
  // Resolve everything up front (fail fast, and keep the run loop free of
  // registry mutation so it can fan out).
  std::vector<ResolvedSolve> resolved;
  resolved.reserve(specs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      StatusOr<ResolvedSolve> r = ResolveSolveLocked(workload, specs[i]);
      if (!r.ok()) {
        return Status(r.status().code(),
                      "SolveBatch spec " + std::to_string(i) + ": " +
                          r.status().message());
      }
      resolved.push_back(std::move(r).value());
    }
  }
  // Sample-number-ladder reuse: RIS specs that agree on everything that
  // shapes their RR streams — the estimator seed and the sampling family
  // (thread count, chunk size, attached pool) — draw prefix-closed
  // collections of one another, so the group shares one arena sampled at
  // its largest θ and every member runs on a prefix view. Grouping only
  // ever changes mechanics, never bytes (see RunResolved).
  if (options_.batch_reuse) {
    // The storage backend joins the key: specs that want different
    // backends must not share a slot (the slot converts exactly once).
    std::map<std::tuple<std::uint64_t, int, std::uint64_t, ThreadPool*, int>,
             std::vector<std::size_t>>
        ladder_groups;
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      const SolveSpec& spec = resolved[i].spec;
      if (spec.approach != Approach::kRis) continue;
      const auto backend = static_cast<int>(
          spec.arena_backend.value_or(options_.arena_storage.backend));
      ladder_groups[{spec.seed, spec.sampling.num_threads,
                     spec.sampling.chunk_size, spec.sampling.pool, backend}]
          .push_back(i);
    }
    for (auto& [key, members] : ladder_groups) {
      if (members.size() < 2) continue;  // nothing to share
      auto slot = std::make_shared<ArenaSlot>();
      for (std::size_t idx : members) {
        slot->capacity =
            std::max(slot->capacity, resolved[idx].spec.sample_number);
      }
      for (std::size_t idx : members) resolved[idx].arena_slot = slot;
    }
  }
  // Engine-routed sampling owns the pool for its chunks, so those runs
  // execute in order (same rule as the exp-layer trial runner: one
  // parallelism level at a time). Either way each run is a pure function
  // of its spec, so the schedule cannot change the results.
  bool any_engine = false;
  for (const ResolvedSolve& r : resolved) {
    if (r.spec.sampling.UseEngine()) any_engine = true;
  }
  std::vector<SolveResult> results(resolved.size());
  if (any_engine || resolved.size() == 1 || pool_->num_threads() <= 1) {
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      results[i] = RunResolved(resolved[i]);
    }
  } else {
    // The pool's single-waiter contract: one batch fan-out at a time.
    std::lock_guard<std::mutex> lock(batch_mu_);
    ParallelFor(pool_.get(), resolved.size(), [&](std::uint64_t i) {
      results[i] = RunResolved(resolved[i]);
    });
  }
  return results;
}

}  // namespace api
}  // namespace soldist
