#include "api/spec.h"

#include <algorithm>
#include <cctype>

namespace soldist {
namespace api {

WorkloadSpec WorkloadSpec::Dataset(std::string name) {
  WorkloadSpec spec;
  spec.source = Source::kDataset;
  spec.network = std::move(name);
  return spec;
}

WorkloadSpec WorkloadSpec::File(std::string path, std::string name) {
  WorkloadSpec spec;
  spec.source = Source::kFile;
  spec.network = name.empty() ? path : std::move(name);
  spec.path = std::move(path);
  return spec;
}

WorkloadSpec WorkloadSpec::Edges(std::string name, EdgeList edges) {
  WorkloadSpec spec;
  spec.source = Source::kEdges;
  spec.network = std::move(name);
  spec.edges = std::make_shared<const EdgeList>(std::move(edges));
  return spec;
}

Status WorkloadSpec::Validate() const {
  if (network.empty()) {
    return Status::InvalidArgument("WorkloadSpec: network name is empty");
  }
  switch (source) {
    case Source::kDataset:
      break;
    case Source::kFile:
      if (path.empty()) {
        return Status::InvalidArgument(
            "WorkloadSpec: file source without a path");
      }
      break;
    case Source::kEdges:
      if (edges == nullptr) {
        return Status::InvalidArgument(
            "WorkloadSpec: edges source without an edge list");
      }
      if (!edges->Validate()) {
        return Status::InvalidArgument(
            "WorkloadSpec: edge list '" + network +
            "' has endpoints outside [0, num_vertices)");
      }
      break;
  }
  return Status::OK();
}

std::string WorkloadSpec::Label() const {
  std::string label = network + "/" + ProbabilityModelName(prob);
  if (model == DiffusionModel::kLt) {
    label += "/" + DiffusionModelName(model);
  }
  return label;
}

Status SolveSpec::Validate() const {
  if (sample_number < 1) {
    return Status::InvalidArgument(
        "SolveSpec: sample_number must be >= 1 (the sample-number grid is "
        "2^0 and up)");
  }
  if (k < 1) {
    return Status::InvalidArgument("SolveSpec: k must be >= 1, got " +
                                   std::to_string(k));
  }
  if (sampling.num_threads < 0) {
    return Status::InvalidArgument(
        "SolveSpec: sampling.num_threads must be >= 0 (0 = hardware "
        "concurrency)");
  }
  if (sampling.chunk_size < 1) {
    return Status::InvalidArgument(
        "SolveSpec: sampling.chunk_size must be >= 1");
  }
  return Status::OK();
}

StatusOr<Approach> ParseApproach(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "oneshot") return Approach::kOneshot;
  if (lower == "snapshot") return Approach::kSnapshot;
  if (lower == "ris") return Approach::kRis;
  return Status::InvalidArgument("unknown approach: '" + name +
                                 "' (expected Oneshot, Snapshot, or RIS)");
}

}  // namespace api
}  // namespace soldist
