// The public request/response types of the soldist query facade (api/):
// WorkloadSpec names ONE problem instance (network source, probability
// setting, diffusion model), SolveSpec one solver run on it, SolveResult
// everything the run produced. All specs are plain builder-style structs
// validated with Status — invalid user input never CHECK-aborts on this
// surface (util/status.h: CHECK is for programmer errors only).

#ifndef SOLDIST_API_SPEC_H_
#define SOLDIST_API_SPEC_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/snapshot.h"
#include "graph/edge_list.h"
#include "model/diffusion.h"
#include "model/probability.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"
#include "store/arena_storage.h"
#include "util/status.h"

namespace soldist {
namespace api {

/// \brief One problem instance: where the network comes from plus the
/// probability setting and diffusion model to run on it.
///
/// Three network sources:
///  * kDataset — a bundled Table-3 network by canonical name;
///  * kFile    — a SNAP/KONECT-style edge-list file on disk;
///  * kEdges   — an in-memory edge list (e.g. generator output).
///
/// \code
///   auto spec = WorkloadSpec::Dataset("Karate")
///                   .Probability(ProbabilityModel::kIwc)
///                   .Diffusion(DiffusionModel::kLt);
/// \endcode
struct WorkloadSpec {
  enum class Source { kDataset, kFile, kEdges };

  Source source = Source::kDataset;
  /// Dataset name for kDataset; cache identity for kFile/kEdges (defaults
  /// to the path for files). Two specs with the same name share the
  /// session's cached graph, so give distinct edge lists distinct names.
  std::string network = "Karate";
  std::string path;  ///< edge-list file (kFile only)
  /// Shared so specs stay cheap to copy into batches (kEdges only).
  std::shared_ptr<const EdgeList> edges;

  ProbabilityModel prob = ProbabilityModel::kIwc;
  DiffusionModel model = DiffusionModel::kIc;

  static WorkloadSpec Dataset(std::string name);
  /// \param name cache identity; empty = use the path itself.
  static WorkloadSpec File(std::string path, std::string name = "");
  static WorkloadSpec Edges(std::string name, EdgeList edges);

  WorkloadSpec& Probability(ProbabilityModel p) {
    prob = p;
    return *this;
  }
  WorkloadSpec& Diffusion(DiffusionModel m) {
    model = m;
    return *this;
  }

  /// Field-level validation (source/name/path consistency). Instance-level
  /// errors (unknown dataset, unreadable file, LT-invalid probability) are
  /// reported by Session when the workload is resolved.
  Status Validate() const;

  /// "network/prob[/lt]" — the session cache key and display label.
  std::string Label() const;
};

/// \brief One solver run: approach, sample number, seed-set size, seed,
/// and the sampling-parallelism knobs.
///
/// Determinism contract: the result is a pure function of this spec and
/// the resolved workload. The estimator stream is seeded with
/// DeriveSeed(seed, 0) and the greedy tie-break shuffle with
/// DeriveSeed(seed, 1) — exactly trial 0 of the exp-layer RunTrials with
/// master_seed = seed, so facade results are byte-comparable with the
/// legacy harness. sampling.num_threads never changes the result within a
/// stream family (see sim/sampling_engine.h).
struct SolveSpec {
  Approach approach = Approach::kRis;
  std::uint64_t sample_number = 1024;  ///< β, τ, or θ
  int k = 1;                           ///< seed-set size
  std::uint64_t seed = 1;              ///< master seed for this run
  SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual;
  /// Sampling parallelism. Leave pool null: the session attaches its
  /// shared pool (num_threads == 0) or a cached dedicated pool
  /// (num_threads >= 2).
  SamplingOptions sampling;
  /// Evaluate the chosen seeds on the session's shared RR oracle
  /// (SolveResult::influence). Off: skip the oracle entirely — no oracle
  /// is built for the instance.
  bool evaluate_influence = true;
  /// Storage backend for a batch ladder group's shared arena
  /// (store/arena_storage.h). Unset = follow the session's
  /// SessionOptions::arena_storage.backend. Backends never change a
  /// result byte — only the memory/decode trade of holding the arena.
  std::optional<store::ArenaBackend> arena_backend;

  SolveSpec& WithApproach(Approach a) {
    approach = a;
    return *this;
  }
  SolveSpec& WithSampleNumber(std::uint64_t s) {
    sample_number = s;
    return *this;
  }
  SolveSpec& WithK(int seeds) {
    k = seeds;
    return *this;
  }
  SolveSpec& WithSeed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  SolveSpec& WithSampleThreads(int threads) {
    sampling.num_threads = threads;
    return *this;
  }
  /// Snapshot reachability backend (naive/residual/condensed). Backends
  /// are byte-identical in seeds and estimates; condensed is the fast,
  /// SCC-condensed one (core/snapshot.h). No effect on other approaches.
  SolveSpec& WithSnapshotMode(SnapshotEstimator::Mode mode) {
    snapshot_mode = mode;
    return *this;
  }
  /// Arena storage backend override for this run's ladder arena (see
  /// arena_backend above).
  SolveSpec& WithArenaBackend(store::ArenaBackend backend) {
    arena_backend = backend;
    return *this;
  }

  /// Field-level validation (sample_number/k/sampling ranges). k against
  /// the network size is checked by Session once the workload is resolved.
  Status Validate() const;
};

/// \brief Everything one Solve produced.
struct SolveResult {
  /// Seeds in greedy selection order (v_1, ..., v_k).
  std::vector<VertexId> seeds;
  /// Estimator score of each seed at selection time (absolute influence
  /// for Oneshot, marginal gain for Snapshot/RIS).
  std::vector<double> estimates;
  /// Seeds sorted ascending: the canonical seed-*set* identity.
  std::vector<VertexId> seed_set;
  /// Shared-oracle influence estimate of seed_set; 0 when
  /// SolveSpec::evaluate_influence was off.
  double influence = 0.0;
  /// Half-width of the oracle's 99% confidence interval (0 when the
  /// oracle was skipped).
  double oracle_ci99 = 0.0;
  /// Work counters accumulated across the estimator's lifetime.
  TraversalCounters counters;
  /// Wall-clock seconds of the greedy run (estimator Build + selection).
  double solve_seconds = 0.0;
  /// Wall-clock seconds of the oracle evaluation (0 when skipped).
  double evaluate_seconds = 0.0;
};

/// Inverse of ApproachName: accepts "Oneshot"/"Snapshot"/"RIS"
/// case-insensitively ("ris", "ONESHOT", ...).
StatusOr<Approach> ParseApproach(const std::string& name);

}  // namespace api
}  // namespace soldist

#endif  // SOLDIST_API_SPEC_H_
