#include "exp/table_writer.h"

#include <cstdio>

#include "util/logging.h"

namespace soldist {

std::string FormatPowerOfTwo(std::uint64_t v) {
  if (v != 0 && (v & (v - 1)) == 0) {
    int exp = 0;
    while ((1ULL << exp) < v) ++exp;
    return "2^" + std::to_string(exp);
  }
  return std::to_string(v);
}

std::string FormatLog2(std::uint64_t v) {
  SOLDIST_CHECK(v != 0 && (v & (v - 1)) == 0) << v << " is not a power of 2";
  int exp = 0;
  while ((1ULL << exp) < v) ++exp;
  return std::to_string(exp);
}

void PrintTable(const std::string& title, const TextTable& table) {
  std::printf("\n## %s\n\n%s\n", title.c_str(), table.ToMarkdown().c_str());
  std::fflush(stdout);
}

void MaybeWriteCsv(const CsvWriter& csv, const std::string& path) {
  if (path.empty()) return;
  Status s = csv.WriteFile(path);
  if (s.ok()) {
    SOLDIST_LOG(Info) << "wrote " << path;
  } else {
    SOLDIST_LOG(Error) << "failed writing " << path << ": " << s.ToString();
  }
}

}  // namespace soldist
