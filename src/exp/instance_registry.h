// InstanceRegistry: builds and caches (network, probability-setting)
// influence graphs so each bench constructs a dataset exactly once.

#ifndef SOLDIST_EXP_INSTANCE_REGISTRY_H_
#define SOLDIST_EXP_INSTANCE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/probability.h"
#include "util/status.h"

namespace soldist {

/// \brief Cache of built graphs and influence graphs.
///
/// Datasets are deterministic in `dataset_seed`; the registry hands out
/// stable pointers owned by itself. Not thread-safe for concurrent
/// building (benches build up front, then run).
class InstanceRegistry {
 public:
  /// \param dataset_seed seed for the synthetic dataset generators
  /// \param star_n vertex-count override for the ⋆ networks (0 = default)
  explicit InstanceRegistry(std::uint64_t dataset_seed, VertexId star_n = 0);

  /// The structural graph of `network` (built on first use).
  StatusOr<const Graph*> GetGraph(const std::string& network);

  /// The influence graph of (network, prob) (built on first use).
  StatusOr<const InfluenceGraph*> GetInstance(const std::string& network,
                                              ProbabilityModel prob);

  /// Registers an externally loaded graph (e.g. a real SNAP edge list)
  /// under `network`, replacing the synthetic builder for that name.
  void RegisterGraph(const std::string& network, Graph graph);

  std::uint64_t dataset_seed() const { return dataset_seed_; }

 private:
  std::uint64_t dataset_seed_;
  VertexId star_n_;
  std::map<std::string, std::unique_ptr<Graph>> graphs_;
  std::map<std::string, std::unique_ptr<InfluenceGraph>> instances_;
};

}  // namespace soldist

#endif  // SOLDIST_EXP_INSTANCE_REGISTRY_H_
