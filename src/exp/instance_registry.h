// InstanceRegistry: builds and caches (network, probability-setting)
// influence graphs — and their LT weight tables — so each bench
// constructs a dataset exactly once.

#ifndef SOLDIST_EXP_INSTANCE_REGISTRY_H_
#define SOLDIST_EXP_INSTANCE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>

#include "gen/datasets.h"
#include "graph/builder.h"
#include "model/diffusion.h"
#include "model/lt.h"
#include "model/probability.h"
#include "util/status.h"

namespace soldist {

/// \brief Cache of built graphs and influence graphs.
///
/// Datasets are deterministic in `dataset_seed`; the registry hands out
/// stable pointers owned by itself. Not thread-safe for concurrent
/// building (benches build up front, then run).
class InstanceRegistry {
 public:
  /// \param dataset_seed seed for the synthetic dataset generators
  /// \param star_n vertex-count override for the ⋆ networks (0 = default)
  explicit InstanceRegistry(std::uint64_t dataset_seed, VertexId star_n = 0);

  /// The structural graph of `network` (built on first use).
  StatusOr<const Graph*> GetGraph(const std::string& network);

  /// The influence graph of (network, prob) (built on first use).
  StatusOr<const InfluenceGraph*> GetInstance(const std::string& network,
                                              ProbabilityModel prob);

  /// The LT weight table of (network, prob), cached alongside the
  /// influence graph. Fails with InvalidArgument when the probability
  /// setting is not LT-valid (per-vertex in-weights must sum to <= 1 —
  /// iwc always qualifies; uc0.1 on high-in-degree graphs does not).
  StatusOr<const LtWeights*> GetLtWeights(const std::string& network,
                                          ProbabilityModel prob);

  /// The full (graph, model) workload of (network, prob, model): resolves
  /// LtWeights for kLt, nothing extra for kIc.
  StatusOr<ModelInstance> GetModelInstance(const std::string& network,
                                           ProbabilityModel prob,
                                           DiffusionModel model);

  /// Registers an externally loaded graph (e.g. a real SNAP edge list)
  /// under `network`, replacing the synthetic builder for that name.
  void RegisterGraph(const std::string& network, Graph graph);

  std::uint64_t dataset_seed() const { return dataset_seed_; }

 private:
  std::uint64_t dataset_seed_;
  VertexId star_n_;
  std::map<std::string, std::unique_ptr<Graph>> graphs_;
  std::map<std::string, std::unique_ptr<InfluenceGraph>> instances_;
  std::map<std::string, std::unique_ptr<LtWeights>> lt_weights_;
};

}  // namespace soldist

#endif  // SOLDIST_EXP_INSTANCE_REGISTRY_H_
