// TrialRunner: the paper's core methodology (Section 4) — run algorithm
// `alg` with sample number `s` T times with fresh PRNG states, record
// every seed set, and evaluate each against the shared influence oracle.

#ifndef SOLDIST_EXP_TRIAL_RUNNER_H_
#define SOLDIST_EXP_TRIAL_RUNNER_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "core/factory.h"
#include "core/oneshot.h"
#include "core/ris.h"
#include "core/snapshot.h"
#include "model/diffusion.h"
#include "oracle/rr_oracle.h"
#include "sim/sampling_engine.h"
#include "stats/influence_distribution.h"
#include "stats/seed_set_distribution.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace soldist {

/// Configuration of one (algorithm, sample number, k, T) cell.
struct TrialConfig {
  Approach approach = Approach::kOneshot;
  std::uint64_t sample_number = 1;
  int k = 1;
  std::uint64_t trials = 1;
  /// Master seed; trial t uses streams derived from (master_seed, t).
  std::uint64_t master_seed = 1;
  SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual;
  /// Sample-level parallelism for each trial's estimator. The default
  /// (sequential) lets RunTrials parallelize at the *trial* level instead;
  /// when UseEngine(), trials run sequentially and the estimators fan
  /// their sampling chunks out onto the one shared pool — never both
  /// levels at once, and never a private per-trial pool.
  SamplingOptions sampling;
};

/// Everything recorded across the T trials of one cell.
struct TrialResult {
  /// Raw seed sets, one per trial (sorted).
  std::vector<std::vector<VertexId>> seed_sets;
  /// The empirical seed-set distribution S(s).
  SeedSetDistribution distribution;
  /// The influence distribution I(s) (filled by EvaluateInfluence).
  InfluenceDistribution influence;
  /// Work summed over all trials.
  TraversalCounters total_counters;
  /// Wall-clock seconds summed over the cell's trials (estimator build +
  /// greedy selection; excludes oracle evaluation). Timing only — never
  /// part of any byte-identity contract.
  double seconds = 0.0;

  double MeanVertexCost(std::uint64_t trials) const {
    return static_cast<double>(total_counters.vertices) /
           static_cast<double>(trials);
  }
  double MeanEdgeCost(std::uint64_t trials) const {
    return static_cast<double>(total_counters.edges) /
           static_cast<double>(trials);
  }
  double MeanSampleSize(std::uint64_t trials) const {
    return static_cast<double>(total_counters.TotalSampleSize()) /
           static_cast<double>(trials);
  }
};

/// Runs the T trials and collects seed sets + counters. `pool` (optional)
/// is the one shared worker pool: with sequential `config.sampling` the
/// trials fan out across it; with an engine-enabled `config.sampling` the
/// trials run in order and the pool serves each trial's sampling chunks.
/// Either way the worker count never affects the result — but note that
/// for IC the two sampling modes are distinct stream families:
/// engine-path results match other engine runs with the same chunk_size,
/// not the legacy sequential default. (LT always uses the chunked
/// streams, so LT results are byte-identical across ALL sampling
/// configurations with the same chunk_size.) Influence is NOT evaluated
/// here — call EvaluateInfluence with the instance's shared oracle.
TrialResult RunTrials(const ModelInstance& instance,
                      const TrialConfig& config, ThreadPool* pool);

/// IC convenience overload (the pre-LT signature).
TrialResult RunTrials(const InfluenceGraph& ig, const TrialConfig& config,
                      ThreadPool* pool);

/// Evaluates every recorded seed set against `oracle`, filling
/// result->influence. The same oracle must be reused for all algorithms
/// and sample numbers of an instance (paper Section 5.2).
void EvaluateInfluence(const RrOracle& oracle, TrialResult* result);

/// \brief Stream/reuse policy for a sample-number ladder (a sweep's
/// geometric grid of sample numbers run trial-by-trial).
///
/// kLegacy is the pre-arena scheme: every (cell, trial) derives its
/// streams from the CELL's master seed, so no two cells share any
/// randomness — and none can share any sampling work. kOff and kOn both
/// switch to trial-major, prefix-closed streams (one sampling stream per
/// TRIAL, shared by every cell): kOff still samples each cell from
/// scratch, kOn samples once per trial at the ladder maximum into an
/// RrArena and serves every cell as a prefix view. kOff and kOn are
/// byte-identical in every recorded quantity (seeds, counters,
/// distributions) — that is the A/B the sweep-reuse bench CHECKs before
/// recording a speedup. kLegacy differs from both in streams (equal in
/// distribution, not in bytes).
enum class SweepReuse { kLegacy, kOff, kOn };

/// Flag-value parsing/naming for --sweep-reuse ("on" | "off" | "legacy").
StatusOr<SweepReuse> ParseSweepReuse(const std::string& name);
std::string SweepReuseName(SweepReuse reuse);

/// Configuration of one algorithm's ladder on one instance: the T-trials
/// methodology over an ascending list of sample numbers with trial-major
/// streams.
struct TrialLadderConfig {
  Approach approach = Approach::kRis;
  /// Strictly ascending sample numbers; the last is the arena capacity.
  std::vector<std::uint64_t> sample_numbers;
  int k = 1;
  std::uint64_t trials = 1;
  std::uint64_t master_seed = 1;
  SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual;
  SamplingOptions sampling;
  /// Serve cells from a per-trial arena (kOn mechanics): an RrArena for
  /// kRis, a SnapshotArena for kSnapshot (which requires IC +
  /// Mode::kCondensed — the arena stores condensed worlds with
  /// precomputed warmth, so only the condensed backend can consume it
  /// byte-identically). false = kOff mechanics (same trial-major streams,
  /// fresh per-cell sampling).
  bool reuse = true;
  /// Optional observability: when non-null and reuse is on, trial 0
  /// writes its arena's MemoryBytes here (one representative figure —
  /// trial arenas differ only in content, not materially in size). Never
  /// affects results.
  std::uint64_t* arena_bytes_out = nullptr;
  /// Optional observability: when non-null and reuse is on, receives the
  /// wall-clock seconds of the per-trial arena builds summed over all
  /// trials. The build is NOT attributed to any cell's `seconds` — cell
  /// figures are pure serving cost; report the one-off build separately
  /// (bench_sweep_reuse's arena_build_seconds field). Never affects
  /// results.
  double* arena_seconds_out = nullptr;
};

/// Runs the ladder: for each trial t, every sample number in order, with
/// the trial-major stream derivation
///
///   trial_master    = DeriveSeed(config.master_seed, t)
///   sampling stream = DeriveSeed(trial_master, 0)   (all cells of t)
///   shuffle stream  = DeriveSeed(DeriveSeed(trial_master, 1), τ)
///
/// so the RR samples of cell τ₁ are a prefix of cell τ₂'s within a trial
/// (that is what reuse exploits) while trials stay fully independent.
/// Returns one TrialResult per sample number, aligned with
/// config.sample_numbers. Trial-level parallelism follows RunTrials'
/// rule: sequential-sampling configs fan trials out across `pool`,
/// engine-routed configs run trials in order and parallelize sampling.
/// The result is a pure function of the config within a stream family —
/// the worker count and `reuse` never change it.
std::vector<TrialResult> RunTrialLadder(const ModelInstance& instance,
                                        const TrialLadderConfig& config,
                                        ThreadPool* pool);

}  // namespace soldist

#endif  // SOLDIST_EXP_TRIAL_RUNNER_H_
