#include "exp/instance_registry.h"

#include "random/splitmix64.h"

namespace soldist {

InstanceRegistry::InstanceRegistry(std::uint64_t dataset_seed,
                                   VertexId star_n)
    : dataset_seed_(dataset_seed), star_n_(star_n) {}

StatusOr<const Graph*> InstanceRegistry::GetGraph(const std::string& network) {
  auto it = graphs_.find(network);
  if (it != graphs_.end()) return it->second.get();
  StatusOr<EdgeList> edges = Datasets::ByName(network, dataset_seed_, star_n_);
  if (!edges.ok()) return edges.status();
  auto graph =
      std::make_unique<Graph>(GraphBuilder::FromEdgeList(edges.value()));
  const Graph* ptr = graph.get();
  graphs_[network] = std::move(graph);
  return ptr;
}

StatusOr<const InfluenceGraph*> InstanceRegistry::GetInstance(
    const std::string& network, ProbabilityModel prob) {
  std::string key = network + "/" + ProbabilityModelName(prob);
  auto it = instances_.find(key);
  if (it != instances_.end()) return it->second.get();
  StatusOr<const Graph*> graph = GetGraph(network);
  if (!graph.ok()) return graph.status();
  // Trivalency needs randomness; derive a stable per-instance stream.
  Rng rng(DeriveSeed(dataset_seed_, std::hash<std::string>{}(key)));
  auto instance = std::make_unique<InfluenceGraph>(
      MakeInfluenceGraph(*graph.value(), prob, &rng));
  const InfluenceGraph* ptr = instance.get();
  instances_[key] = std::move(instance);
  return ptr;
}

void InstanceRegistry::RegisterGraph(const std::string& network,
                                     Graph graph) {
  graphs_[network] = std::make_unique<Graph>(std::move(graph));
  // Invalidate cached influence graphs of this network.
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (it->first.rfind(network + "/", 0) == 0) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace soldist
