#include "exp/instance_registry.h"

#include "random/splitmix64.h"

namespace soldist {

InstanceRegistry::InstanceRegistry(std::uint64_t dataset_seed,
                                   VertexId star_n)
    : dataset_seed_(dataset_seed), star_n_(star_n) {}

StatusOr<const Graph*> InstanceRegistry::GetGraph(const std::string& network) {
  auto it = graphs_.find(network);
  if (it != graphs_.end()) return it->second.get();
  StatusOr<EdgeList> edges = Datasets::ByName(network, dataset_seed_, star_n_);
  if (!edges.ok()) return edges.status();
  auto graph =
      std::make_unique<Graph>(GraphBuilder::FromEdgeList(edges.value()));
  const Graph* ptr = graph.get();
  graphs_[network] = std::move(graph);
  return ptr;
}

StatusOr<const InfluenceGraph*> InstanceRegistry::GetInstance(
    const std::string& network, ProbabilityModel prob) {
  std::string key = network + "/" + ProbabilityModelName(prob);
  auto it = instances_.find(key);
  if (it != instances_.end()) return it->second.get();
  StatusOr<const Graph*> graph = GetGraph(network);
  if (!graph.ok()) return graph.status();
  // Trivalency needs randomness; derive a stable per-instance stream.
  Rng rng(DeriveSeed(dataset_seed_, std::hash<std::string>{}(key)));
  auto instance = std::make_unique<InfluenceGraph>(
      MakeInfluenceGraph(*graph.value(), prob, &rng));
  const InfluenceGraph* ptr = instance.get();
  instances_[key] = std::move(instance);
  return ptr;
}

StatusOr<const LtWeights*> InstanceRegistry::GetLtWeights(
    const std::string& network, ProbabilityModel prob) {
  std::string key = network + "/" + ProbabilityModelName(prob);
  auto it = lt_weights_.find(key);
  if (it != lt_weights_.end()) return it->second.get();
  StatusOr<const InfluenceGraph*> instance = GetInstance(network, prob);
  if (!instance.ok()) return instance.status();
  // Validate here (LtWeights CHECK-fails): an LT-invalid probability
  // setting is a user input, not a programmer error.
  if (!IsValidLtGraph(*instance.value())) {
    return Status::InvalidArgument(
        key + " is not LT-valid: per-vertex in-weights must sum to <= 1 "
              "(use iwc)");
  }
  auto weights = std::make_unique<LtWeights>(instance.value());
  const LtWeights* ptr = weights.get();
  lt_weights_[key] = std::move(weights);
  return ptr;
}

StatusOr<ModelInstance> InstanceRegistry::GetModelInstance(
    const std::string& network, ProbabilityModel prob, DiffusionModel model) {
  if (model == DiffusionModel::kLt) {
    StatusOr<const LtWeights*> weights = GetLtWeights(network, prob);
    if (!weights.ok()) return weights.status();
    return ModelInstance::Lt(weights.value());
  }
  StatusOr<const InfluenceGraph*> instance = GetInstance(network, prob);
  if (!instance.ok()) return instance.status();
  return ModelInstance::Ic(instance.value());
}

void InstanceRegistry::RegisterGraph(const std::string& network,
                                     Graph graph) {
  graphs_[network] = std::make_unique<Graph>(std::move(graph));
  // Invalidate cached influence graphs (and their LT tables) of this
  // network.
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (it->first.rfind(network + "/", 0) == 0) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = lt_weights_.begin(); it != lt_weights_.end();) {
    if (it->first.rfind(network + "/", 0) == 0) {
      it = lt_weights_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace soldist
