// Sample-number sweeps: run the trial methodology for sample numbers
// 2^min_exp .. 2^max_exp (the paper's powers-of-two grids) and summarize
// each point (entropy, influence statistics, per-trial costs).

#ifndef SOLDIST_EXP_SWEEP_H_
#define SOLDIST_EXP_SWEEP_H_

#include <vector>

#include "exp/trial_runner.h"
#include "stats/comparable_ratio.h"

namespace soldist {

/// Configuration of one algorithm's sweep on one instance.
struct SweepConfig {
  Approach approach = Approach::kOneshot;
  int k = 1;
  std::uint64_t trials = 100;
  std::uint64_t master_seed = 1;
  int min_exponent = 0;  ///< first sample number 2^min_exponent
  int max_exponent = 8;  ///< last sample number 2^max_exponent
  SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual;
  /// Sample-level parallelism, forwarded to every cell's TrialConfig.
  SamplingOptions sampling;
  /// Ladder policy (exp/trial_runner.h) for RIS and Snapshot sweeps: kOn
  /// serves every cell of a trial as a prefix of one per-trial arena
  /// (RrArena for RIS, SnapshotArena for IC condensed-mode Snapshot),
  /// kOff runs the same trial-major prefix-closed streams with fresh
  /// per-cell sampling (byte-identical to kOn), kLegacy keeps the
  /// pre-arena cell-major streams. Snapshot configurations without an
  /// arena form (LT, naive/residual modes) downgrade kOn to kOff
  /// mechanics; Oneshot always runs kLegacy. The struct default stays
  /// kLegacy so existing callers are byte-stable; the benches wire
  /// --sweep-reuse (default on) through it.
  SweepReuse reuse = SweepReuse::kLegacy;
};

/// One sweep point: the cell's full results plus curve summaries.
struct SweepCell {
  std::uint64_t sample_number = 0;
  TrialResult result;
  double entropy = 0.0;
  /// Curve point for comparable-ratio analysis (mean influence from the
  /// shared oracle, mean stored sample size per trial).
  SweepPoint summary;
};

/// Runs the sweep under `instance`'s diffusion model; every cell's
/// influence is evaluated with `oracle` (which must be built for the same
/// model — ExperimentContext::Oracle keys oracles by model). Cells use
/// master seeds derived from (config.master_seed, exponent) so the whole
/// sweep is reproducible and cells are independent.
std::vector<SweepCell> RunSweep(const ModelInstance& instance,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool);

/// IC convenience overload (the pre-LT signature).
std::vector<SweepCell> RunSweep(const InfluenceGraph& ig,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool);

/// Extracts the SweepPoint curve from sweep cells (for comparable ratios).
std::vector<SweepPoint> CurveOf(const std::vector<SweepCell>& cells);

/// \brief The paper's near-optimality criterion (Table 5).
///
/// Finds the least sample number whose influence distribution puts at
/// least `probability` mass on values >= `threshold` (0.95 × reference in
/// the paper). Returns the cell index, or -1 when no cell qualifies.
int FindLeastSufficientCell(const std::vector<SweepCell>& cells,
                            double threshold, double probability);

}  // namespace soldist

#endif  // SOLDIST_EXP_SWEEP_H_
