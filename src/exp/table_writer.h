// Small formatting helpers shared by the table/figure bench binaries.

#ifndef SOLDIST_EXP_TABLE_WRITER_H_
#define SOLDIST_EXP_TABLE_WRITER_H_

#include <cstdint>
#include <string>

#include "util/csv.h"
#include "util/table.h"

namespace soldist {

/// "2^e" when v is a power of two, otherwise plain digits.
std::string FormatPowerOfTwo(std::uint64_t v);

/// log2(v) as an integer string; CHECKs that v is a power of two.
std::string FormatLog2(std::uint64_t v);

/// Prints a titled markdown table to stdout.
void PrintTable(const std::string& title, const TextTable& table);

/// Writes `csv` to `path` if path is non-empty, logging the outcome.
void MaybeWriteCsv(const CsvWriter& csv, const std::string& path);

}  // namespace soldist

#endif  // SOLDIST_EXP_TABLE_WRITER_H_
