#include "exp/sweep.h"

#include "random/splitmix64.h"

namespace soldist {

std::vector<SweepCell> RunSweep(const ModelInstance& instance,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool) {
  SOLDIST_CHECK(config.min_exponent >= 0);
  SOLDIST_CHECK(config.max_exponent >= config.min_exponent);
  SOLDIST_CHECK(config.max_exponent < 63);
  std::vector<SweepCell> cells;
  cells.reserve(config.max_exponent - config.min_exponent + 1);
  for (int exp = config.min_exponent; exp <= config.max_exponent; ++exp) {
    TrialConfig cell_config;
    cell_config.approach = config.approach;
    cell_config.sample_number = 1ULL << exp;
    cell_config.k = config.k;
    cell_config.trials = config.trials;
    cell_config.master_seed =
        DeriveSeed(config.master_seed, static_cast<std::uint64_t>(exp));
    cell_config.snapshot_mode = config.snapshot_mode;
    cell_config.sampling = config.sampling;

    SweepCell cell;
    cell.sample_number = cell_config.sample_number;
    cell.result = RunTrials(instance, cell_config, pool);
    EvaluateInfluence(oracle, &cell.result);
    cell.entropy = cell.result.distribution.Entropy();
    cell.summary.sample_number = cell.sample_number;
    cell.summary.mean_influence = cell.result.influence.Mean();
    cell.summary.mean_sample_size =
        cell.result.MeanSampleSize(config.trials);
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<SweepCell> RunSweep(const InfluenceGraph& ig,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool) {
  return RunSweep(ModelInstance::Ic(&ig), oracle, config, pool);
}

std::vector<SweepPoint> CurveOf(const std::vector<SweepCell>& cells) {
  std::vector<SweepPoint> curve;
  curve.reserve(cells.size());
  for (const auto& cell : cells) curve.push_back(cell.summary);
  return curve;
}

int FindLeastSufficientCell(const std::vector<SweepCell>& cells,
                            double threshold, double probability) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].result.influence.FractionAtLeast(threshold) >= probability) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace soldist
