#include "exp/sweep.h"

#include "random/splitmix64.h"

namespace soldist {

namespace {

/// Oracle evaluation + curve summaries shared by both sweep paths.
SweepCell SummarizeCell(const RrOracle& oracle, std::uint64_t sample_number,
                        std::uint64_t trials, TrialResult&& result) {
  SweepCell cell;
  cell.sample_number = sample_number;
  cell.result = std::move(result);
  EvaluateInfluence(oracle, &cell.result);
  cell.entropy = cell.result.distribution.Entropy();
  cell.summary.sample_number = cell.sample_number;
  cell.summary.mean_influence = cell.result.influence.Mean();
  cell.summary.mean_sample_size = cell.result.MeanSampleSize(trials);
  return cell;
}

}  // namespace

std::vector<SweepCell> RunSweep(const ModelInstance& instance,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool) {
  SOLDIST_CHECK(config.min_exponent >= 0);
  SOLDIST_CHECK(config.max_exponent >= config.min_exponent);
  SOLDIST_CHECK(config.max_exponent < 63);
  std::vector<SweepCell> cells;
  cells.reserve(config.max_exponent - config.min_exponent + 1);

  // The ladder path (RIS and Snapshot): one trial-major run over all
  // exponents (and, with reuse on, one arena per trial — RrArena for
  // RIS, SnapshotArena for Snapshot — serving every exponent as a
  // prefix) instead of an independent RunTrials per cell.
  if (config.reuse != SweepReuse::kLegacy &&
      (config.approach == Approach::kRis ||
       config.approach == Approach::kSnapshot)) {
    TrialLadderConfig ladder;
    ladder.approach = config.approach;
    for (int exp = config.min_exponent; exp <= config.max_exponent; ++exp) {
      ladder.sample_numbers.push_back(1ULL << exp);
    }
    ladder.k = config.k;
    ladder.trials = config.trials;
    ladder.master_seed = config.master_seed;
    ladder.snapshot_mode = config.snapshot_mode;
    ladder.sampling = config.sampling;
    // Snapshot arenas exist only for IC condensed worlds; other snapshot
    // configurations gracefully run the same trial-major streams with
    // fresh per-cell sampling (kOff mechanics, byte-identical to kOn
    // where both exist) rather than aborting.
    const bool reusable =
        config.approach == Approach::kRis ||
        (instance.model == DiffusionModel::kIc &&
         config.snapshot_mode == SnapshotEstimator::Mode::kCondensed);
    ladder.reuse = config.reuse == SweepReuse::kOn && reusable;
    std::vector<TrialResult> results =
        RunTrialLadder(instance, ladder, pool);
    for (std::size_t l = 0; l < results.size(); ++l) {
      cells.push_back(SummarizeCell(oracle, ladder.sample_numbers[l],
                                    config.trials, std::move(results[l])));
    }
    return cells;
  }

  for (int exp = config.min_exponent; exp <= config.max_exponent; ++exp) {
    TrialConfig cell_config;
    cell_config.approach = config.approach;
    cell_config.sample_number = 1ULL << exp;
    cell_config.k = config.k;
    cell_config.trials = config.trials;
    cell_config.master_seed =
        DeriveSeed(config.master_seed, static_cast<std::uint64_t>(exp));
    cell_config.snapshot_mode = config.snapshot_mode;
    cell_config.sampling = config.sampling;

    cells.push_back(SummarizeCell(oracle, cell_config.sample_number,
                                  config.trials,
                                  RunTrials(instance, cell_config, pool)));
  }
  return cells;
}

std::vector<SweepCell> RunSweep(const InfluenceGraph& ig,
                                const RrOracle& oracle,
                                const SweepConfig& config, ThreadPool* pool) {
  return RunSweep(ModelInstance::Ic(&ig), oracle, config, pool);
}

std::vector<SweepPoint> CurveOf(const std::vector<SweepCell>& cells) {
  std::vector<SweepPoint> curve;
  curve.reserve(cells.size());
  for (const auto& cell : cells) curve.push_back(cell.summary);
  return curve;
}

int FindLeastSufficientCell(const std::vector<SweepCell>& cells,
                            double threshold, double probability) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].result.influence.FractionAtLeast(threshold) >= probability) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace soldist
