#include "exp/experiment.h"

#include "random/splitmix64.h"

namespace soldist {

void AddExperimentFlags(ArgParser* args) {
  args->AddInt64("trials", 200, "trials T per (algorithm, sample number)");
  args->AddInt64("star-trials", 20, "trials T for the ⋆ networks");
  args->AddInt64("seed", 42, "master PRNG seed");
  args->AddInt64("oracle-rr", 100000,
                 "RR sets per shared influence oracle (paper: 10^7)");
  args->AddInt64("star-n", 0,
                 "vertex count for com-Youtube/soc-Pokec proxies "
                 "(0 = defaults 60k/80k; paper-scale: 1134889/1632802)");
  args->AddBool("full", false,
                "run the paper-scale sample-number grids (very slow)");
  args->AddString("model", "ic",
                  "diffusion model: ic | lt (lt needs an LT-valid "
                  "probability setting, e.g. iwc; IC-only benches reject "
                  "lt instead of silently running ic)");
  args->AddString("out", "", "also write results as CSV to this path");
  args->AddInt64("threads", 0, "worker threads (0 = hardware concurrency)");
  args->AddInt64("sample-threads", 1,
                 "sample-level parallelism: 1 = sequential sampling with "
                 "parallel trials; 0/N = deterministic chunked sampling on "
                 "the shared pool, trials sequential");
  args->AddInt64("chunk-size", 256,
                 "samples per deterministic RNG chunk (affects which "
                 "streams produce which samples, NOT the results' "
                 "dependence on thread count)");
}

ExperimentOptions ReadExperimentFlags(const ArgParser& args) {
  ExperimentOptions options;
  options.trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
  options.star_trials =
      static_cast<std::uint64_t>(args.GetInt64("star-trials"));
  options.seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
  options.oracle_rr = static_cast<std::uint64_t>(args.GetInt64("oracle-rr"));
  options.star_n = static_cast<VertexId>(args.GetInt64("star-n"));
  options.full = args.GetBool("full");
  StatusOr<DiffusionModel> model =
      ParseDiffusionModel(args.GetString("model"));
  SOLDIST_CHECK(model.ok()) << model.status().ToString();
  options.model = model.value();
  options.out_csv = args.GetString("out");
  options.threads = args.GetInt64("threads");
  options.sample_threads = args.GetInt64("sample-threads");
  options.chunk_size = args.GetInt64("chunk-size");
  SOLDIST_CHECK(options.trials >= 1);
  SOLDIST_CHECK(options.star_trials >= 1);
  SOLDIST_CHECK(options.oracle_rr >= 1);
  SOLDIST_CHECK(options.sample_threads >= 0);
  SOLDIST_CHECK(options.chunk_size >= 1);
  return options;
}

GridCaps ScaledGridCaps(const std::string& network, bool full) {
  if (full) return {16, 16, 24};  // the paper's grid (Section 5 preamble)
  if (network == "Karate") return {12, 12, 16};
  if (network == "Physicians") return {10, 10, 14};
  if (network == "BA_s") return {10, 10, 14};
  // BA_d under uc0.1 percolates a ~0.37n giant component: every Oneshot
  // simulation scans a third of the graph, so its grids stay shallower.
  if (network == "BA_d") return {6, 7, 12};
  if (network == "ca-GrQc") return {5, 6, 13};
  // Wiki-Vote Oneshot resimulates through hub out-degrees (~750): keep
  // its β grid tighter than the others.
  if (network == "Wiki-Vote") return {4, 6, 13};
  // ⋆ proxies: every Snapshot Estimate sweep is n BFS runs per snapshot,
  // so the τ grid stays tiny.
  if (network == "com-Youtube") return {1, 2, 9};
  if (network == "soc-Pokec") return {1, 2, 9};
  return {8, 8, 12};
}

ExperimentContext::ExperimentContext(const ExperimentOptions& options)
    : options_(options),
      registry_(options.seed, options.star_n),
      pool_(std::make_unique<ThreadPool>(
          options.threads > 0 ? static_cast<std::size_t>(options.threads)
                              : 0)) {}

const InfluenceGraph& ExperimentContext::Instance(const std::string& network,
                                                  ProbabilityModel prob) {
  StatusOr<const InfluenceGraph*> instance =
      registry_.GetInstance(network, prob);
  SOLDIST_CHECK(instance.ok()) << instance.status().ToString();
  return *instance.value();
}

ModelInstance ExperimentContext::Model(const std::string& network,
                                       ProbabilityModel prob) {
  StatusOr<ModelInstance> instance =
      registry_.GetModelInstance(network, prob, options_.model);
  SOLDIST_CHECK(instance.ok()) << instance.status().ToString();
  return instance.value();
}

const RrOracle& ExperimentContext::Oracle(const std::string& network,
                                          ProbabilityModel prob) {
  // IC keeps the pre-LT key: the key feeds the oracle seed via hash, so
  // appending "/ic" would silently reseed every IC baseline.
  std::string key = network + "/" + ProbabilityModelName(prob);
  if (options_.model == DiffusionModel::kLt) {
    key += "/" + DiffusionModelName(options_.model);
  }
  auto it = oracles_.find(key);
  if (it != oracles_.end()) return *it->second;
  ModelInstance instance = Model(network, prob);
  std::uint64_t oracle_seed =
      DeriveSeed(options_.seed, std::hash<std::string>{}(key));
  auto oracle =
      options_.model == DiffusionModel::kLt
          ? std::make_unique<RrOracle>(instance.lt_weights,
                                       options_.oracle_rr, oracle_seed)
          : std::make_unique<RrOracle>(instance.ig, options_.oracle_rr,
                                       oracle_seed);
  const RrOracle* ptr = oracle.get();
  oracles_[key] = std::move(oracle);
  return *ptr;
}

std::uint64_t ExperimentContext::TrialsFor(const std::string& network) const {
  return Datasets::IsStarNetwork(network) ? options_.star_trials
                                          : options_.trials;
}

SamplingOptions ExperimentContext::SamplingFor(std::int64_t sample_threads) {
  SamplingOptions sampling;
  sampling.num_threads = static_cast<int>(sample_threads);
  sampling.chunk_size = static_cast<std::uint64_t>(options_.chunk_size);
  if (sample_threads == 0) {
    sampling.pool = pool_.get();  // share the trial pool, full width
  } else if (sample_threads >= 2) {
    // A pool's width caps the engine's parallelism, so honor the exact
    // requested count with a dedicated pool instead of the trial pool
    // (whose width is set independently via --threads).
    auto width = static_cast<std::size_t>(sample_threads);
    auto& sample_pool = sample_pools_[width];
    if (sample_pool == nullptr) {
      sample_pool = std::make_unique<ThreadPool>(width);
    }
    sampling.pool = sample_pool.get();
  }
  return sampling;
}

}  // namespace soldist
