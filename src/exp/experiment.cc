#include "exp/experiment.h"

#include "gen/datasets.h"
#include "store/fault_injection.h"

namespace soldist {

api::SessionOptions ExperimentOptions::SessionConfig() const {
  api::SessionOptions session;
  session.seed = seed;
  session.oracle_rr = oracle_rr;
  session.threads = threads;
  session.star_n = star_n;
  session.arena_budget_bytes = arena_budget_bytes;
  session.arena_storage.backend = arena_backend;
  session.arena_dir = arena_dir;
  // The persistence root doubles as the spill home so one flag places
  // every arena byte that leaves RAM; mmap with neither falls back to a
  // tmp directory rather than failing Validate.
  session.arena_storage.spill_dir =
      !arena_dir.empty() ? arena_dir : std::string("/tmp/soldist-arena");
  session.default_deadline_ms = deadline_ms;
  session.max_inflight_builds = max_inflight_builds;
  session.scrub_interval_ms = scrub_interval_ms;
  return session;
}

void AddExperimentFlags(ArgParser* args) {
  args->AddInt64("trials", 200, "trials T per (algorithm, sample number)");
  args->AddInt64("star-trials", 20, "trials T for the ⋆ networks");
  args->AddInt64("seed", 42, "master PRNG seed");
  args->AddInt64("oracle-rr", 100000,
                 "RR sets per shared influence oracle (paper: 10^7)");
  args->AddInt64("star-n", 0,
                 "vertex count for com-Youtube/soc-Pokec proxies "
                 "(0 = defaults 60k/80k; paper-scale: 1134889/1632802)");
  args->AddBool("full", false,
                "run the paper-scale sample-number grids (very slow)");
  args->AddString("model", "ic",
                  "diffusion model: ic | lt (lt needs an LT-valid "
                  "probability setting, e.g. iwc; IC-only benches reject "
                  "lt instead of silently running ic)");
  args->AddString("out", "", "also write results as CSV to this path");
  args->AddInt64("threads", 0, "worker threads (0 = hardware concurrency)");
  args->AddInt64("sample-threads", 1,
                 "sample-level parallelism: 1 = sequential sampling with "
                 "parallel trials; 0/N = deterministic chunked sampling on "
                 "the shared pool, trials sequential");
  args->AddInt64("chunk-size", 256,
                 "samples per deterministic RNG chunk (affects which "
                 "streams produce which samples, NOT the results' "
                 "dependence on thread count)");
  args->AddString("snapshot-mode", "residual",
                  "IC Snapshot reachability backend: naive | residual | "
                  "condensed (SCC-condensed DAGs with incrementally "
                  "maintained gains). Seed sets and estimates are "
                  "byte-identical across backends; only the cost "
                  "changes.");
  args->AddString("sweep-reuse", "on",
                  "RIS sample-number-ladder reuse: on = one RR arena per "
                  "trial serves every sample number as a prefix view; "
                  "off = same prefix-closed streams with fresh per-cell "
                  "sampling (byte-identical to on, ~2x the sampling "
                  "work); legacy = pre-arena cell-major streams. Only "
                  "RIS sweeps are affected.");
  args->AddString("arena-backend", "flat",
                  "arena storage backend: flat | compressed (delta+varint "
                  "decode-on-demand) | mmap (chunk-granular disk spill). "
                  "Results are byte-identical across backends; the flag "
                  "trades decode latency for resident memory.");
  args->AddString("arena-dir", "",
                  "arena persistence root: sampled arenas save here and "
                  "reload across processes (identity-checked manifests); "
                  "also the mmap backend's spill home. Empty = no "
                  "persistence.");
  args->AddInt64("deadline-ms", 0,
                 "per-request deadline in milliseconds for serve-layer "
                 "views: a build that outruns it is cancelled and the "
                 "request answers DEGRADED from the largest resident "
                 "τ prefix. Omit for unlimited (an explicit 0 is an "
                 "error).");
  args->AddInt64("max-inflight-builds", 0,
                 "admission control: max concurrent serve-layer arena "
                 "builds; excess requests shed with UNAVAILABLE (or "
                 "answer degraded from a resident prefix). 0 = "
                 "unlimited.");
  args->AddInt64("scrub-interval-ms", 0,
                 "background integrity scrubber cadence: every interval "
                 "one resident arena is re-hashed against its admitted "
                 "checksum (mismatch = evict and rebuild) and one "
                 "persisted --arena-dir entry re-verified (failure = "
                 "quarantine). 0 = off; the REPL `scrub` command still "
                 "runs a full rotation on demand.");
  args->AddString("fault-spec", "",
                  "deterministic IO fault injection for every store/ IO "
                  "boundary, e.g. 'error-rate=0.1,seed=7', "
                  "'torn-write,error-every=3', or 'crash-at=rename:2' "
                  "(keys: error-rate, error-every, seed, torn-write, "
                  "short-read, slow-read-us, crash-at). Empty = off.");
}

namespace {

Status RequireAtLeast(const ArgParser& args, const std::string& flag,
                      std::int64_t min) {
  std::int64_t value = args.GetInt64(flag);
  if (value < min) {
    return Status::InvalidArgument(
        "--" + flag + " must be >= " + std::to_string(min) + ", got " +
        std::to_string(value));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ExperimentOptions> ParseExperimentFlags(const ArgParser& args) {
  // Validate the raw int64 values BEFORE the unsigned casts: "--trials -5"
  // must be an error, not a 2^64-ish trial count.
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "trials", 1));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "star-trials", 1));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "seed", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "oracle-rr", 1));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "star-n", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "threads", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "sample-threads", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "chunk-size", 1));
  StatusOr<DiffusionModel> model =
      ParseDiffusionModel(args.GetString("model"));
  if (!model.ok()) return model.status();
  StatusOr<SnapshotEstimator::Mode> snapshot_mode =
      ParseSnapshotMode(args.GetString("snapshot-mode"));
  if (!snapshot_mode.ok()) return snapshot_mode.status();
  StatusOr<SweepReuse> sweep_reuse =
      ParseSweepReuse(args.GetString("sweep-reuse"));
  if (!sweep_reuse.ok()) return sweep_reuse.status();
  StatusOr<store::ArenaBackend> arena_backend =
      store::ParseArenaBackend(args.GetString("arena-backend"));
  if (!arena_backend.ok()) return arena_backend.status();
  // An EXPLICIT --deadline-ms 0 is almost certainly a confused attempt
  // at "no deadline" — make the unlimited spelling (omit the flag)
  // unambiguous instead of silently accepting both.
  if (args.Provided("deadline-ms") && args.GetInt64("deadline-ms") == 0) {
    return Status::InvalidArgument(
        "--deadline-ms 0 is ambiguous: omit the flag for an unlimited "
        "deadline, or pass a value >= 1");
  }
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "deadline-ms", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "max-inflight-builds", 0));
  SOLDIST_RETURN_IF_ERROR(RequireAtLeast(args, "scrub-interval-ms", 0));
  // Validate AND install the fault spec here: the injector hooks sit
  // below any session object, so flag handling is the one place every
  // binary passes before its first IO.
  const std::string fault_spec = args.GetString("fault-spec");
  SOLDIST_RETURN_IF_ERROR(store::InstallFaultInjector(fault_spec));

  ExperimentOptions options;
  options.trials = static_cast<std::uint64_t>(args.GetInt64("trials"));
  options.star_trials =
      static_cast<std::uint64_t>(args.GetInt64("star-trials"));
  options.seed = static_cast<std::uint64_t>(args.GetInt64("seed"));
  options.oracle_rr = static_cast<std::uint64_t>(args.GetInt64("oracle-rr"));
  options.star_n = static_cast<VertexId>(args.GetInt64("star-n"));
  options.full = args.GetBool("full");
  options.model = model.value();
  options.out_csv = args.GetString("out");
  options.threads = args.GetInt64("threads");
  options.sample_threads = args.GetInt64("sample-threads");
  options.chunk_size = args.GetInt64("chunk-size");
  options.snapshot_mode = snapshot_mode.value();
  options.sweep_reuse = sweep_reuse.value();
  options.arena_backend = arena_backend.value();
  options.arena_dir = args.GetString("arena-dir");
  options.deadline_ms =
      static_cast<std::uint64_t>(args.GetInt64("deadline-ms"));
  options.max_inflight_builds = args.GetInt64("max-inflight-builds");
  options.scrub_interval_ms =
      static_cast<std::uint64_t>(args.GetInt64("scrub-interval-ms"));
  options.fault_spec = fault_spec;
  return options;
}

GridCaps ScaledGridCaps(const std::string& network, bool full) {
  if (full) return {16, 16, 24};  // the paper's grid (Section 5 preamble)
  if (network == "Karate") return {12, 12, 16};
  if (network == "Physicians") return {10, 10, 14};
  if (network == "BA_s") return {10, 10, 14};
  // BA_d under uc0.1 percolates a ~0.37n giant component: every Oneshot
  // simulation scans a third of the graph, so its grids stay shallower.
  if (network == "BA_d") return {6, 7, 12};
  if (network == "ca-GrQc") return {5, 6, 13};
  // Wiki-Vote Oneshot resimulates through hub out-degrees (~750): keep
  // its β grid tighter than the others.
  if (network == "Wiki-Vote") return {4, 6, 13};
  // ⋆ proxies: every Snapshot Estimate sweep is n BFS runs per snapshot,
  // so the τ grid stays tiny.
  if (network == "com-Youtube") return {1, 2, 9};
  if (network == "soc-Pokec") return {1, 2, 9};
  return {8, 8, 12};
}

ExperimentContext::ExperimentContext(const ExperimentOptions& options)
    : options_(options), session_(options.SessionConfig()) {}

api::WorkloadSpec ExperimentContext::Workload(const std::string& network,
                                              ProbabilityModel prob) const {
  return api::WorkloadSpec::Dataset(network)
      .Probability(prob)
      .Diffusion(options_.model);
}

StatusOr<ModelInstance> ExperimentContext::TryModel(
    const std::string& network, ProbabilityModel prob) {
  return session_.ResolveWorkload(Workload(network, prob));
}

StatusOr<const RrOracle*> ExperimentContext::TryOracle(
    const std::string& network, ProbabilityModel prob) {
  return session_.ResolveOracle(Workload(network, prob));
}

const InfluenceGraph& ExperimentContext::Instance(const std::string& network,
                                                  ProbabilityModel prob) {
  // The influence graph is model-independent: resolve under IC so IC-only
  // benches never require an LT-valid probability setting.
  StatusOr<ModelInstance> instance = session_.ResolveWorkload(
      Workload(network, prob).Diffusion(DiffusionModel::kIc));
  SOLDIST_CHECK(instance.ok()) << instance.status().ToString();
  return *instance.value().ig;
}

ModelInstance ExperimentContext::Model(const std::string& network,
                                       ProbabilityModel prob) {
  StatusOr<ModelInstance> instance = TryModel(network, prob);
  SOLDIST_CHECK(instance.ok()) << instance.status().ToString();
  return instance.value();
}

const RrOracle& ExperimentContext::Oracle(const std::string& network,
                                          ProbabilityModel prob) {
  StatusOr<const RrOracle*> oracle = TryOracle(network, prob);
  SOLDIST_CHECK(oracle.ok()) << oracle.status().ToString();
  return *oracle.value();
}

std::uint64_t ExperimentContext::TrialsFor(const std::string& network) const {
  return Datasets::IsStarNetwork(network) ? options_.star_trials
                                          : options_.trials;
}

SamplingOptions ExperimentContext::SamplingFor(std::int64_t sample_threads) {
  return session_.SamplingFor(
      sample_threads, static_cast<std::uint64_t>(options_.chunk_size));
}

}  // namespace soldist
