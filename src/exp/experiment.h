// Shared bench scaffolding: common flags, the per-instance oracle cache,
// and the scaled-down default sweep grids (the paper's full grids — T =
// 1,000 trials, β,τ up to 2^16, θ up to 2^24, 10^7-RR-set oracle — ran for
// weeks on a 500 GB server; see DESIGN.md Section 5).
//
// Since the api/ facade landed, ExperimentContext is a thin adapter over
// api::Session: the session owns the registry, the thread pools, and the
// model-keyed oracle cache; the context adds the bench conveniences
// (CHECK-style accessors for static instance lists, per-network trial
// counts, the --sample-threads/--chunk-size wiring).

#ifndef SOLDIST_EXP_EXPERIMENT_H_
#define SOLDIST_EXP_EXPERIMENT_H_

#include <string>

#include "api/session.h"
#include "exp/sweep.h"
#include "oracle/rr_oracle.h"
#include "sim/sampling_engine.h"
#include "store/arena_storage.h"
#include "util/args.h"
#include "util/thread_pool.h"

namespace soldist {

/// Options common to every table/figure bench.
struct ExperimentOptions {
  std::uint64_t trials = 200;       ///< T for normal instances
  std::uint64_t star_trials = 20;   ///< T for ⋆ instances (paper: 20)
  std::uint64_t seed = 42;          ///< master seed
  std::uint64_t oracle_rr = 100000; ///< RR sets per instance oracle
  VertexId star_n = 0;              ///< ⋆ vertex-count override (0=default)
  bool full = false;                ///< paper-scale grids (slow!)
  std::string out_csv;              ///< optional CSV output path
  std::int64_t threads = 0;         ///< worker threads (0 = hardware)
  /// Diffusion model (--model ic|lt). Model-aware binaries resolve their
  /// workloads through ExperimentContext::Model; IC-only benches must
  /// call RequireIcModel so --model lt fails loudly instead of silently
  /// running IC.
  DiffusionModel model = DiffusionModel::kIc;
  /// Sample-level parallelism: 1 = legacy sequential sampling with
  /// trial-level fan-out (default); 0 / N>1 = chunked deterministic
  /// sampling on the shared pool, trials sequential.
  std::int64_t sample_threads = 1;
  std::int64_t chunk_size = 256;    ///< samples per deterministic chunk
  /// IC Snapshot reachability backend (--snapshot-mode
  /// naive|residual|condensed). Backends return byte-identical seed sets
  /// and estimates — the flag selects a cost profile, never a result.
  SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual;
  /// RIS sample-number-ladder reuse (--sweep-reuse on|off|legacy,
  /// default on): on serves every RIS sweep cell from one per-trial RR
  /// arena, off runs the same prefix-closed streams with fresh per-cell
  /// sampling (byte-identical to on), legacy keeps the pre-arena
  /// cell-major streams. Only RIS sweeps are affected.
  SweepReuse sweep_reuse = SweepReuse::kOn;
  /// Byte budget for the serving layer's arena cache (0 = unlimited);
  /// see api::SessionOptions::arena_budget_bytes. Set by binaries that
  /// mint a serve::QueryService (e.g. soldist_experiment --query).
  std::uint64_t arena_budget_bytes = 0;
  /// Arena storage backend (--arena-backend flat|compressed|mmap); see
  /// api::SessionOptions::arena_storage. Answers are byte-identical
  /// across backends — the flag trades decode latency for memory.
  store::ArenaBackend arena_backend = store::ArenaBackend::kFlat;
  /// Arena persistence root (--arena-dir). Non-empty: session arenas
  /// save under it and reload across processes; also the default mmap
  /// spill directory. Empty: no persistence (mmap spills under
  /// /tmp/soldist-arena).
  std::string arena_dir;
  /// Per-request deadline in ms (--deadline-ms; 0 = unlimited, and an
  /// EXPLICIT --deadline-ms 0 is rejected — omit the flag instead).
  /// Requests whose arena build outruns it get degraded τ-prefix
  /// answers (serve/resilience.h).
  std::uint64_t deadline_ms = 0;
  /// Max concurrent serve-layer arena builds (--max-inflight-builds;
  /// 0 = unlimited). Excess builds shed with UNAVAILABLE.
  std::int64_t max_inflight_builds = 0;
  /// Background scrubber cadence in ms (--scrub-interval-ms; 0 = off).
  /// Each cycle re-verifies one resident arena checksum and one
  /// persisted --arena-dir entry (serve/scrubber.h).
  std::uint64_t scrub_interval_ms = 0;
  /// Deterministic IO fault injection (--fault-spec; see
  /// store/fault_injection.h for the grammar). Installed process-wide
  /// by ParseExperimentFlags; empty = off.
  std::string fault_spec;

  /// The api::Session configuration these options imply.
  api::SessionOptions SessionConfig() const;
};

/// Registers the shared flags on `args`.
void AddExperimentFlags(ArgParser* args);

/// Reads the shared flags back after Parse(), validating values: a bad
/// --model/--trials/... combination is user input and comes back as an
/// InvalidArgument Status with an actionable message (never a CHECK).
StatusOr<ExperimentOptions> ParseExperimentFlags(const ArgParser& args);

/// Per-network sweep caps: max sample-number exponents per approach,
/// scaled to this harness's budget (or the paper's grid with --full).
struct GridCaps {
  int oneshot_max_exp = 8;
  int snapshot_max_exp = 8;
  int ris_max_exp = 12;

  int MaxExp(Approach approach) const {
    switch (approach) {
      case Approach::kOneshot:
        return oneshot_max_exp;
      case Approach::kSnapshot:
        return snapshot_max_exp;
      case Approach::kRis:
        return ris_max_exp;
    }
    return 0;
  }
};

/// Default caps for `network` ("--full" restores the paper's 16/16/24).
GridCaps ScaledGridCaps(const std::string& network, bool full);

/// \brief Bench adapter over api::Session: registry, thread pool, and
/// per-instance oracles for one bench run.
class ExperimentContext {
 public:
  explicit ExperimentContext(const ExperimentOptions& options);

  /// The api workload of (network, prob) under options().model.
  api::WorkloadSpec Workload(const std::string& network,
                             ProbabilityModel prob) const;

  /// Status-returning resolution for user-supplied (network, prob): the
  /// (graph, model) workload with LtWeights resolved and cached for LT.
  /// Fails with an explanatory status on an unknown network or an
  /// LT-invalid probability setting (in-weights must sum to <= 1; iwc
  /// always qualifies).
  StatusOr<ModelInstance> TryModel(const std::string& network,
                                   ProbabilityModel prob);

  /// Status-returning resolution of the instance's shared oracle (built
  /// on first use, then reused across all algorithms and sample numbers —
  /// paper Section 5.2). Oracles are keyed by (network, prob, model): an
  /// LT oracle draws backward-walk RR sets so LT seed sets are scored
  /// under LT influence.
  StatusOr<const RrOracle*> TryOracle(const std::string& network,
                                      ProbabilityModel prob);

  /// Influence graph of (network, prob); CHECK-fails on unknown names
  /// (bench instance lists are static, so failure is a programmer error —
  /// anything flag-driven must go through TryModel/TryOracle instead).
  const InfluenceGraph& Instance(const std::string& network,
                                 ProbabilityModel prob);

  /// CHECK-style counterpart of TryModel for static bench instance lists.
  ModelInstance Model(const std::string& network, ProbabilityModel prob);

  /// CHECK-style counterpart of TryOracle for static bench instance lists.
  const RrOracle& Oracle(const std::string& network, ProbabilityModel prob);

  /// T for this network: options.star_trials for ⋆ networks.
  std::uint64_t TrialsFor(const std::string& network) const;

  /// SamplingOptions for TrialConfig/SweepConfig. --sample-threads 0
  /// attaches the context's shared pool (sample- and trial-level
  /// parallelism share one set of workers); --sample-threads N >= 2
  /// attaches a dedicated lazily-created N-worker pool, so the requested
  /// width is honored even when --threads sized the main pool differently.
  SamplingOptions sampling() { return SamplingFor(options_.sample_threads); }

  /// sampling() for an explicit width instead of --sample-threads: lets a
  /// determinism verifier sweep widths against ONE context (same
  /// instances and oracles) instead of rebuilding them per width.
  /// Dedicated pools are cached per width.
  SamplingOptions SamplingFor(std::int64_t sample_threads);

  ThreadPool* pool() { return session_.pool(); }
  const ExperimentOptions& options() const { return options_; }
  InstanceRegistry* registry() { return session_.registry(); }
  api::Session* session() { return &session_; }

 private:
  ExperimentOptions options_;
  api::Session session_;
};

}  // namespace soldist

#endif  // SOLDIST_EXP_EXPERIMENT_H_
