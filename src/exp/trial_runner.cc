#include "exp/trial_runner.h"

#include <memory>
#include <mutex>

#include "core/greedy.h"
#include "random/splitmix64.h"

namespace soldist {

TrialResult RunTrials(const ModelInstance& instance,
                      const TrialConfig& config, ThreadPool* pool) {
  SOLDIST_CHECK(instance.ig != nullptr);
  SOLDIST_CHECK(config.trials >= 1);
  TrialResult result;
  result.seed_sets.resize(config.trials);
  std::vector<TraversalCounters> counters(config.trials);

  // One shared pool serves both parallelism levels, never simultaneously:
  // sample-level parallelism runs the trials sequentially and hands the
  // pool to each trial's SamplingEngine; otherwise the trials themselves
  // fan out across the pool and sampling stays sequential per trial.
  // With no pool at all, one is created here for the whole call — never a
  // private pool per trial.
  const bool sample_parallel = config.sampling.UseEngine();
  SamplingOptions sampling = config.sampling;
  std::unique_ptr<ThreadPool> owned_pool;
  if (sample_parallel && sampling.pool == nullptr) {
    if (pool == nullptr) {
      owned_pool = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(sampling.num_threads));
      pool = owned_pool.get();
    }
    sampling.pool = pool;
  }

  auto run_one = [&](std::uint64_t t) {
    // Two independent streams per trial: the estimator's randomness and
    // the greedy tie-breaking shuffle (paper Section 4.1: fresh PRNG
    // state per run).
    std::uint64_t estimator_seed =
        DeriveSeed(config.master_seed, 2 * t);
    std::uint64_t shuffle_seed =
        DeriveSeed(config.master_seed, 2 * t + 1);
    auto estimator =
        MakeEstimator(instance, config.approach, config.sample_number,
                      estimator_seed, config.snapshot_mode, sampling);
    Rng tie_rng(shuffle_seed);
    GreedyRunResult run = RunGreedy(estimator.get(),
                                    instance.ig->num_vertices(), config.k,
                                    &tie_rng);
    result.seed_sets[t] = run.SortedSeedSet();
    counters[t] = estimator->counters();
  };

  if (!sample_parallel && pool != nullptr && pool->num_threads() > 1 &&
      config.trials > 1) {
    ParallelFor(pool, config.trials, run_one);
  } else {
    for (std::uint64_t t = 0; t < config.trials; ++t) run_one(t);
  }

  for (std::uint64_t t = 0; t < config.trials; ++t) {
    result.distribution.Add(result.seed_sets[t]);
    result.total_counters += counters[t];
  }
  return result;
}

TrialResult RunTrials(const InfluenceGraph& ig, const TrialConfig& config,
                      ThreadPool* pool) {
  return RunTrials(ModelInstance::Ic(&ig), config, pool);
}

void EvaluateInfluence(const RrOracle& oracle, TrialResult* result) {
  for (const auto& seeds : result->seed_sets) {
    result->influence.Add(oracle.EstimateInfluence(seeds));
  }
}

}  // namespace soldist
