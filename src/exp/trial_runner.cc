#include "exp/trial_runner.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "core/greedy.h"
#include "random/splitmix64.h"
#include "sim/rr_arena.h"
#include "sim/snapshot_arena.h"
#include "util/timer.h"

namespace soldist {

TrialResult RunTrials(const ModelInstance& instance,
                      const TrialConfig& config, ThreadPool* pool) {
  SOLDIST_CHECK(instance.ig != nullptr);
  SOLDIST_CHECK(config.trials >= 1);
  TrialResult result;
  result.seed_sets.resize(config.trials);
  std::vector<TraversalCounters> counters(config.trials);

  // One shared pool serves both parallelism levels, never simultaneously:
  // sample-level parallelism runs the trials sequentially and hands the
  // pool to each trial's SamplingEngine; otherwise the trials themselves
  // fan out across the pool and sampling stays sequential per trial.
  // With no pool at all, one is created here for the whole call — never a
  // private pool per trial.
  const bool sample_parallel = config.sampling.UseEngine();
  SamplingOptions sampling = config.sampling;
  std::unique_ptr<ThreadPool> owned_pool;
  if (sample_parallel && sampling.pool == nullptr) {
    if (pool == nullptr) {
      owned_pool = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(sampling.num_threads));
      pool = owned_pool.get();
    }
    sampling.pool = pool;
  }

  std::vector<double> seconds(config.trials, 0.0);
  auto run_one = [&](std::uint64_t t) {
    // Two independent streams per trial: the estimator's randomness and
    // the greedy tie-breaking shuffle (paper Section 4.1: fresh PRNG
    // state per run).
    WallTimer timer;
    std::uint64_t estimator_seed =
        DeriveSeed(config.master_seed, 2 * t);
    std::uint64_t shuffle_seed =
        DeriveSeed(config.master_seed, 2 * t + 1);
    auto estimator =
        MakeEstimator(instance, config.approach, config.sample_number,
                      estimator_seed, config.snapshot_mode, sampling);
    Rng tie_rng(shuffle_seed);
    GreedyRunResult run = RunGreedy(estimator.get(),
                                    instance.ig->num_vertices(), config.k,
                                    &tie_rng);
    result.seed_sets[t] = run.SortedSeedSet();
    counters[t] = estimator->counters();
    seconds[t] = timer.Seconds();
  };

  if (!sample_parallel && pool != nullptr && pool->num_threads() > 1 &&
      config.trials > 1) {
    ParallelFor(pool, config.trials, run_one);
  } else {
    for (std::uint64_t t = 0; t < config.trials; ++t) run_one(t);
  }

  for (std::uint64_t t = 0; t < config.trials; ++t) {
    result.distribution.Add(result.seed_sets[t]);
    result.total_counters += counters[t];
    result.seconds += seconds[t];
  }
  return result;
}

TrialResult RunTrials(const InfluenceGraph& ig, const TrialConfig& config,
                      ThreadPool* pool) {
  return RunTrials(ModelInstance::Ic(&ig), config, pool);
}

void EvaluateInfluence(const RrOracle& oracle, TrialResult* result) {
  for (const auto& seeds : result->seed_sets) {
    result->influence.Add(oracle.EstimateInfluence(seeds));
  }
}

StatusOr<SweepReuse> ParseSweepReuse(const std::string& name) {
  if (name == "on") return SweepReuse::kOn;
  if (name == "off") return SweepReuse::kOff;
  if (name == "legacy") return SweepReuse::kLegacy;
  return Status::InvalidArgument(
      "unknown --sweep-reuse value '" + name +
      "' (expected on | off | legacy)");
}

std::string SweepReuseName(SweepReuse reuse) {
  switch (reuse) {
    case SweepReuse::kLegacy:
      return "legacy";
    case SweepReuse::kOff:
      return "off";
    case SweepReuse::kOn:
      return "on";
  }
  return "?";
}

std::vector<TrialResult> RunTrialLadder(const ModelInstance& instance,
                                        const TrialLadderConfig& config,
                                        ThreadPool* pool) {
  SOLDIST_CHECK(instance.ig != nullptr);
  SOLDIST_CHECK(config.trials >= 1);
  SOLDIST_CHECK(!config.sample_numbers.empty());
  for (std::size_t l = 0; l < config.sample_numbers.size(); ++l) {
    SOLDIST_CHECK(config.sample_numbers[l] >= 1);
    SOLDIST_CHECK(l == 0 ||
                  config.sample_numbers[l] > config.sample_numbers[l - 1])
        << "ladder sample numbers must be strictly ascending";
  }
  SOLDIST_CHECK(!config.reuse || config.approach == Approach::kRis ||
                (config.approach == Approach::kSnapshot &&
                 config.snapshot_mode == SnapshotEstimator::Mode::kCondensed &&
                 instance.model == DiffusionModel::kIc))
      << "arena reuse exists for RIS (RR-set collections) and IC "
         "condensed-mode Snapshot (condensed sampled worlds)";

  const std::size_t num_cells = config.sample_numbers.size();
  const std::uint64_t capacity = config.sample_numbers.back();

  // Same one-pool / one-parallelism-level rule as RunTrials.
  const bool sample_parallel = config.sampling.UseEngine();
  SamplingOptions sampling = config.sampling;
  std::unique_ptr<ThreadPool> owned_pool;
  if (sample_parallel && sampling.pool == nullptr) {
    if (pool == nullptr) {
      owned_pool = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(sampling.num_threads));
      pool = owned_pool.get();
    }
    sampling.pool = pool;
  }

  std::vector<TrialResult> results(num_cells);
  // [cell][trial] scratch, aggregated once all trials are in.
  std::vector<std::vector<std::vector<VertexId>>> seed_sets(num_cells);
  std::vector<std::vector<TraversalCounters>> counters(num_cells);
  std::vector<std::vector<double>> seconds(num_cells);
  for (std::size_t l = 0; l < num_cells; ++l) {
    seed_sets[l].resize(config.trials);
    counters[l].resize(config.trials);
    seconds[l].assign(config.trials, 0.0);
  }

  std::vector<double> arena_seconds(config.trials, 0.0);
  auto run_trial = [&](std::uint64_t t) {
    const std::uint64_t trial_master = DeriveSeed(config.master_seed, t);
    const std::uint64_t sample_seed = DeriveSeed(trial_master, 0);
    const std::uint64_t shuffle_master = DeriveSeed(trial_master, 1);
    std::unique_ptr<RrArena> rr_arena;
    std::unique_ptr<SnapshotArena> snap_arena;
    if (config.reuse) {
      WallTimer timer;
      if (config.approach == Approach::kRis) {
        rr_arena = std::make_unique<RrArena>(
            RrArena::SampleFor(instance, sample_seed, capacity, sampling));
      } else {
        snap_arena = std::make_unique<SnapshotArena>(SnapshotArena::Sample(
            *instance.ig, sample_seed, capacity, sampling));
      }
      arena_seconds[t] = timer.Seconds();
      if (t == 0 && config.arena_bytes_out != nullptr) {
        *config.arena_bytes_out = rr_arena != nullptr
                                      ? rr_arena->MemoryBytes()
                                      : snap_arena->MemoryBytes();
      }
    }
    for (std::size_t l = 0; l < num_cells; ++l) {
      const std::uint64_t tau = config.sample_numbers[l];
      WallTimer timer;
      std::unique_ptr<InfluenceEstimator> estimator;
      if (rr_arena != nullptr) {
        estimator = std::make_unique<ArenaRisEstimator>(rr_arena.get(), tau);
      } else if (snap_arena != nullptr) {
        estimator =
            std::make_unique<ArenaSnapshotEstimator>(snap_arena.get(), tau);
      } else {
        estimator =
            MakeEstimator(instance, config.approach, tau, sample_seed,
                          config.snapshot_mode, sampling);
      }
      Rng tie_rng(DeriveSeed(shuffle_master, tau));
      GreedyRunResult run = RunGreedy(
          estimator.get(), instance.ig->num_vertices(), config.k, &tie_rng);
      seed_sets[l][t] = run.SortedSeedSet();
      counters[l][t] = estimator->counters();
      seconds[l][t] = timer.Seconds();
    }
    // The arena build is deliberately NOT folded into any cell's seconds:
    // cell figures are pure serving cost, the one-off build is reported
    // separately through arena_seconds_out.
  };

  if (!sample_parallel && pool != nullptr && pool->num_threads() > 1 &&
      config.trials > 1) {
    ParallelFor(pool, config.trials, run_trial);
  } else {
    for (std::uint64_t t = 0; t < config.trials; ++t) run_trial(t);
  }

  for (std::size_t l = 0; l < num_cells; ++l) {
    TrialResult& cell = results[l];
    cell.seed_sets = std::move(seed_sets[l]);
    for (std::uint64_t t = 0; t < config.trials; ++t) {
      cell.distribution.Add(cell.seed_sets[t]);
      cell.total_counters += counters[l][t];
      cell.seconds += seconds[l][t];
    }
  }
  if (config.arena_seconds_out != nullptr) {
    double total = 0.0;
    for (double s : arena_seconds) total += s;
    *config.arena_seconds_out = total;
  }
  return results;
}

}  // namespace soldist
