#include "oracle/mc_oracle.h"

namespace soldist {

McOracle::McOracle(const InfluenceGraph* ig) : simulator_(ig) {}

double McOracle::EstimateInfluence(std::span<const VertexId> seeds,
                                   std::uint64_t runs, Rng* rng) {
  TraversalCounters scratch;
  return simulator_.EstimateInfluence(seeds, runs, rng, &scratch);
}

}  // namespace soldist
