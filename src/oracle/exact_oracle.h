// Exact influence computation by live-edge enumeration (paper Section 3.6
// discusses exact computation; Maehara et al.'s BDD algorithm handles ~100
// edges — this plain enumerator handles ~25 and exists so the statistical
// tests can compare every estimator against ground truth).

#ifndef SOLDIST_ORACLE_EXACT_ORACLE_H_
#define SOLDIST_ORACLE_EXACT_ORACLE_H_

#include <span>

#include "model/influence_graph.h"

namespace soldist {

/// \brief Exact Inf(S) = Σ_{E' ⊆ E} Pr[E'] · r_{(V,E')}(S) over all 2^m
/// live-edge subsets. Requires m <= 25 (CHECKed).
double ExactInfluence(const InfluenceGraph& ig,
                      std::span<const VertexId> seeds);

/// Exact probability that a uniformly random RR set intersects S; equals
/// Inf(S)/n (Borgs et al., Observation 3.2). Requires m <= 25.
double ExactRrHitProbability(const InfluenceGraph& ig,
                             std::span<const VertexId> seeds);

/// \brief Exact influence under the LINEAR THRESHOLD model by enumerating
/// every vertex's live-in-edge choice (each vertex keeps one in-edge with
/// its weight, or none). Requires the product of (in-degree + 1) over all
/// vertices to stay below ~2^22 (CHECKed).
double ExactLtInfluence(const InfluenceGraph& ig,
                        std::span<const VertexId> seeds);

}  // namespace soldist

#endif  // SOLDIST_ORACLE_EXACT_ORACLE_H_
