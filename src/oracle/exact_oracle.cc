#include "oracle/exact_oracle.h"

#include <algorithm>
#include <vector>

#include "graph/builder.h"
#include "graph/traversal.h"

namespace soldist {
namespace {

constexpr EdgeId kMaxEdgesForEnumeration = 25;

/// Calls fn(probability, live_graph) for every live-edge subset.
template <typename Fn>
void ForEachLiveGraph(const InfluenceGraph& ig, Fn&& fn) {
  const Graph& g = ig.graph();
  const EdgeId m = g.num_edges();
  SOLDIST_CHECK(m <= kMaxEdgesForEnumeration)
      << "exact enumeration limited to " << kMaxEdgesForEnumeration
      << " edges, got " << m;
  // Materialize the arc list once in out-CSR edge-id order.
  EdgeList arcs = g.ToEdgeList();

  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    double probability = 1.0;
    EdgeList live;
    live.num_vertices = g.num_vertices();
    for (EdgeId e = 0; e < m; ++e) {
      double pe = ig.OutProbability(e);
      if (mask & (1ULL << e)) {
        probability *= pe;
        live.Add(arcs.arcs[e].src, arcs.arcs[e].dst);
      } else {
        probability *= (1.0 - pe);
      }
    }
    if (probability == 0.0) continue;
    fn(probability, GraphBuilder::FromEdgeList(live));
  }
}

}  // namespace

double ExactInfluence(const InfluenceGraph& ig,
                      std::span<const VertexId> seeds) {
  double influence = 0.0;
  ForEachLiveGraph(ig, [&](double probability, const Graph& live) {
    BfsReachability bfs(&live);
    influence += probability * static_cast<double>(bfs.CountReachable(seeds));
  });
  return influence;
}

double ExactLtInfluence(const InfluenceGraph& ig,
                        std::span<const VertexId> seeds) {
  const Graph& g = ig.graph();
  const VertexId n = g.num_vertices();
  double total_options = 1.0;
  for (VertexId v = 0; v < n; ++v) {
    total_options *= static_cast<double>(g.InDegree(v)) + 1.0;
  }
  SOLDIST_CHECK(total_options <= 4194304.0)
      << "LT enumeration too large: " << total_options << " configurations";

  // choice[v] in [0, InDegree(v)]: index of the kept in-edge, or
  // InDegree(v) for "none". Iterate mixed-radix, weighting each
  // configuration by its probability.
  std::vector<std::uint32_t> choice(n, 0);
  double influence = 0.0;
  while (true) {
    double probability = 1.0;
    EdgeList live;
    live.num_vertices = n;
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId begin = g.in_offsets()[v];
      const auto degree = static_cast<std::uint32_t>(g.InDegree(v));
      double sum = 0.0;
      for (EdgeId pos = begin; pos < begin + degree; ++pos) {
        sum += ig.InProbability(pos);
      }
      if (choice[v] < degree) {
        EdgeId pos = begin + choice[v];
        probability *= ig.InProbability(pos);
        live.Add(g.in_sources()[pos], v);
      } else {
        probability *= std::max(0.0, 1.0 - sum);
      }
    }
    if (probability > 0.0) {
      Graph live_graph = GraphBuilder::FromEdgeList(live);
      BfsReachability bfs(&live_graph);
      influence +=
          probability * static_cast<double>(bfs.CountReachable(seeds));
    }
    // Next mixed-radix configuration.
    VertexId v = 0;
    while (v < n) {
      if (++choice[v] <= g.InDegree(v)) break;
      choice[v] = 0;
      ++v;
    }
    if (v == n) break;
  }
  return influence;
}

double ExactRrHitProbability(const InfluenceGraph& ig,
                             std::span<const VertexId> seeds) {
  // Pr_R[R ∩ S != ∅] for a uniform target z: the fraction of (live graph,
  // z) pairs where S reaches z, weighted by the live-graph probability.
  const VertexId n = ig.num_vertices();
  double hit = 0.0;
  ForEachLiveGraph(ig, [&](double probability, const Graph& live) {
    BfsReachability bfs(&live);
    std::uint64_t reached = bfs.CountReachable(seeds);
    hit += probability * static_cast<double>(reached) /
           static_cast<double>(n);
  });
  return hit;
}

}  // namespace soldist
