// The shared influence oracle (paper Section 5.2): a large, fixed
// collection of RR sets, reused across all runs of all algorithms on an
// instance so identical seed sets always receive identical influence
// values. The paper uses 10^7 RR sets; the size is a parameter here.
// Coverage estimation n·F_R(S) is diffusion-model-agnostic, so the same
// oracle class serves IC (BFS RR sets) and LT (backward-walk RR sets) —
// the constructor picks the sampler.

#ifndef SOLDIST_ORACLE_RR_ORACLE_H_
#define SOLDIST_ORACLE_RR_ORACLE_H_

#include <vector>

#include "model/influence_graph.h"
#include "model/lt.h"
#include "sim/rr_sampler.h"

namespace soldist {

/// \brief RR-set-based influence oracle with an oracle-greedy reference
/// solver.
class RrOracle {
 public:
  /// Builds an IC oracle with `num_rr_sets` RR sets.
  RrOracle(const InfluenceGraph* ig, std::uint64_t num_rr_sets,
           std::uint64_t seed);

  /// Builds an LT oracle: `num_rr_sets` backward-walk RR sets drawn from
  /// `lt_weights` (which must outlive the oracle).
  RrOracle(const LtWeights* lt_weights, std::uint64_t num_rr_sets,
           std::uint64_t seed);

  /// Unbiased influence estimate n · F_R(S).
  double EstimateInfluence(std::span<const VertexId> seeds) const;

  /// Half-width of the 99% confidence interval around an influence
  /// estimate: 1.29 · n / sqrt(#RR sets) (paper Section 5.2 footnote; the
  /// conservative p(1−p) <= 1/4 Bernoulli bound with z_{0.995} = 2.576).
  double ConfidenceInterval99() const;

  /// Greedy on the oracle's own collection (lazy max coverage): the
  /// "Exact Greedy" reference against which near-optimality (0.95×) is
  /// judged in Table 5.
  std::vector<VertexId> OracleGreedySeeds(int k) const;

  std::uint64_t num_rr_sets() const { return collection_.size(); }
  double EmpiricalEpt() const { return collection_.MeanSize(); }
  const InfluenceGraph& influence_graph() const { return *ig_; }

 private:
  const InfluenceGraph* ig_;
  RrCollection collection_;
};

}  // namespace soldist

#endif  // SOLDIST_ORACLE_RR_ORACLE_H_
