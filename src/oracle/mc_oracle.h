// Monte-Carlo influence evaluator: the straightforward alternative oracle
// (forward simulations), used to cross-validate the RR oracle in tests.

#ifndef SOLDIST_ORACLE_MC_ORACLE_H_
#define SOLDIST_ORACLE_MC_ORACLE_H_

#include "model/influence_graph.h"
#include "sim/forward_sim.h"

namespace soldist {

/// \brief Influence estimation by repeated forward simulation.
class McOracle {
 public:
  explicit McOracle(const InfluenceGraph* ig);

  /// Mean activated count over `runs` simulations.
  double EstimateInfluence(std::span<const VertexId> seeds,
                           std::uint64_t runs, Rng* rng);

 private:
  ForwardSimulator simulator_;
};

}  // namespace soldist

#endif  // SOLDIST_ORACLE_MC_ORACLE_H_
