#include "oracle/rr_oracle.h"

#include <cmath>

#include "sim/lt_samplers.h"
#include "sim/max_coverage.h"
#include "random/splitmix64.h"

namespace soldist {

RrOracle::RrOracle(const InfluenceGraph* ig, std::uint64_t num_rr_sets,
                   std::uint64_t seed)
    : ig_(ig), collection_(ig->num_vertices()) {
  SOLDIST_CHECK(num_rr_sets >= 1);
  Rng target_rng(DeriveSeed(seed, 11));
  Rng coin_rng(DeriveSeed(seed, 12));
  RrSampler sampler(ig);
  TraversalCounters scratch_counters;  // oracle work is not experiment cost
  std::vector<VertexId> rr_set;
  for (std::uint64_t i = 0; i < num_rr_sets; ++i) {
    sampler.Sample(&target_rng, &coin_rng, &rr_set, &scratch_counters);
    collection_.Add(rr_set);
  }
  collection_.BuildIndex();
}

RrOracle::RrOracle(const LtWeights* lt_weights, std::uint64_t num_rr_sets,
                   std::uint64_t seed)
    : ig_(&lt_weights->influence_graph()),
      collection_(ig_->num_vertices()) {
  SOLDIST_CHECK(num_rr_sets >= 1);
  // Reuse the chunked shard sampler rather than a second sequential loop
  // (the inline engine keeps the build deterministic in `seed` alone; the
  // oracle is new with LT support, so there is no legacy stream to
  // preserve and paper-scale builds can later attach a pool here).
  SamplingEngine engine;
  std::vector<RrShard> shards =
      SampleLtRrShards(*lt_weights, DeriveSeed(seed, 11), num_rr_sets,
                       &engine);
  collection_.Merge(std::move(shards));
  collection_.BuildIndex();
}

double RrOracle::EstimateInfluence(std::span<const VertexId> seeds) const {
  std::uint64_t covered = collection_.CountCovered(seeds);
  return static_cast<double>(ig_->num_vertices()) *
         static_cast<double>(covered) /
         static_cast<double>(collection_.size());
}

double RrOracle::ConfidenceInterval99() const {
  return 1.29 * static_cast<double>(ig_->num_vertices()) /
         std::sqrt(static_cast<double>(collection_.size()));
}

std::vector<VertexId> RrOracle::OracleGreedySeeds(int k) const {
  // Deterministic lazy max coverage on the oracle collection (ties break
  // toward smaller ids, so the reference is reproducible).
  return GreedyMaxCoverage(collection_, k).seeds;
}

}  // namespace soldist
