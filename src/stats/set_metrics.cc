#include "stats/set_metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace soldist {

double JaccardSimilarity(std::span<const VertexId> a,
                         std::span<const VertexId> b) {
  std::vector<VertexId> sa(a.begin(), a.end());
  std::vector<VertexId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t i = 0, j = 0, intersection = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  std::size_t union_size = sa.size() + sb.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

double TotalVariationDistance(const SeedSetDistribution& p,
                              const SeedSetDistribution& q) {
  SOLDIST_CHECK(p.num_trials() > 0 && q.num_trials() > 0);
  double distance = 0.0;
  auto it_p = p.counts().begin();
  auto it_q = q.counts().begin();
  const double np = static_cast<double>(p.num_trials());
  const double nq = static_cast<double>(q.num_trials());
  while (it_p != p.counts().end() || it_q != q.counts().end()) {
    if (it_q == q.counts().end() ||
        (it_p != p.counts().end() && it_p->first < it_q->first)) {
      distance += static_cast<double>(it_p->second) / np;
      ++it_p;
    } else if (it_p == p.counts().end() || it_q->first < it_p->first) {
      distance += static_cast<double>(it_q->second) / nq;
      ++it_q;
    } else {
      distance += std::abs(static_cast<double>(it_p->second) / np -
                           static_cast<double>(it_q->second) / nq);
      ++it_p;
      ++it_q;
    }
  }
  return distance / 2.0;
}

std::vector<double> InclusionFrequencies(const SeedSetDistribution& dist,
                                         VertexId num_vertices) {
  std::vector<double> freq(num_vertices, 0.0);
  if (dist.num_trials() == 0) return freq;
  for (const auto& [set, count] : dist.counts()) {
    for (VertexId v : set) {
      SOLDIST_DCHECK(v < num_vertices);
      freq[v] += static_cast<double>(count);
    }
  }
  for (double& f : freq) f /= static_cast<double>(dist.num_trials());
  return freq;
}

double ExpectedPairwiseJaccard(const SeedSetDistribution& dist) {
  SOLDIST_CHECK(dist.num_trials() > 0);
  const double n = static_cast<double>(dist.num_trials());
  double expected = 0.0;
  for (const auto& [set_a, count_a] : dist.counts()) {
    for (const auto& [set_b, count_b] : dist.counts()) {
      double weight = (static_cast<double>(count_a) / n) *
                      (static_cast<double>(count_b) / n);
      double similarity =
          &set_a == &set_b ? 1.0 : JaccardSimilarity(set_a, set_b);
      expected += weight * similarity;
    }
  }
  return expected;
}

}  // namespace soldist
