// Shannon entropy over empirical counts (paper Section 5.1): the diversity
// measure for seed-set distributions, H = −Σ p_S log2 p_S.

#ifndef SOLDIST_STATS_ENTROPY_H_
#define SOLDIST_STATS_ENTROPY_H_

#include <cstdint>
#include <span>

namespace soldist {

/// Entropy in bits of the empirical distribution given by `counts`
/// (zeros allowed and ignored). Returns 0 for empty/degenerate input.
double ShannonEntropy(std::span<const std::uint64_t> counts);

/// Maximum possible entropy of an empirical distribution built from
/// `trials` observations: log2(trials) (paper: ~9.97 bits for T=1,000).
double MaxEmpiricalEntropy(std::uint64_t trials);

}  // namespace soldist

#endif  // SOLDIST_STATS_ENTROPY_H_
