#include "stats/box_stats.h"

#include <cmath>

namespace soldist {

NotchedBoxStats ComputeBoxStats(const InfluenceDistribution& dist) {
  NotchedBoxStats stats;
  stats.num_samples = dist.size();
  stats.mean = dist.Mean();
  stats.median = dist.Median();
  stats.q1 = dist.Percentile(25.0);
  stats.q3 = dist.Percentile(75.0);
  stats.p1 = dist.Percentile(1.0);
  stats.p99 = dist.Percentile(99.0);
  double iqr = stats.q3 - stats.q1;
  double half_notch =
      1.57 * iqr / std::sqrt(static_cast<double>(dist.size()));
  stats.notch_low = stats.median - half_notch;
  stats.notch_high = stats.median + half_notch;
  return stats;
}

}  // namespace soldist
