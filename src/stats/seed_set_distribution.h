// The empirical seed-set distribution S(s) (paper Section 4): counts of
// each distinct seed *set* across T trials of one (algorithm, sample
// number) configuration.

#ifndef SOLDIST_STATS_SEED_SET_DISTRIBUTION_H_
#define SOLDIST_STATS_SEED_SET_DISTRIBUTION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/types.h"

namespace soldist {

/// \brief Empirical distribution over seed sets.
///
/// Sets are identified by their sorted vertex vector; selection order is
/// irrelevant (a set, not a sequence).
class SeedSetDistribution {
 public:
  /// Records one observed seed set. `seeds` need not be sorted.
  void Add(std::vector<VertexId> seeds);

  std::uint64_t num_trials() const { return num_trials_; }
  std::uint64_t num_distinct_sets() const { return counts_.size(); }

  /// Shannon entropy in bits (paper Section 5.1); 0 for degenerate.
  double Entropy() const;

  /// True when every trial produced the same set.
  bool IsDegenerate() const { return counts_.size() <= 1; }

  /// The most frequent set (ties: lexicographically smallest) and its
  /// count. Requires num_trials() > 0.
  const std::vector<VertexId>& ModalSet() const;
  std::uint64_t ModalCount() const;

  /// Empirical probability of `seeds` (sorted or not).
  double Probability(std::vector<VertexId> seeds) const;

  /// Access to the raw (set -> count) map, sorted lexicographically.
  const std::map<std::vector<VertexId>, std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::map<std::vector<VertexId>, std::uint64_t> counts_;
  std::uint64_t num_trials_ = 0;
};

}  // namespace soldist

#endif  // SOLDIST_STATS_SEED_SET_DISTRIBUTION_H_
