#include "stats/comparable_ratio.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace soldist {
namespace {

std::optional<double> MedianOf(std::vector<double> values) {
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

std::vector<ComparablePair> ComputeComparablePairs(
    const std::vector<SweepPoint>& curve1,
    const std::vector<SweepPoint>& curve2) {
  for (std::size_t i = 1; i < curve1.size(); ++i) {
    SOLDIST_CHECK(curve1[i].sample_number > curve1[i - 1].sample_number);
  }
  for (std::size_t i = 1; i < curve2.size(); ++i) {
    SOLDIST_CHECK(curve2[i].sample_number > curve2[i - 1].sample_number);
  }
  std::vector<ComparablePair> pairs;
  for (const SweepPoint& p1 : curve1) {
    // A sample number of 0 is invalid data (the CHECKs above only enforce
    // strictly-increasing, so a leading 0 slips through): as s1 it would
    // make number_ratio infinite, as s2 it would make it 0 — either
    // poisons MedianNumberRatio. Skip such points.
    if (p1.sample_number == 0) continue;
    // Least s2 whose mean reaches mean1(s1). Curves can be noisy, so scan
    // in increasing order and stop at the first match.
    const SweepPoint* match = nullptr;
    for (const SweepPoint& p2 : curve2) {
      if (p2.sample_number == 0) continue;
      if (p2.mean_influence >= p1.mean_influence) {
        match = &p2;
        break;
      }
    }
    if (match == nullptr) continue;  // curve2 never reaches this level
    ComparablePair pair;
    pair.s1 = p1.sample_number;
    pair.s2 = match->sample_number;
    pair.number_ratio = static_cast<double>(match->sample_number) /
                        static_cast<double>(p1.sample_number);
    pair.size_ratio = p1.mean_sample_size > 0.0
                          ? match->mean_sample_size / p1.mean_sample_size
                          : std::nan("");
    pairs.push_back(pair);
  }
  return pairs;
}

std::optional<double> MedianNumberRatio(
    const std::vector<ComparablePair>& pairs) {
  std::vector<double> ratios;
  ratios.reserve(pairs.size());
  for (const auto& p : pairs) ratios.push_back(p.number_ratio);
  return MedianOf(std::move(ratios));
}

std::optional<double> MedianSizeRatio(
    const std::vector<ComparablePair>& pairs) {
  std::vector<double> ratios;
  for (const auto& p : pairs) {
    if (!std::isnan(p.size_ratio)) ratios.push_back(p.size_ratio);
  }
  return MedianOf(std::move(ratios));
}

}  // namespace soldist
