// The empirical influence distribution I(s) (paper Section 4): the
// influence-spread values of the T random solutions of one (algorithm,
// sample number) configuration, with the summary statistics used in
// Sections 5.2 and 6.

#ifndef SOLDIST_STATS_INFLUENCE_DISTRIBUTION_H_
#define SOLDIST_STATS_INFLUENCE_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

namespace soldist {

/// \brief Accumulates influence samples and answers summary queries.
class InfluenceDistribution {
 public:
  void Add(double value);
  void AddAll(const std::vector<double>& values);

  std::uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  /// Sample standard deviation (n−1 denominator); 0 for size < 2.
  double StdDev() const;
  double Min() const;
  double Max() const;

  /// p-th percentile, p in [0, 100], by linear interpolation between
  /// order statistics (the convention of numpy/matplotlib, which the
  /// paper's box plots use).
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Fraction of samples >= threshold: Pr[influence >= t] empirically.
  /// Used for the "near-optimal with probability 99%" criterion.
  double FractionAtLeast(double threshold) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace soldist

#endif  // SOLDIST_STATS_INFLUENCE_DISTRIBUTION_H_
