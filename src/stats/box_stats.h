// Notched-box-plot statistics (paper Figure 4's legend): median with its
// 95% confidence notch, quartiles, mean, and the 1st/99th percentile
// whiskers with 1% outliers beyond.

#ifndef SOLDIST_STATS_BOX_STATS_H_
#define SOLDIST_STATS_BOX_STATS_H_

#include "stats/influence_distribution.h"

namespace soldist {

/// \brief Everything needed to draw one notched box.
struct NotchedBoxStats {
  double mean = 0.0;
  double median = 0.0;
  double q1 = 0.0;   ///< 25th percentile
  double q3 = 0.0;   ///< 75th percentile
  double p1 = 0.0;   ///< 1st percentile (lower whisker)
  double p99 = 0.0;  ///< 99th percentile (upper whisker)
  /// 95% confidence interval of the median: median ± 1.57·IQR/√n
  /// (McGill, Tukey & Larsen 1978 — matplotlib's notch convention).
  double notch_low = 0.0;
  double notch_high = 0.0;
  std::uint64_t num_samples = 0;
};

/// Computes the box statistics of `dist` (requires at least one sample).
NotchedBoxStats ComputeBoxStats(const InfluenceDistribution& dist);

}  // namespace soldist

#endif  // SOLDIST_STATS_BOX_STATS_H_
