#include "stats/entropy.h"

#include <cmath>

namespace soldist {

double ShannonEntropy(std::span<const std::uint64_t> counts) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  // Clamp the tiny negative values floating-point can produce for
  // degenerate distributions.
  return h < 0.0 ? 0.0 : h;
}

double MaxEmpiricalEntropy(std::uint64_t trials) {
  if (trials == 0) return 0.0;
  return std::log2(static_cast<double>(trials));
}

}  // namespace soldist
