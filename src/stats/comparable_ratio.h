// Comparable number/size ratios (paper Section 5.2.3): sample number s2 of
// algorithm 2 is *comparable* to s1 of algorithm 1 when s2 is the least
// sample number whose influence distribution is better (higher mean) than
// algorithm 1's at s1. The ratio s2/s1 measures how many more samples
// algorithm 2 needs for the same accuracy.

#ifndef SOLDIST_STATS_COMPARABLE_RATIO_H_
#define SOLDIST_STATS_COMPARABLE_RATIO_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace soldist {

/// One (sample number, mean influence, mean sample size) point of an
/// algorithm's sweep curve. Sample numbers must be strictly increasing
/// and means are expected to be (noisily) increasing.
struct SweepPoint {
  std::uint64_t sample_number = 0;
  double mean_influence = 0.0;
  /// Mean stored sample size at this sample number (vertices + edges);
  /// 0 for Oneshot which stores nothing.
  double mean_sample_size = 0.0;
};

/// One comparable pairing: alg2 at `s2` first matches alg1 at `s1`.
struct ComparablePair {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;          ///< least s2 with mean2(s2) >= mean1(s1)
  double number_ratio = 0.0;     ///< s2 / s1
  double size_ratio = 0.0;       ///< size2(s2) / size1(s1); NaN if size1=0
};

/// \brief Computes comparable pairs of curve2 against curve1.
///
/// For each point of `curve1`, finds the least sample number in `curve2`
/// whose mean influence is >= that point's mean. Points of curve1 that no
/// point of curve2 reaches are skipped (the paper's "-" cells), as are
/// points with sample_number == 0 on either curve (invalid data whose
/// ratios would be infinite or zero).
std::vector<ComparablePair> ComputeComparablePairs(
    const std::vector<SweepPoint>& curve1,
    const std::vector<SweepPoint>& curve2);

/// Median of the number ratios of `pairs`; nullopt when empty.
std::optional<double> MedianNumberRatio(
    const std::vector<ComparablePair>& pairs);

/// Median of the finite size ratios of `pairs`; nullopt when empty.
std::optional<double> MedianSizeRatio(
    const std::vector<ComparablePair>& pairs);

}  // namespace soldist

#endif  // SOLDIST_STATS_COMPARABLE_RATIO_H_
