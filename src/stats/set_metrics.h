// Seed-set similarity and distribution-distance metrics: quantitative
// companions to the paper's qualitative convergence claims. The paper
// verifies that the three approaches share one limit solution; these
// metrics measure *how close* two solution distributions are before the
// limit (total variation) and how similar individual solutions are
// (Jaccard), plus per-vertex inclusion frequencies for diagnosing which
// vertices the distribution is still undecided about.

#ifndef SOLDIST_STATS_SET_METRICS_H_
#define SOLDIST_STATS_SET_METRICS_H_

#include <span>
#include <vector>

#include "stats/seed_set_distribution.h"

namespace soldist {

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two vertex sets (sorted or
/// not); 1.0 for two empty sets.
double JaccardSimilarity(std::span<const VertexId> a,
                         std::span<const VertexId> b);

/// Total variation distance between two empirical seed-set distributions:
/// (1/2) Σ_S |p(S) − q(S)|, in [0, 1]. Both must be non-empty.
double TotalVariationDistance(const SeedSetDistribution& p,
                              const SeedSetDistribution& q);

/// Per-vertex inclusion frequency: out[v] = fraction of trials whose seed
/// set contains v. Σ_v out[v] = k for k-seed distributions.
std::vector<double> InclusionFrequencies(const SeedSetDistribution& dist,
                                         VertexId num_vertices);

/// Mean pairwise Jaccard similarity between the distribution's distinct
/// sets weighted by their probabilities (including identical pairs):
/// 1.0 iff degenerate. A diversity companion to Shannon entropy.
double ExpectedPairwiseJaccard(const SeedSetDistribution& dist);

}  // namespace soldist

#endif  // SOLDIST_STATS_SET_METRICS_H_
