#include "stats/influence_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace soldist {

void InfluenceDistribution::Add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

void InfluenceDistribution::AddAll(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_valid_ = false;
}

double InfluenceDistribution::Mean() const {
  SOLDIST_CHECK(!values_.empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double InfluenceDistribution::StdDev() const {
  if (values_.size() < 2) return 0.0;
  double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double InfluenceDistribution::Min() const {
  SOLDIST_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double InfluenceDistribution::Max() const {
  SOLDIST_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

void InfluenceDistribution::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double InfluenceDistribution::Percentile(double p) const {
  SOLDIST_CHECK(!values_.empty());
  SOLDIST_CHECK(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (sorted_.size() == 1) return sorted_[0];
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double InfluenceDistribution::FractionAtLeast(double threshold) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(sorted_.end() - it) /
         static_cast<double>(sorted_.size());
}

}  // namespace soldist
