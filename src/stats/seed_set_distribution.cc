#include "stats/seed_set_distribution.h"

#include <algorithm>

#include "stats/entropy.h"
#include "util/logging.h"

namespace soldist {

void SeedSetDistribution::Add(std::vector<VertexId> seeds) {
  std::sort(seeds.begin(), seeds.end());
  ++counts_[std::move(seeds)];
  ++num_trials_;
}

double SeedSetDistribution::Entropy() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(counts_.size());
  for (const auto& [set, count] : counts_) counts.push_back(count);
  return ShannonEntropy(counts);
}

const std::vector<VertexId>& SeedSetDistribution::ModalSet() const {
  SOLDIST_CHECK(num_trials_ > 0);
  const std::vector<VertexId>* best = nullptr;
  std::uint64_t best_count = 0;
  for (const auto& [set, count] : counts_) {
    if (count > best_count) {  // first (lexicographically smallest) wins ties
      best_count = count;
      best = &set;
    }
  }
  return *best;
}

std::uint64_t SeedSetDistribution::ModalCount() const {
  SOLDIST_CHECK(num_trials_ > 0);
  std::uint64_t best = 0;
  for (const auto& [set, count] : counts_) best = std::max(best, count);
  return best;
}

double SeedSetDistribution::Probability(std::vector<VertexId> seeds) const {
  if (num_trials_ == 0) return 0.0;
  std::sort(seeds.begin(), seeds.end());
  auto it = counts_.find(seeds);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(num_trials_);
}

}  // namespace soldist
