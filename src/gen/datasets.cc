#include "gen/datasets.h"

#include <algorithm>

#include "gen/barabasi_albert.h"
#include "gen/community.h"
#include "gen/config_model.h"
#include "gen/karate.h"
#include "random/rng.h"
#include "random/splitmix64.h"

namespace soldist {

EdgeList Datasets::Karate() { return KarateClub(); }

EdgeList Datasets::Physicians(std::uint64_t seed) {
  // Coleman's physicians data came from a survey capping how many
  // colleagues each respondent could name, so out-degrees are tight
  // (Δ+ = 9) while popular physicians accumulate in-degree (Δ− = 26).
  // The proxy reproduces both: capped out-degrees summing to 1,098 and
  // preferential in-attachment.
  constexpr VertexId kN = 241;
  constexpr EdgeId kArcs = 1098;
  Rng rng(DeriveSeed(seed, 0x9d5));

  std::vector<VertexId> out_deg(kN);
  for (auto& d : out_deg) {
    d = 3 + static_cast<VertexId>(rng.UniformInt(4));  // 3..6
  }
  EdgeId sum = 0;
  for (VertexId d : out_deg) sum += d;
  while (sum != kArcs) {
    auto i = static_cast<std::size_t>(rng.UniformInt(kN));
    if (sum < kArcs && out_deg[i] < 9) {
      ++out_deg[i];
      ++sum;
    } else if (sum > kArcs && out_deg[i] > 1) {
      --out_deg[i];
      --sum;
    }
  }

  // Target pool: one base entry per vertex plus one per received arc, so
  // Pr[target = v] ∝ 1 + in_deg(v).
  std::vector<VertexId> pool;
  pool.reserve(kN + kArcs);
  for (VertexId v = 0; v < kN; ++v) pool.push_back(v);

  EdgeList edges;
  edges.num_vertices = kN;
  edges.arcs.reserve(kArcs);
  std::vector<VertexId> order(kN);
  for (VertexId v = 0; v < kN; ++v) order[v] = v;
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<VertexId> chosen;
  for (VertexId u : order) {
    chosen.clear();
    while (chosen.size() < out_deg[u]) {
      VertexId t = pool[rng.UniformInt(pool.size())];
      if (t == u) continue;
      if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) continue;
      chosen.push_back(t);
    }
    for (VertexId t : chosen) {
      edges.Add(u, t);
      pool.push_back(t);
    }
  }
  SOLDIST_CHECK_EQ(edges.arcs.size(), kArcs);
  return edges;
}

EdgeList Datasets::CaGrQc(std::uint64_t seed) {
  CommunityGraphSpec spec;
  spec.num_vertices = 5242;
  spec.core_fraction = 0.65;
  // Tuned so the realized graph lands near the paper's Table 3 row:
  // ~29k arcs (paper: 28,968) and clustering ~0.58 (paper: 0.63).
  spec.num_communities = 650;
  spec.size_gamma = 2.4;
  spec.min_size = 2;
  spec.max_size = 30;
  spec.membership_bias = 0.15;
  Rng rng(DeriveSeed(seed, 0xca6));
  EdgeList undirected = CommunityOverlapGraph(spec, &rng);
  undirected.MakeBidirected();
  return undirected;
}

EdgeList Datasets::WikiVote(std::uint64_t seed) {
  PowerLawSpec out_spec{.gamma = 1.95, .min_degree = 1, .max_degree = 893};
  PowerLawSpec in_spec{.gamma = 2.1, .min_degree = 1, .max_degree = 457};
  Rng rng(DeriveSeed(seed, 0x817e));
  return DirectedConfigModel(7115, 103689, out_spec, in_spec, &rng);
}

EdgeList Datasets::ComYoutube(std::uint64_t seed, VertexId n) {
  SOLDIST_CHECK(n >= 8);
  Rng rng(DeriveSeed(seed, 0x707));
  // Social network: undirected friendships, bidirected arcs; M=3 gives
  // arcs/vertex ≈ 6 vs the paper's 5.3 with the same scale-free hubs.
  EdgeList undirected = BarabasiAlbert(n, 3, &rng);
  undirected.MakeBidirected();
  return undirected;
}

EdgeList Datasets::SocPokec(std::uint64_t seed, VertexId n) {
  SOLDIST_CHECK(n >= 8);
  Rng rng(DeriveSeed(seed, 0x90c));
  // Directed follower-style network, arcs/vertex ≈ 18.8 as in the paper.
  auto target = static_cast<EdgeId>(18.75 * static_cast<double>(n));
  PowerLawSpec out_spec{.gamma = 2.1, .min_degree = 2,
                        .max_degree = std::max<VertexId>(64, n / 10)};
  PowerLawSpec in_spec{.gamma = 2.0, .min_degree = 2,
                       .max_degree = std::max<VertexId>(64, n / 6)};
  return DirectedConfigModel(n, target, out_spec, in_spec, &rng);
}

EdgeList Datasets::BaSparse(std::uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0xba5));
  return PaperBaSparse(&rng);
}

EdgeList Datasets::BaDense(std::uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0xbad));
  return PaperBaDense(&rng);
}

std::vector<std::string> Datasets::Names() {
  return {"Karate",      "Physicians", "ca-GrQc", "Wiki-Vote",
          "com-Youtube", "soc-Pokec",  "BA_s",    "BA_d"};
}

StatusOr<EdgeList> Datasets::ByName(const std::string& name,
                                    std::uint64_t seed, VertexId star_n) {
  // The ⋆ generators CHECK their minimum size; a star_n override is user
  // input (--star-n), so reject it here with a status instead.
  if (star_n > 0 && star_n < 8 && IsStarNetwork(name)) {
    return Status::InvalidArgument(
        "star_n override for " + name + " must be >= 8, got " +
        std::to_string(star_n));
  }
  if (name == "Karate") return Karate();
  if (name == "Physicians") return Physicians(seed);
  if (name == "ca-GrQc") return CaGrQc(seed);
  if (name == "Wiki-Vote") return WikiVote(seed);
  if (name == "com-Youtube") {
    return star_n > 0 ? ComYoutube(seed, star_n) : ComYoutube(seed);
  }
  if (name == "soc-Pokec") {
    return star_n > 0 ? SocPokec(seed, star_n) : SocPokec(seed);
  }
  if (name == "BA_s") return BaSparse(seed);
  if (name == "BA_d") return BaDense(seed);
  return Status::NotFound("unknown dataset: " + name);
}

bool Datasets::IsStarNetwork(const std::string& name) {
  return name == "com-Youtube" || name == "soc-Pokec";
}

}  // namespace soldist
