#include "gen/community.h"

#include <algorithm>
#include <cmath>

namespace soldist {
namespace {

std::uint32_t SampleCommunitySize(const CommunityGraphSpec& spec, Rng* rng) {
  double a = spec.min_size;
  double b = spec.max_size + 1.0;
  double g1 = 1.0 - spec.size_gamma;
  double u = rng->UnitReal();
  double x = std::pow(std::pow(a, g1) + u * (std::pow(b, g1) - std::pow(a, g1)),
                      1.0 / g1);
  return std::clamp(static_cast<std::uint32_t>(x), spec.min_size,
                    spec.max_size);
}

}  // namespace

EdgeList CommunityOverlapGraph(const CommunityGraphSpec& spec, Rng* rng) {
  SOLDIST_CHECK(spec.num_vertices >= 4);
  SOLDIST_CHECK(spec.core_fraction > 0.0 && spec.core_fraction <= 1.0);
  const VertexId n = spec.num_vertices;
  const auto core_n = std::max<VertexId>(
      spec.min_size,
      static_cast<VertexId>(static_cast<double>(n) * spec.core_fraction));

  EdgeList edges;
  edges.num_vertices = n;

  // --- Core: overlapping cliques ("papers" over "authors"). ---
  // membership_pool holds one entry per (vertex, membership): drawing from
  // it is preferential attachment on membership count.
  std::vector<VertexId> membership_pool;
  std::vector<VertexId> members;
  for (std::uint32_t c = 0; c < spec.num_communities; ++c) {
    std::uint32_t size = std::min<std::uint32_t>(SampleCommunitySize(spec, rng),
                                                 core_n);
    members.clear();
    while (members.size() < size) {
      VertexId v;
      if (!membership_pool.empty() && rng->Bernoulli(spec.membership_bias)) {
        v = membership_pool[rng->UniformInt(membership_pool.size())];
      } else {
        v = static_cast<VertexId>(rng->UniformInt(core_n));
      }
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        members.push_back(v);
      }
    }
    for (VertexId v : members) membership_pool.push_back(v);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        edges.Add(std::min(members[i], members[j]),
                  std::max(members[i], members[j]));
      }
    }
  }

  // --- Whiskers: tree-like appendages off the core. ---
  for (VertexId v = core_n; v < n; ++v) {
    VertexId parent;
    if (v == core_n || rng->Bernoulli(0.5)) {
      parent = static_cast<VertexId>(rng->UniformInt(core_n));
    } else {
      // Attach to an earlier whisker vertex: grows short trees.
      parent = core_n + static_cast<VertexId>(rng->UniformInt(v - core_n));
    }
    edges.Add(std::min(v, parent), std::max(v, parent));
  }

  edges.RemoveDuplicates();
  return edges;
}

}  // namespace soldist
