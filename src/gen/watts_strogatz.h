// Watts–Strogatz small-world graphs (paper Section 4.2.1 cites the model's
// small-world/clustering properties): ring lattice + random rewiring.

#ifndef SOLDIST_GEN_WATTS_STROGATZ_H_
#define SOLDIST_GEN_WATTS_STROGATZ_H_

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// \brief Undirected Watts–Strogatz graph as an edge list (one arc per
/// edge).
///
/// \param n vertices; \param k each vertex connects to its k nearest ring
/// neighbors (k even, k < n); \param beta rewiring probability in [0,1].
EdgeList WattsStrogatz(VertexId n, VertexId k, double beta, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_WATTS_STROGATZ_H_
