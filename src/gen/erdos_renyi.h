// Erdős–Rényi random graphs: the classical baseline generator; used in
// tests (known component thresholds) and available to library users.

#ifndef SOLDIST_GEN_ERDOS_RENYI_H_
#define SOLDIST_GEN_ERDOS_RENYI_H_

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// G(n, m) with exactly `m` distinct directed arcs (no self-loops).
EdgeList ErdosRenyiGnm(VertexId n, EdgeId m, Rng* rng);

/// G(n, p): each ordered pair (u, v), u != v, is an arc independently with
/// probability p. Uses geometric skipping, O(n + m) expected time.
EdgeList ErdosRenyiGnp(VertexId n, double p, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_ERDOS_RENYI_H_
