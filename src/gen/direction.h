// Random edge orientation: the paper's synthetic networks are generated
// undirected and then "assigned random directions for each edge".

#ifndef SOLDIST_GEN_DIRECTION_H_
#define SOLDIST_GEN_DIRECTION_H_

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// Flips a fair coin per arc: keeps (src,dst) or swaps to (dst,src).
/// The arc count is unchanged (each undirected edge yields ONE arc).
EdgeList AssignRandomDirections(const EdgeList& undirected, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_DIRECTION_H_
