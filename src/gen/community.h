// Community-overlap ("co-authorship") generator: proxy for collaboration
// networks such as ca-GrQc. Produces the core–whisker structure the
// paper's Section 5.2.2/5.3 analysis relies on: a dense clique-overlap
// core plus tree-like whiskers, with high clustering.

#ifndef SOLDIST_GEN_COMMUNITY_H_
#define SOLDIST_GEN_COMMUNITY_H_

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// Parameters of the community-overlap generator.
struct CommunityGraphSpec {
  VertexId num_vertices = 5242;
  /// Fraction of vertices placed in the clique-overlap core; the rest form
  /// whiskers (trees hanging off core vertices).
  double core_fraction = 0.65;
  /// Number of communities ("papers"); each induces a clique.
  std::uint32_t num_communities = 1800;
  /// Community sizes ~ truncated power law in [min_size, max_size].
  double size_gamma = 2.4;
  std::uint32_t min_size = 2;
  std::uint32_t max_size = 30;
  /// Memberships per core vertex concentrate on few active members:
  /// community members are drawn by preferential attachment on the number
  /// of prior memberships.
  double membership_bias = 0.75;
};

/// \brief Generates the undirected collaboration proxy (one arc per edge).
///
/// All communities become cliques; whisker vertices attach in short random
/// trees to random core vertices. Duplicate edges are merged.
EdgeList CommunityOverlapGraph(const CommunityGraphSpec& spec, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_COMMUNITY_H_
