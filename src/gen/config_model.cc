#include "gen/config_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace soldist {
namespace {

/// Draws one degree from the truncated power law via inverse-CDF on the
/// continuous approximation, then rounds down (standard discrete recipe).
VertexId SampleOneDegree(const PowerLawSpec& spec, Rng* rng) {
  double a = static_cast<double>(spec.min_degree);
  double b = static_cast<double>(spec.max_degree) + 1.0;
  double g1 = 1.0 - spec.gamma;  // gamma != 1 assumed (spec.gamma > 1)
  double u = rng->UnitReal();
  double x = std::pow(std::pow(a, g1) + u * (std::pow(b, g1) - std::pow(a, g1)),
                      1.0 / g1);
  auto d = static_cast<VertexId>(x);
  return std::clamp(d, spec.min_degree, spec.max_degree);
}

/// Adjusts `degrees` until its sum equals `target` by bumping random
/// entries up/down within [spec.min_degree, spec.max_degree].
void RebalanceSum(std::vector<VertexId>* degrees, EdgeId target,
                  const PowerLawSpec& spec, Rng* rng) {
  EdgeId sum = 0;
  for (VertexId d : *degrees) sum += d;
  while (sum != target) {
    auto i = static_cast<std::size_t>(rng->UniformInt(degrees->size()));
    if (sum < target && (*degrees)[i] < spec.max_degree) {
      ++(*degrees)[i];
      ++sum;
    } else if (sum > target && (*degrees)[i] > spec.min_degree) {
      --(*degrees)[i];
      --sum;
    }
  }
}

}  // namespace

std::vector<VertexId> SamplePowerLawDegrees(VertexId n,
                                            const PowerLawSpec& spec,
                                            Rng* rng) {
  SOLDIST_CHECK(spec.gamma > 1.0);
  SOLDIST_CHECK(spec.min_degree >= 1);
  SOLDIST_CHECK(spec.max_degree >= spec.min_degree);
  std::vector<VertexId> degrees(n);
  for (auto& d : degrees) d = SampleOneDegree(spec, rng);
  return degrees;
}

EdgeList DirectedConfigModel(VertexId n, EdgeId target_arcs,
                             const PowerLawSpec& out_spec,
                             const PowerLawSpec& in_spec, Rng* rng) {
  SOLDIST_CHECK(n >= 2);
  std::vector<VertexId> out_deg = SamplePowerLawDegrees(n, out_spec, rng);
  std::vector<VertexId> in_deg = SamplePowerLawDegrees(n, in_spec, rng);
  RebalanceSum(&out_deg, target_arcs, out_spec, rng);
  RebalanceSum(&in_deg, target_arcs, in_spec, rng);

  // Build stub arrays and shuffle the in-stubs; pairing position-wise is a
  // uniform matching.
  std::vector<VertexId> out_stubs, in_stubs;
  out_stubs.reserve(target_arcs);
  in_stubs.reserve(target_arcs);
  for (VertexId v = 0; v < n; ++v) {
    out_stubs.insert(out_stubs.end(), out_deg[v], v);
    in_stubs.insert(in_stubs.end(), in_deg[v], v);
  }
  std::shuffle(in_stubs.begin(), in_stubs.end(), rng->engine());

  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs.reserve(target_arcs);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_arcs * 2);
  for (std::size_t i = 0; i < out_stubs.size(); ++i) {
    VertexId u = out_stubs[i], v = in_stubs[i];
    if (u == v) continue;  // erased configuration model
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    edges.Add(u, v);
  }
  return edges;
}

}  // namespace soldist
