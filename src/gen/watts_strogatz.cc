#include "gen/watts_strogatz.h"

#include <unordered_set>

namespace soldist {

EdgeList WattsStrogatz(VertexId n, VertexId k, double beta, Rng* rng) {
  SOLDIST_CHECK(k % 2 == 0) << "Watts-Strogatz k must be even";
  SOLDIST_CHECK(k < n);
  SOLDIST_CHECK(beta >= 0.0 && beta <= 1.0);

  // Track undirected edges as canonical (min,max) keys to keep the graph
  // simple while rewiring.
  auto key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::unordered_set<std::uint64_t> present;
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n) * k / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k / 2; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      arcs.push_back({u, v});
      present.insert(key(u, v));
    }
  }
  for (Arc& arc : arcs) {
    if (!rng->Bernoulli(beta)) continue;
    // Rewire the far endpoint to a uniform non-self, non-duplicate vertex.
    for (int attempt = 0; attempt < 64; ++attempt) {
      auto w = static_cast<VertexId>(rng->UniformInt(n));
      if (w == arc.src || present.contains(key(arc.src, w))) continue;
      present.erase(key(arc.src, arc.dst));
      present.insert(key(arc.src, w));
      arc.dst = w;
      break;
    }
    // If 64 attempts all collided (dense corner case) the edge stays.
  }

  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs = std::move(arcs);
  return edges;
}

}  // namespace soldist
