#include "gen/karate.h"

#include "util/logging.h"

namespace soldist {
namespace {

// Canonical 78-edge list (1-indexed, from Zachary 1977 / UCI repository).
constexpr struct { int u, v; } kEdges[] = {
    {2, 1},   {3, 1},   {3, 2},   {4, 1},   {4, 2},   {4, 3},   {5, 1},
    {6, 1},   {7, 1},   {7, 5},   {7, 6},   {8, 1},   {8, 2},   {8, 3},
    {8, 4},   {9, 1},   {9, 3},   {10, 3},  {11, 1},  {11, 5},  {11, 6},
    {12, 1},  {13, 1},  {13, 4},  {14, 1},  {14, 2},  {14, 3},  {14, 4},
    {17, 6},  {17, 7},  {18, 1},  {18, 2},  {20, 1},  {20, 2},  {22, 1},
    {22, 2},  {26, 24}, {26, 25}, {28, 3},  {28, 24}, {28, 25}, {29, 3},
    {30, 24}, {30, 27}, {31, 2},  {31, 9},  {32, 1},  {32, 25}, {32, 26},
    {32, 29}, {33, 3},  {33, 9},  {33, 15}, {33, 16}, {33, 19}, {33, 21},
    {33, 23}, {33, 24}, {33, 30}, {33, 31}, {33, 32}, {34, 9},  {34, 10},
    {34, 14}, {34, 15}, {34, 16}, {34, 19}, {34, 20}, {34, 21}, {34, 23},
    {34, 24}, {34, 27}, {34, 28}, {34, 29}, {34, 30}, {34, 31}, {34, 32},
    {34, 33},
};

}  // namespace

EdgeList KarateClub() {
  static_assert(sizeof(kEdges) / sizeof(kEdges[0]) == kKarateUndirectedEdges);
  EdgeList edges;
  edges.num_vertices = 34;
  edges.arcs.reserve(kKarateUndirectedEdges);
  for (const auto& e : kEdges) {
    edges.Add(static_cast<VertexId>(e.u - 1), static_cast<VertexId>(e.v - 1));
  }
  edges.MakeBidirected();
  SOLDIST_CHECK_EQ(edges.arcs.size(), 2 * kKarateUndirectedEdges);
  return edges;
}

}  // namespace soldist
