// Named dataset catalog: the eight networks of the paper's Table 3.
//
// Karate is embedded real data; BA_s/BA_d follow the paper's own synthetic
// recipe. The five KONECT/SNAP downloads are unavailable offline, so each
// has a structurally matched synthetic proxy (DESIGN.md Section 4
// documents every substitution); users with the original files can load
// them with GraphIo::LoadEdgeList instead.

#ifndef SOLDIST_GEN_DATASETS_H_
#define SOLDIST_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "util/status.h"

namespace soldist {

/// \brief Builders for the paper's networks.
///
/// All builders are deterministic in `seed`. The two ⋆ networks
/// (com-Youtube, soc-Pokec) take an explicit vertex count because the
/// paper-scale sizes (1.1M / 1.6M vertices) exceed this harness's default
/// time budget; pass the paper's n to reproduce at full scale.
class Datasets {
 public:
  /// Zachary's karate club: real data, n=34, m=156 (bidirected).
  static EdgeList Karate();

  /// Physicians proxy: directed, n=241, m=1,098; survey-capped out-degree
  /// (Δ+ ≈ 9) with preferential in-attachment (Δ− ≈ 26).
  static EdgeList Physicians(std::uint64_t seed);

  /// ca-GrQc proxy: collaboration network via overlapping cliques +
  /// whiskers; bidirected, n=5,242, m ≈ 28,968, clustering ≈ 0.6.
  static EdgeList CaGrQc(std::uint64_t seed);

  /// Wiki-Vote proxy: directed erased configuration model with heavy-tail
  /// out-degrees; n=7,115, m ≈ 103,689.
  static EdgeList WikiVote(std::uint64_t seed);

  /// com-Youtube proxy (⋆): scale-free bidirected, default n=60,000
  /// (paper: 1,134,889); arcs/vertex ≈ 6 (paper: 5.3).
  static EdgeList ComYoutube(std::uint64_t seed, VertexId n = 60000);

  /// soc-Pokec proxy (⋆): directed heavy-tail, default n=80,000 (paper:
  /// 1,632,802); arcs/vertex ≈ 18.8 matching the paper's density.
  static EdgeList SocPokec(std::uint64_t seed, VertexId n = 80000);

  /// BA_s: Barabási–Albert n=1,000, M=1, random directions (m=999).
  static EdgeList BaSparse(std::uint64_t seed);

  /// BA_d: Barabási–Albert n=1,000, M=11, random directions (m=10,879).
  static EdgeList BaDense(std::uint64_t seed);

  /// Canonical dataset names in the paper's Table 3 order.
  static std::vector<std::string> Names();

  /// Builds a dataset by its canonical name ("Karate", "Physicians",
  /// "ca-GrQc", "Wiki-Vote", "com-Youtube", "soc-Pokec", "BA_s", "BA_d").
  /// \param star_n overrides the vertex count of the ⋆ networks; 0 keeps
  ///        the default.
  static StatusOr<EdgeList> ByName(const std::string& name,
                                   std::uint64_t seed, VertexId star_n = 0);

  /// True for the networks the paper marks ⋆ (T=20 trials).
  static bool IsStarNetwork(const std::string& name);
};

}  // namespace soldist

#endif  // SOLDIST_GEN_DATASETS_H_
