// Barabási–Albert preferential attachment (paper Section 4.2.2): scale-free
// undirected graphs; every new vertex attaches to M existing vertices with
// probability proportional to degree. The paper's BA_s (M=1) and BA_d
// (M=11) assign a random direction to each edge afterwards.

#ifndef SOLDIST_GEN_BARABASI_ALBERT_H_
#define SOLDIST_GEN_BARABASI_ALBERT_H_

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// \brief Generates a BA graph as an *undirected* edge list (one arc per
/// edge, src < dst not guaranteed).
///
/// Seed graph: M vertices connected in a path (so attachment degrees are
/// positive); vertices M..n-1 each attach to M distinct existing vertices
/// via the repeated-endpoint list (exact linear preferential attachment).
/// Edge count: (M-1) + M*(n-M) for n > M.
///
/// \param n total vertices; must be > M
/// \param m_attach edges per new vertex (the BA "M"); must be >= 1
EdgeList BarabasiAlbert(VertexId n, VertexId m_attach, Rng* rng);

/// The paper's BA_s: n=1,000, M=1, random directions (999 arcs).
EdgeList PaperBaSparse(Rng* rng);

/// The paper's BA_d: n=1,000, M=11, random directions (10,879 arcs:
/// 10 seed-path edges + 11*989 attachments).
EdgeList PaperBaDense(Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_BARABASI_ALBERT_H_
