#include "gen/direction.h"

namespace soldist {

EdgeList AssignRandomDirections(const EdgeList& undirected, Rng* rng) {
  EdgeList directed;
  directed.num_vertices = undirected.num_vertices;
  directed.arcs.reserve(undirected.arcs.size());
  for (const Arc& a : undirected.arcs) {
    if (rng->Bernoulli(0.5)) {
      directed.Add(a.src, a.dst);
    } else {
      directed.Add(a.dst, a.src);
    }
  }
  return directed;
}

}  // namespace soldist
