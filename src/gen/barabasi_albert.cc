#include "gen/barabasi_albert.h"

#include "gen/direction.h"

namespace soldist {

EdgeList BarabasiAlbert(VertexId n, VertexId m_attach, Rng* rng) {
  SOLDIST_CHECK(m_attach >= 1);
  SOLDIST_CHECK(n > m_attach);
  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs.reserve(static_cast<std::size_t>(m_attach) * (n - m_attach));

  // Each existing edge contributes both endpoints: sampling uniformly from
  // the pool is exact degree-proportional sampling.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(edges.arcs.capacity() * 2);

  std::vector<VertexId> chosen;
  chosen.reserve(m_attach);
  for (VertexId v = m_attach; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < m_attach) {
      VertexId target;
      if (endpoint_pool.empty()) {
        // No edges yet (first attached vertex): uniform over the seeds.
        target = static_cast<VertexId>(rng->UniformInt(v));
      } else {
        target = endpoint_pool[rng->UniformInt(endpoint_pool.size())];
      }
      bool duplicate = false;
      for (VertexId c : chosen) {
        if (c == target) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) chosen.push_back(target);
    }
    for (VertexId target : chosen) {
      edges.Add(v, target);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return edges;
}

EdgeList PaperBaSparse(Rng* rng) {
  EdgeList undirected = BarabasiAlbert(1000, 1, rng);
  return AssignRandomDirections(undirected, rng);
}

EdgeList PaperBaDense(Rng* rng) {
  EdgeList undirected = BarabasiAlbert(1000, 11, rng);
  return AssignRandomDirections(undirected, rng);
}

}  // namespace soldist
