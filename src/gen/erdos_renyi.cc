#include "gen/erdos_renyi.h"

#include <cmath>
#include <unordered_set>

namespace soldist {

EdgeList ErdosRenyiGnm(VertexId n, EdgeId m, Rng* rng) {
  SOLDIST_CHECK(n >= 2);
  EdgeId max_arcs = static_cast<EdgeId>(n) * (n - 1);
  SOLDIST_CHECK(m <= max_arcs) << "G(n,m): too many arcs requested";
  EdgeList edges;
  edges.num_vertices = n;
  edges.arcs.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (edges.arcs.size() < m) {
    auto u = static_cast<VertexId>(rng->UniformInt(n));
    auto v = static_cast<VertexId>(rng->UniformInt(n));
    if (u == v) continue;
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    edges.Add(u, v);
  }
  return edges;
}

EdgeList ErdosRenyiGnp(VertexId n, double p, Rng* rng) {
  SOLDIST_CHECK(p >= 0.0 && p <= 1.0);
  EdgeList edges;
  edges.num_vertices = n;
  if (p <= 0.0) return edges;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (u != v) edges.Add(u, v);
      }
    }
    return edges;
  }
  // Geometric skipping over the n*(n-1) candidate slots.
  const double log_q = std::log1p(-p);
  const std::uint64_t slots = static_cast<std::uint64_t>(n) * (n - 1);
  std::uint64_t index = 0;
  while (true) {
    double r = rng->UnitReal();
    // Skip ~ Geometric(p); floor(log(1-r)/log(1-p)) failures before success.
    auto skip = static_cast<std::uint64_t>(std::log1p(-r) / log_q);
    if (slots - index <= skip) break;
    index += skip;
    // Decode slot -> ordered pair, skipping the diagonal.
    VertexId u = static_cast<VertexId>(index / (n - 1));
    VertexId rem = static_cast<VertexId>(index % (n - 1));
    VertexId v = rem < u ? rem : rem + 1;
    edges.Add(u, v);
    ++index;
    if (index >= slots) break;
  }
  return edges;
}

}  // namespace soldist
