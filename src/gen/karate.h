// Zachary's karate club (1977): the one real-world dataset small enough to
// embed verbatim. 34 vertices, 78 undirected edges -> 156 arcs, matching
// the paper's Table 3 (n=34, m=156).

#ifndef SOLDIST_GEN_KARATE_H_
#define SOLDIST_GEN_KARATE_H_

#include "graph/edge_list.h"

namespace soldist {

/// The karate club as a bidirected edge list (both arc directions per
/// undirected edge), vertex ids 0..33.
EdgeList KarateClub();

/// Number of undirected edges in the dataset (78).
constexpr std::size_t kKarateUndirectedEdges = 78;

}  // namespace soldist

#endif  // SOLDIST_GEN_KARATE_H_
