// Directed configuration model with power-law degree sequences: the proxy
// generator for directed social networks with heavy-tailed in/out degrees
// (Wiki-Vote, soc-Pokec stand-ins; see DESIGN.md Section 4).

#ifndef SOLDIST_GEN_CONFIG_MODEL_H_
#define SOLDIST_GEN_CONFIG_MODEL_H_

#include <vector>

#include "graph/edge_list.h"
#include "random/rng.h"

namespace soldist {

/// Parameters of a truncated discrete power law Pr[d = x] ∝ x^-gamma for
/// x in [min_degree, max_degree].
struct PowerLawSpec {
  double gamma = 2.5;
  VertexId min_degree = 1;
  VertexId max_degree = 1000;
};

/// Samples `n` degrees from the truncated power law.
std::vector<VertexId> SamplePowerLawDegrees(VertexId n,
                                            const PowerLawSpec& spec,
                                            Rng* rng);

/// \brief Directed configuration model.
///
/// Out- and in-degree sequences are drawn from `out_spec` / `in_spec`,
/// rebalanced to equal sums near `target_arcs`, then stubs are matched
/// uniformly at random; self-loops and duplicate arcs are dropped (the
/// usual "erased" configuration model), so the realized arc count is
/// slightly below the target on dense instances.
EdgeList DirectedConfigModel(VertexId n, EdgeId target_arcs,
                             const PowerLawSpec& out_spec,
                             const PowerLawSpec& in_spec, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GEN_CONFIG_MODEL_H_
