// CSV emission for experiment results so figures can be re-plotted outside
// the harness (gnuplot / pandas).

#ifndef SOLDIST_UTIL_CSV_H_
#define SOLDIST_UTIL_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace soldist {

/// \brief Accumulates rows and writes RFC-4180-style CSV.
///
/// Fields containing commas, quotes, or newlines are quoted and inner
/// quotes doubled.
class CsvWriter {
 public:
  /// \param header column names; every appended row must match its size.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row of preformatted fields.
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter* writer) : writer_(writer) {}
    RowBuilder& Str(std::string v);
    RowBuilder& Int(std::int64_t v);
    RowBuilder& UInt(std::uint64_t v);
    RowBuilder& Real(double v, int digits = 6);
    /// Commits the row to the writer.
    void Done();

   private:
    CsvWriter* writer_;
    std::vector<std::string> fields_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes to `path`, truncating. Fails with IoError if unwritable.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soldist

#endif  // SOLDIST_UTIL_CSV_H_
