#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace soldist {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line), condition_(condition) {}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n",
                 Basename(file_), line_, condition_, stream_.str().c_str());
  }
  std::abort();
}

}  // namespace internal
}  // namespace soldist
