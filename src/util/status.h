// Status / StatusOr: LevelDB-style error propagation for fallible operations
// (I/O, parsing, user input). Programmer errors use SOLDIST_CHECK instead.

#ifndef SOLDIST_UTIL_STATUS_H_
#define SOLDIST_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace soldist {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy when OK (no allocation). Typical use:
/// \code
///   Status s = GraphIo::LoadEdgeList(path, &edges);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code (e.g. to re-wrap a
  /// propagated error with extra context while keeping its category).
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return value;` in StatusOr functions.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SOLDIST_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; aborts if not ok().
  const T& value() const& {
    SOLDIST_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T& value() & {
    SOLDIST_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    SOLDIST_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define SOLDIST_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::soldist::Status _s = (expr);                 \
    if (!_s.ok()) return _s;                       \
  } while (0)

}  // namespace soldist

#endif  // SOLDIST_UTIL_STATUS_H_
