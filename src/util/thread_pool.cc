#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace soldist {
namespace {

/// The pool whose WorkerLoop the current thread is running, if any.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
    alive_canary_ = 0;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SOLDIST_CHECK(alive_canary_ == kAliveCanary)
        << "Submit() on a destroyed ThreadPool";
    SOLDIST_CHECK(!shutting_down_) << "Submit() on a shutting-down ThreadPool";
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  SOLDIST_CHECK(!InWorkerThread())
      << "re-entrant Wait() from a pool worker would deadlock";
  std::unique_lock<std::mutex> lock(mutex_);
  SOLDIST_CHECK(!has_waiter_)
      << "single-waiter contract: another thread is already in Wait()";
  has_waiter_ = true;
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  has_waiter_ = false;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::uint64_t count,
                 const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  std::size_t workers = pool->num_threads();
  if (workers <= 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // ~4 chunks per worker balances load without flooding the queue.
  std::uint64_t num_chunks = std::min<std::uint64_t>(count, workers * 4);
  std::uint64_t chunk = (count + num_chunks - 1) / num_chunks;
  for (std::uint64_t begin = 0; begin < count; begin += chunk) {
    std::uint64_t end = std::min(begin + chunk, count);
    pool->Submit([begin, end, &fn] {
      for (std::uint64_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

}  // namespace soldist
