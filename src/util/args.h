// Tiny command-line flag parser used by benches and examples.
//
// Supported syntax: --name value, --name=value, and bare --flag for bools.
// Unknown flags are an error so typos do not silently run the wrong
// experiment grid.

#ifndef SOLDIST_UTIL_ARGS_H_
#define SOLDIST_UTIL_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace soldist {

/// \brief Declarative flag set: define flags, parse argv, read values.
///
/// \code
///   ArgParser args("figure1", "Entropy of seed-set distributions");
///   args.AddInt64("trials", 200, "trials per (alg, sample number)");
///   args.AddBool("full", false, "run the paper-scale grid");
///   SOLDIST_CHECK(args.Parse(argc, argv).ok());
///   int64_t trials = args.GetInt64("trials");
/// \endcode
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void AddInt64(const std::string& name, std::int64_t def,
                const std::string& help);
  void AddDouble(const std::string& name, double def, const std::string& help);
  void AddBool(const std::string& name, bool def, const std::string& help);
  void AddString(const std::string& name, const std::string& def,
                 const std::string& help);

  /// Parses argv; prints usage and returns non-OK on --help or bad input.
  Status Parse(int argc, const char* const* argv);

  std::int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  /// True if the flag was set explicitly on the command line.
  bool Provided(const std::string& name) const;

  /// Usage text listing all flags with defaults.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };

  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
    bool provided = false;
  };

  const Flag& Get(const std::string& name, Type type) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace soldist

#endif  // SOLDIST_UTIL_ARGS_H_
