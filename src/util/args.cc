#include "util/args.h"

#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace soldist {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::AddInt64(const std::string& name, std::int64_t def,
                         const std::string& help) {
  Flag f;
  f.type = Type::kInt64;
  f.help = help;
  f.int_value = def;
  f.default_text = std::to_string(def);
  flags_[name] = std::move(f);
}

void ArgParser::AddDouble(const std::string& name, double def,
                          const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = def;
  f.default_text = FormatDouble(def, 6);
  flags_[name] = std::move(f);
}

void ArgParser::AddBool(const std::string& name, bool def,
                        const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = def;
  f.default_text = def ? "true" : "false";
  flags_[name] = std::move(f);
}

void ArgParser::AddString(const std::string& name, const std::string& def,
                          const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = def;
  f.default_text = def.empty() ? "\"\"" : def;
  flags_[name] = std::move(f);
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stderr);
      return Status::InvalidArgument("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool have_value = false;
    std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      have_value = true;
    } else {
      name = std::string(arg);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fputs(Usage().c_str(), stderr);
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        flag.provided = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    switch (flag.type) {
      case Type::kInt64: {
        std::int64_t v = 0;
        if (!ParseInt64(value, &v)) {
          return Status::InvalidArgument("flag --" + name +
                                         ": not an integer: " + value);
        }
        flag.int_value = v;
        break;
      }
      case Type::kDouble: {
        double v = 0.0;
        if (!ParseDouble(value, &v)) {
          return Status::InvalidArgument("flag --" + name +
                                         ": not a number: " + value);
        }
        flag.double_value = v;
        break;
      }
      case Type::kBool: {
        if (value == "true" || value == "1") {
          flag.bool_value = true;
        } else if (value == "false" || value == "0") {
          flag.bool_value = false;
        } else {
          return Status::InvalidArgument("flag --" + name +
                                         ": not a bool: " + value);
        }
        break;
      }
      case Type::kString:
        flag.string_value = value;
        break;
    }
    flag.provided = true;
  }
  return Status::OK();
}

const ArgParser::Flag& ArgParser::Get(const std::string& name,
                                      Type type) const {
  auto it = flags_.find(name);
  SOLDIST_CHECK(it != flags_.end()) << "undeclared flag: --" << name;
  SOLDIST_CHECK(it->second.type == type) << "flag type mismatch: --" << name;
  return it->second;
}

std::int64_t ArgParser::GetInt64(const std::string& name) const {
  return Get(name, Type::kInt64).int_value;
}

double ArgParser::GetDouble(const std::string& name) const {
  return Get(name, Type::kDouble).double_value;
}

bool ArgParser::GetBool(const std::string& name) const {
  return Get(name, Type::kBool).bool_value;
}

const std::string& ArgParser::GetString(const std::string& name) const {
  return Get(name, Type::kString).string_value;
}

bool ArgParser::Provided(const std::string& name) const {
  auto it = flags_.find(name);
  SOLDIST_CHECK(it != flags_.end()) << "undeclared flag: --" << name;
  return it->second.provided;
}

std::string ArgParser::Usage() const {
  std::ostringstream out;
  out << program_ << ": " << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default " << flag.default_text << ")\n"
        << "      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace soldist
