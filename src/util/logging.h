// Minimal leveled logging and CHECK macros. CHECK failures indicate
// programmer errors and abort; recoverable errors use Status instead.

#ifndef SOLDIST_UTIL_LOGGING_H_
#define SOLDIST_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace soldist {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process in the destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

/// Turns a streamed FatalLogMessage expression into void so it can sit in
/// the false branch of the CHECK ternary. `&` binds looser than `<<`.
struct Voidify {
  void operator&(const FatalLogMessage&) {}
};

}  // namespace internal

#define SOLDIST_LOG(level)                                              \
  ::soldist::internal::LogMessage(::soldist::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Enabled in all builds: the
/// experiment harness must never silently continue from a broken invariant.
/// Supports streaming extra context: SOLDIST_CHECK(x > 0) << "x=" << x;
#define SOLDIST_CHECK(cond)                                             \
  (cond) ? (void)0                                                      \
         : ::soldist::internal::Voidify() &                             \
           ::soldist::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define SOLDIST_CHECK_EQ(a, b) SOLDIST_CHECK((a) == (b))
#define SOLDIST_CHECK_NE(a, b) SOLDIST_CHECK((a) != (b))
#define SOLDIST_CHECK_LT(a, b) SOLDIST_CHECK((a) < (b))
#define SOLDIST_CHECK_LE(a, b) SOLDIST_CHECK((a) <= (b))
#define SOLDIST_CHECK_GT(a, b) SOLDIST_CHECK((a) > (b))
#define SOLDIST_CHECK_GE(a, b) SOLDIST_CHECK((a) >= (b))

#ifndef NDEBUG
#define SOLDIST_DCHECK(cond) SOLDIST_CHECK(cond)
#else
// `true || (cond)` keeps the expression compiled (and streamable) without
// evaluating `cond` at runtime.
#define SOLDIST_DCHECK(cond) SOLDIST_CHECK(true || (cond))
#endif

}  // namespace soldist

#endif  // SOLDIST_UTIL_LOGGING_H_
