// Fixed-size thread pool + ParallelFor: experiment trials are independent,
// so the harness fans them out across cores. The SamplingEngine (sim/)
// borrows the same pool for sample-level parallelism, so one pool serves
// both levels of the experiment harness.
//
// Contracts (CHECK-enforced):
//  * Single waiter: at most one thread may block in Wait() at a time.
//    Wait() drains *everything* in flight, so two concurrent waiters would
//    each observe the other's work — a race, not a feature.
//  * No re-entrant Wait(): a task running on a pool worker must never call
//    Wait() on its own pool (the worker would wait for itself: deadlock).
//    Nested parallelism must instead use its own completion latch, as
//    SamplingEngine does.
//  * No Submit() after destruction: enforced best-effort with a liveness
//    canary (use-after-free is UB, but the canary turns the common
//    dangling-pointer mistake into a crisp CHECK failure).

#ifndef SOLDIST_UTIL_THREAD_POOL_H_
#define SOLDIST_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace soldist {

/// \brief Fixed pool of worker threads executing queued closures.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker. CHECK-fails on a
  /// destroyed or shutting-down pool.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted closure has finished. Single-waiter
  /// contract: CHECK-fails if another thread is already waiting, or if
  /// called from one of this pool's own workers.
  void Wait();

  /// True when the calling thread is one of this pool's workers (used by
  /// the Wait() re-entrancy CHECK; exposed for callers that must choose
  /// between inline execution and Submit).
  bool InWorkerThread() const;

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  static constexpr std::uint32_t kAliveCanary = 0x50554c4cu;  // "PULL"

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool has_waiter_ = false;
  std::uint32_t alive_canary_ = kAliveCanary;
};

/// Runs fn(i) for i in [0, count) across `pool`; blocks until done.
/// Iterations are distributed in contiguous chunks to limit queue traffic.
/// Inherits the pool's single-waiter contract: never call from a worker.
void ParallelFor(ThreadPool* pool, std::uint64_t count,
                 const std::function<void(std::uint64_t)>& fn);

/// Process-wide default pool (created on first use, sized to the hardware).
ThreadPool* DefaultThreadPool();

}  // namespace soldist

#endif  // SOLDIST_UTIL_THREAD_POOL_H_
