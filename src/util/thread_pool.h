// Fixed-size thread pool + ParallelFor: experiment trials are independent,
// so the harness fans them out across cores.

#ifndef SOLDIST_UTIL_THREAD_POOL_H_
#define SOLDIST_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace soldist {

/// \brief Fixed pool of worker threads executing queued closures.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted closure has finished.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across `pool`; blocks until done.
/// Iterations are distributed in contiguous chunks to limit queue traffic.
void ParallelFor(ThreadPool* pool, std::uint64_t count,
                 const std::function<void(std::uint64_t)>& fn);

/// Process-wide default pool (created on first use, sized to the hardware).
ThreadPool* DefaultThreadPool();

}  // namespace soldist

#endif  // SOLDIST_UTIL_THREAD_POOL_H_
