#include "util/csv.h"

#include <cstdio>

#include "util/string_util.h"

namespace soldist {
namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SOLDIST_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  SOLDIST_CHECK_EQ(row.size(), header_.size())
      << "row width " << row.size() << " != header width " << header_.size();
  rows_.push_back(std::move(row));
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Str(std::string v) {
  fields_.push_back(std::move(v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Int(std::int64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::UInt(std::uint64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Real(double v, int digits) {
  fields_.push_back(FormatDouble(v, digits));
  return *this;
}

void CsvWriter::RowBuilder::Done() { writer_->AddRow(std::move(fields_)); }

std::string CsvWriter::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(header_[i], &out);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(row[i], &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::string body = ToString();
  std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace soldist
