// Small string helpers shared across modules (parsing, table formatting).

#ifndef SOLDIST_UTIL_STRING_UTIL_H_
#define SOLDIST_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace soldist {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any amount of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a non-negative integer; returns false on garbage or overflow.
bool ParseUint64(std::string_view s, std::uint64_t* out);
/// Parses a signed integer; returns false on garbage or overflow.
bool ParseInt64(std::string_view s, std::int64_t* out);
/// Parses a floating-point number; returns false on garbage.
bool ParseDouble(std::string_view s, double* out);

/// Formats `v` with thousands separators: 1234567 -> "1,234,567".
std::string WithThousands(std::uint64_t v);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("3.1400" -> "3.14", "2.000" -> "2").
std::string FormatDouble(double v, int digits);

/// Formats like the paper's tables: large values with one decimal and
/// thousands separators (e.g. "1,247,121.3"), tiny values with more digits.
std::string FormatCost(double v);

}  // namespace soldist

#endif  // SOLDIST_UTIL_STRING_UTIL_H_
