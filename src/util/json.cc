#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace soldist {
namespace {

std::string FormatReal(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

JsonObject& JsonObject::Raw(const std::string& key, const std::string& json) {
  if (!body_.empty()) body_ += ",";
  body_ += JsonQuote(key) + ":" + json;
  return *this;
}

JsonObject& JsonObject::Str(const std::string& key, const std::string& value) {
  return Raw(key, JsonQuote(value));
}

JsonObject& JsonObject::Int(const std::string& key, std::int64_t value) {
  return Raw(key, std::to_string(value));
}

JsonObject& JsonObject::UInt(const std::string& key, std::uint64_t value) {
  return Raw(key, std::to_string(value));
}

JsonObject& JsonObject::Real(const std::string& key, double value) {
  return Raw(key, FormatReal(value));
}

JsonObject& JsonObject::Bool(const std::string& key, bool value) {
  return Raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::RealArray(const std::string& key,
                                  const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += FormatReal(values[i]);
  }
  out += "]";
  return Raw(key, out);
}

}  // namespace soldist
