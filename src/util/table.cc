#include "util/table.h"

#include <algorithm>

#include "util/logging.h"

namespace soldist {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SOLDIST_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  SOLDIST_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToMarkdown() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    out->push_back('|');
    for (std::size_t c = 0; c < row.size(); ++c) {
      out->push_back(' ');
      out->append(row[c]);
      out->append(width[c] - row[c].size(), ' ');
      out->append(" |");
    }
    out->push_back('\n');
  };
  std::string out;
  emit_row(header_, &out);
  out.push_back('|');
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.push_back(' ');
    out.append(width[c], '-');
    out.append(" |");
  }
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

}  // namespace soldist
