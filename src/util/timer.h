// Wall-clock timer for coarse experiment timing (not for benchmarks; the
// google-benchmark binaries own their own timing).

#ifndef SOLDIST_UTIL_TIMER_H_
#define SOLDIST_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace soldist {

/// Monotonic wall-clock stopwatch, started on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

  /// "1.23s" / "45ms" style human-readable elapsed time.
  std::string HumanElapsed() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace soldist

#endif  // SOLDIST_UTIL_TIMER_H_
