#include "util/timer.h"

#include <cstdio>

namespace soldist {

std::string WallTimer::HumanElapsed() const {
  double s = Seconds();
  char buf[32];
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", s / 60.0);
  }
  return buf;
}

}  // namespace soldist
