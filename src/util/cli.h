// Shared helpers for command-line entry points (tools/ and examples/).

#ifndef SOLDIST_UTIL_CLI_H_
#define SOLDIST_UTIL_CLI_H_

#include <cstdio>

#include "util/status.h"

namespace soldist {

/// The CLI error contract in one place: prints "error: <CODE>: <msg>" to
/// stderr and returns exit code 1 (`return ExitWithError(status);` from
/// main-like functions). User input must exit this way — never a
/// CHECK-abort.
inline int ExitWithError(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace soldist

#endif  // SOLDIST_UTIL_CLI_H_
