// Aligned plain-text / markdown table printer: the bench binaries print the
// paper's tables with it.

#ifndef SOLDIST_UTIL_TABLE_H_
#define SOLDIST_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace soldist {

/// \brief Builds a column-aligned table and renders it as markdown.
///
/// All cells are strings; numeric formatting is the caller's job (keeps the
/// table layer independent of experiment semantics).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders as a GitHub-flavored markdown table with padded columns.
  std::string ToMarkdown() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soldist

#endif  // SOLDIST_UTIL_TABLE_H_
