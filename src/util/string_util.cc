#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace soldist {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (!buf.empty() && buf[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseInt64(std::string_view s, std::int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string WithThousands(std::uint64_t v) {
  char digits[32];
  int len = std::snprintf(digits, sizeof(digits), "%" PRIu64, v);
  std::string out;
  out.reserve(static_cast<std::size_t>(len) + static_cast<std::size_t>(len) / 3);
  for (int i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    std::size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string FormatCost(double v) {
  if (!std::isfinite(v)) return "-";
  if (v < 0.001 && v > 0.0) return FormatDouble(v, 6);
  if (v < 1.0) return FormatDouble(v, 5);
  double rounded = std::round(v * 10.0) / 10.0;
  auto whole = static_cast<std::uint64_t>(rounded);
  int tenth = static_cast<int>(std::llround((rounded - static_cast<double>(whole)) * 10.0));
  if (tenth >= 10) {  // carry from rounding, e.g. 9.96 -> whole 9, tenth 10
    whole += 1;
    tenth = 0;
  }
  std::string out = WithThousands(whole);
  out.push_back('.');
  out.push_back(static_cast<char>('0' + tenth));
  return out;
}

}  // namespace soldist
