// Minimal JSON emission for machine-readable experiment output (the
// soldist_experiment --json mode). Write-only by design: results flow out
// to jq / pandas; nothing in the harness parses JSON back.

#ifndef SOLDIST_UTIL_JSON_H_
#define SOLDIST_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace soldist {

/// JSON string literal with escaping, including the quotes.
std::string JsonQuote(const std::string& s);

/// \brief Builds one JSON object as a string, field by field.
///
/// \code
///   JsonObject obj;
///   obj.Str("approach", "RIS").UInt("sample_number", 1024);
///   obj.UIntArray("seeds", {0, 33});
///   puts(obj.ToString().c_str());   // {"approach":"RIS",...}
/// \endcode
class JsonObject {
 public:
  JsonObject& Str(const std::string& key, const std::string& value);
  JsonObject& Int(const std::string& key, std::int64_t value);
  JsonObject& UInt(const std::string& key, std::uint64_t value);
  /// Doubles print with up to 17 significant digits (round-trip exact);
  /// NaN/inf become null (JSON has no literals for them).
  JsonObject& Real(const std::string& key, double value);
  JsonObject& Bool(const std::string& key, bool value);
  template <typename T>
  JsonObject& UIntArray(const std::string& key, const std::vector<T>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(static_cast<std::uint64_t>(values[i]));
    }
    out += "]";
    return Raw(key, out);
  }
  JsonObject& RealArray(const std::string& key,
                        const std::vector<double>& values);
  /// Appends `json` verbatim as the value (must already be valid JSON).
  JsonObject& Raw(const std::string& key, const std::string& json);

  std::string ToString() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

}  // namespace soldist

#endif  // SOLDIST_UTIL_JSON_H_
