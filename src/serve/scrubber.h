// Background integrity scrubber: the serving layer's defense against
// state that rots AFTER it was admitted. The startup recovery sweep
// (store/recovery.h) proves the arena directory clean once; the scrubber
// keeps both the resident cache and the directory honest for as long as
// the service runs:
//
//   resident pass   recompute WorldArena::ContentChecksum of one cached
//                   arena per cycle and compare against the checksum
//                   recorded at admission. A mismatch means the arena
//                   rotted in RAM — it is Invalidate()d (evicted; the
//                   next request rebuilds byte-identically from the
//                   cache key) and never served again.
//   disk pass       store::VerifyArena one persisted entry per cycle
//                   (manifest + payload checksum + header). A failing
//                   entry is quarantined with store::QuarantineEntry so
//                   a later process can neither load nor trust it.
//
// Both passes are INCREMENTAL — round-robin cursors walk the entry sets
// one element per cycle, so a scrub cycle's cost is one arena hash or
// one payload read, never a full sweep stall. ScrubAll() (REPL `scrub`,
// tests) runs the cursors through a complete rotation synchronously.
//
// Scheduling is clock-driven and injectable: MaybeScrub() consults the
// ClockMicrosFn and runs one cycle when `interval_ms` has elapsed, so
// tests drive a fake clock deterministically; Start() spawns the
// production timer thread that calls it. All counters are monotone.

#ifndef SOLDIST_SERVE_SCRUBBER_H_
#define SOLDIST_SERVE_SCRUBBER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "serve/arena_cache.h"
#include "serve/resilience.h"

namespace soldist {
namespace serve {

/// Monotone counters of everything the scrubber has done since
/// construction (REPL `stats` surfaces them).
struct ScrubStats {
  std::uint64_t cycles = 0;               ///< scrub cycles run
  std::uint64_t resident_checked = 0;     ///< resident checksum re-verifications
  std::uint64_t resident_corruptions = 0; ///< admitted-checksum mismatches
  std::uint64_t invalidations = 0;        ///< cache entries evicted for rot
  std::uint64_t disk_checked = 0;         ///< persisted entries re-verified
  std::uint64_t disk_corruptions = 0;     ///< VerifyArena failures
  std::uint64_t quarantined = 0;          ///< entries moved to quarantine/
};

/// \brief Interval-driven integrity scrubber over one ArenaCache and
/// (optionally) one arena directory. Thread-safe: cycles are serialized
/// internally, and the cache/filesystem operations it performs are safe
/// against concurrent serving.
class Scrubber {
 public:
  /// \param cache        the resident cache to re-verify (required).
  /// \param arena_dir    persisted-arena root; "" disables the disk pass.
  /// \param interval_ms  cycle cadence for MaybeScrub/Start; 0 disables
  ///                     time-driven scrubbing (explicit RunCycle and
  ///                     ScrubAll still work).
  /// \param clock        injectable monotonic clock (tests); defaults to
  ///                     SteadyNowMicros.
  Scrubber(ArenaCache* cache, std::string arena_dir,
           std::uint64_t interval_ms, ClockMicrosFn clock = {});

  /// Stops the background thread (if started).
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Spawns the timer thread (no-op when interval_ms == 0 or already
  /// started). The thread wakes at the interval and calls MaybeScrub.
  void Start();

  /// Joins the timer thread (idempotent).
  void Stop();

  /// Runs one cycle iff `interval_ms` has elapsed on the injected clock
  /// since the last cycle (time-driven entry point; deterministic under
  /// a fake clock). Returns whether a cycle ran.
  bool MaybeScrub();

  /// One unconditional incremental cycle: verifies the next resident
  /// entry and the next persisted entry (round-robin cursors).
  void RunCycle();

  /// A complete rotation: every resident entry and every persisted
  /// entry verified once, synchronously (REPL `scrub`; tests).
  void ScrubAll();

  ScrubStats stats() const;

 private:
  void ScrubResidentAt(std::size_t index);
  /// Verifies persisted entry dir `index` of the sorted listing;
  /// returns the number of entry dirs seen (0 = no disk pass).
  std::size_t ScrubDiskAt(std::size_t index);
  void ThreadMain();

  ArenaCache* const cache_;
  const std::string arena_dir_;
  const std::uint64_t interval_ms_;
  const ClockMicrosFn clock_;

  mutable std::mutex mu_;  ///< guards cursors, counters, last_cycle_us_
  std::uint64_t last_cycle_us_ = 0;
  std::size_t resident_cursor_ = 0;
  std::size_t disk_cursor_ = 0;
  ScrubStats stats_;

  std::mutex thread_mu_;  ///< guards thread_/stop_ with cv_
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
};

}  // namespace serve
}  // namespace soldist

#endif  // SOLDIST_SERVE_SCRUBBER_H_
