#include "serve/scrubber.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>
#include <vector>

#include "store/arena_io.h"
#include "store/recovery.h"
#include "util/logging.h"

namespace soldist {
namespace serve {
namespace {

namespace fs = std::filesystem;

/// Sorted entry directories under an arena root (quarantine excluded) —
/// the disk pass's rotation set. Listed fresh each cycle: entries
/// appear/disappear while the service runs.
std::vector<std::string> ListEntryDirs(const std::string& root) {
  std::vector<std::string> dirs;
  if (root.empty()) return dirs;
  std::error_code ec;
  fs::directory_iterator it(root, ec);
  if (ec) return dirs;
  for (const fs::directory_entry& entry : it) {
    std::error_code type_ec;
    if (!entry.is_directory(type_ec)) continue;
    if (entry.path().filename().string() == "quarantine") continue;
    dirs.push_back(entry.path().string());
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

}  // namespace

Scrubber::Scrubber(ArenaCache* cache, std::string arena_dir,
                   std::uint64_t interval_ms, ClockMicrosFn clock)
    : cache_(cache),
      arena_dir_(std::move(arena_dir)),
      interval_ms_(interval_ms),
      clock_(std::move(clock)) {
  SOLDIST_CHECK(cache_ != nullptr);
  // First time-driven cycle fires one interval AFTER construction — a
  // service that just ran the startup recovery sweep has nothing new to
  // verify yet.
  last_cycle_us_ = clock_ ? clock_() : SteadyNowMicros();
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  if (interval_ms_ == 0) return;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Scrubber::ThreadMain() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [&] { return stop_; });
    if (stop_) break;
    lock.unlock();
    MaybeScrub();
    lock.lock();
  }
}

bool Scrubber::MaybeScrub() {
  if (interval_ms_ == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t now = clock_ ? clock_() : SteadyNowMicros();
    if (now - last_cycle_us_ < interval_ms_ * 1000) return false;
    last_cycle_us_ = now;  // claim the cycle before releasing mu_
  }
  RunCycle();
  return true;
}

void Scrubber::RunCycle() {
  std::size_t resident_index = 0;
  std::size_t disk_index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cycles;
    last_cycle_us_ = clock_ ? clock_() : SteadyNowMicros();
    resident_index = resident_cursor_++;
    disk_index = disk_cursor_++;
  }
  ScrubResidentAt(resident_index);
  ScrubDiskAt(disk_index);
}

void Scrubber::ScrubAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cycles;
    last_cycle_us_ = clock_ ? clock_() : SteadyNowMicros();
  }
  const std::size_t residents = cache_->ResidentEntries().size();
  for (std::size_t i = 0; i < residents; ++i) ScrubResidentAt(i);
  const std::size_t entries = ListEntryDirs(arena_dir_).size();
  for (std::size_t i = 0; i < entries; ++i) ScrubDiskAt(i);
}

void Scrubber::ScrubResidentAt(std::size_t index) {
  const std::vector<ArenaCache::ResidentEntry> resident =
      cache_->ResidentEntries();
  if (resident.empty()) return;
  const ArenaCache::ResidentEntry& entry = resident[index % resident.size()];
  // The hash walks the whole arena — outside every lock; the shared_ptr
  // keeps the arena alive even if it is evicted mid-hash.
  const std::uint64_t now_checksum = entry.arena->ContentChecksum();
  const bool corrupt = now_checksum != entry.admitted_checksum;
  bool invalidated = false;
  if (corrupt) {
    // Evict-and-rebuild, never serve: the next request for this key
    // rebuilds from its sampling streams, byte-identical to what was
    // admitted. In-flight views keep the rotten arena alive but no new
    // view will be minted from it.
    invalidated = cache_->Invalidate(entry.key);
    SOLDIST_LOG(Warning) << "scrubber: resident arena '" << entry.key
                         << "' fails its admitted checksum"
                         << (invalidated ? " — evicted for rebuild"
                                         : " (already gone)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.resident_checked;
  if (corrupt) ++stats_.resident_corruptions;
  if (invalidated) ++stats_.invalidations;
}

std::size_t Scrubber::ScrubDiskAt(std::size_t index) {
  const std::vector<std::string> dirs = ListEntryDirs(arena_dir_);
  if (dirs.empty()) return 0;
  const std::string& dir = dirs[index % dirs.size()];
  const Status verified = store::VerifyArena(dir);
  if (verified.code() == StatusCode::kNotFound) {
    // No manifest: either startup debris (the recovery sweep's job) or
    // a save that is mid-flight RIGHT NOW (payload committed, manifest
    // not yet) — never quarantine what the commit protocol can still
    // complete.
    return dirs.size();
  }
  bool quarantined = false;
  if (!verified.ok()) {
    std::string moved_to;
    const Status moved = store::QuarantineEntry(arena_dir_, dir, &moved_to);
    quarantined = moved.ok();
    SOLDIST_LOG(Warning) << "scrubber: persisted arena '" << dir
                         << "' fails verification (" << verified.ToString()
                         << ") — "
                         << (quarantined ? "quarantined to " + moved_to
                                         : "quarantine failed: " +
                                               moved.ToString());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_checked;
  if (!verified.ok()) ++stats_.disk_corruptions;
  if (quarantined) ++stats_.quarantined;
  return dirs.size();
}

ScrubStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace soldist
